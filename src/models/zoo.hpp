/**
 * @file
 * Full-scale ImageNet model descriptors of the networks the paper
 * evaluates (Section V-A): AlexNet, NiN, Overfeat, VGG16, Inception-v1,
 * plus ResNet-34 (ImageNet) and the composable-depth CIFAR-style ResNet
 * used for the Figure 16 depth study.
 *
 * These graphs are used for *memory planning* (shapes and lifetimes);
 * their parameters are placeholders and are never allocated unless
 * Graph::initParams is called.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace gist::models {

Graph alexnet(std::int64_t batch, std::int64_t classes = 1000);
Graph nin(std::int64_t batch, std::int64_t classes = 1000);
Graph overfeat(std::int64_t batch, std::int64_t classes = 1000);
Graph vgg16(std::int64_t batch, std::int64_t classes = 1000);
Graph vgg19(std::int64_t batch, std::int64_t classes = 1000);
Graph squeezenet(std::int64_t batch, std::int64_t classes = 1000);
Graph inceptionV1(std::int64_t batch, std::int64_t classes = 1000);
Graph resnet34(std::int64_t batch, std::int64_t classes = 1000);
Graph resnet50(std::int64_t batch, std::int64_t classes = 1000);

/**
 * DenseNet-BC (growth rate @p growth, 3 dense blocks of @p block_layers
 * BN-ReLU-Conv layers each, 0.5 compression transitions) on 32x32
 * inputs — the architecture the paper's related work [39] singles out
 * for extreme stash pressure: every layer's output is concatenated into
 * everything downstream, so stashes pile up quadratically.
 */
Graph densenetBc(std::int64_t batch, int block_layers = 12,
                 std::int64_t growth = 12, std::int64_t classes = 10);

/**
 * CIFAR-style ResNet (basic blocks, 16/32/64 channels over 32x32 inputs)
 * as in the original ResNet paper's depth study; @p depth is the total
 * layer count (6n+2 for integer n; the nearest n is used otherwise,
 * matching the paper's 509/851/1202-layer configurations).
 */
Graph resnetCifar(int depth, std::int64_t batch, std::int64_t classes = 10);

/** A named model builder. */
struct ModelEntry
{
    std::string name;
    std::function<Graph(std::int64_t)> build; ///< batch -> graph
};

/** The five networks of the paper's main evaluation figures. */
const std::vector<ModelEntry> &paperModels();

/** paperModels() plus ResNet-34. */
const std::vector<ModelEntry> &allModels();

} // namespace gist::models
