#include "models/tiny.hpp"

#include "models/builder.hpp"

namespace gist::models {

namespace {

void
convRelu(NetBuilder &net, std::int64_t out_c, std::int64_t k,
         std::int64_t stride = 1, std::int64_t pad = 0)
{
    net.conv(out_c, k, stride, pad);
    net.relu();
}

NodeId
tinyInceptionModule(NetBuilder &net, NodeId in, std::int64_t c1,
                    std::int64_t c3r, std::int64_t c3, std::int64_t pp)
{
    NodeId b1 = net.reluAt(net.convAt(in, c1, 1));
    NodeId b2 = net.reluAt(net.convAt(in, c3r, 1));
    b2 = net.reluAt(net.convAt(b2, c3, 3, 1, 1));
    NodeId b3 = net.maxpoolAt(in, 3, 1, 1);
    b3 = net.reluAt(net.convAt(b3, pp, 1));
    return net.concat({ b1, b2, b3 });
}

void
tinyBasicBlock(NetBuilder &net, std::int64_t channels, bool downsample)
{
    const NodeId block_in = net.tip();
    net.conv(channels, 3, downsample ? 2 : 1, 1);
    net.batchnorm();
    net.relu();
    net.conv(channels, 3, 1, 1);
    net.batchnorm();
    NodeId main = net.tip();

    NodeId shortcut = block_in;
    if (downsample || net.shapeOf(block_in).c() != channels) {
        shortcut = net.convAt(block_in, channels, 1, downsample ? 2 : 1);
        net.setTip(shortcut);
        net.batchnorm();
        shortcut = net.tip();
    }
    net.setTip(main);
    net.add(shortcut);
    net.relu();
}

} // namespace

Graph
tinyAlexnet(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, kTinyChannels, kTinyImage, kTinyImage);
    convRelu(net, 16, 3, 1, 1);
    net.maxpool(2, 2);
    convRelu(net, 32, 3, 1, 1);
    net.maxpool(2, 2);
    convRelu(net, 32, 3, 1, 1);
    net.maxpool(2, 2);
    net.fc(64);
    net.relu();
    net.dropout(0.25f);
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
tinyNin(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, kTinyChannels, kTinyImage, kTinyImage);
    convRelu(net, 24, 3, 1, 1);
    convRelu(net, 24, 1);
    net.maxpool(2, 2);
    convRelu(net, 48, 3, 1, 1);
    convRelu(net, 48, 1);
    net.maxpool(2, 2);
    convRelu(net, 48, 3, 1, 1);
    convRelu(net, classes, 1);
    net.globalAvgPool();
    net.loss(classes);
    return net.take();
}

Graph
tinyOverfeat(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, kTinyChannels, kTinyImage, kTinyImage);
    convRelu(net, 16, 3, 1, 1);
    net.maxpool(2, 2);
    convRelu(net, 32, 3, 1, 1);
    net.maxpool(2, 2);
    convRelu(net, 48, 3, 1, 1);
    convRelu(net, 48, 3, 1, 1);
    net.maxpool(2, 2);
    net.fc(96);
    net.relu();
    net.dropout(0.25f);
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
tinyVgg(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, kTinyChannels, kTinyImage, kTinyImage);
    convRelu(net, 16, 3, 1, 1);
    convRelu(net, 16, 3, 1, 1);
    net.maxpool(2, 2);
    convRelu(net, 32, 3, 1, 1);
    convRelu(net, 32, 3, 1, 1);
    net.maxpool(2, 2);
    convRelu(net, 48, 3, 1, 1);
    convRelu(net, 48, 3, 1, 1);
    net.maxpool(2, 2);
    net.fc(96);
    net.relu();
    net.dropout(0.25f);
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
tinyInception(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, kTinyChannels, kTinyImage, kTinyImage);
    convRelu(net, 16, 3, 1, 1);
    net.maxpool(2, 2);
    tinyInceptionModule(net, net.tip(), 8, 8, 16, 8);
    net.maxpool(2, 2);
    tinyInceptionModule(net, net.tip(), 16, 12, 24, 12);
    net.globalAvgPool();
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
tinyResnet(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, kTinyChannels, kTinyImage, kTinyImage);
    net.conv(16, 3, 1, 1);
    net.batchnorm();
    net.relu();
    tinyBasicBlock(net, 16, false);
    tinyBasicBlock(net, 32, true);
    net.globalAvgPool();
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

const std::vector<ModelEntry> &
tinyModels()
{
    static const std::vector<ModelEntry> entries = {
        { "AlexNet", [](std::int64_t b) { return tinyAlexnet(b); } },
        { "NiN", [](std::int64_t b) { return tinyNin(b); } },
        { "Overfeat", [](std::int64_t b) { return tinyOverfeat(b); } },
        { "VGG16", [](std::int64_t b) { return tinyVgg(b); } },
        { "Inception", [](std::int64_t b) { return tinyInception(b); } },
        { "ResNet", [](std::int64_t b) { return tinyResnet(b); } },
    };
    return entries;
}

} // namespace gist::models
