#include "models/zoo.hpp"

#include <cmath>

#include "models/builder.hpp"
#include "util/logging.hpp"

namespace gist::models {

namespace {

/** conv -> relu shorthand. */
void
convRelu(NetBuilder &net, std::int64_t out_c, std::int64_t k,
         std::int64_t stride = 1, std::int64_t pad = 0)
{
    net.conv(out_c, k, stride, pad);
    net.relu();
}

/** GoogLeNet inception module; returns the concat node. */
NodeId
inceptionModule(NetBuilder &net, NodeId in, std::int64_t c1,
                std::int64_t c3r, std::int64_t c3, std::int64_t c5r,
                std::int64_t c5, std::int64_t pp)
{
    // 1x1 branch
    NodeId b1 = net.reluAt(net.convAt(in, c1, 1));
    // 1x1 -> 3x3 branch
    NodeId b2 = net.reluAt(net.convAt(in, c3r, 1));
    b2 = net.reluAt(net.convAt(b2, c3, 3, 1, 1));
    // 1x1 -> 5x5 branch
    NodeId b3 = net.reluAt(net.convAt(in, c5r, 1));
    b3 = net.reluAt(net.convAt(b3, c5, 5, 1, 2));
    // pool -> 1x1 branch
    NodeId b4 = net.maxpoolAt(in, 3, 1, 1);
    b4 = net.reluAt(net.convAt(b4, pp, 1));
    return net.concat({ b1, b2, b3, b4 });
}

/** ResNet basic block: conv-bn-relu-conv-bn + shortcut, then relu. */
void
basicBlock(NetBuilder &net, std::int64_t channels, bool downsample)
{
    const NodeId block_in = net.tip();
    net.conv(channels, 3, downsample ? 2 : 1, 1);
    net.batchnorm();
    net.relu();
    net.conv(channels, 3, 1, 1);
    net.batchnorm();
    NodeId main = net.tip();

    NodeId shortcut = block_in;
    if (downsample || net.shapeOf(block_in).c() != channels) {
        shortcut = net.convAt(block_in, channels, 1, downsample ? 2 : 1);
        net.setTip(shortcut);
        net.batchnorm();
        shortcut = net.tip();
    }
    net.setTip(main);
    net.add(shortcut);
    net.relu();
}

/** ResNet bottleneck block: 1x1 reduce, 3x3, 1x1 expand + shortcut. */
void
bottleneckBlock(NetBuilder &net, std::int64_t mid_channels,
                bool downsample)
{
    const std::int64_t out_channels = mid_channels * 4;
    const NodeId block_in = net.tip();
    net.conv(mid_channels, 1, downsample ? 2 : 1);
    net.batchnorm();
    net.relu();
    net.conv(mid_channels, 3, 1, 1);
    net.batchnorm();
    net.relu();
    net.conv(out_channels, 1);
    net.batchnorm();
    NodeId main = net.tip();

    NodeId shortcut = block_in;
    if (downsample || net.shapeOf(block_in).c() != out_channels) {
        shortcut =
            net.convAt(block_in, out_channels, 1, downsample ? 2 : 1);
        net.setTip(shortcut);
        net.batchnorm();
        shortcut = net.tip();
    }
    net.setTip(main);
    net.add(shortcut);
    net.relu();
}

} // namespace

Graph
alexnet(std::int64_t batch, std::int64_t classes)
{
    // Layer order follows CNTK's AlexNet sample (pool before LRN),
    // which is what gives AlexNet its ReLU->Pool Binarize targets in
    // paper Figure 3. (The original AlexNet paper normalizes before
    // pooling; see DESIGN.md for the note on this substitution.)
    NetBuilder net(batch, 3, 227, 227);
    convRelu(net, 96, 11, 4, 0);
    net.maxpool(3, 2);
    net.lrn();
    convRelu(net, 256, 5, 1, 2);
    net.maxpool(3, 2);
    net.lrn();
    convRelu(net, 384, 3, 1, 1);
    convRelu(net, 384, 3, 1, 1);
    convRelu(net, 256, 3, 1, 1);
    net.maxpool(3, 2);
    net.fc(4096);
    net.relu();
    net.dropout(0.5f);
    net.fc(4096);
    net.relu();
    net.dropout(0.5f);
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
nin(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, 3, 227, 227);
    convRelu(net, 96, 11, 4, 0);
    convRelu(net, 96, 1);
    convRelu(net, 96, 1);
    net.maxpool(3, 2);
    convRelu(net, 256, 5, 1, 2);
    convRelu(net, 256, 1);
    convRelu(net, 256, 1);
    net.maxpool(3, 2);
    convRelu(net, 384, 3, 1, 1);
    convRelu(net, 384, 1);
    convRelu(net, 384, 1);
    net.maxpool(3, 2);
    net.dropout(0.5f);
    convRelu(net, 1024, 3, 1, 1);
    convRelu(net, 1024, 1);
    convRelu(net, classes, 1);
    net.globalAvgPool();
    net.loss(classes);
    return net.take();
}

Graph
overfeat(std::int64_t batch, std::int64_t classes)
{
    // The "fast" Overfeat model, 231x231 inputs.
    NetBuilder net(batch, 3, 231, 231);
    convRelu(net, 96, 11, 4, 0);
    net.maxpool(2, 2);
    convRelu(net, 256, 5, 1, 0);
    net.maxpool(2, 2);
    convRelu(net, 512, 3, 1, 1);
    convRelu(net, 1024, 3, 1, 1);
    convRelu(net, 1024, 3, 1, 1);
    net.maxpool(2, 2);
    net.fc(3072);
    net.relu();
    net.dropout(0.5f);
    net.fc(4096);
    net.relu();
    net.dropout(0.5f);
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
vgg16(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, 3, 224, 224);
    for (int i = 0; i < 2; ++i)
        convRelu(net, 64, 3, 1, 1);
    net.maxpool(2, 2);
    for (int i = 0; i < 2; ++i)
        convRelu(net, 128, 3, 1, 1);
    net.maxpool(2, 2);
    for (int i = 0; i < 3; ++i)
        convRelu(net, 256, 3, 1, 1);
    net.maxpool(2, 2);
    for (int i = 0; i < 3; ++i)
        convRelu(net, 512, 3, 1, 1);
    net.maxpool(2, 2);
    for (int i = 0; i < 3; ++i)
        convRelu(net, 512, 3, 1, 1);
    net.maxpool(2, 2);
    net.fc(4096);
    net.relu();
    net.dropout(0.5f);
    net.fc(4096);
    net.relu();
    net.dropout(0.5f);
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
vgg19(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, 3, 224, 224);
    const int stages[5] = { 2, 2, 4, 4, 4 };
    const std::int64_t channels[5] = { 64, 128, 256, 512, 512 };
    for (int s = 0; s < 5; ++s) {
        for (int i = 0; i < stages[s]; ++i)
            convRelu(net, channels[s], 3, 1, 1);
        net.maxpool(2, 2);
    }
    net.fc(4096);
    net.relu();
    net.dropout(0.5f);
    net.fc(4096);
    net.relu();
    net.dropout(0.5f);
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

namespace {

/** SqueezeNet fire module: squeeze 1x1, expand 1x1 || 3x3, concat. */
NodeId
fireModule(NetBuilder &net, NodeId in, std::int64_t squeeze,
           std::int64_t expand)
{
    NodeId s = net.reluAt(net.convAt(in, squeeze, 1));
    NodeId e1 = net.reluAt(net.convAt(s, expand, 1));
    NodeId e3 = net.reluAt(net.convAt(s, expand, 3, 1, 1));
    return net.concat({ e1, e3 });
}

} // namespace

Graph
squeezenet(std::int64_t batch, std::int64_t classes)
{
    // SqueezeNet v1.1.
    NetBuilder net(batch, 3, 227, 227);
    convRelu(net, 64, 3, 2, 0);
    net.maxpool(3, 2);
    fireModule(net, net.tip(), 16, 64);
    fireModule(net, net.tip(), 16, 64);
    net.maxpool(3, 2);
    fireModule(net, net.tip(), 32, 128);
    fireModule(net, net.tip(), 32, 128);
    net.maxpool(3, 2);
    fireModule(net, net.tip(), 48, 192);
    fireModule(net, net.tip(), 48, 192);
    fireModule(net, net.tip(), 64, 256);
    fireModule(net, net.tip(), 64, 256);
    net.dropout(0.5f);
    convRelu(net, classes, 1);
    net.globalAvgPool();
    net.loss(classes);
    return net.take();
}

Graph
inceptionV1(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, 3, 224, 224);
    convRelu(net, 64, 7, 2, 3);
    net.maxpool(3, 2, 1);
    net.lrn();
    convRelu(net, 64, 1);
    convRelu(net, 192, 3, 1, 1);
    net.lrn();
    net.maxpool(3, 2, 1);
    inceptionModule(net, net.tip(), 64, 96, 128, 16, 32, 32);   // 3a
    inceptionModule(net, net.tip(), 128, 128, 192, 32, 96, 64); // 3b
    net.maxpool(3, 2, 1);
    inceptionModule(net, net.tip(), 192, 96, 208, 16, 48, 64);  // 4a
    inceptionModule(net, net.tip(), 160, 112, 224, 24, 64, 64); // 4b
    inceptionModule(net, net.tip(), 128, 128, 256, 24, 64, 64); // 4c
    inceptionModule(net, net.tip(), 112, 144, 288, 32, 64, 64); // 4d
    inceptionModule(net, net.tip(), 256, 160, 320, 32, 128, 128); // 4e
    net.maxpool(3, 2, 1);
    inceptionModule(net, net.tip(), 256, 160, 320, 32, 128, 128); // 5a
    inceptionModule(net, net.tip(), 384, 192, 384, 48, 128, 128); // 5b
    net.globalAvgPool();
    net.dropout(0.4f);
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
resnet34(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, 3, 224, 224);
    net.conv(64, 7, 2, 3);
    net.batchnorm();
    net.relu();
    net.maxpool(3, 2, 1);
    const int stage_blocks[4] = { 3, 4, 6, 3 };
    const std::int64_t stage_channels[4] = { 64, 128, 256, 512 };
    for (int s = 0; s < 4; ++s)
        for (int b = 0; b < stage_blocks[s]; ++b)
            basicBlock(net, stage_channels[s], s > 0 && b == 0);
    net.globalAvgPool();
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
resnet50(std::int64_t batch, std::int64_t classes)
{
    NetBuilder net(batch, 3, 224, 224);
    net.conv(64, 7, 2, 3);
    net.batchnorm();
    net.relu();
    net.maxpool(3, 2, 1);
    const int stage_blocks[4] = { 3, 4, 6, 3 };
    const std::int64_t stage_mid[4] = { 64, 128, 256, 512 };
    for (int s = 0; s < 4; ++s)
        for (int b = 0; b < stage_blocks[s]; ++b)
            bottleneckBlock(net, stage_mid[s], s > 0 && b == 0);
    net.globalAvgPool();
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
densenetBc(std::int64_t batch, int block_layers, std::int64_t growth,
           std::int64_t classes)
{
    NetBuilder net(batch, 3, 32, 32);
    net.conv(2 * growth, 3, 1, 1);
    for (int block = 0; block < 3; ++block) {
        for (int layer = 0; layer < block_layers; ++layer) {
            const NodeId trunk = net.tip();
            // BN-ReLU-Conv(1x1 bottleneck)-BN-ReLU-Conv(3x3), then the
            // new features are concatenated onto the running trunk.
            net.batchnorm();
            net.relu();
            net.conv(4 * growth, 1);
            net.batchnorm();
            net.relu();
            net.conv(growth, 3, 1, 1);
            const NodeId fresh = net.tip();
            net.setTip(trunk);
            net.concat({ trunk, fresh });
        }
        if (block < 2) {
            // Transition: BN-ReLU-Conv(1x1, 0.5 compression)-AvgPool.
            const std::int64_t channels = net.shapeOf(net.tip()).c();
            net.batchnorm();
            net.relu();
            net.conv(channels / 2, 1);
            net.avgpool(2, 2);
        }
    }
    net.batchnorm();
    net.relu();
    net.globalAvgPool();
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

Graph
resnetCifar(int depth, std::int64_t batch, std::int64_t classes)
{
    const int n = std::max(1, static_cast<int>(
                                  std::lround((depth - 2) / 6.0)));
    NetBuilder net(batch, 3, 32, 32);
    net.conv(16, 3, 1, 1);
    net.batchnorm();
    net.relu();
    const std::int64_t stage_channels[3] = { 16, 32, 64 };
    for (int s = 0; s < 3; ++s)
        for (int b = 0; b < n; ++b)
            basicBlock(net, stage_channels[s], s > 0 && b == 0);
    net.globalAvgPool();
    net.fc(classes);
    net.loss(classes);
    return net.take();
}

const std::vector<ModelEntry> &
paperModels()
{
    static const std::vector<ModelEntry> entries = {
        { "AlexNet", [](std::int64_t b) { return alexnet(b); } },
        { "NiN", [](std::int64_t b) { return nin(b); } },
        { "Overfeat", [](std::int64_t b) { return overfeat(b); } },
        { "VGG16", [](std::int64_t b) { return vgg16(b); } },
        { "Inception", [](std::int64_t b) { return inceptionV1(b); } },
    };
    return entries;
}

const std::vector<ModelEntry> &
allModels()
{
    static const std::vector<ModelEntry> entries = [] {
        std::vector<ModelEntry> all = paperModels();
        all.push_back(
            { "ResNet34", [](std::int64_t b) { return resnet34(b); } });
        all.push_back(
            { "ResNet50", [](std::int64_t b) { return resnet50(b); } });
        return all;
    }();
    return entries;
}

} // namespace gist::models
