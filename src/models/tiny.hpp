/**
 * @file
 * Tiny trainable variants of the paper's networks.
 *
 * The paper trains on ImageNet; offline we substitute a deterministic
 * synthetic dataset (train/dataset.hpp) and shrink each architecture to
 * laptop scale while preserving its *layer-pair structure* (the
 * ReLU->Pool / ReLU->Conv / Other mix that drives Gist's encodings), so
 * accuracy-sensitivity results keep the paper's shape.
 */

#pragma once

#include "models/zoo.hpp"

namespace gist::models {

/** Default input geometry of the tiny models. */
inline constexpr std::int64_t kTinyImage = 16;
inline constexpr std::int64_t kTinyChannels = 3;
inline constexpr std::int64_t kTinyClasses = 8;

Graph tinyAlexnet(std::int64_t batch, std::int64_t classes = kTinyClasses);
Graph tinyNin(std::int64_t batch, std::int64_t classes = kTinyClasses);
Graph tinyOverfeat(std::int64_t batch,
                   std::int64_t classes = kTinyClasses);
Graph tinyVgg(std::int64_t batch, std::int64_t classes = kTinyClasses);
Graph tinyInception(std::int64_t batch,
                    std::int64_t classes = kTinyClasses);
Graph tinyResnet(std::int64_t batch, std::int64_t classes = kTinyClasses);

/** All tiny models, names matching their full-scale counterparts. */
const std::vector<ModelEntry> &tinyModels();

} // namespace gist::models
