#include "models/builder.hpp"

#include "layers/layers.hpp"
#include "util/logging.hpp"

namespace gist {

NetBuilder::NetBuilder(std::int64_t batch, std::int64_t channels,
                       std::int64_t h, std::int64_t w)
{
    cur = graph.addInput("data", Shape::nchw(batch, channels, h, w));
}

const Shape &
NetBuilder::shapeOf(NodeId id) const
{
    return graph.node(id).out_shape;
}

std::string
NetBuilder::autoName(const std::string &base)
{
    return base + std::to_string(++counter);
}

NodeId
NetBuilder::convAt(NodeId at, std::int64_t out_c, std::int64_t k,
                   std::int64_t stride, std::int64_t pad,
                   const std::string &name)
{
    const auto &in_shape = shapeOf(at);
    auto layer = std::make_unique<ConvLayer>(
        in_shape.c(), ConvSpec::square(out_c, k, stride, pad));
    return graph.addNode(name.empty() ? autoName("conv") : name,
                         std::move(layer), { at });
}

NodeId
NetBuilder::reluAt(NodeId at, const std::string &name)
{
    return graph.addNode(name.empty() ? autoName("relu") : name,
                         std::make_unique<ReluLayer>(), { at });
}

NodeId
NetBuilder::maxpoolAt(NodeId at, std::int64_t k, std::int64_t stride,
                      std::int64_t pad, const std::string &name)
{
    return graph.addNode(name.empty() ? autoName("pool") : name,
                         std::make_unique<MaxPoolLayer>(
                             PoolSpec::square(k, stride, pad)),
                         { at });
}

NodeId
NetBuilder::conv(std::int64_t out_c, std::int64_t k, std::int64_t stride,
                 std::int64_t pad, const std::string &name)
{
    cur = convAt(cur, out_c, k, stride, pad, name);
    return cur;
}

NodeId
NetBuilder::relu(const std::string &name)
{
    cur = reluAt(cur, name);
    return cur;
}

NodeId
NetBuilder::sigmoid(const std::string &name)
{
    cur = graph.addNode(name.empty() ? autoName("sigmoid") : name,
                        std::make_unique<SigmoidLayer>(), { cur });
    return cur;
}

NodeId
NetBuilder::tanh(const std::string &name)
{
    cur = graph.addNode(name.empty() ? autoName("tanh") : name,
                        std::make_unique<TanhLayer>(), { cur });
    return cur;
}

NodeId
NetBuilder::maxpool(std::int64_t k, std::int64_t stride, std::int64_t pad,
                    const std::string &name)
{
    cur = maxpoolAt(cur, k, stride, pad, name);
    return cur;
}

NodeId
NetBuilder::avgpool(std::int64_t k, std::int64_t stride, std::int64_t pad,
                    const std::string &name)
{
    cur = graph.addNode(name.empty() ? autoName("avgpool") : name,
                        std::make_unique<AvgPoolLayer>(
                            PoolSpec::square(k, stride, pad)),
                        { cur });
    return cur;
}

NodeId
NetBuilder::globalAvgPool(const std::string &name)
{
    const auto &s = shapeOf(cur);
    GIST_ASSERT(s.rank() == 4, "global pool needs NCHW input");
    GIST_ASSERT(s.h() == s.w(), "global pool expects square maps");
    return avgpool(s.h(), 1, 0, name.empty() ? autoName("gap") : name);
}

NodeId
NetBuilder::lrn(const std::string &name)
{
    cur = graph.addNode(name.empty() ? autoName("lrn") : name,
                        std::make_unique<LrnLayer>(), { cur });
    return cur;
}

NodeId
NetBuilder::batchnorm(const std::string &name)
{
    cur = graph.addNode(name.empty() ? autoName("bn") : name,
                        std::make_unique<BatchNormLayer>(shapeOf(cur).c()),
                        { cur });
    return cur;
}

NodeId
NetBuilder::fc(std::int64_t out_features, const std::string &name)
{
    const auto &s = shapeOf(cur);
    const std::int64_t in_features = s.numel() / s.dim(0);
    cur = graph.addNode(name.empty() ? autoName("fc") : name,
                        std::make_unique<FcLayer>(in_features,
                                                  out_features),
                        { cur });
    return cur;
}

NodeId
NetBuilder::dropout(float p, const std::string &name)
{
    cur = graph.addNode(
        name.empty() ? autoName("drop") : name,
        std::make_unique<DropoutLayer>(
            p, static_cast<std::uint64_t>(counter + 7)),
        { cur });
    return cur;
}

NodeId
NetBuilder::add(NodeId other, const std::string &name)
{
    cur = graph.addNode(name.empty() ? autoName("add") : name,
                        std::make_unique<AddLayer>(), { cur, other });
    return cur;
}

NodeId
NetBuilder::concat(std::vector<NodeId> parts, const std::string &name)
{
    cur = graph.addNode(name.empty() ? autoName("concat") : name,
                        std::make_unique<ConcatLayer>(), std::move(parts));
    return cur;
}

NodeId
NetBuilder::loss(std::int64_t classes, const std::string &name)
{
    cur = graph.addNode(name.empty() ? "loss" : name,
                        std::make_unique<SoftmaxCrossEntropyLayer>(classes),
                        { cur });
    return cur;
}

} // namespace gist
