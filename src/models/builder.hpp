/**
 * @file
 * Fluent helper for assembling CNN graphs. Tracks the "current" node so
 * sequential trunks read like the paper's network tables; branch points
 * (Inception, ResNet shortcuts) use explicit node ids.
 */

#pragma once

#include <string>

#include "graph/graph.hpp"

namespace gist {

/** Sequential-with-branches CNN graph builder. */
class NetBuilder
{
  public:
    /** Start a graph with an NCHW input node. */
    NetBuilder(std::int64_t batch, std::int64_t channels, std::int64_t h,
               std::int64_t w);

    /** Current trunk node (branch here). */
    NodeId tip() const { return cur; }
    /** Re-root the trunk at @p id (after assembling a branch). */
    void setTip(NodeId id) { cur = id; }

    /** Shape of any node's output. */
    const Shape &shapeOf(NodeId id) const;

    // Trunk-extending layers (each returns the new node id).
    NodeId conv(std::int64_t out_c, std::int64_t k, std::int64_t stride = 1,
                std::int64_t pad = 0, const std::string &name = "");
    NodeId relu(const std::string &name = "");
    NodeId sigmoid(const std::string &name = "");
    NodeId tanh(const std::string &name = "");
    NodeId maxpool(std::int64_t k, std::int64_t stride,
                   std::int64_t pad = 0, const std::string &name = "");
    NodeId avgpool(std::int64_t k, std::int64_t stride,
                   std::int64_t pad = 0, const std::string &name = "");
    /** Average pool over the full spatial extent. */
    NodeId globalAvgPool(const std::string &name = "");
    NodeId lrn(const std::string &name = "");
    NodeId batchnorm(const std::string &name = "");
    NodeId fc(std::int64_t out_features, const std::string &name = "");
    NodeId dropout(float p, const std::string &name = "");
    /** Elementwise add of the trunk and @p other (ResNet shortcut). */
    NodeId add(NodeId other, const std::string &name = "");
    /** Concat the given nodes along channels; re-roots the trunk. */
    NodeId concat(std::vector<NodeId> parts, const std::string &name = "");
    /** Softmax + cross-entropy head; finishes the network. */
    NodeId loss(std::int64_t classes, const std::string &name = "");

    /** Same layers, rooted at an arbitrary node (for branches). */
    NodeId convAt(NodeId at, std::int64_t out_c, std::int64_t k,
                  std::int64_t stride = 1, std::int64_t pad = 0,
                  const std::string &name = "");
    NodeId reluAt(NodeId at, const std::string &name = "");
    NodeId maxpoolAt(NodeId at, std::int64_t k, std::int64_t stride,
                     std::int64_t pad = 0, const std::string &name = "");

    /** Finish and take the graph. */
    Graph take() { return std::move(graph); }

  private:
    std::string autoName(const std::string &base);

    Graph graph;
    NodeId cur = -1;
    int counter = 0;
};

} // namespace gist
