/**
 * @file
 * Job descriptions for the multi-tenant training service: what one
 * tenant asked to train (model, dataset, hyperparameters, Gist
 * encoding config, lifecycle file paths), the job state machine, and
 * the JSONL job-spec parser the gist_serve driver feeds from.
 *
 * A JobSpec is everything needed to build a fully self-contained run:
 * the JobManager derives a per-job dataset, graph, metric registry,
 * executor, metrics sink and train loop from it, so concurrent jobs
 * share nothing but the process thread pool.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "train/trainer.hpp"
#include "util/jsonin.hpp"

namespace gist::serve {

/**
 * Lifecycle states of a job.
 *
 *     Queued -> Running -> Done
 *                |  ^  \-> Failed  (resumable when checkpointed)
 *                v  |
 *              Paused -> Cancelled
 *
 * Queued covers both a fresh submission and a paused job whose resume
 * was requested; Running means the scheduler is stepping it. Paused
 * jobs hold no memory: pause snapshots to the job's checkpoint file
 * and tears the runtime down, so resume is a rebuild + bitwise
 * restore. Cancel is valid from any non-terminal state. Done, Failed,
 * Cancelled and Rejected are terminal (Failed jobs may be resumed from
 * their last good checkpoint, which re-enters Queued).
 */
enum class JobState {
    Queued,
    Running,
    Paused,
    Done,
    Failed,
    Cancelled,
    Rejected,
};

/** Human-readable state name ("queued", "running", ...). */
const char *jobStateName(JobState state);

/** One tenant's training request. */
struct JobSpec
{
    /** Unique job id; required, duplicates are rejected at submit. */
    std::string id;
    /** Tiny-model zoo name (models::tinyModels()): "alexnet", ... */
    std::string model = "alexnet";
    std::int64_t batch_size = 8;
    int epochs = 1;
    /** Stop after this many global minibatches (0 = epochs govern). */
    std::int64_t max_steps = 0;
    /** Parameter-init RNG seed. */
    std::uint64_t seed = 1;
    /** Synthetic dataset seed + split sizes. */
    std::uint64_t dataset_seed = 42;
    std::int64_t num_train = 64;
    std::int64_t num_eval = 32;
    float learning_rate = 0.05f;
    float momentum = 0.9f;
    float lr_decay = 1.0f;
    int lr_decay_epochs = 1;
    /**
     * Checkpoint file; required for pause/resume (pause snapshots here
     * and tears down). Written every checkpoint_every_steps steps and
     * at the end of the run, like Trainer.
     */
    std::string checkpoint_path;
    std::int64_t checkpoint_every_steps = 0;
    /** Per-job step/epoch metrics JSONL ("" = no metrics file). */
    std::string metrics_path;
    /** Gist encoding / memory configuration for this job. */
    GistConfig gist = GistConfig::baseline();
};

/**
 * Parse one job-spec JSON object (one line of the gist_serve JSONL
 * input). Recognized members — all optional except "id":
 *
 *   id, model, batch_size, epochs, max_steps, seed, dataset_seed,
 *   num_train, num_eval, lr, momentum, lr_decay, lr_decay_epochs,
 *   checkpoint, checkpoint_every_steps, metrics,
 *   mode ("baseline" | "lossless" | "lossy"),
 *   dpr_format ("fp32" | "fp16" | "fp10" | "fp8"),
 *   mem_budget, device_pool (byte sizes: number or "64m" string),
 *   tier_path, tier_gbps, async (bool), codec_threads
 *
 * Returns false and sets @p err on malformed input (unparseable JSON,
 * missing id, unknown model/mode/format).
 */
bool parseJobSpec(const std::string &json_line, JobSpec &spec,
                  std::string *err);

/** parseJobSpec over an already-parsed object. */
bool parseJobSpec(const JsonValue &obj, JobSpec &spec, std::string *err);

/** Whether @p name names a tiny-zoo model (case-insensitive). */
bool knownModel(const std::string &name);

/**
 * Build @p spec's model graph (uninitialized parameters). The spec's
 * model name must be valid (parseJobSpec enforces this).
 */
Graph buildModelGraph(const JobSpec &spec);

/**
 * The planner-modeled peak feature-map-pool bytes of @p spec: the
 * hybrid planner's planned_peak_bytes when the spec sets a memory
 * budget, else the dynamic-sharing pool peak of the static Table I
 * schedule. This is the number admission control charges against the
 * service's global budget. Builds (and discards) the model graph.
 */
std::uint64_t modeledPeakBytes(const JobSpec &spec);

/** A point-in-time public view of one job. */
struct JobStatus
{
    std::string id;
    JobState state = JobState::Queued;
    /** Global step count (continues across pause/resume). */
    std::int64_t step = 0;
    int epoch = 0;
    /** What admission control charged for this job. */
    std::uint64_t modeled_peak_bytes = 0;
    /** Failure reason (Failed/Rejected), "" otherwise. */
    std::string error;
    /** Epoch records completed so far (across pause/resume cycles). */
    std::vector<EpochRecord> records;
};

} // namespace gist::serve
