#include "serve/job.hpp"

#include <cctype>

#include "core/planner.hpp"
#include "core/schedule_builder.hpp"
#include "core/sparsity.hpp"
#include "models/tiny.hpp"
#include "util/logging.hpp"

namespace gist::serve {

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Paused: return "paused";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
      case JobState::Rejected: return "rejected";
    }
    return "?";
}

namespace {

/** Case-insensitive tiny-model lookup ("alexnet" finds "AlexNet"). */
const models::ModelEntry *
findModel(const std::string &name)
{
    auto lower = [](const std::string &in) {
        std::string out = in;
        for (char &c : out)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        return out;
    };
    const std::string want = lower(name);
    for (const auto &entry : models::tinyModels())
        if (lower(entry.name) == want)
            return &entry;
    return nullptr;
}

bool
fail(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
    return false;
}

/** Byte-size member: JSON number, or a "64m"-style string. */
bool
byteSizeOr(const JsonValue &obj, const std::string &key,
           std::uint64_t &out, std::string *err)
{
    const JsonValue *v = obj.get(key);
    if (!v)
        return true;
    if (v->isNumber()) {
        if (v->asNumber() < 0)
            return fail(err, "negative byte size for '" + key + "'");
        out = static_cast<std::uint64_t>(v->asNumber());
        return true;
    }
    if (v->isString()) {
        out = parseByteSize(v->asString());
        return true;
    }
    return fail(err, "'" + key + "' must be a number or byte-size string");
}

} // namespace

bool
parseJobSpec(const JsonValue &obj, JobSpec &spec, std::string *err)
{
    if (!obj.isObject())
        return fail(err, "job spec must be a JSON object");
    spec.id = obj.stringOr("id", "");
    if (spec.id.empty())
        return fail(err, "job spec is missing required member 'id'");

    spec.model = obj.stringOr("model", spec.model);
    if (!findModel(spec.model))
        return fail(err, "job '" + spec.id + "': unknown model '" +
                             spec.model + "'");

    spec.batch_size = obj.intOr("batch_size", spec.batch_size);
    spec.epochs = static_cast<int>(obj.intOr("epochs", spec.epochs));
    spec.max_steps = obj.intOr("max_steps", spec.max_steps);
    spec.seed = static_cast<std::uint64_t>(
        obj.intOr("seed", static_cast<std::int64_t>(spec.seed)));
    spec.dataset_seed = static_cast<std::uint64_t>(obj.intOr(
        "dataset_seed", static_cast<std::int64_t>(spec.dataset_seed)));
    spec.num_train = obj.intOr("num_train", spec.num_train);
    spec.num_eval = obj.intOr("num_eval", spec.num_eval);
    spec.learning_rate = static_cast<float>(
        obj.numberOr("lr", spec.learning_rate));
    spec.momentum =
        static_cast<float>(obj.numberOr("momentum", spec.momentum));
    spec.lr_decay =
        static_cast<float>(obj.numberOr("lr_decay", spec.lr_decay));
    spec.lr_decay_epochs = static_cast<int>(
        obj.intOr("lr_decay_epochs", spec.lr_decay_epochs));
    spec.checkpoint_path = obj.stringOr("checkpoint", spec.checkpoint_path);
    spec.checkpoint_every_steps =
        obj.intOr("checkpoint_every_steps", spec.checkpoint_every_steps);
    spec.metrics_path = obj.stringOr("metrics", spec.metrics_path);
    if (spec.batch_size <= 0 || spec.num_train < spec.batch_size)
        return fail(err, "job '" + spec.id +
                             "': need batch_size >= 1 and num_train >= "
                             "batch_size");

    const std::string fmt_name = obj.stringOr("dpr_format", "fp16");
    DprFormat fmt;
    if (fmt_name == "fp32")
        fmt = DprFormat::Fp32;
    else if (fmt_name == "fp16")
        fmt = DprFormat::Fp16;
    else if (fmt_name == "fp10")
        fmt = DprFormat::Fp10;
    else if (fmt_name == "fp8")
        fmt = DprFormat::Fp8;
    else
        return fail(err, "job '" + spec.id + "': unknown dpr_format '" +
                             fmt_name + "'");

    const std::string mode = obj.stringOr("mode", "baseline");
    if (mode == "baseline")
        spec.gist = GistConfig::baseline();
    else if (mode == "lossless")
        spec.gist = GistConfig::lossless();
    else if (mode == "lossy")
        spec.gist = GistConfig::lossy(fmt);
    else
        return fail(err, "job '" + spec.id + "': unknown mode '" + mode +
                             "' (want baseline|lossless|lossy)");

    if (!byteSizeOr(obj, "mem_budget", spec.gist.mem_budget_bytes, err) ||
        !byteSizeOr(obj, "device_pool", spec.gist.device_pool_bytes, err))
        return false;
    spec.gist.tier_path = obj.stringOr("tier_path", spec.gist.tier_path);
    const double gbps = obj.numberOr("tier_gbps", 0.0);
    if (gbps > 0.0)
        spec.gist.tier_bandwidth_bytes_per_s = gbps * 1e9;
    if (const JsonValue *v = obj.get("async"))
        spec.gist.async_codec = v->isBool() ? v->asBool()
                                            : v->asNumber() != 0.0;
    spec.gist.codec_threads = static_cast<int>(
        obj.intOr("codec_threads", spec.gist.codec_threads));
    return true;
}

bool
parseJobSpec(const std::string &json_line, JobSpec &spec, std::string *err)
{
    JsonValue obj;
    std::string parse_err;
    if (!JsonValue::parse(json_line, obj, &parse_err))
        return fail(err, "bad job spec JSON: " + parse_err);
    return parseJobSpec(obj, spec, err);
}

bool
knownModel(const std::string &name)
{
    return findModel(name) != nullptr;
}

Graph
buildModelGraph(const JobSpec &spec)
{
    const models::ModelEntry *entry = findModel(spec.model);
    if (!entry)
        GIST_FATAL("unknown model '", spec.model, "'");
    return entry->build(spec.batch_size);
}

std::uint64_t
modeledPeakBytes(const JobSpec &spec)
{
    Graph graph = buildModelGraph(spec);
    BuiltSchedule schedule = buildSchedule(graph, spec.gist);
    if (schedule.hybrid.active)
        return schedule.hybrid.planned_peak_bytes;
    const auto buffers = planBuffers(graph, schedule, SparsityModel{});
    return summarize(buffers, /*investigation=*/false).pool_dynamic;
}

} // namespace gist::serve
