/**
 * @file
 * JobManager: the multi-tenant training service core.
 *
 * A registry of concurrent training jobs, each wrapping a fully
 * self-contained executor + trainer (its own graph, dataset, metric
 * registry, metrics sink, device pool and RNG streams), multiplexed
 * over the shared process thread pool by a single scheduler thread
 * that steps runnable jobs round-robin, one minibatch per turn.
 *
 * Determinism: parallelFor() partitions work by (begin, end, grain)
 * only, so a minibatch computes bitwise-identical results no matter
 * which thread calls it or what ran before. Jobs share no mutable
 * state (per-job registry/sink/pool/queue), so serialized round-robin
 * stepping makes every job's final weights bitwise-identical to the
 * same spec run solo — the property tests/test_job_manager.cpp pins.
 *
 * Admission control: each job is charged its planner-modeled peak
 * pool bytes (serve::modeledPeakBytes); a submission whose charge
 * does not fit the remaining global budget is rejected with a
 * structured error before any runtime is built. Pausing a job
 * releases its charge (pause = checkpoint + full teardown); resume
 * re-admits under the then-current budget.
 *
 * All job work — runtime builds, stepping, snapshots, teardown —
 * happens on the scheduler thread. Public methods post a request,
 * wake the scheduler and (for lifecycle verbs) wait for the
 * acknowledging state change, so they are safe to call from any
 * thread and return with the transition complete.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/job.hpp"

namespace gist::serve {

/** Service-wide knobs. */
struct ServeConfig
{
    /**
     * Global device-memory budget in bytes that admission control
     * allocates job charges from; 0 = unlimited (every job admitted).
     */
    std::uint64_t global_budget_bytes = 0;
    /** Minibatches one job runs per scheduler turn (fairness quantum). */
    int steps_per_turn = 1;
};

/** Outcome of JobManager::submit(). */
struct SubmitResult
{
    bool admitted = false;
    /** Rejection/validation reason when !admitted (names the job id). */
    std::string error;
    /** The job's modeled peak pool bytes (the admission charge). */
    std::uint64_t modeled_peak_bytes = 0;
    /** Global budget bytes left after (or despite) this submission. */
    std::uint64_t budget_remaining_bytes = 0;
};

/** The concurrent job registry + scheduler. */
class JobManager
{
  public:
    explicit JobManager(ServeConfig config = ServeConfig{});
    /** Cancels every live job (tearing down runtimes) and joins. */
    ~JobManager();

    JobManager(const JobManager &) = delete;
    JobManager &operator=(const JobManager &) = delete;

    /**
     * Validate, admit and start @p spec. Blocks until admission is
     * decided (the runtime build happens on the scheduler thread
     * afterwards). Rejections — duplicate id, unknown model, budget
     * exceeded — leave a Rejected registry entry for status().
     */
    SubmitResult submit(const JobSpec &spec);

    /**
     * Pause: snapshot to the job's checkpoint file, tear down the
     * runtime, release the admission charge. Blocks until the job is
     * Paused. Fails (returns false, sets @p err) for unknown ids,
     * jobs without a checkpoint_path, or jobs not Queued/Running.
     */
    bool pause(const std::string &id, std::string *err = nullptr);

    /**
     * Resume a Paused — or checkpointed Failed — job: re-admission
     * check, rebuild, bitwise restore. Blocks until the job is
     * Running again (or the re-admission was rejected).
     */
    bool resume(const std::string &id, std::string *err = nullptr);

    /** Snapshot a Running job between steps without pausing it. */
    bool checkpoint(const std::string &id, std::string *err = nullptr);

    /**
     * Cancel: tear down without a snapshot, release the charge.
     * Valid from any non-terminal state.
     */
    bool cancel(const std::string &id, std::string *err = nullptr);

    /** Point-in-time view; GIST_FATALs on unknown ids. */
    JobStatus status(const std::string &id) const;

    /** All jobs, in submission order. */
    std::vector<JobStatus> list() const;

    /** Block until @p id is Paused or terminal. */
    void wait(const std::string &id);

    /** Block until no job is Queued or Running. */
    void waitAll();

    /** Sum of admitted jobs' modeled peaks (the budget in use). */
    std::uint64_t budgetUsedBytes() const;

    const ServeConfig &config() const { return cfg_; }

  private:
    struct Runtime;
    struct Job;

    void schedulerMain();
    /** Next Running job at/after rr_cursor_, nullptr when none. */
    Job *pickRunnable();
    Job *find(const std::string &id);
    const Job *find(const std::string &id) const;
    /** Build @p job's runtime + admission check (scheduler thread). */
    void buildJob(Job &job, std::unique_lock<std::mutex> &lock);
    /** Step @p job steps_per_turn times (scheduler thread). */
    void stepJob(Job &job, std::unique_lock<std::mutex> &lock);
    /** Fold loop records into the job and drop the runtime. */
    void teardown(Job &job, bool snapshot);
    void releaseCharge(Job &job);

    ServeConfig cfg_;
    mutable std::mutex mu_;
    /** Signals job state changes to lifecycle waiters. */
    std::condition_variable cv_;
    /** Wakes the scheduler when work arrives. */
    std::condition_variable work_cv_;
    std::vector<std::unique_ptr<Job>> jobs_; ///< submission order
    size_t rr_cursor_ = 0;
    std::uint64_t budget_used_ = 0;
    bool stop_ = false;
    std::thread scheduler_;
};

} // namespace gist::serve
