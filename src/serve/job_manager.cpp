#include "serve/job_manager.hpp"

#include <stdexcept>
#include <utility>

#include "core/schedule_builder.hpp"
#include "graph/executor.hpp"
#include "models/tiny.hpp"
#include "obs/counters.hpp"
#include "obs/metrics.hpp"
#include "train/dataset.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gist::serve {

namespace {

bool
isTerminal(JobState s)
{
    return s == JobState::Done || s == JobState::Failed ||
           s == JobState::Cancelled || s == JobState::Rejected;
}

bool
apiFail(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
    return false;
}

} // namespace

/**
 * Everything one admitted job owns while live. Jobs share nothing but
 * the process thread pool: per-job registry (executor telemetry +
 * tier counters), per-job metrics sink, per-job dataset/graph/RNG.
 * Destroying the runtime frees the arena, the codec queue and the
 * device pool (a file tier unlinks its spill files).
 */
struct JobManager::Runtime
{
    SyntheticDataset data;
    Graph graph;
    obs::MetricRegistry registry;
    obs::MetricsSink sink;
    std::unique_ptr<Executor> exec;
    std::unique_ptr<Trainer> trainer;
    std::unique_ptr<TrainLoop> loop;

    explicit Runtime(const SyntheticDataset::Spec &dspec)
        : data(dspec)
    {
    }
};

struct JobManager::Job
{
    JobSpec spec;
    JobState state = JobState::Queued;
    std::uint64_t modeled_peak = 0; ///< informational; kept after release
    bool charged = false; ///< modeled_peak is counted in budget_used_
    std::string error;
    /** Epoch records folded in at pause/finish/teardown. */
    std::vector<EpochRecord> records;
    std::int64_t step = 0;
    int epoch = 0;

    /** Scheduler requests (set by API threads under the lock). */
    bool pending_build = false; ///< build the runtime (submit/resume)
    bool build_resume = false;  ///< build restores the checkpoint
    JobState revert_state = JobState::Queued; ///< on a rejected resume
    bool want_pause = false;
    bool want_cancel = false;
    bool want_checkpoint = false;

    /** Admission verdict handshake for submit()/resume(). */
    bool admission_done = false;
    SubmitResult admission;

    std::unique_ptr<Runtime> rt;
};

JobManager::JobManager(ServeConfig config)
    : cfg_(config)
{
    scheduler_ = std::thread([this] { schedulerMain(); });
}

JobManager::~JobManager()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    scheduler_.join();
    // The scheduler exited; tear down whatever is still live.
    for (auto &job : jobs_)
        if (job->rt) {
            job->rt.reset();
            releaseCharge(*job);
            if (!isTerminal(job->state))
                job->state = JobState::Cancelled;
        }
}

JobManager::Job *
JobManager::find(const std::string &id)
{
    for (auto &job : jobs_)
        if (job->spec.id == id)
            return job.get();
    return nullptr;
}

const JobManager::Job *
JobManager::find(const std::string &id) const
{
    for (const auto &job : jobs_)
        if (job->spec.id == id)
            return job.get();
    return nullptr;
}

SubmitResult
JobManager::submit(const JobSpec &spec)
{
    std::unique_lock<std::mutex> lock(mu_);
    SubmitResult bad;
    if (spec.id.empty()) {
        bad.error = "job spec is missing an id";
        return bad;
    }
    if (find(spec.id)) {
        bad.error = "job '" + spec.id + "': duplicate id";
        return bad;
    }
    if (!knownModel(spec.model)) {
        bad.error = "job '" + spec.id + "': unknown model '" + spec.model +
                    "'";
        return bad;
    }
    jobs_.push_back(std::make_unique<Job>());
    Job &job = *jobs_.back();
    job.spec = spec;
    job.pending_build = true;
    job.build_resume = false;
    job.revert_state = JobState::Rejected;
    work_cv_.notify_all();
    cv_.wait(lock, [&] { return job.admission_done; });
    return job.admission;
}

bool
JobManager::pause(const std::string &id, std::string *err)
{
    std::unique_lock<std::mutex> lock(mu_);
    Job *job = find(id);
    if (!job)
        return apiFail(err, "no such job '" + id + "'");
    if (job->spec.checkpoint_path.empty())
        return apiFail(err, "job '" + id +
                                "': no checkpoint_path, cannot pause");
    if (job->state != JobState::Running)
        return apiFail(err, "job '" + id + "': cannot pause while " +
                                jobStateName(job->state));
    job->want_pause = true;
    work_cv_.notify_all();
    cv_.wait(lock, [&] { return job->state != JobState::Running; });
    if (job->state == JobState::Paused)
        return true;
    return apiFail(err, job->error.empty()
                            ? "job '" + id + "': pause did not land"
                            : job->error);
}

bool
JobManager::resume(const std::string &id, std::string *err)
{
    std::unique_lock<std::mutex> lock(mu_);
    Job *job = find(id);
    if (!job)
        return apiFail(err, "no such job '" + id + "'");
    if (job->spec.checkpoint_path.empty())
        return apiFail(err, "job '" + id +
                                "': no checkpoint_path, cannot resume");
    if (job->state != JobState::Paused && job->state != JobState::Failed)
        return apiFail(err, "job '" + id + "': cannot resume while " +
                                jobStateName(job->state));
    job->revert_state = job->state;
    job->state = JobState::Queued;
    job->pending_build = true;
    job->build_resume = true;
    job->admission_done = false;
    work_cv_.notify_all();
    cv_.wait(lock, [&] { return job->admission_done; });
    if (job->admission.admitted)
        return true;
    return apiFail(err, job->admission.error);
}

bool
JobManager::checkpoint(const std::string &id, std::string *err)
{
    std::unique_lock<std::mutex> lock(mu_);
    Job *job = find(id);
    if (!job)
        return apiFail(err, "no such job '" + id + "'");
    if (job->spec.checkpoint_path.empty())
        return apiFail(err, "job '" + id + "': no checkpoint_path");
    if (job->state != JobState::Running)
        return apiFail(err, "job '" + id + "': cannot checkpoint while " +
                                jobStateName(job->state));
    job->want_checkpoint = true;
    work_cv_.notify_all();
    cv_.wait(lock, [&] {
        return !job->want_checkpoint || job->state != JobState::Running;
    });
    if (job->state == JobState::Running || job->state == JobState::Done ||
        job->state == JobState::Paused)
        return true;
    return apiFail(err, job->error.empty()
                            ? "job '" + id + "': checkpoint did not land"
                            : job->error);
}

bool
JobManager::cancel(const std::string &id, std::string *err)
{
    std::unique_lock<std::mutex> lock(mu_);
    Job *job = find(id);
    if (!job)
        return apiFail(err, "no such job '" + id + "'");
    if (isTerminal(job->state))
        return apiFail(err, "job '" + id + "': cannot cancel while " +
                                jobStateName(job->state));
    if (job->state == JobState::Paused) {
        // No runtime is alive; the transition needs no scheduler help.
        job->state = JobState::Cancelled;
        cv_.notify_all();
        return true;
    }
    job->want_cancel = true;
    work_cv_.notify_all();
    cv_.wait(lock, [&] { return isTerminal(job->state); });
    return true;
}

JobStatus
JobManager::status(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const Job *job = find(id);
    if (!job)
        GIST_FATAL("no such job '", id, "'");
    JobStatus out;
    out.id = job->spec.id;
    out.state = job->state;
    out.step = job->step;
    out.epoch = job->epoch;
    out.modeled_peak_bytes = job->modeled_peak;
    out.error = job->error;
    out.records = job->records;
    return out;
}

std::vector<JobStatus>
JobManager::list() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<JobStatus> out;
    for (const auto &job : jobs_) {
        JobStatus st;
        st.id = job->spec.id;
        st.state = job->state;
        st.step = job->step;
        st.epoch = job->epoch;
        st.modeled_peak_bytes = job->modeled_peak;
        st.error = job->error;
        st.records = job->records;
        out.push_back(std::move(st));
    }
    return out;
}

void
JobManager::wait(const std::string &id)
{
    std::unique_lock<std::mutex> lock(mu_);
    Job *job = find(id);
    if (!job)
        GIST_FATAL("no such job '", id, "'");
    cv_.wait(lock, [&] {
        return job->state == JobState::Paused || isTerminal(job->state);
    });
}

void
JobManager::waitAll()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
        for (const auto &job : jobs_)
            if (job->state == JobState::Queued ||
                job->state == JobState::Running)
                return false;
        return true;
    });
}

std::uint64_t
JobManager::budgetUsedBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return budget_used_;
}

void
JobManager::releaseCharge(Job &job)
{
    if (!job.charged)
        return;
    GIST_ASSERT(budget_used_ >= job.modeled_peak,
                "admission bookkeeping underflow");
    budget_used_ -= job.modeled_peak;
    job.charged = false;
}

void
JobManager::teardown(Job &job, bool snapshot)
{
    if (!job.rt)
        return;
    if (snapshot)
        job.rt->loop->checkpointNow(); // may throw; caller handles
    const auto &recs = job.rt->loop->records();
    job.records.insert(job.records.end(), recs.begin(), recs.end());
    job.step = job.rt->loop->globalStep();
    job.epoch = job.rt->loop->epoch();
    job.rt.reset();
}

void
JobManager::buildJob(Job &job, std::unique_lock<std::mutex> &lock)
{
    job.pending_build = false;
    const JobSpec spec = job.spec;
    const bool resume = job.build_resume;
    lock.unlock();

    // Heavy modeling work runs unlocked; only this thread touches the
    // job's runtime, and the POD fields are written under the lock.
    std::string error;
    std::uint64_t peak = 0;
    try {
        peak = modeledPeakBytes(spec);
    } catch (const std::exception &e) {
        error = "job '" + spec.id + "': " + e.what();
    }

    lock.lock();
    std::uint64_t remaining =
        cfg_.global_budget_bytes > 0
            ? cfg_.global_budget_bytes - budget_used_
            : 0;
    if (error.empty() && cfg_.global_budget_bytes > 0 && peak > remaining)
        error = "job '" + spec.id + "': modeled peak " +
                std::to_string(peak) +
                " bytes exceeds remaining global budget " +
                std::to_string(remaining) + " of " +
                std::to_string(cfg_.global_budget_bytes) + " bytes";
    if (!error.empty()) {
        if (job.want_cancel) {
            job.want_cancel = false;
            job.state = JobState::Cancelled;
        } else {
            job.state = resume ? job.revert_state : JobState::Rejected;
        }
        if (!resume)
            job.error = error;
        job.modeled_peak = peak;
        job.admission.admitted = false;
        job.admission.error = error;
        job.admission.modeled_peak_bytes = peak;
        job.admission.budget_remaining_bytes = remaining;
        job.admission_done = true;
        cv_.notify_all();
        return;
    }
    budget_used_ += peak;
    job.modeled_peak = peak;
    job.charged = true;
    lock.unlock();

    std::unique_ptr<Runtime> rt;
    try {
        SyntheticDataset::Spec dspec;
        dspec.num_train = spec.num_train;
        dspec.num_eval = spec.num_eval;
        dspec.seed = spec.dataset_seed;
        rt = std::make_unique<Runtime>(dspec);
        rt->graph = buildModelGraph(spec);
        Rng rng(spec.seed);
        rt->graph.initParams(rng);
        const BuiltSchedule schedule = buildSchedule(rt->graph, spec.gist);
        rt->exec = std::make_unique<Executor>(rt->graph, &rt->registry);
        rt->exec->setJobTag(spec.id);
        applyToExecutor(schedule, *rt->exec);
        rt->trainer = std::make_unique<Trainer>(*rt->exec);
        TrainConfig tc;
        tc.batch_size = spec.batch_size;
        tc.epochs = spec.epochs;
        tc.learning_rate = spec.learning_rate;
        tc.momentum = spec.momentum;
        tc.lr_decay = spec.lr_decay;
        tc.lr_decay_epochs = spec.lr_decay_epochs;
        tc.num_threads = 0; // jobs share the process pool as-is
        tc.metrics_path = spec.metrics_path;
        tc.checkpoint_path = spec.checkpoint_path;
        tc.checkpoint_every_steps = spec.checkpoint_every_steps;
        tc.resume = resume;
        tc.max_steps = spec.max_steps;
        tc.sink = &rt->sink;
        tc.job_id = spec.id;
        rt->loop = std::make_unique<TrainLoop>(*rt->trainer, rt->data, tc);
    } catch (const std::exception &e) {
        rt.reset();
        lock.lock();
        releaseCharge(job);
        job.state = JobState::Failed;
        job.error = "job '" + spec.id + "': " + e.what();
        job.admission.admitted = false;
        job.admission.error = job.error;
        job.admission_done = true;
        cv_.notify_all();
        return;
    }

    lock.lock();
    job.rt = std::move(rt);
    job.step = job.rt->loop->globalStep();
    job.epoch = job.rt->loop->epoch();
    if (job.want_cancel) {
        job.want_cancel = false;
        job.rt.reset();
        releaseCharge(job);
        job.state = JobState::Cancelled;
    } else {
        job.state = JobState::Running;
    }
    job.admission.admitted = true;
    job.admission.error.clear();
    job.admission.modeled_peak_bytes = job.modeled_peak;
    job.admission.budget_remaining_bytes =
        cfg_.global_budget_bytes > 0
            ? cfg_.global_budget_bytes - budget_used_
            : 0;
    job.admission_done = true;
    cv_.notify_all();
}

void
JobManager::stepJob(Job &job, std::unique_lock<std::mutex> &lock)
{
    Runtime *rt = job.rt.get();
    const int quantum = cfg_.steps_per_turn > 0 ? cfg_.steps_per_turn : 1;
    lock.unlock();

    std::string error;
    bool done = false;
    try {
        for (int i = 0; i < quantum && !done; ++i)
            done = !rt->loop->step();
        if (done)
            rt->loop->finish(); // end-of-run snapshot may throw
    } catch (const std::exception &e) {
        error = e.what();
    }

    lock.lock();
    job.step = rt->loop->globalStep();
    job.epoch = rt->loop->epoch();
    if (!error.empty()) {
        job.error = "job '" + job.spec.id + "': " + error;
        teardown(job, /*snapshot=*/false);
        releaseCharge(job);
        job.state = JobState::Failed;
        cv_.notify_all();
    } else if (done) {
        teardown(job, /*snapshot=*/false); // finish() already snapshotted
        releaseCharge(job);
        job.state = JobState::Done;
        cv_.notify_all();
    }
}

JobManager::Job *
JobManager::pickRunnable()
{
    const size_t n = jobs_.size();
    for (size_t k = 0; k < n; ++k) {
        const size_t i = (rr_cursor_ + k) % n;
        Job &job = *jobs_[i];
        if (job.state == JobState::Running && job.rt && !job.want_pause &&
            !job.want_cancel && !job.want_checkpoint) {
            rr_cursor_ = i + 1;
            return &job;
        }
    }
    return nullptr;
}

void
JobManager::schedulerMain()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
        bool worked = false;

        // 1. Runtime builds (new submissions and resume requests), in
        //    submission order. jobs_ can grow while we run unlocked, so
        //    index rather than iterate.
        for (size_t i = 0; i < jobs_.size(); ++i) {
            if (stop_)
                break;
            if (jobs_[i]->pending_build) {
                buildJob(*jobs_[i], lock);
                worked = true;
            }
        }

        // 2. Lifecycle commands, applied between steps.
        for (size_t i = 0; i < jobs_.size() && !stop_; ++i) {
            Job &job = *jobs_[i];
            if (job.want_cancel && !isTerminal(job.state) &&
                !job.pending_build) {
                job.want_cancel = false;
                teardown(job, /*snapshot=*/false);
                releaseCharge(job);
                job.state = JobState::Cancelled;
                cv_.notify_all();
                worked = true;
            } else if (job.want_pause && job.state == JobState::Running) {
                job.want_pause = false;
                try {
                    teardown(job, /*snapshot=*/true);
                    releaseCharge(job);
                    job.state = JobState::Paused;
                } catch (const std::exception &e) {
                    job.error = "job '" + job.spec.id + "': " + e.what();
                    teardown(job, /*snapshot=*/false);
                    releaseCharge(job);
                    job.state = JobState::Failed;
                }
                cv_.notify_all();
                worked = true;
            } else if (job.want_checkpoint &&
                       job.state == JobState::Running) {
                job.want_checkpoint = false;
                try {
                    job.rt->loop->checkpointNow();
                } catch (const std::exception &e) {
                    job.error = "job '" + job.spec.id + "': " + e.what();
                    teardown(job, /*snapshot=*/false);
                    releaseCharge(job);
                    job.state = JobState::Failed;
                }
                cv_.notify_all();
                worked = true;
            } else if (job.want_pause || job.want_checkpoint) {
                // Requested in a state the verb cannot act on anymore
                // (e.g. the job finished first); drop the request so
                // the waiter's predicate can settle.
                job.want_pause = false;
                job.want_checkpoint = false;
                cv_.notify_all();
            }
        }

        // 3. One round-robin turn.
        if (!stop_) {
            if (Job *job = pickRunnable()) {
                stepJob(*job, lock);
                worked = true;
            }
        }

        if (!worked && !stop_) {
            work_cv_.wait(lock, [&] {
                if (stop_)
                    return true;
                for (const auto &job : jobs_)
                    if (job->pending_build || job->want_pause ||
                        job->want_cancel || job->want_checkpoint ||
                        job->state == JobState::Running)
                        return true;
                return false;
            });
        }
    }
}

} // namespace gist::serve
