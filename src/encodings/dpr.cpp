#include "encodings/dpr.hpp"

#include <bit>
#include <cstring>

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace gist {

int
dprValuesPerWord(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp32: return 1;
      case DprFormat::Fp16: return 2;
      case DprFormat::Fp10: return 3;
      case DprFormat::Fp8: return 4;
    }
    GIST_PANIC("bad DprFormat");
}

int
dprBitsPerValue(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp32: return 32;
      case DprFormat::Fp16: return 16;
      case DprFormat::Fp10: return 10;
      case DprFormat::Fp8: return 8;
    }
    GIST_PANIC("bad DprFormat");
}

const SmallFloatFormat &
dprSmallFloat(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp16: return kFp16;
      case DprFormat::Fp10: return kFp10;
      case DprFormat::Fp8: return kFp8;
      case DprFormat::Fp32: break;
    }
    GIST_PANIC("Fp32 has no small-float layout");
}

const char *
dprFormatName(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp32: return "FP32";
      case DprFormat::Fp16: return "FP16";
      case DprFormat::Fp10: return "FP10";
      case DprFormat::Fp8: return "FP8";
    }
    return "?";
}

std::uint64_t
dprEncodedBytes(DprFormat fmt, std::int64_t numel)
{
    const auto per_word =
        static_cast<std::uint64_t>(dprValuesPerWord(fmt));
    return ceilDiv<std::uint64_t>(static_cast<std::uint64_t>(numel),
                                  per_word) * 4;
}

void
DprBuffer::encode(DprFormat fmt, std::span<const float> values)
{
    format_ = fmt;
    numel_ = static_cast<std::int64_t>(values.size());
    const int per_word = dprValuesPerWord(fmt);
    const int bits = dprBitsPerValue(fmt);
    words.assign(ceilDiv<size_t>(values.size(),
                                 static_cast<size_t>(per_word)), 0);

    if (fmt == DprFormat::Fp32) {
        std::memcpy(words.data(), values.data(),
                    values.size() * sizeof(float));
        return;
    }

    const SmallFloatFormat &sf = dprSmallFloat(fmt);
    for (size_t i = 0; i < values.size(); ++i) {
        const std::uint32_t enc = encodeSmallFloat(sf, values[i]);
        const size_t word = i / static_cast<size_t>(per_word);
        const unsigned lane =
            static_cast<unsigned>(i % static_cast<size_t>(per_word));
        words[word] |= enc << (lane * static_cast<unsigned>(bits));
    }
}

void
DprBuffer::decode(std::span<float> out) const
{
    GIST_ASSERT(static_cast<std::int64_t>(out.size()) == numel_,
                "decode target has ", out.size(), " elements, encoded ",
                numel_);
    if (format_ == DprFormat::Fp32) {
        std::memcpy(out.data(), words.data(), out.size() * sizeof(float));
        return;
    }
    const int per_word = dprValuesPerWord(format_);
    const int bits = dprBitsPerValue(format_);
    const std::uint32_t mask = (bits >= 32) ? ~0u : ((1u << bits) - 1);
    const SmallFloatFormat &sf = dprSmallFloat(format_);
    for (size_t i = 0; i < out.size(); ++i) {
        const size_t word = i / static_cast<size_t>(per_word);
        const unsigned lane =
            static_cast<unsigned>(i % static_cast<size_t>(per_word));
        const std::uint32_t enc =
            (words[word] >> (lane * static_cast<unsigned>(bits))) & mask;
        out[i] = decodeSmallFloat(sf, enc);
    }
}

void
DprBuffer::decodeRange(std::int64_t offset, std::span<float> out) const
{
    GIST_ASSERT(offset >= 0 &&
                    offset + static_cast<std::int64_t>(out.size()) <=
                        numel_,
                "decode range [", offset, ", ",
                offset + static_cast<std::int64_t>(out.size()),
                ") exceeds ", numel_, " encoded values");
    if (format_ == DprFormat::Fp32) {
        std::memcpy(out.data(),
                    reinterpret_cast<const float *>(words.data()) +
                        offset,
                    out.size() * sizeof(float));
        return;
    }
    const int per_word = dprValuesPerWord(format_);
    const int bits = dprBitsPerValue(format_);
    const std::uint32_t mask = (bits >= 32) ? ~0u : ((1u << bits) - 1);
    const SmallFloatFormat &sf = dprSmallFloat(format_);
    for (size_t i = 0; i < out.size(); ++i) {
        const auto flat = static_cast<size_t>(offset) + i;
        const size_t word = flat / static_cast<size_t>(per_word);
        const unsigned lane =
            static_cast<unsigned>(flat % static_cast<size_t>(per_word));
        const std::uint32_t enc =
            (words[word] >> (lane * static_cast<unsigned>(bits))) & mask;
        out[i] = decodeSmallFloat(sf, enc);
    }
}

void
DprBuffer::clear()
{
    words.clear();
    words.shrink_to_fit();
    numel_ = 0;
}

void
dprQuantizeInPlace(DprFormat fmt, std::span<float> values)
{
    if (fmt == DprFormat::Fp32)
        return;
    const SmallFloatFormat &sf = dprSmallFloat(fmt);
    for (auto &v : values)
        v = quantizeSmallFloat(sf, v);
}

} // namespace gist
