#include "encodings/dpr.hpp"

#include <bit>
#include <cstring>

#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "simd/sf_codes.hpp"
#include "util/bits.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

namespace {

/** Dispatch-table slot for a packed format (invalid for Fp32). */
int
sfIndexOf(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp16: return simd::kSfFp16;
      case DprFormat::Fp10: return simd::kSfFp10;
      case DprFormat::Fp8: return simd::kSfFp8;
      case DprFormat::Fp32: break;
    }
    GIST_PANIC("Fp32 has no packed codec");
}

} // namespace

int
dprValuesPerWord(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp32: return 1;
      case DprFormat::Fp16: return 2;
      case DprFormat::Fp10: return 3;
      case DprFormat::Fp8: return 4;
    }
    GIST_PANIC("bad DprFormat");
}

int
dprBitsPerValue(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp32: return 32;
      case DprFormat::Fp16: return 16;
      case DprFormat::Fp10: return 10;
      case DprFormat::Fp8: return 8;
    }
    GIST_PANIC("bad DprFormat");
}

const SmallFloatFormat &
dprSmallFloat(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp16: return kFp16;
      case DprFormat::Fp10: return kFp10;
      case DprFormat::Fp8: return kFp8;
      case DprFormat::Fp32: break;
    }
    GIST_PANIC("Fp32 has no small-float layout");
}

const char *
dprFormatName(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp32: return "FP32";
      case DprFormat::Fp16: return "FP16";
      case DprFormat::Fp10: return "FP10";
      case DprFormat::Fp8: return "FP8";
    }
    return "?";
}

std::uint64_t
dprEncodedBytes(DprFormat fmt, std::int64_t numel)
{
    const auto per_word =
        static_cast<std::uint64_t>(dprValuesPerWord(fmt));
    return ceilDiv<std::uint64_t>(static_cast<std::uint64_t>(numel),
                                  per_word) * 4;
}

void
DprBuffer::encode(DprFormat fmt, std::span<const float> values)
{
    GIST_TRACE_SCOPE_F("codec", "dpr encode %s", dprFormatName(fmt));
    format_ = fmt;
    numel_ = static_cast<std::int64_t>(values.size());
    const int per_word = dprValuesPerWord(fmt);
    words.resize(ceilDiv<size_t>(values.size(),
                                 static_cast<size_t>(per_word)));

    if (fmt == DprFormat::Fp32) {
        std::memcpy(words.data(), values.data(),
                    values.size() * sizeof(float));
        return;
    }

    // Parallel over packed words: each word holds per_word lanes, so
    // word-granular chunks hand the SIMD kernel word-aligned disjoint
    // spans. One dispatch per chunk, not per value.
    const auto kernel = simd::ops().sfEncode[sfIndexOf(fmt)];
    const auto nwords = static_cast<std::int64_t>(words.size());
    parallelFor(0, nwords, chooseGrain(nwords, 2048),
                [&, per_word](std::int64_t w0, std::int64_t w1) {
        const std::int64_t base = w0 * per_word;
        const std::int64_t lim =
            std::min<std::int64_t>(w1 * per_word, numel_);
        kernel(values.data() + base, lim - base,
               words.data() + static_cast<size_t>(w0));
    });
}

void
DprBuffer::encodeFromCodes(DprFormat fmt, const std::uint32_t *codes,
                           std::int64_t n)
{
    GIST_TRACE_SCOPE_F("codec", "dpr pack %s", dprFormatName(fmt));
    GIST_ASSERT(fmt != DprFormat::Fp32, "Fp32 has no packed codec");
    format_ = fmt;
    numel_ = n;
    const int per_word = dprValuesPerWord(fmt);
    words.resize(ceilDiv<size_t>(static_cast<size_t>(n),
                                 static_cast<size_t>(per_word)));
    const simd::SfLayout &L = simd::kSfLayouts[sfIndexOf(fmt)];
    const auto nwords = static_cast<std::int64_t>(words.size());
    parallelFor(0, nwords, chooseGrain(nwords, 2048),
                [&, per_word](std::int64_t w0, std::int64_t w1) {
        const std::int64_t base = w0 * per_word;
        const std::int64_t lim = std::min<std::int64_t>(w1 * per_word, n);
        simd::sfPackWords(L, codes + base, lim - base,
                          words.data() + static_cast<size_t>(w0));
    });
}

void
DprBuffer::decode(std::span<float> out) const
{
    GIST_TRACE_SCOPE_F("codec", "dpr decode %s", dprFormatName(format_));
    GIST_ASSERT(static_cast<std::int64_t>(out.size()) == numel_,
                "decode target has ", out.size(), " elements, encoded ",
                numel_);
    if (format_ == DprFormat::Fp32) {
        std::memcpy(out.data(), words.data(), out.size() * sizeof(float));
        return;
    }
    const int per_word = dprValuesPerWord(format_);
    const auto kernel = simd::ops().sfDecode[sfIndexOf(format_)];
    const auto nwords = static_cast<std::int64_t>(words.size());
    parallelFor(0, nwords, chooseGrain(nwords, 2048),
                [&, per_word](std::int64_t w0, std::int64_t w1) {
        const std::int64_t base = w0 * per_word;
        const std::int64_t lim =
            std::min<std::int64_t>(w1 * per_word, numel_);
        kernel(words.data() + static_cast<size_t>(w0), lim - base,
               out.data() + base);
    });
}

void
DprBuffer::decodeRange(std::int64_t offset, std::span<float> out) const
{
    // Tile-wise consumer path ("optimized software"): tiles are small,
    // so this stays serial.
    GIST_ASSERT(offset >= 0 &&
                    offset + static_cast<std::int64_t>(out.size()) <=
                        numel_,
                "decode range [", offset, ", ",
                offset + static_cast<std::int64_t>(out.size()),
                ") exceeds ", numel_, " encoded values");
    if (format_ == DprFormat::Fp32) {
        std::memcpy(out.data(),
                    reinterpret_cast<const float *>(words.data()) +
                        offset,
                    out.size() * sizeof(float));
        return;
    }
    const auto per_word =
        static_cast<std::int64_t>(dprValuesPerWord(format_));
    const int bits = dprBitsPerValue(format_);
    const std::uint32_t mask = (bits >= 32) ? ~0u : ((1u << bits) - 1);
    const int sf_idx = sfIndexOf(format_);
    const simd::SfLayout &L = simd::kSfLayouts[sf_idx];
    const auto n = static_cast<std::int64_t>(out.size());
    // Scalar head up to the next word boundary, then the dispatched
    // whole-span kernel (its contract requires a word-aligned start).
    // Same sfDecodeCode formulas either way, so the split is invisible
    // in the output bits.
    std::int64_t i = 0;
    while (i < n && (offset + i) % per_word != 0) {
        const auto flat = static_cast<size_t>(offset + i);
        const auto word = flat / static_cast<size_t>(per_word);
        const auto lane =
            static_cast<unsigned>(flat % static_cast<size_t>(per_word));
        const std::uint32_t enc =
            (words[word] >> (lane * static_cast<unsigned>(bits))) & mask;
        out[static_cast<size_t>(i)] =
            std::bit_cast<float>(simd::sfDecodeCode(L, enc));
        ++i;
    }
    if (i < n)
        simd::ops().sfDecode[sf_idx](
            words.data() + static_cast<size_t>((offset + i) / per_word),
            n - i, out.data() + i);
}

void
DprBuffer::clear()
{
    words.clear();
    words.shrink_to_fit();
    numel_ = 0;
}

void
DprBuffer::reset()
{
    words.clear(); // capacity retained for the next same-sized encode
    numel_ = 0;
}

namespace {

/**
 * Tier-blob header for DprBuffer. All fields little-endian host order:
 * the blob never leaves the machine that wrote it (the slow tier is a
 * process-local file or memory store), so no cross-endian concern.
 */
struct DprBlobHeader
{
    std::uint32_t format;
    std::uint32_t reserved;
    std::int64_t numel;
    std::uint64_t word_count;
};

} // namespace

std::uint64_t
DprBuffer::serializedBytes() const
{
    return sizeof(DprBlobHeader) + words.size() * 4;
}

void
DprBuffer::serialize(std::uint8_t *dst) const
{
    DprBlobHeader h;
    h.format = static_cast<std::uint32_t>(format_);
    h.reserved = 0;
    h.numel = numel_;
    h.word_count = words.size();
    std::memcpy(dst, &h, sizeof(h));
    if (!words.empty())
        std::memcpy(dst + sizeof(h), words.data(), words.size() * 4);
}

void
DprBuffer::deserialize(const std::uint8_t *src, std::uint64_t bytes)
{
    GIST_ASSERT(bytes >= sizeof(DprBlobHeader), "DPR tier blob truncated: ",
                bytes, " bytes");
    DprBlobHeader h;
    std::memcpy(&h, src, sizeof(h));
    GIST_ASSERT(bytes == sizeof(h) + h.word_count * 4,
                "DPR tier blob size mismatch: ", bytes, " bytes for ",
                h.word_count, " words");
    format_ = static_cast<DprFormat>(h.format);
    numel_ = h.numel;
    words.resize(h.word_count);
    if (h.word_count > 0)
        std::memcpy(words.data(), src + sizeof(h), h.word_count * 4);
}

void
dprQuantizeInPlace(DprFormat fmt, std::span<float> values)
{
    if (fmt == DprFormat::Fp32)
        return;
    const auto kernel = simd::ops().sfQuantize[sfIndexOf(fmt)];
    const auto n = static_cast<std::int64_t>(values.size());
    parallelFor(0, n, chooseGrain(n, 4096),
                [&](std::int64_t lo, std::int64_t hi) {
                    kernel(values.data() + lo, hi - lo);
                });
}

} // namespace gist
