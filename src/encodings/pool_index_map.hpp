/**
 * @file
 * The MaxPool Y->X argmax map (Section IV-A, Binarize): instead of
 * stashing the pool layer's full input and output feature maps, record,
 * for each pool *output* element, which position inside the sliding
 * window held the maximum. The paper stores this in 4 bits per output
 * element (largest window in its suite is 3x3 = 9 positions); we fall
 * back to 8 bits for windows larger than 16 taps.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gist {

/** Bits per entry for a kh x kw window (4, or 8 for huge windows). */
int poolIndexBits(std::int64_t kernel_h, std::int64_t kernel_w);

/** Encoded size in bytes for @p numel pool outputs. */
std::uint64_t poolIndexMapBytes(std::int64_t numel, std::int64_t kernel_h,
                                std::int64_t kernel_w);

/** Packed per-output argmax window positions. */
class PoolIndexMap
{
  public:
    PoolIndexMap() = default;

    /** Size for @p numel outputs of a kh x kw window. */
    void configure(std::int64_t numel, std::int64_t kernel_h,
                   std::int64_t kernel_w);

    /** Record that output @p i took its max from window position @p pos. */
    void set(std::int64_t i, std::int64_t pos);

    /** Window position (row-major kh*kw index) for output @p i. */
    std::int64_t get(std::int64_t i) const;

    std::int64_t numel() const { return numel_; }
    int bitsPerEntry() const { return bits_per_entry; }
    std::uint64_t bytes() const { return packed.size(); }

    /** Drop the storage. */
    void clear();

  private:
    std::int64_t numel_ = 0;
    int bits_per_entry = 4;
    std::vector<std::uint8_t> packed;
};

} // namespace gist
