#include "encodings/small_float.hpp"

#include <bit>

#include "simd/sf_codes.hpp"
#include "util/logging.hpp"

namespace gist {

namespace {

/**
 * Bridge to the branchless conversion core in simd/sf_codes.hpp, which
 * is the single source of truth for the conversion formulas (the SIMD
 * backends lane-lift the same code, so scalar and vector paths cannot
 * drift apart). Works for any format with 2..8 exponent and 1..22
 * mantissa bits; the per-word packing fields are unused here.
 */
simd::SfLayout
layoutOf(const SmallFloatFormat &fmt)
{
    GIST_ASSERT(fmt.exp_bits >= 2 && fmt.exp_bits <= 8 &&
                    fmt.man_bits >= 1 && fmt.man_bits < 23,
                "unsupported small-float layout");
    return simd::SfLayout{ fmt.exp_bits,
                           fmt.man_bits,
                           fmt.bias(),
                           fmt.maxExpField(),
                           32u / fmt.totalBits(),
                           fmt.totalBits() };
}

} // namespace

float
SmallFloatFormat::maxFinite() const
{
    const std::uint32_t bits =
        (static_cast<std::uint32_t>(maxExpField()) << man_bits) |
        ((1u << man_bits) - 1);
    return decodeSmallFloat(*this, bits);
}

float
SmallFloatFormat::minNormal() const
{
    return decodeSmallFloat(*this, 1u << man_bits);
}

std::uint32_t
encodeSmallFloat(const SmallFloatFormat &fmt, float value)
{
    // NaN encodes as zero (should not occur in sane training); +/-inf
    // and out-of-range values clamp to the max finite value, denormals
    // and underflow flush to signed zero, matching the paper's
    // ignore-the-corners semantics.
    return simd::sfEncodeCode(layoutOf(fmt),
                              std::bit_cast<std::uint32_t>(value));
}

float
decodeSmallFloat(const SmallFloatFormat &fmt, std::uint32_t bits)
{
    const std::uint32_t e_field =
        (bits >> fmt.man_bits) & ((1u << fmt.exp_bits) - 1);
    GIST_ASSERT(e_field <= static_cast<std::uint32_t>(fmt.maxExpField()),
                "reserved exponent field in small-float pattern");
    return std::bit_cast<float>(simd::sfDecodeCode(layoutOf(fmt), bits));
}

float
quantizeSmallFloat(const SmallFloatFormat &fmt, float value)
{
    return decodeSmallFloat(fmt, encodeSmallFloat(fmt, value));
}

} // namespace gist
