#include "encodings/small_float.hpp"

#include <bit>
#include <cmath>

#include "util/logging.hpp"

namespace gist {

namespace {

constexpr std::uint32_t kF32ExpMask = 0xff;
constexpr std::uint32_t kF32ManBits = 23;

} // namespace

float
SmallFloatFormat::maxFinite() const
{
    const std::uint32_t bits =
        (static_cast<std::uint32_t>(maxExpField()) << man_bits) |
        ((1u << man_bits) - 1);
    return decodeSmallFloat(*this, bits);
}

float
SmallFloatFormat::minNormal() const
{
    return decodeSmallFloat(*this, 1u << man_bits);
}

std::uint32_t
encodeSmallFloat(const SmallFloatFormat &fmt, float value)
{
    const unsigned e_bits = fmt.exp_bits;
    const unsigned m_bits = fmt.man_bits;
    const std::uint32_t u = std::bit_cast<std::uint32_t>(value);
    const std::uint32_t sign = u >> 31;
    const std::uint32_t f32_exp = (u >> kF32ManBits) & kF32ExpMask;
    const std::uint32_t f32_man = u & ((1u << kF32ManBits) - 1);
    const std::uint32_t sign_shifted = sign << (e_bits + m_bits);

    const std::uint32_t max_exp_field =
        static_cast<std::uint32_t>(fmt.maxExpField());
    const std::uint32_t max_finite_bits =
        sign_shifted | (max_exp_field << m_bits) | ((1u << m_bits) - 1);

    if (f32_exp == kF32ExpMask) {
        // NaN encodes as zero (should not occur in sane training); +/-inf
        // clamps to the max finite value, matching the paper's clamping.
        if (f32_man != 0)
            return 0;
        return max_finite_bits;
    }
    if (f32_exp == 0) {
        // FP32 zero or denormal: far below any target minNormal.
        return sign_shifted;
    }

    // Round the 24-bit significand (implicit leading 1) to m_bits with
    // round-to-nearest-even.
    const unsigned shift = kF32ManBits - m_bits;
    const std::uint32_t frac24 = (1u << kF32ManBits) | f32_man;
    const std::uint32_t half = 1u << (shift - 1);
    const std::uint32_t low = frac24 & ((1u << shift) - 1);
    std::uint32_t t = frac24 >> shift;
    if (low > half || (low == half && (t & 1)))
        ++t;

    int e = static_cast<int>(f32_exp) - 127;
    if (t == (2u << m_bits)) { // mantissa carry: 10.0...0
        t >>= 1;
        ++e;
    }

    const int e_field = e + fmt.bias();
    if (e_field > static_cast<int>(max_exp_field))
        return max_finite_bits; // clamp to range
    if (e_field <= 0)
        return sign_shifted; // denormal range: flush to zero

    const std::uint32_t man_t = t & ((1u << m_bits) - 1);
    return sign_shifted |
           (static_cast<std::uint32_t>(e_field) << m_bits) | man_t;
}

float
decodeSmallFloat(const SmallFloatFormat &fmt, std::uint32_t bits)
{
    const unsigned e_bits = fmt.exp_bits;
    const unsigned m_bits = fmt.man_bits;
    const std::uint32_t sign = (bits >> (e_bits + m_bits)) & 1;
    const std::uint32_t e_field = (bits >> m_bits) & ((1u << e_bits) - 1);
    const std::uint32_t man = bits & ((1u << m_bits) - 1);

    if (e_field == 0) {
        // Zero, or a denormal pattern (never produced by our encoder):
        // denormals are ignored per the paper, so flush to signed zero.
        return std::bit_cast<float>(sign << 31);
    }
    GIST_ASSERT(e_field <= static_cast<std::uint32_t>(fmt.maxExpField()),
                "reserved exponent field in small-float pattern");

    const std::uint32_t f32_exp =
        static_cast<std::uint32_t>(static_cast<int>(e_field) - fmt.bias() +
                                   127);
    const std::uint32_t f32_man = man << (kF32ManBits - m_bits);
    return std::bit_cast<float>((sign << 31) | (f32_exp << kF32ManBits) |
                                f32_man);
}

float
quantizeSmallFloat(const SmallFloatFormat &fmt, float value)
{
    return decodeSmallFloat(fmt, encodeSmallFloat(fmt, value));
}

} // namespace gist
