/**
 * @file
 * Reduced-precision floating-point codecs for Delayed Precision Reduction.
 *
 * The paper's three storage formats (Section IV-A, "Lossy Encoding"):
 *   FP16: 1 sign, 5 exponent, 10 mantissa (IEEE half precision)
 *   FP10: 1 sign, 5 exponent,  4 mantissa
 *   FP8 : 1 sign, 4 exponent,  3 mantissa
 *
 * Conversion semantics follow the paper: round-to-nearest(-even), clamp to
 * the format's max/min finite value when the FP32 value is out of range,
 * and denormalized numbers are ignored (flushed to zero). The all-ones
 * exponent field is reserved (IEEE-style), so FP16 matches IEEE half
 * exactly for normal values.
 */

#pragma once

#include <cstdint>

namespace gist {

/** Bit layout of a small floating-point storage format. */
struct SmallFloatFormat
{
    unsigned exp_bits;
    unsigned man_bits;

    constexpr unsigned totalBits() const { return 1 + exp_bits + man_bits; }
    constexpr int bias() const { return (1 << (exp_bits - 1)) - 1; }
    /** Largest usable (biased) exponent field; all-ones is reserved. */
    constexpr int maxExpField() const { return (1 << exp_bits) - 2; }

    /** Largest finite magnitude representable. */
    float maxFinite() const;
    /** Smallest positive normal magnitude. */
    float minNormal() const;
};

/** The three formats the paper evaluates. */
inline constexpr SmallFloatFormat kFp16{ 5, 10 };
inline constexpr SmallFloatFormat kFp10{ 5, 4 };
inline constexpr SmallFloatFormat kFp8{ 4, 3 };

/**
 * Encode an FP32 value into the small format's bit pattern
 * (right-aligned in the returned word).
 */
std::uint32_t encodeSmallFloat(const SmallFloatFormat &fmt, float value);

/** Decode a small-format bit pattern back to FP32 (exact). */
float decodeSmallFloat(const SmallFloatFormat &fmt, std::uint32_t bits);

/** Shorthand for decode(encode(x)): the value as stored-and-recovered. */
float quantizeSmallFloat(const SmallFloatFormat &fmt, float value);

} // namespace gist
