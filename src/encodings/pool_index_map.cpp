#include "encodings/pool_index_map.hpp"

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace gist {

int
poolIndexBits(std::int64_t kernel_h, std::int64_t kernel_w)
{
    const std::int64_t window = kernel_h * kernel_w;
    GIST_ASSERT(window >= 1 && window <= 256, "unsupported pool window ",
                kernel_h, "x", kernel_w);
    return window <= 16 ? 4 : 8;
}

std::uint64_t
poolIndexMapBytes(std::int64_t numel, std::int64_t kernel_h,
                  std::int64_t kernel_w)
{
    const auto bits = static_cast<std::uint64_t>(
        poolIndexBits(kernel_h, kernel_w));
    return bytesForBits(static_cast<std::uint64_t>(numel) * bits);
}

void
PoolIndexMap::configure(std::int64_t numel, std::int64_t kernel_h,
                        std::int64_t kernel_w)
{
    numel_ = numel;
    bits_per_entry = poolIndexBits(kernel_h, kernel_w);
    packed.assign(
        static_cast<size_t>(poolIndexMapBytes(numel, kernel_h, kernel_w)),
        0);
}

void
PoolIndexMap::set(std::int64_t i, std::int64_t pos)
{
    GIST_ASSERT(i >= 0 && i < numel_, "pool map index out of range");
    GIST_ASSERT(pos >= 0 && pos < (1 << bits_per_entry),
                "window position ", pos, " exceeds ", bits_per_entry,
                " bits");
    if (bits_per_entry == 8) {
        packed[static_cast<size_t>(i)] = static_cast<std::uint8_t>(pos);
        return;
    }
    const auto idx = static_cast<size_t>(i >> 1);
    if (i & 1) {
        packed[idx] = static_cast<std::uint8_t>(
            (packed[idx] & 0x0f) | (static_cast<unsigned>(pos) << 4));
    } else {
        packed[idx] = static_cast<std::uint8_t>(
            (packed[idx] & 0xf0) | static_cast<unsigned>(pos));
    }
}

std::int64_t
PoolIndexMap::get(std::int64_t i) const
{
    GIST_ASSERT(i >= 0 && i < numel_, "pool map index out of range");
    if (bits_per_entry == 8)
        return packed[static_cast<size_t>(i)];
    const std::uint8_t byte = packed[static_cast<size_t>(i >> 1)];
    return (i & 1) ? (byte >> 4) : (byte & 0x0f);
}

void
PoolIndexMap::clear()
{
    packed.clear();
    packed.shrink_to_fit();
    numel_ = 0;
}

} // namespace gist
