/**
 * @file
 * Sparse Storage and Dense Compute (SSDC): stash ReLU/Pool outputs headed
 * into a convolution in CSR form, and decode back to dense FP32 right
 * before the conv backward pass runs (Section IV-A).
 *
 * Narrow Value Optimization: the flattened feature map is logically
 * reshaped to a matrix with at most 256 columns so every column index fits
 * in one byte. That drops the per-nonzero overhead from 8 bytes (4-byte
 * cuSPARSE index + 4-byte value) to 5 bytes, moving the break-even
 * sparsity for compression from 50% down to 20%.
 *
 * The CSR values array may additionally be stored with DPR (the paper
 * applies DPR over SSDC); the index arrays are never lossy-compressed
 * because they affect control.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "encodings/dpr.hpp"

namespace gist {

/** CSR layout parameters. */
struct CsrConfig
{
    /** Logical row width after the narrow-value reshape. */
    std::int64_t row_width = 256;
    /** Bytes per column index (1 = narrow optimization, 4 = cuSPARSE). */
    int index_bytes = 1;
    /** Optional lossy compression of the values array. */
    DprFormat value_format = DprFormat::Fp32;
};

/**
 * Analytic encoded size in bytes for @p numel values at @p sparsity
 * (fraction of zeros), used by the memory planner.
 */
std::uint64_t csrBytesForSparsity(const CsrConfig &cfg, std::int64_t numel,
                                  double sparsity);

/** Sparsity above which CSR is smaller than dense FP32 (the break-even). */
double csrBreakEvenSparsity(const CsrConfig &cfg);

/**
 * Zero-copy read view of a CsrBuffer for fused consumers (gemmCsrA,
 * im2colFromCsr): they walk row_ptr/col_idx directly instead of paying a
 * decode-to-dense round trip. Valid only while the owning buffer holds
 * its encoded contents.
 */
struct CsrConstView
{
    const std::uint32_t *row_ptr = nullptr; ///< rows + 1 offsets
    const std::uint8_t *col_idx = nullptr;  ///< index_bytes each, LE
    const float *values_f32 = nullptr;      ///< null when DPR-packed
    const DprBuffer *values_dpr = nullptr;  ///< null when FP32 values
    std::int64_t rows = 0;
    std::int64_t row_width = 0;
    int index_bytes = 1;
    std::int64_t numel = 0;
    std::int64_t nnz = 0;
};

/** Column of the @p k-th nonzero (its in-row index). */
inline std::uint32_t
csrColAt(const CsrConstView &v, std::int64_t k)
{
    std::uint32_t col = 0;
    for (int b = 0; b < v.index_bytes; ++b)
        col |= static_cast<std::uint32_t>(
                   v.col_idx[static_cast<size_t>(k) *
                                 static_cast<size_t>(v.index_bytes) +
                             static_cast<size_t>(b)])
               << (8 * b);
    return col;
}

/** Decode the nonzero-value slice [k0, k1) of @p v into @p out. */
void csrValues(const CsrConstView &v, std::int64_t k0, std::int64_t k1,
               float *out);

/** A CSR-encoded (flattened) feature map. */
class CsrBuffer
{
  public:
    CsrBuffer() = default;
    explicit CsrBuffer(CsrConfig cfg) : config(cfg) {}

    /** Encode @p values (replaces previous contents). */
    void encode(std::span<const float> values);

    /** Decode into @p out (must have numel() elements). */
    void decode(std::span<float> out) const;

    /**
     * Decode the value range [offset, offset + out.size()) — tile-wise
     * decode for "optimized software" consumers (paper Section V-H).
     * The range may start/end mid-row.
     */
    void decodeRange(std::int64_t offset, std::span<float> out) const;

    std::int64_t numel() const { return numel_; }
    std::int64_t nnz() const { return nnz_; }

    /** Encoded footprint: values + column indices + row pointers. */
    std::uint64_t bytes() const;

    /** Dense FP32 bytes / encoded bytes. */
    double compressionRatio() const;

    const CsrConfig &cfg() const { return config; }

    /** Read view for fused (decode-free) consumers. */
    CsrConstView view() const;

    /**
     * Swap in a new layout while keeping the allocated storage, so the
     * executor can retarget a stash buffer every step without the
     * construct-and-destroy churn of a fresh CsrBuffer. Forgets any
     * encoded contents.
     */
    void setConfig(const CsrConfig &cfg);

    /**
     * Byte-exact blob round trip for the slow-tier swap path: restores
     * the config, shape and all three arrays (values nested through
     * DprBuffer::serialize when DPR-packed) bit-for-bit.
     */
    std::uint64_t serializedBytes() const;
    /** Write serializedBytes() bytes of blob into @p dst. */
    void serialize(std::uint8_t *dst) const;
    /** Restore from a serialize()d blob (replaces any contents). */
    void deserialize(const std::uint8_t *src, std::uint64_t bytes);

    /** Drop the storage. */
    void clear();

    /** Forget contents, keep capacity (stash reuse across steps). */
    void reset();

  private:
    CsrConfig config;
    std::int64_t numel_ = 0;
    std::int64_t nnz_ = 0;
    std::vector<std::uint32_t> row_ptr;
    std::vector<std::uint8_t> col_idx; ///< index_bytes per entry, packed LE
    std::vector<float> values_f32;     ///< used when value_format == Fp32
    DprBuffer values_dpr;              ///< used otherwise
};

} // namespace gist
