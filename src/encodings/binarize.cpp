#include "encodings/binarize.hpp"

#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "util/bits.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

std::uint64_t
binarizeBytes(std::int64_t numel)
{
    return bytesForBits(static_cast<std::uint64_t>(numel));
}

void
BinarizedMask::encode(std::span<const float> values)
{
    GIST_TRACE_SCOPE("codec", "binarize encode");
    numel_ = static_cast<std::int64_t>(values.size());
    bits.resize(static_cast<size_t>(binarizeBytes(numel_)));
    // Parallel over output *bytes*: each byte packs 8 input values, so
    // byte-granular chunks never share a write target. The SIMD kernel
    // (compare + movemask) fills every byte of its span.
    const auto kernel = simd::ops().binarizeEncode;
    const auto nbytes = static_cast<std::int64_t>(bits.size());
    parallelFor(0, nbytes, chooseGrain(nbytes, 1024),
                [&](std::int64_t b0, std::int64_t b1) {
        const std::int64_t base = b0 * 8;
        const std::int64_t lim = std::min<std::int64_t>(b1 * 8, numel_);
        kernel(values.data() + base, lim - base,
               bits.data() + static_cast<size_t>(b0));
    });
}

void
BinarizedMask::resize(std::int64_t numel)
{
    numel_ = numel;
    bits.assign(static_cast<size_t>(binarizeBytes(numel)), 0);
}

void
BinarizedMask::set(std::int64_t i, bool value)
{
    GIST_ASSERT(i >= 0 && i < numel_, "mask index out of range");
    const auto idx = static_cast<size_t>(i);
    if (value)
        bits[idx >> 3] |= static_cast<std::uint8_t>(1u << (idx & 7));
    else
        bits[idx >> 3] &= static_cast<std::uint8_t>(~(1u << (idx & 7)));
}

bool
BinarizedMask::positive(std::int64_t i) const
{
    GIST_ASSERT(i >= 0 && i < numel_, "mask index out of range");
    const auto idx = static_cast<size_t>(i);
    return (bits[idx >> 3] >> (idx & 7)) & 1;
}

void
BinarizedMask::reluBackward(std::span<const float> dy,
                            std::span<float> dx) const
{
    GIST_ASSERT(static_cast<std::int64_t>(dy.size()) == numel_ &&
                    dy.size() == dx.size(),
                "relu backward size mismatch");
    // Chunks are 8-aligned (align=8), so each starts on a byte boundary
    // of the mask and the kernel's bit 0 lines up with value lo.
    const auto kernel = simd::ops().binarizeBackward;
    const auto n = static_cast<std::int64_t>(dy.size());
    parallelFor(0, n, chooseGrain(n, 4096, /*align=*/8),
                [&](std::int64_t lo, std::int64_t hi) {
                    kernel(bits.data() + (lo >> 3), dy.data() + lo,
                           hi - lo, dx.data() + lo);
                });
}

void
BinarizedMask::clear()
{
    bits.clear();
    bits.shrink_to_fit();
    numel_ = 0;
}

void
BinarizedMask::reset()
{
    bits.clear(); // capacity retained for the next same-sized encode
    numel_ = 0;
}

} // namespace gist
