#include "encodings/binarize.hpp"

#include "obs/trace.hpp"
#include "util/bits.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

std::uint64_t
binarizeBytes(std::int64_t numel)
{
    return bytesForBits(static_cast<std::uint64_t>(numel));
}

void
BinarizedMask::encode(std::span<const float> values)
{
    GIST_TRACE_SCOPE("codec", "binarize encode");
    numel_ = static_cast<std::int64_t>(values.size());
    bits.assign(static_cast<size_t>(binarizeBytes(numel_)), 0);
    // Parallel over output *bytes*: each byte packs 8 input values, so
    // byte-granular chunks never share a write target.
    const auto nbytes = static_cast<std::int64_t>(bits.size());
    parallelFor(0, nbytes, chooseGrain(nbytes, 1024),
                [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t byte = b0; byte < b1; ++byte) {
            const std::int64_t base = byte * 8;
            const std::int64_t lim = std::min<std::int64_t>(base + 8,
                                                            numel_);
            std::uint8_t acc = 0;
            for (std::int64_t i = base; i < lim; ++i) {
                if (values[static_cast<size_t>(i)] > 0.0f)
                    acc |= static_cast<std::uint8_t>(1u << (i - base));
            }
            bits[static_cast<size_t>(byte)] = acc;
        }
    });
}

void
BinarizedMask::resize(std::int64_t numel)
{
    numel_ = numel;
    bits.assign(static_cast<size_t>(binarizeBytes(numel)), 0);
}

void
BinarizedMask::set(std::int64_t i, bool value)
{
    GIST_ASSERT(i >= 0 && i < numel_, "mask index out of range");
    const auto idx = static_cast<size_t>(i);
    if (value)
        bits[idx >> 3] |= static_cast<std::uint8_t>(1u << (idx & 7));
    else
        bits[idx >> 3] &= static_cast<std::uint8_t>(~(1u << (idx & 7)));
}

bool
BinarizedMask::positive(std::int64_t i) const
{
    GIST_ASSERT(i >= 0 && i < numel_, "mask index out of range");
    const auto idx = static_cast<size_t>(i);
    return (bits[idx >> 3] >> (idx & 7)) & 1;
}

void
BinarizedMask::reluBackward(std::span<const float> dy,
                            std::span<float> dx) const
{
    GIST_ASSERT(static_cast<std::int64_t>(dy.size()) == numel_ &&
                    dy.size() == dx.size(),
                "relu backward size mismatch");
    const auto n = static_cast<std::int64_t>(dy.size());
    parallelFor(0, n, chooseGrain(n, 4096, /*align=*/8),
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i) {
                        const auto s = static_cast<size_t>(i);
                        const bool pos = (bits[s >> 3] >> (s & 7)) & 1;
                        dx[s] = pos ? dy[s] : 0.0f;
                    }
                });
}

void
BinarizedMask::clear()
{
    bits.clear();
    bits.shrink_to_fit();
    numel_ = 0;
}

} // namespace gist
