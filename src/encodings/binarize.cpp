#include "encodings/binarize.hpp"

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace gist {

std::uint64_t
binarizeBytes(std::int64_t numel)
{
    return bytesForBits(static_cast<std::uint64_t>(numel));
}

void
BinarizedMask::encode(std::span<const float> values)
{
    numel_ = static_cast<std::int64_t>(values.size());
    bits.assign(static_cast<size_t>(binarizeBytes(numel_)), 0);
    for (size_t i = 0; i < values.size(); ++i) {
        if (values[i] > 0.0f)
            bits[i >> 3] |= static_cast<std::uint8_t>(1u << (i & 7));
    }
}

void
BinarizedMask::resize(std::int64_t numel)
{
    numel_ = numel;
    bits.assign(static_cast<size_t>(binarizeBytes(numel)), 0);
}

void
BinarizedMask::set(std::int64_t i, bool value)
{
    GIST_ASSERT(i >= 0 && i < numel_, "mask index out of range");
    const auto idx = static_cast<size_t>(i);
    if (value)
        bits[idx >> 3] |= static_cast<std::uint8_t>(1u << (idx & 7));
    else
        bits[idx >> 3] &= static_cast<std::uint8_t>(~(1u << (idx & 7)));
}

bool
BinarizedMask::positive(std::int64_t i) const
{
    GIST_ASSERT(i >= 0 && i < numel_, "mask index out of range");
    const auto idx = static_cast<size_t>(i);
    return (bits[idx >> 3] >> (idx & 7)) & 1;
}

void
BinarizedMask::reluBackward(std::span<const float> dy,
                            std::span<float> dx) const
{
    GIST_ASSERT(static_cast<std::int64_t>(dy.size()) == numel_ &&
                    dy.size() == dx.size(),
                "relu backward size mismatch");
    for (size_t i = 0; i < dy.size(); ++i) {
        const bool pos = (bits[i >> 3] >> (i & 7)) & 1;
        dx[i] = pos ? dy[i] : 0.0f;
    }
}

void
BinarizedMask::clear()
{
    bits.clear();
    bits.shrink_to_fit();
    numel_ = 0;
}

} // namespace gist
