/**
 * @file
 * Delayed Precision Reduction (DPR): pack an FP32 buffer into 4-byte words
 * holding 2 x FP16, 3 x FP10 (2 bits unused), or 4 x FP8 values — the
 * paper's packed storage layout. Encoding happens after the last forward
 * use of a stashed feature map; decoding happens right before its backward
 * use, so the forward pass always computes on full-precision values.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "encodings/small_float.hpp"

namespace gist {

/** DPR storage width choices evaluated in the paper. */
enum class DprFormat { Fp32, Fp16, Fp10, Fp8 };

/** Values packed into each 4-byte word (1 for Fp32 passthrough). */
int dprValuesPerWord(DprFormat fmt);

/** Bits per stored value (32, 16, 10, 8). */
int dprBitsPerValue(DprFormat fmt);

/** The underlying small-float layout; invalid for Fp32. */
const SmallFloatFormat &dprSmallFloat(DprFormat fmt);

/** Human-readable name ("FP16" ...). */
const char *dprFormatName(DprFormat fmt);

/** Encoded size in bytes for @p numel values. */
std::uint64_t dprEncodedBytes(DprFormat fmt, std::int64_t numel);

class DprBuffer;

/**
 * Non-owning pack-callback view of a DprBuffer: fused consumers (GEMM
 * B-tile packing, im2col strip decode) pull value ranges straight into
 * their pack buffers instead of ever materializing the full dense FP32
 * copy. Decoded values are bitwise-identical to decode()'s.
 */
struct DprPackView
{
    const DprBuffer *buf = nullptr;
    void operator()(std::int64_t offset, float *dst, std::int64_t n) const;
};

/** A DPR-encoded buffer. */
class DprBuffer
{
  public:
    DprBuffer() = default;

    /** Encode @p values; replaces any previous contents. */
    void encode(DprFormat fmt, std::span<const float> values);

    /**
     * Encode from pre-converted small-float codes (one code per uint32),
     * so callers that already ran the convert stage — the fused
     * CSR-of-DPR fill quantizes during nonzero compaction — only pay the
     * word packing here. Bitwise-identical to encode() on the values the
     * codes came from. Invalid for Fp32.
     */
    void encodeFromCodes(DprFormat fmt, const std::uint32_t *codes,
                         std::int64_t n);

    /** Decode all values into @p out (out.size() must equal numel()). */
    void decode(std::span<float> out) const;

    /**
     * Decode the value range [offset, offset + out.size()) — the
     * building block of "optimized software" (paper Section V-H):
     * consumers decode just the tile they are about to compute on
     * instead of materializing the full FP32 buffer.
     */
    void decodeRange(std::int64_t offset, std::span<float> out) const;

    /** Pack-callback view over decodeRange for fused consumers. */
    DprPackView packView() const { return { this }; }

    std::int64_t numel() const { return numel_; }
    DprFormat format() const { return format_; }
    std::uint64_t bytes() const { return words.size() * 4; }

    /**
     * Byte-exact blob round trip for the slow-tier swap path: the blob
     * restores format, numel and the packed words bit-for-bit, so a
     * decode after deserialize() equals a decode of the original.
     */
    std::uint64_t serializedBytes() const;
    /** Write serializedBytes() bytes of blob into @p dst. */
    void serialize(std::uint8_t *dst) const;
    /** Restore from a serialize()d blob (replaces any contents). */
    void deserialize(const std::uint8_t *src, std::uint64_t bytes);

    /** Drop the storage and return its memory to the heap. */
    void clear();

    /**
     * Forget the contents but keep the capacity, so re-encoding a
     * same-sized tensor next step allocates nothing. Stash buffers that
     * live across minibatches reset(); buffers being retired for good
     * clear().
     */
    void reset();

  private:
    DprFormat format_ = DprFormat::Fp32;
    std::int64_t numel_ = 0;
    std::vector<std::uint32_t> words;
};

inline void
DprPackView::operator()(std::int64_t offset, float *dst,
                        std::int64_t n) const
{
    buf->decodeRange(offset, { dst, static_cast<size_t>(n) });
}

/** Quantize in place: x <- decode(encode(x)). Used by the All-FP16 arm. */
void dprQuantizeInPlace(DprFormat fmt, std::span<float> values);

} // namespace gist
