#include "encodings/csr.hpp"

#include <cmath>
#include <cstring>

#include "memory/arena.hpp"
#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "simd/sf_codes.hpp"
#include "util/bits.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

namespace {

/** Dispatch-table slot for a packed value format (invalid for Fp32). */
int
sfIndexFor(DprFormat fmt)
{
    switch (fmt) {
      case DprFormat::Fp16: return simd::kSfFp16;
      case DprFormat::Fp10: return simd::kSfFp10;
      case DprFormat::Fp8: return simd::kSfFp8;
      case DprFormat::Fp32: break;
    }
    GIST_PANIC("Fp32 has no packed codec");
}

void
checkConfig(const CsrConfig &cfg)
{
    GIST_ASSERT(cfg.row_width > 0, "row width must be positive");
    GIST_ASSERT(cfg.index_bytes == 1 || cfg.index_bytes == 2 ||
                    cfg.index_bytes == 4,
                "index bytes must be 1, 2 or 4");
    const std::int64_t max_width = std::int64_t{1}
                                   << (8 * cfg.index_bytes);
    GIST_ASSERT(cfg.row_width <= max_width, "row width ", cfg.row_width,
                " does not fit in ", cfg.index_bytes, "-byte indices");
}

std::uint64_t
csrBytes(const CsrConfig &cfg, std::int64_t numel, std::int64_t nnz)
{
    const std::uint64_t rows = ceilDiv<std::uint64_t>(
        static_cast<std::uint64_t>(numel),
        static_cast<std::uint64_t>(cfg.row_width));
    const std::uint64_t value_bytes =
        (cfg.value_format == DprFormat::Fp32)
            ? static_cast<std::uint64_t>(nnz) * 4
            : dprEncodedBytes(cfg.value_format, nnz);
    return value_bytes +
           static_cast<std::uint64_t>(nnz) *
               static_cast<std::uint64_t>(cfg.index_bytes) +
           (rows + 1) * 4;
}

} // namespace

std::uint64_t
csrBytesForSparsity(const CsrConfig &cfg, std::int64_t numel,
                    double sparsity)
{
    checkConfig(cfg);
    GIST_ASSERT(sparsity >= 0.0 && sparsity <= 1.0, "sparsity ", sparsity,
                " out of [0,1]");
    const auto nnz = static_cast<std::int64_t>(
        std::llround(static_cast<double>(numel) * (1.0 - sparsity)));
    return csrBytes(cfg, numel, nnz);
}

double
csrBreakEvenSparsity(const CsrConfig &cfg)
{
    // Dense cost is 4 bytes/element; CSR costs (value + index) bytes per
    // nonzero (row pointers amortize to ~0 for wide rows). Equal when
    // (1 - sparsity) * (value_bytes + index_bytes) == 4.
    const double value_bytes =
        (cfg.value_format == DprFormat::Fp32)
            ? 4.0
            : dprBitsPerValue(cfg.value_format) / 8.0;
    return 1.0 - 4.0 / (value_bytes + cfg.index_bytes);
}

void
CsrBuffer::encode(std::span<const float> values)
{
    GIST_TRACE_SCOPE("codec", "csr encode");
    checkConfig(config);
    numel_ = static_cast<std::int64_t>(values.size());
    const std::int64_t rows = ceilDiv<std::int64_t>(numel_,
                                                    config.row_width);
    row_ptr.resize(static_cast<size_t>(rows + 1));
    row_ptr[0] = 0;
    values_f32.clear();
    values_dpr.reset();

    // Pass 1 (parallel): per-row nnz counts into row_ptr[r + 1], one
    // SIMD compare+popcount sweep per row.
    const auto count_kernel = simd::ops().countNonzero;
    const std::int64_t row_grain = chooseGrain(rows, 16);
    parallelFor(0, rows, row_grain, [&](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const std::int64_t begin = r * config.row_width;
            const std::int64_t end =
                std::min(numel_, begin + config.row_width);
            row_ptr[static_cast<size_t>(r + 1)] =
                static_cast<std::uint32_t>(
                    count_kernel(values.data() + begin, end - begin));
        }
    });

    // Serial prefix sum turns the counts into row offsets.
    for (std::int64_t r = 0; r < rows; ++r)
        row_ptr[static_cast<size_t>(r + 1)] +=
            row_ptr[static_cast<size_t>(r)];
    nnz_ = row_ptr[static_cast<size_t>(rows)];

    // Pass 2 (parallel): every row fills its own [row_ptr[r],
    // row_ptr[r+1]) slice of the index/value arrays — disjoint by
    // construction, and identical to the serial fill order. Narrow
    // (1-byte-index) rows dispatch the compress-store kernel; its
    // vector stores may scribble up to 7 elements past a row's slice,
    // which is safe only while the scribble stays inside this chunk's
    // own range (later rows of the chunk overwrite it), so rows near
    // the chunk's end take the kernel's exact-store path (pad_ok off).
    col_idx.resize(static_cast<size_t>(nnz_) *
                   static_cast<size_t>(config.index_bytes));
    const bool narrow =
        config.index_bytes == 1 && config.row_width <= 256;
    const auto fill_kernel = simd::ops().csrFill;
    ArenaScope scope;

    // Scalar reference fill for non-narrow layouts (multi-byte column
    // indices; row widths beyond the kernel's 256 contract).
    auto fill_wide = [&](std::int64_t r0, std::int64_t r1, float *nz) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const std::int64_t begin = r * config.row_width;
            const std::int64_t end =
                std::min(numel_, begin + config.row_width);
            size_t k = row_ptr[static_cast<size_t>(r)];
            for (std::int64_t i = begin; i < end; ++i) {
                const float v = values[static_cast<size_t>(i)];
                if (v == 0.0f)
                    continue;
                const auto col = static_cast<std::uint32_t>(i - begin);
                for (int b = 0; b < config.index_bytes; ++b)
                    col_idx[k * static_cast<size_t>(config.index_bytes) +
                            static_cast<size_t>(b)] =
                        static_cast<std::uint8_t>(col >> (8 * b));
                nz[k] = v;
                ++k;
            }
        }
    };

    if (config.value_format == DprFormat::Fp32) {
        values_f32.resize(static_cast<size_t>(nnz_));
        float *nz = values_f32.data();
        parallelFor(0, rows, row_grain,
                    [&](std::int64_t r0, std::int64_t r1) {
            if (!narrow) {
                fill_wide(r0, r1, nz);
                return;
            }
            const std::uint32_t chunk_end =
                row_ptr[static_cast<size_t>(r1)];
            for (std::int64_t r = r0; r < r1; ++r) {
                const std::int64_t begin = r * config.row_width;
                const std::int64_t end =
                    std::min(numel_, begin + config.row_width);
                const std::uint32_t k = row_ptr[static_cast<size_t>(r)];
                const bool pad_ok =
                    row_ptr[static_cast<size_t>(r + 1)] + 7 <= chunk_end;
                fill_kernel(values.data() + begin, end - begin,
                            col_idx.data() + k, nz + k, pad_ok);
            }
        });
        return;
    }

    if (narrow) {
        // Fused CSR-of-DPR fill: compact each row's nonzeros into a
        // stack staging buffer and convert them to small-float codes in
        // the same pass; one word-packing sweep finishes the encode. No
        // dense nnz-sized FP32 staging buffer is ever written.
        auto *codes =
            scope.alloc<std::uint32_t>(static_cast<size_t>(nnz_));
        const auto encode_codes =
            simd::ops().sfEncodeCodes[sfIndexFor(config.value_format)];
        parallelFor(0, rows, row_grain,
                    [&](std::int64_t r0, std::int64_t r1) {
            alignas(32) float staged[256 + 8];
            const std::uint32_t chunk_end =
                row_ptr[static_cast<size_t>(r1)];
            for (std::int64_t r = r0; r < r1; ++r) {
                const std::int64_t begin = r * config.row_width;
                const std::int64_t end =
                    std::min(numel_, begin + config.row_width);
                const std::uint32_t k = row_ptr[static_cast<size_t>(r)];
                const bool pad_ok =
                    row_ptr[static_cast<size_t>(r + 1)] + 7 <= chunk_end;
                const std::int64_t cnt =
                    fill_kernel(values.data() + begin, end - begin,
                                col_idx.data() + k, staged, pad_ok);
                encode_codes(staged, cnt, codes + k);
            }
        });
        values_dpr.encodeFromCodes(config.value_format, codes, nnz_);
        return;
    }

    float *nz = scope.alloc<float>(static_cast<size_t>(nnz_));
    parallelFor(0, rows, row_grain,
                [&](std::int64_t r0, std::int64_t r1) {
        fill_wide(r0, r1, nz);
    });
    values_dpr.encode(config.value_format,
                      { nz, static_cast<size_t>(nnz_) });
}

CsrConstView
CsrBuffer::view() const
{
    CsrConstView v;
    v.row_ptr = row_ptr.data();
    v.col_idx = col_idx.data();
    if (config.value_format == DprFormat::Fp32)
        v.values_f32 = values_f32.data();
    else
        v.values_dpr = &values_dpr;
    v.rows = static_cast<std::int64_t>(row_ptr.size()) - 1;
    v.row_width = config.row_width;
    v.index_bytes = config.index_bytes;
    v.numel = numel_;
    v.nnz = nnz_;
    return v;
}

void
csrValues(const CsrConstView &v, std::int64_t k0, std::int64_t k1,
          float *out)
{
    if (v.values_f32)
        std::memcpy(out, v.values_f32 + k0,
                    static_cast<size_t>(k1 - k0) * sizeof(float));
    else
        v.values_dpr->decodeRange(
            k0, { out, static_cast<size_t>(k1 - k0) });
}

void
CsrBuffer::decode(std::span<float> out) const
{
    GIST_TRACE_SCOPE("codec", "csr decode");
    GIST_ASSERT(static_cast<std::int64_t>(out.size()) == numel_,
                "decode target has ", out.size(), " elements, encoded ",
                numel_);

    ArenaScope scope;
    const float *vals = nullptr;
    if (config.value_format == DprFormat::Fp32) {
        vals = values_f32.data();
    } else {
        float *nz = scope.alloc<float>(static_cast<size_t>(nnz_));
        values_dpr.decode({ nz, static_cast<size_t>(nnz_) });
        vals = nz;
    }

    // Parallel over rows: row r owns the output slice
    // [r * row_width, (r + 1) * row_width), so each chunk zero-fills and
    // scatters into a disjoint range.
    const std::int64_t rows =
        static_cast<std::int64_t>(row_ptr.size()) - 1;
    parallelFor(0, rows, chooseGrain(rows, 16),
                [&, vals](std::int64_t r0, std::int64_t r1) {
        const std::int64_t lo = r0 * config.row_width;
        const std::int64_t hi = std::min(numel_, r1 * config.row_width);
        std::memset(out.data() + lo, 0,
                    static_cast<size_t>(hi - lo) * sizeof(float));
        for (std::int64_t r = r0; r < r1; ++r) {
            const std::uint32_t begin = row_ptr[static_cast<size_t>(r)];
            const std::uint32_t end = row_ptr[static_cast<size_t>(r + 1)];
            for (std::uint32_t k = begin; k < end; ++k) {
                std::uint32_t col = 0;
                for (int b = 0; b < config.index_bytes; ++b)
                    col |= static_cast<std::uint32_t>(
                               col_idx[static_cast<size_t>(k) *
                                           static_cast<size_t>(
                                               config.index_bytes) +
                                       static_cast<size_t>(b)])
                           << (8 * b);
                out[static_cast<size_t>(r * config.row_width + col)] =
                    vals[k];
            }
        }
    });
}

void
CsrBuffer::decodeRange(std::int64_t offset, std::span<float> out) const
{
    const auto len = static_cast<std::int64_t>(out.size());
    GIST_ASSERT(offset >= 0 && offset + len <= numel_, "decode range [",
                offset, ", ", offset + len, ") exceeds ", numel_,
                " encoded values");
    std::memset(out.data(), 0, out.size() * sizeof(float));
    if (len == 0)
        return;

    const std::int64_t first_row = offset / config.row_width;
    const std::int64_t last_row = (offset + len - 1) / config.row_width;
    for (std::int64_t r = first_row; r <= last_row; ++r) {
        const std::uint32_t begin = row_ptr[static_cast<size_t>(r)];
        const std::uint32_t end = row_ptr[static_cast<size_t>(r + 1)];
        for (std::uint32_t k = begin; k < end; ++k) {
            std::uint32_t col = 0;
            for (int b = 0; b < config.index_bytes; ++b)
                col |= static_cast<std::uint32_t>(
                           col_idx[static_cast<size_t>(k) *
                                       static_cast<size_t>(
                                           config.index_bytes) +
                                   static_cast<size_t>(b)])
                       << (8 * b);
            const std::int64_t flat = r * config.row_width + col;
            if (flat < offset || flat >= offset + len)
                continue;
            float value;
            if (config.value_format == DprFormat::Fp32) {
                value = values_f32[k];
            } else {
                values_dpr.decodeRange(static_cast<std::int64_t>(k),
                                       { &value, 1 });
            }
            out[static_cast<size_t>(flat - offset)] = value;
        }
    }
}

std::uint64_t
CsrBuffer::bytes() const
{
    return csrBytes(config, numel_, nnz_);
}

double
CsrBuffer::compressionRatio() const
{
    if (numel_ == 0)
        return 1.0;
    return static_cast<double>(numel_) * 4.0 /
           static_cast<double>(bytes());
}

void
CsrBuffer::setConfig(const CsrConfig &cfg)
{
    checkConfig(cfg);
    config = cfg;
    reset();
}

void
CsrBuffer::reset()
{
    row_ptr.clear(); // capacities retained for the next encode
    col_idx.clear();
    values_f32.clear();
    values_dpr.reset();
    numel_ = 0;
    nnz_ = 0;
}

namespace {

/** Tier-blob header for CsrBuffer (host-order; process-local blobs). */
struct CsrBlobHeader
{
    std::int64_t numel;
    std::int64_t nnz;
    std::int64_t row_width;
    std::uint32_t index_bytes;
    std::uint32_t value_format;
    std::uint64_t row_ptr_count;
    std::uint64_t col_idx_count;
    std::uint64_t values_f32_count;
    std::uint64_t values_dpr_bytes;
};

} // namespace

std::uint64_t
CsrBuffer::serializedBytes() const
{
    return sizeof(CsrBlobHeader) + row_ptr.size() * 4 + col_idx.size() +
           values_f32.size() * 4 + values_dpr.serializedBytes();
}

void
CsrBuffer::serialize(std::uint8_t *dst) const
{
    CsrBlobHeader h;
    h.numel = numel_;
    h.nnz = nnz_;
    h.row_width = config.row_width;
    h.index_bytes = static_cast<std::uint32_t>(config.index_bytes);
    h.value_format = static_cast<std::uint32_t>(config.value_format);
    h.row_ptr_count = row_ptr.size();
    h.col_idx_count = col_idx.size();
    h.values_f32_count = values_f32.size();
    h.values_dpr_bytes = values_dpr.serializedBytes();
    std::memcpy(dst, &h, sizeof(h));
    std::uint8_t *p = dst + sizeof(h);
    if (!row_ptr.empty()) {
        std::memcpy(p, row_ptr.data(), row_ptr.size() * 4);
        p += row_ptr.size() * 4;
    }
    if (!col_idx.empty()) {
        std::memcpy(p, col_idx.data(), col_idx.size());
        p += col_idx.size();
    }
    if (!values_f32.empty()) {
        std::memcpy(p, values_f32.data(), values_f32.size() * 4);
        p += values_f32.size() * 4;
    }
    values_dpr.serialize(p);
}

void
CsrBuffer::deserialize(const std::uint8_t *src, std::uint64_t bytes)
{
    GIST_ASSERT(bytes >= sizeof(CsrBlobHeader), "CSR tier blob truncated: ",
                bytes, " bytes");
    CsrBlobHeader h;
    std::memcpy(&h, src, sizeof(h));
    const std::uint64_t want = sizeof(h) + h.row_ptr_count * 4 +
                               h.col_idx_count + h.values_f32_count * 4 +
                               h.values_dpr_bytes;
    GIST_ASSERT(bytes == want, "CSR tier blob size mismatch: ", bytes,
                " bytes, header implies ", want);
    config.row_width = h.row_width;
    config.index_bytes = static_cast<int>(h.index_bytes);
    config.value_format = static_cast<DprFormat>(h.value_format);
    numel_ = h.numel;
    nnz_ = h.nnz;
    const std::uint8_t *p = src + sizeof(h);
    row_ptr.resize(h.row_ptr_count);
    if (h.row_ptr_count > 0) {
        std::memcpy(row_ptr.data(), p, h.row_ptr_count * 4);
        p += h.row_ptr_count * 4;
    }
    col_idx.resize(h.col_idx_count);
    if (h.col_idx_count > 0) {
        std::memcpy(col_idx.data(), p, h.col_idx_count);
        p += h.col_idx_count;
    }
    values_f32.resize(h.values_f32_count);
    if (h.values_f32_count > 0) {
        std::memcpy(values_f32.data(), p, h.values_f32_count * 4);
        p += h.values_f32_count * 4;
    }
    values_dpr.deserialize(p, h.values_dpr_bytes);
}

void
CsrBuffer::clear()
{
    row_ptr.clear();
    row_ptr.shrink_to_fit();
    col_idx.clear();
    col_idx.shrink_to_fit();
    values_f32.clear();
    values_f32.shrink_to_fit();
    values_dpr.clear();
    numel_ = 0;
    nnz_ = 0;
}

} // namespace gist
