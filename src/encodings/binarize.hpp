/**
 * @file
 * Binarize encoding (lossless, ReLU->Pool): ReLU's backward pass needs
 * only the *sign* of its stashed output (dX = dY where Y > 0), so the
 * 32-bit feature map can be stored as 1 bit per value — a 32x compression
 * for the ReLU output (Section IV-A).
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gist {

/** Bytes needed to binarize @p numel values. */
std::uint64_t binarizeBytes(std::int64_t numel);

/** A 1-bit-per-value positivity mask over a feature map. */
class BinarizedMask
{
  public:
    BinarizedMask() = default;

    /** Record (value > 0) for each element of @p values. */
    void encode(std::span<const float> values);

    /** Allocate an all-zero mask of @p numel bits. */
    void resize(std::int64_t numel);

    /** Set bit @p i (mask must have been resize()d). */
    void set(std::int64_t i, bool value);

    /** True if element @p i was positive. */
    bool positive(std::int64_t i) const;

    /** ReLU backward directly on the encoded data: dx = positive ? dy : 0. */
    void reluBackward(std::span<const float> dy, std::span<float> dx) const;

    std::int64_t numel() const { return numel_; }
    std::uint64_t bytes() const { return bits.size(); }
    std::span<const std::uint8_t> raw() const { return { bits.data(),
                                                         bits.size() }; }

    /** Drop the storage. */
    void clear();

    /** Forget contents, keep capacity (stash reuse across steps). */
    void reset();

  private:
    std::int64_t numel_ = 0;
    std::vector<std::uint8_t> bits;
};

} // namespace gist
