/**
 * @file
 * Slow-tier byte stores backing the bounded device pool.
 *
 * A TierStore holds opaque per-slot blobs that were evicted from the
 * (simulated) device: the executor serializes a stash slot's buffers,
 * store()s them under the slot id, and fetch()es the exact bytes back
 * before the slot's backward read. Two implementations:
 *
 *  - MemoryTierStore: blobs live in host vectors. An optional
 *    bytes-per-second throttle emulates a slow link (PCIe-class) by
 *    sleeping each transfer to the configured bandwidth; transfers are
 *    serialized on one mutex on purpose — a single DMA channel, so two
 *    concurrent evictions queue behind each other exactly like they
 *    would on one PCIe stream. Throttle 0 makes round trips plain
 *    memcpys (what the deterministic tests use).
 *  - FileTierStore: one file per slot under a spill directory — the
 *    "train a model bigger than memory" configuration. Any I/O failure
 *    (unwritable directory, short write, missing blob) throws
 *    std::runtime_error with the failing path, which propagates through
 *    the codec ticket to the training loop as a clean error.
 *
 * Both stores are thread-safe: codec workers evict and fetch different
 * slots concurrently.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace gist {

/** Cumulative transfer statistics of one tier store. */
struct TierStats
{
    std::uint64_t stores = 0;      ///< store() calls (evictions)
    std::uint64_t fetches = 0;     ///< fetch() calls
    std::uint64_t bytes_out = 0;   ///< device -> tier bytes
    std::uint64_t bytes_in = 0;    ///< tier -> device bytes
    std::uint64_t write_ns = 0;    ///< time inside store()
    std::uint64_t read_ns = 0;     ///< time inside fetch()
};

/** Abstract slow-tier blob store, keyed by stash slot id. */
class TierStore
{
  public:
    virtual ~TierStore() = default;

    /** Store @p bytes of @p data under @p key (replaces any previous). */
    virtual void store(std::int64_t key, const void *data,
                       std::uint64_t bytes) = 0;

    /** Read the blob stored under @p key back into @p dst
     *  (@p bytes must equal the stored size). */
    virtual void fetch(std::int64_t key, void *dst,
                       std::uint64_t bytes) = 0;

    /** Size of the blob stored under @p key; 0 when absent. */
    virtual std::uint64_t storedBytes(std::int64_t key) const = 0;

    /** Drop the blob under @p key (no-op when absent). */
    virtual void erase(std::int64_t key) = 0;

    /** Total bytes currently resident in the tier. */
    virtual std::uint64_t residentBytes() const = 0;

    /** Point-in-time copy of the transfer statistics. */
    virtual TierStats stats() const = 0;

    /** "memory" or "file" (diagnostics). */
    virtual const char *kind() const = 0;
};

/**
 * In-memory tier. @p bytes_per_second > 0 throttles every transfer to
 * that bandwidth (sleeping the transferring thread); 0 is unthrottled.
 */
std::unique_ptr<TierStore> makeMemoryTier(double bytes_per_second = 0.0);

/**
 * File-backed tier spilling one file per slot under @p dir (created if
 * missing). Throws std::runtime_error when the directory cannot be
 * created; store/fetch throw on any I/O failure.
 */
std::unique_ptr<TierStore> makeFileTier(const std::string &dir);

} // namespace gist
