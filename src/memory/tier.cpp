#include "memory/tier.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

namespace gist {

namespace {

std::uint64_t
nanosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/** Shared stat bookkeeping for both stores (guarded by the store mutex). */
struct StatsAccum
{
    TierStats s;

    void
    noteStore(std::uint64_t bytes, std::uint64_t ns)
    {
        ++s.stores;
        s.bytes_out += bytes;
        s.write_ns += ns;
    }

    void
    noteFetch(std::uint64_t bytes, std::uint64_t ns)
    {
        ++s.fetches;
        s.bytes_in += bytes;
        s.read_ns += ns;
    }
};

class MemoryTierStore final : public TierStore
{
  public:
    explicit MemoryTierStore(double bytes_per_second)
        : bps_(bytes_per_second)
    {
    }

    void
    store(std::int64_t key, const void *data, std::uint64_t bytes) override
    {
        // One mutex across the whole transfer: a single emulated DMA
        // channel, so concurrent transfers serialize like they would on
        // one PCIe stream (and the throttle meters the *link*, not each
        // caller independently).
        std::lock_guard<std::mutex> lock(mu_);
        const auto t0 = std::chrono::steady_clock::now();
        auto &blob = blobs_[key];
        resident_ -= blob.size();
        blob.assign(static_cast<const std::uint8_t *>(data),
                    static_cast<const std::uint8_t *>(data) + bytes);
        resident_ += bytes;
        throttle(t0, bytes);
        stats_.noteStore(bytes, nanosSince(t0));
    }

    void
    fetch(std::int64_t key, void *dst, std::uint64_t bytes) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto t0 = std::chrono::steady_clock::now();
        const auto it = blobs_.find(key);
        if (it == blobs_.end() || it->second.size() != bytes)
            throw std::runtime_error(
                "memory tier: no blob of the requested size for slot " +
                std::to_string(key));
        std::memcpy(dst, it->second.data(), bytes);
        throttle(t0, bytes);
        stats_.noteFetch(bytes, nanosSince(t0));
    }

    std::uint64_t
    storedBytes(std::int64_t key) const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = blobs_.find(key);
        return it == blobs_.end() ? 0 : it->second.size();
    }

    void
    erase(std::int64_t key) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = blobs_.find(key);
        if (it == blobs_.end())
            return;
        resident_ -= it->second.size();
        blobs_.erase(it);
    }

    std::uint64_t
    residentBytes() const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        return resident_;
    }

    TierStats
    stats() const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stats_.s;
    }

    const char *kind() const override { return "memory"; }

  private:
    void
    throttle(std::chrono::steady_clock::time_point t0,
             std::uint64_t bytes) const
    {
        if (bps_ <= 0.0)
            return;
        const auto target = std::chrono::duration<double>(
            static_cast<double>(bytes) / bps_);
        const auto deadline =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(target);
        std::this_thread::sleep_until(deadline);
    }

    const double bps_;
    mutable std::mutex mu_;
    std::map<std::int64_t, std::vector<std::uint8_t>> blobs_;
    std::uint64_t resident_ = 0;
    StatsAccum stats_;
};

class FileTierStore final : public TierStore
{
  public:
    explicit FileTierStore(std::string dir) : dir_(std::move(dir))
    {
        if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
            throw std::runtime_error("file tier: cannot create '" + dir_ +
                                     "': " + std::strerror(errno));
        struct stat st{};
        if (::stat(dir_.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
            throw std::runtime_error("file tier: '" + dir_ +
                                     "' is not a directory");
    }

    ~FileTierStore() override
    {
        // Best-effort cleanup of the spill files (the directory may be
        // shared, so it stays).
        std::lock_guard<std::mutex> lock(mu_);
        for (const auto &[key, bytes] : sizes_) {
            (void)bytes;
            ::unlink(path(key).c_str());
        }
    }

    void
    store(std::int64_t key, const void *data, std::uint64_t bytes) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto t0 = std::chrono::steady_clock::now();
        const std::string p = path(key);
        std::FILE *f = std::fopen(p.c_str(), "wb");
        if (!f)
            throw std::runtime_error("file tier: cannot open '" + p +
                                     "' for writing: " +
                                     std::strerror(errno));
        const size_t written = std::fwrite(data, 1, bytes, f);
        const int close_err = std::fclose(f);
        if (written != bytes || close_err != 0) {
            ::unlink(p.c_str());
            throw std::runtime_error("file tier: short write to '" + p +
                                     "' (" + std::to_string(written) +
                                     " of " + std::to_string(bytes) +
                                     " bytes)");
        }
        auto &size = sizes_[key];
        resident_ -= size;
        size = bytes;
        resident_ += bytes;
        stats_.noteStore(bytes, nanosSince(t0));
    }

    void
    fetch(std::int64_t key, void *dst, std::uint64_t bytes) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto t0 = std::chrono::steady_clock::now();
        const auto it = sizes_.find(key);
        if (it == sizes_.end() || it->second != bytes)
            throw std::runtime_error(
                "file tier: no blob of the requested size for slot " +
                std::to_string(key));
        const std::string p = path(key);
        std::FILE *f = std::fopen(p.c_str(), "rb");
        if (!f)
            throw std::runtime_error("file tier: cannot open '" + p +
                                     "' for reading: " +
                                     std::strerror(errno));
        const size_t read = std::fread(dst, 1, bytes, f);
        std::fclose(f);
        if (read != bytes)
            throw std::runtime_error("file tier: short read from '" + p +
                                     "' (" + std::to_string(read) +
                                     " of " + std::to_string(bytes) +
                                     " bytes)");
        stats_.noteFetch(bytes, nanosSince(t0));
    }

    std::uint64_t
    storedBytes(std::int64_t key) const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = sizes_.find(key);
        return it == sizes_.end() ? 0 : it->second;
    }

    void
    erase(std::int64_t key) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = sizes_.find(key);
        if (it == sizes_.end())
            return;
        ::unlink(path(key).c_str());
        resident_ -= it->second;
        sizes_.erase(it);
    }

    std::uint64_t
    residentBytes() const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        return resident_;
    }

    TierStats
    stats() const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stats_.s;
    }

    const char *kind() const override { return "file"; }

  private:
    std::string
    path(std::int64_t key) const
    {
        return dir_ + "/gist_tier_slot_" + std::to_string(key) + ".bin";
    }

    const std::string dir_;
    mutable std::mutex mu_;
    std::map<std::int64_t, std::uint64_t> sizes_;
    std::uint64_t resident_ = 0;
    StatsAccum stats_;
};

} // namespace

std::unique_ptr<TierStore>
makeMemoryTier(double bytes_per_second)
{
    return std::make_unique<MemoryTierStore>(bytes_per_second);
}

std::unique_ptr<TierStore>
makeFileTier(const std::string &dir)
{
    return std::make_unique<FileTierStore>(dir);
}

} // namespace gist
