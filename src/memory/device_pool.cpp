#include "memory/device_pool.hpp"

#include <chrono>

namespace gist {

namespace {

std::uint64_t
nanosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

namespace {

obs::MetricRegistry &
registryOf(const DevicePoolConfig &config)
{
    return config.registry ? *config.registry
                           : obs::MetricRegistry::instance();
}

} // namespace

DevicePool::DevicePool(const DevicePoolConfig &config)
    : config_(config),
      tier_(config.tier_path.empty()
                ? makeMemoryTier(config.tier_bytes_per_second)
                : makeFileTier(config.tier_path)),
      evictions_(registryOf(config).counter("gist.tier.evictions")),
      fetches_(registryOf(config).counter("gist.tier.fetches")),
      bytes_out_(registryOf(config).counter("gist.tier.bytes_out")),
      bytes_in_(registryOf(config).counter("gist.tier.bytes_in")),
      write_ns_(registryOf(config).counter("gist.tier.write_ns")),
      read_ns_(registryOf(config).counter("gist.tier.read_ns")),
      tier_bytes_(registryOf(config).gauge("gist.tier.bytes"))
{
}

void
DevicePool::store(std::int64_t key, const void *data, std::uint64_t bytes)
{
    const auto t0 = std::chrono::steady_clock::now();
    tier_->store(key, data, bytes);
    evictions_.add(1);
    bytes_out_.add(bytes);
    write_ns_.add(nanosSince(t0));
    tier_bytes_.set(static_cast<std::int64_t>(tier_->residentBytes()));
}

void
DevicePool::fetch(std::int64_t key, void *dst, std::uint64_t bytes)
{
    const auto t0 = std::chrono::steady_clock::now();
    tier_->fetch(key, dst, bytes);
    fetches_.add(1);
    bytes_in_.add(bytes);
    read_ns_.add(nanosSince(t0));
}

std::uint64_t
DevicePool::storedBytes(std::int64_t key) const
{
    return tier_->storedBytes(key);
}

void
DevicePool::erase(std::int64_t key)
{
    tier_->erase(key);
    tier_bytes_.set(static_cast<std::int64_t>(tier_->residentBytes()));
}

std::uint64_t
DevicePool::residentBytes() const
{
    return tier_->residentBytes();
}

} // namespace gist
