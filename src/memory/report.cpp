#include "memory/report.hpp"

#include <algorithm>

namespace gist {

std::map<DataClass, std::uint64_t>
bytesByClass(const std::vector<PlannedBuffer> &bufs)
{
    std::map<DataClass, std::uint64_t> totals;
    for (const auto &buf : bufs)
        totals[buf.cls] += buf.bytes;
    return totals;
}

std::uint64_t
bytesOfClasses(const std::vector<PlannedBuffer> &bufs,
               std::initializer_list<DataClass> classes)
{
    std::uint64_t total = 0;
    for (const auto &buf : bufs)
        if (std::find(classes.begin(), classes.end(), buf.cls) !=
            classes.end())
            total += buf.bytes;
    return total;
}

std::vector<PlannedBuffer>
filterClasses(const std::vector<PlannedBuffer> &bufs,
              std::initializer_list<DataClass> classes)
{
    std::vector<PlannedBuffer> out;
    for (const auto &buf : bufs)
        if (std::find(classes.begin(), classes.end(), buf.cls) !=
            classes.end())
            out.push_back(buf);
    return out;
}

} // namespace gist
