#include "memory/arena.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#include "obs/counters.hpp"
#include "util/bits.hpp"
#include "util/logging.hpp"

namespace gist {
namespace {

constexpr std::size_t kArenaAlign = 64;

/** Heap allocations taken by arena paths (growth + overflow + fallback). */
std::atomic<std::uint64_t> g_heap_allocs{ 0 };

/**
 * ArenaScope frames open across all threads. beginStep() rewinds every
 * region, so a frame alive through it (a kernel or codec task still
 * running) would see its pointers recycled — the counter turns that
 * protocol violation into a deterministic assert instead of corruption.
 */
std::atomic<int> g_open_frames{ 0 };

/**
 * All thread regions, for beginStep()/stats. Leaked (repo singleton
 * idiom) so pool threads that outlive main() teardown never touch a
 * destroyed registry. Regions are appended once per thread and never
 * removed; the mutex guards only registration and iteration.
 */
struct RegionRegistry
{
    std::mutex mu;
    std::vector<detail::ArenaRegion *> regions;
};

RegionRegistry &
registry()
{
    static RegionRegistry *r = new RegionRegistry;
    return *r;
}

detail::ArenaRegion &
threadRegion()
{
    thread_local detail::ArenaRegion *region = [] {
        auto *r = new detail::ArenaRegion;
        RegionRegistry &reg = registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        reg.regions.push_back(r);
        return r;
    }();
    return *region;
}

void *
alignedNew(std::size_t bytes)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    return ::operator new(bytes, std::align_val_t(kArenaAlign));
}

void
alignedDelete(void *p)
{
    ::operator delete(p, std::align_val_t(kArenaAlign));
}

obs::Gauge &
arenaGauge()
{
    static obs::Gauge *g =
        &obs::MetricRegistry::instance().gauge("gist.arena.bytes");
    return *g;
}

} // namespace

namespace detail {

ArenaRegion::~ArenaRegion()
{
    for (std::size_t i = 0; i < chunk_count; ++i)
        alignedDelete(chunks[i].p);
    std::free(chunks);
    if (base)
        alignedDelete(base);
}

} // namespace detail

WorkspaceArena::WorkspaceArena()
{
    if (const char *env = std::getenv("GIST_ARENA"); env && *env)
        enabled_ = !(env[0] == '0' && env[1] == '\0');
}

WorkspaceArena &
WorkspaceArena::instance()
{
    static WorkspaceArena *a = new WorkspaceArena;
    return *a;
}

void
WorkspaceArena::beginStep()
{
    GIST_ASSERT(g_open_frames.load(std::memory_order_acquire) == 0,
                "WorkspaceArena::beginStep() while an ArenaScope is open "
                "(kernel or codec task still in flight?)");
    if (!enabled_)
        return;
    RegionRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::size_t reserved = 0;
    for (detail::ArenaRegion *r : reg.regions) {
        // No frame may be open across beginStep(); a region that still
        // holds overflow chunks here indicates a leaked ArenaScope.
        if (r->high_water > r->cap) {
            if (r->base)
                alignedDelete(r->base);
            r->cap = roundUp(r->high_water, kArenaAlign);
            r->base = static_cast<std::byte *>(alignedNew(r->cap));
        }
        r->off = 0;
        r->in_use = 0;
        r->step_water = 0;
        reserved += r->cap;
    }
    arenaGauge().set(static_cast<std::int64_t>(reserved));
}

std::size_t
WorkspaceArena::reservedBytes() const
{
    RegionRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::size_t reserved = 0;
    for (const detail::ArenaRegion *r : reg.regions)
        reserved += r->cap;
    return reserved;
}

std::size_t
WorkspaceArena::highWaterBytes() const
{
    RegionRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::size_t hw = 0;
    for (const detail::ArenaRegion *r : reg.regions)
        hw = hw > r->high_water ? hw : r->high_water;
    return hw;
}

std::size_t
WorkspaceArena::stepHighWaterBytes() const
{
    RegionRegistry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    std::size_t hw = 0;
    for (const detail::ArenaRegion *r : reg.regions)
        hw = hw > r->step_water ? hw : r->step_water;
    return hw;
}

std::uint64_t
WorkspaceArena::heapAllocCount() const
{
    return g_heap_allocs.load(std::memory_order_relaxed);
}

int
WorkspaceArena::openFrames() const
{
    return g_open_frames.load(std::memory_order_acquire);
}

ArenaScope::ArenaScope()
    : region_(&threadRegion())
{
    saved_off_ = region_->off;
    saved_in_use_ = region_->in_use;
    saved_chunks_ = region_->chunk_count;
    g_open_frames.fetch_add(1, std::memory_order_acq_rel);
}

ArenaScope::~ArenaScope()
{
    detail::ArenaRegion *r = region_;
    while (r->chunk_count > saved_chunks_)
        alignedDelete(r->chunks[--r->chunk_count].p);
    r->off = saved_off_;
    r->in_use = saved_in_use_;
    g_open_frames.fetch_sub(1, std::memory_order_acq_rel);
}

void *
ArenaScope::alloc(std::size_t bytes)
{
    detail::ArenaRegion *r = region_;
    bytes = roundUp(bytes ? bytes : 1, kArenaAlign);
    r->in_use += bytes;
    if (r->in_use > r->high_water)
        r->high_water = r->in_use;
    if (r->in_use > r->step_water)
        r->step_water = r->in_use;
    if (WorkspaceArena::instance().enabled() &&
        r->off + bytes <= r->cap) {
        void *p = r->base + r->off;
        r->off += bytes;
        return p;
    }
    // Cold path: block not yet grown to this step's high water (or the
    // arena is disabled). Overflow chunks die with this frame; the next
    // beginStep() regrows the block so warm steps never come here.
    if (r->chunk_count == r->chunk_cap) {
        const std::size_t new_cap = r->chunk_cap ? r->chunk_cap * 2 : 16;
        auto *grown = static_cast<detail::ArenaRegion::Chunk *>(
            std::realloc(r->chunks, new_cap * sizeof(*r->chunks)));
        if (!grown)
            throw std::bad_alloc();
        r->chunks = grown;
        r->chunk_cap = new_cap;
    }
    void *p = alignedNew(bytes);
    r->chunks[r->chunk_count++] = { p, bytes };
    return p;
}

float *
ArenaScope::allocFloatsZeroed(std::size_t n)
{
    float *p = alloc<float>(n);
    for (std::size_t i = 0; i < n; ++i)
        p[i] = 0.0f;
    return p;
}

} // namespace gist
