/**
 * @file
 * Step-scoped workspace arena for hot-path scratch memory.
 *
 * Training kernels need short-lived scratch (im2col column panels, the
 * GEMM A-pack, CSR staging) whose sizes repeat every minibatch. The
 * arena turns those per-call heap allocations into bump-pointer
 * allocations from per-thread regions:
 *
 *   - ArenaScope opens a stack frame on the calling thread's region;
 *     every alloc() inside the frame is a pointer bump, and the frame's
 *     destructor releases all of it at once (LIFO, no per-buffer free).
 *   - WorkspaceArena::beginStep() runs once per minibatch while no
 *     kernels are in flight: each region that overflowed its block last
 *     step is regrown to its high-water size, so after warmup every
 *     frame is served from one resident block and steady-state steps
 *     perform zero heap allocations on the scratch paths.
 *
 * Regions are strictly thread-local: a frame must be opened and closed
 * on the same thread, and pool workers each bump their own region, so
 * no allocation path takes a lock or shares a cache line. Codec-queue
 * workers (the async stash pipeline) likewise get their own regions —
 * scratch is double-buffered per thread by construction, so codec
 * encodes never fight the main thread's step arena. beginStep() touches
 * every region, which is safe because the executor joins all codec
 * tickets before the step ends and the thread pool's quiescent barrier
 * orders it against kernel execution on both sides; an open-frame count
 * asserts that no ArenaScope (on any thread) spans the call.
 *
 * Reserved bytes are published to the "gist.arena.bytes" gauge (peak
 * tracking included) in the PR 2 metric registry. Set GIST_ARENA=0 to
 * bypass the arena: every alloc() becomes a plain heap allocation freed
 * by the frame destructor, which keeps lifetimes identical while
 * isolating arena effects in A/B runs.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace gist {

namespace detail {

/** Per-thread bump region. Internal; reach it through ArenaScope. */
struct ArenaRegion
{
    std::byte *base = nullptr;     ///< resident block (64-byte aligned)
    std::size_t cap = 0;           ///< bytes in base
    std::size_t off = 0;           ///< bump offset into base
    std::size_t in_use = 0;        ///< live bytes incl. overflow chunks
    std::size_t high_water = 0;    ///< max in_use ever (monotone)
    std::size_t step_water = 0;    ///< max in_use since last beginStep()
    /** Overflow chunks live at most until their owning frame closes. */
    struct Chunk
    {
        void *p;
        std::size_t bytes;
    };
    Chunk *chunks = nullptr;       ///< grow-only array of live chunks
    std::size_t chunk_count = 0;
    std::size_t chunk_cap = 0;

    ~ArenaRegion();
};

} // namespace detail

/** Process-wide arena control surface (regions stay thread-local). */
class WorkspaceArena
{
  public:
    static WorkspaceArena &instance();

    /** False when GIST_ARENA=0: frames fall back to heap alloc/free. */
    bool enabled() const { return enabled_; }

    /**
     * Per-minibatch reset: regrow any region that overflowed last step
     * to its high-water size and rewind all bump offsets. Call only
     * while every worker thread is quiescent (between steps) and no
     * ArenaScope is open.
     */
    void beginStep();

    /** Sum of resident block sizes across all thread regions. */
    std::size_t reservedBytes() const;

    /** Max bytes ever simultaneously live in any single region. */
    std::size_t highWaterBytes() const;

    /**
     * Like highWaterBytes() but only since the last beginStep() — the
     * per-minibatch arena peak the memory-timeline profiler reports
     * (the monotone high-water would freeze after the largest step).
     */
    std::size_t stepHighWaterBytes() const;

    /** Heap allocations taken by arena paths (block grows + overflow). */
    std::uint64_t heapAllocCount() const;

    /** ArenaScope frames currently open across all threads. */
    int openFrames() const;

  private:
    WorkspaceArena();
    bool enabled_ = true;
};

/**
 * RAII stack frame on the calling thread's arena region. Frames nest
 * LIFO per thread; pointers from alloc() die with the frame.
 */
class ArenaScope
{
  public:
    ArenaScope();
    ~ArenaScope();

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

    /** 64-byte-aligned uninitialized scratch, freed by the frame. */
    void *alloc(std::size_t bytes);

    template <typename T>
    T *
    alloc(std::size_t n)
    {
        return static_cast<T *>(alloc(n * sizeof(T)));
    }

    /** alloc<float>(n) followed by zero fill (GEMM accumulators). */
    float *allocFloatsZeroed(std::size_t n);

  private:
    detail::ArenaRegion *region_;  ///< null when arena disabled
    std::size_t saved_off_ = 0;
    std::size_t saved_in_use_ = 0;
    std::size_t saved_chunks_ = 0;
};

} // namespace gist
