/**
 * @file
 * The memory planner's view of a data structure: a size, a lifetime
 * interval on the combined forward+backward schedule, and the
 * data-structure class the paper's Figure 1 breakdown uses.
 */

#pragma once

#include <cstdint>
#include <string>

namespace gist {

/** The paper's data-structure taxonomy (Section II-A, Figure 1). */
enum class DataClass {
    Weight,        ///< model parameters
    WeightGrad,    ///< parameter gradients
    StashedFmap,   ///< fmaps kept alive from forward into backward
    ImmediateFmap, ///< fmaps consumed within the forward pass
    GradientMap,   ///< backward-pass gradients of feature maps
    Workspace,     ///< cuDNN-style intra-layer scratch
    EncodedFmap,   ///< Gist-encoded stash (mask / map / CSR / DPR)
    DecodeScratch, ///< FP32 buffer decoded just before the backward use
};

/** Name of a DataClass ("StashedFmap", ...). */
const char *dataClassName(DataClass cls);

/** Inclusive lifetime on the schedule's step axis. */
struct Interval
{
    int start = 0;
    int end = 0;

    bool overlaps(const Interval &other) const
    {
        return start <= other.end && other.start <= end;
    }
};

/** A data structure as the allocator sees it. */
struct PlannedBuffer
{
    std::string name;
    DataClass cls = DataClass::ImmediateFmap;
    std::uint64_t bytes = 0;
    Interval live;
    /**
     * May this buffer participate in memory sharing? The paper's
     * "investigation baseline" (Section V-A) forbids sharing for stashed
     * feature maps so each encoding's effect can be isolated.
     */
    bool shareable = true;
    /** Graph node this buffer belongs to (-1 if none), for reporting. */
    std::int32_t origin_node = -1;
};

} // namespace gist
