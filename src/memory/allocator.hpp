/**
 * @file
 * Memory allocation policies over planned buffers.
 *
 * allocateCntkStyle reproduces the CNTK static allocator the paper builds
 * on (Section IV-C): sort data structures by size (descending), greedily
 * group buffers whose lifetimes do not overlap, and charge each group its
 * largest member. allocateOffsetBestFit is a stronger offset-packing
 * policy kept as an ablation. dynamicPeak simulates hardware-assisted
 * dynamic allocation (Section V-H): the footprint is the peak sum of
 * simultaneously-live bytes.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "memory/planned_buffer.hpp"

namespace gist {

/** Outcome of a static allocation pass. */
struct AllocationResult
{
    std::uint64_t total_bytes = 0;
    /** Sharing-group index per buffer (CNTK policy only). */
    std::vector<int> group_of;
    int num_groups = 0;
};

/** CNTK-style size-sorted lifetime-sharing groups. */
AllocationResult allocateCntkStyle(const std::vector<PlannedBuffer> &bufs);

/**
 * Offset packing: size-sorted first-fit address assignment; returns the
 * high-water address. Non-shareable buffers still get dedicated space.
 */
std::uint64_t allocateOffsetBestFit(const std::vector<PlannedBuffer> &bufs);

/** Peak of the sum of live bytes over schedule steps. */
std::uint64_t dynamicPeak(const std::vector<PlannedBuffer> &bufs);

} // namespace gist
