/**
 * @file
 * DevicePool: a byte cap on the simulated device's feature-map pool,
 * with a slow tier behind it.
 *
 * The executor's memory meter ("gist.fmap_pool.bytes") stands in for
 * device memory; the pool does not allocate anything itself. What it
 * owns is the *overflow path*: when the metered level exceeds cap(),
 * the executor evicts stash slots through store() into the pool's
 * TierStore and fetches them back before their backward reads. The
 * pool wraps every transfer with timing and mirrors the tier traffic
 * into the obs registry:
 *
 *   gist.tier.evictions / gist.tier.fetches      (counters)
 *   gist.tier.bytes_out / gist.tier.bytes_in     (counters)
 *   gist.tier.write_ns  / gist.tier.read_ns      (counters)
 *   gist.tier.bytes                              (gauge, resident level)
 *
 * cap() == 0 disables enforcement (an unbounded device); the store
 * still works, which is what the planner's pure-swap plans use.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "memory/tier.hpp"
#include "obs/counters.hpp"

namespace gist {

/** How to build a DevicePool (from GistConfig / env / bench flags). */
struct DevicePoolConfig
{
    /** Device pool byte cap; 0 = unbounded (no overflow eviction). */
    std::uint64_t cap_bytes = 0;
    /** Spill directory for a file tier; empty = in-memory tier. */
    std::string tier_path;
    /**
     * Slow-link bandwidth in bytes/second for the memory tier's
     * throttle (0 = unthrottled). Ignored by the file tier, whose
     * speed is the filesystem's own.
     */
    double tier_bytes_per_second = 0.0;
    /**
     * Registry the gist.tier.* instruments live in. nullptr (the
     * default) uses the process-global registry; a multi-job service
     * passes the owning executor's per-job registry so concurrent
     * pools never share counters.
     */
    obs::MetricRegistry *registry = nullptr;
};

/** The bounded device pool + its slow tier. */
class DevicePool
{
  public:
    /** Builds the tier (file when tier_path set, else memory). Throws
     *  std::runtime_error when a file tier's directory is unusable. */
    explicit DevicePool(const DevicePoolConfig &config);

    /** The device byte cap (0 = unbounded). */
    std::uint64_t cap() const { return config_.cap_bytes; }

    /** Evict: move @p bytes of @p data for slot @p key into the tier. */
    void store(std::int64_t key, const void *data, std::uint64_t bytes);

    /** Fetch slot @p key's blob back (@p bytes = its stored size). */
    void fetch(std::int64_t key, void *dst, std::uint64_t bytes);

    /** Stored blob size of slot @p key (0 when not tier-resident). */
    std::uint64_t storedBytes(std::int64_t key) const;

    /** Drop slot @p key from the tier. */
    void erase(std::int64_t key);

    /** Bytes currently tier-resident (the gist.tier.bytes gauge). */
    std::uint64_t residentBytes() const;

    /** Cumulative transfer statistics of the tier. */
    TierStats stats() const { return tier_->stats(); }

    /** "memory" or "file". */
    const char *tierKind() const { return tier_->kind(); }

    const DevicePoolConfig &config() const { return config_; }

  private:
    DevicePoolConfig config_;
    std::unique_ptr<TierStore> tier_;
    obs::Counter &evictions_;
    obs::Counter &fetches_;
    obs::Counter &bytes_out_;
    obs::Counter &bytes_in_;
    obs::Counter &write_ns_;
    obs::Counter &read_ns_;
    obs::Gauge &tier_bytes_;
};

} // namespace gist
