/**
 * @file
 * Per-DataClass footprint summaries for the Figure 1/3/10/13 breakdowns.
 */

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "memory/planned_buffer.hpp"

namespace gist {

/** Sum of buffer sizes per data class (raw, before any sharing). */
std::map<DataClass, std::uint64_t>
bytesByClass(const std::vector<PlannedBuffer> &bufs);

/** Total raw bytes of the selected classes. */
std::uint64_t bytesOfClasses(const std::vector<PlannedBuffer> &bufs,
                             std::initializer_list<DataClass> classes);

/** Buffers restricted to the given classes. */
std::vector<PlannedBuffer>
filterClasses(const std::vector<PlannedBuffer> &bufs,
              std::initializer_list<DataClass> classes);

} // namespace gist
