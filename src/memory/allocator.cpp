#include "memory/allocator.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/logging.hpp"

namespace gist {

const char *
dataClassName(DataClass cls)
{
    switch (cls) {
      case DataClass::Weight: return "Weight";
      case DataClass::WeightGrad: return "WeightGrad";
      case DataClass::StashedFmap: return "StashedFmap";
      case DataClass::ImmediateFmap: return "ImmediateFmap";
      case DataClass::GradientMap: return "GradientMap";
      case DataClass::Workspace: return "Workspace";
      case DataClass::EncodedFmap: return "EncodedFmap";
      case DataClass::DecodeScratch: return "DecodeScratch";
    }
    return "?";
}

AllocationResult
allocateCntkStyle(const std::vector<PlannedBuffer> &bufs)
{
    AllocationResult result;
    result.group_of.assign(bufs.size(), -1);

    // Sort indices by size descending so big buffers seed the groups and
    // smaller ones fill lifetime gaps inside them.
    std::vector<size_t> order(bufs.size());
    std::iota(order.begin(), order.end(), size_t{ 0 });
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return bufs[a].bytes > bufs[b].bytes;
    });

    struct Group
    {
        std::uint64_t bytes = 0; ///< size of the largest member
        bool closed = false;     ///< holds a non-shareable buffer
        /** Disjoint member lifetimes, keyed by start step. */
        std::map<int, int> intervals;

        bool
        conflicts(const Interval &live) const
        {
            auto it = intervals.upper_bound(live.end);
            if (it == intervals.begin())
                return false;
            --it;
            return it->second >= live.start;
        }
    };
    std::vector<Group> groups;

    for (size_t idx : order) {
        const auto &buf = bufs[idx];
        if (buf.bytes == 0)
            continue;
        int placed = -1;
        if (buf.shareable) {
            for (size_t g = 0; g < groups.size(); ++g) {
                if (!groups[g].closed &&
                    !groups[g].conflicts(buf.live)) {
                    placed = static_cast<int>(g);
                    break;
                }
            }
        }
        if (placed < 0) {
            groups.push_back(Group{});
            placed = static_cast<int>(groups.size() - 1);
        }
        auto &group = groups[static_cast<size_t>(placed)];
        group.intervals[buf.live.start] =
            std::max(group.intervals[buf.live.start], buf.live.end);
        group.bytes = std::max(group.bytes, buf.bytes);
        group.closed = group.closed || !buf.shareable;
        result.group_of[idx] = placed;
    }

    result.num_groups = static_cast<int>(groups.size());
    for (const auto &g : groups)
        result.total_bytes += g.bytes;
    return result;
}

std::uint64_t
allocateOffsetBestFit(const std::vector<PlannedBuffer> &bufs)
{
    std::vector<size_t> order(bufs.size());
    std::iota(order.begin(), order.end(), size_t{ 0 });
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return bufs[a].bytes > bufs[b].bytes;
    });

    struct Placed
    {
        std::uint64_t offset;
        std::uint64_t bytes;
        Interval live;
        bool shareable;
    };
    std::vector<Placed> placed;
    std::uint64_t high_water = 0;

    for (size_t idx : order) {
        const auto &buf = bufs[idx];
        if (buf.bytes == 0)
            continue;
        // Collect address ranges that conflict (lifetime overlap, or
        // either side opted out of sharing).
        std::vector<std::pair<std::uint64_t, std::uint64_t>> busy;
        for (const auto &p : placed) {
            if (!buf.shareable || !p.shareable ||
                p.live.overlaps(buf.live)) {
                busy.emplace_back(p.offset, p.offset + p.bytes);
            }
        }
        std::sort(busy.begin(), busy.end());
        std::uint64_t cursor = 0;
        for (const auto &[lo, hi] : busy) {
            if (cursor + buf.bytes <= lo)
                break; // gap found
            cursor = std::max(cursor, hi);
        }
        placed.push_back(Placed{ cursor, buf.bytes, buf.live,
                                 buf.shareable });
        high_water = std::max(high_water, cursor + buf.bytes);
    }
    return high_water;
}

std::uint64_t
dynamicPeak(const std::vector<PlannedBuffer> &bufs)
{
    // Sweep the step axis with +bytes at start and -bytes after end.
    std::map<int, std::int64_t> delta;
    for (const auto &buf : bufs) {
        if (buf.bytes == 0)
            continue;
        delta[buf.live.start] += static_cast<std::int64_t>(buf.bytes);
        delta[buf.live.end + 1] -= static_cast<std::int64_t>(buf.bytes);
    }
    std::int64_t live = 0;
    std::int64_t peak = 0;
    for (const auto &[step, d] : delta) {
        live += d;
        peak = std::max(peak, live);
    }
    GIST_ASSERT(live == 0, "liveness sweep did not return to zero");
    return static_cast<std::uint64_t>(peak);
}

} // namespace gist
