/**
 * @file
 * Scalar reference backend. Codec loops are pinned unvectorized (see
 * GIST_KIMPL_NOVEC) so this TU stays a genuine one-lane baseline: it is
 * both the bitwise source of truth for the equivalence tests and the
 * denominator of the per-backend speedup rows in bench/micro_simd.
 */

#if defined(__GNUC__) && !defined(__clang__)
#define GIST_KIMPL_NOVEC __attribute__((optimize("no-tree-vectorize")))
#else
#define GIST_KIMPL_NOVEC
#endif
#define GIST_KIMPL_NS kernels_scalar

#include "simd/kernels_generic.hpp"

#include "simd/dispatch.hpp"

namespace gist::simd {

const SimdOps &
scalarOps()
{
    namespace k = kernels_scalar;
    static const SimdOps ops = {
        "scalar",
        Backend::Scalar,
        { k::sfEncode<kSfFp16>, k::sfEncode<kSfFp10>, k::sfEncode<kSfFp8> },
        { k::sfDecode<kSfFp16>, k::sfDecode<kSfFp10>, k::sfDecode<kSfFp8> },
        { k::sfQuantize<kSfFp16>, k::sfQuantize<kSfFp10>,
          k::sfQuantize<kSfFp8> },
        k::binarizeEncode,
        k::binarizeBackward,
        k::countNonzero,
        k::csrFill,
        { k::sfEncodeCodes<kSfFp16>, k::sfEncodeCodes<kSfFp10>,
          k::sfEncodeCodes<kSfFp8> },
        k::axpy,
        k::dot,
    };
    return ops;
}

} // namespace gist::simd
