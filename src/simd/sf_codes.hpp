/**
 * @file
 * Branchless small-float conversion core shared by every SIMD backend.
 *
 * The scalar functions here are the bitwise source of truth for the
 * paper's FP16/FP10/FP8 storage formats: round-to-nearest-even, clamp
 * out-of-range values to the max finite magnitude, flush denormals to
 * signed zero, encode NaN as +0 (Section IV-A semantics, identical to
 * encodings/small_float.cpp). Every operation is expressed with masks
 * and selects — no per-value branches — so the same formulas lower
 * directly to integer SIMD in the vector backends and auto-vectorize in
 * the SSE backend, guaranteeing bit-for-bit agreement across ISAs.
 *
 * Layout of a packed word (dpr.hpp): per_word values of `bits` bits
 * each, value i at bit offset i * bits, unused high bits zero.
 */

#pragma once

#include <cstdint>

namespace gist::simd {

/** Compile-time constants of one storage format. */
struct SfLayout
{
    std::uint32_t e_bits;
    std::uint32_t m_bits;
    std::int32_t bias;           ///< (1 << (e_bits - 1)) - 1
    std::int32_t max_exp_field;  ///< (1 << e_bits) - 2; all-ones reserved
    std::uint32_t per_word;      ///< values packed per 32-bit word
    std::uint32_t bits;          ///< bits per stored value
};

/** Index into kSfLayouts (matches DprFormat order minus Fp32). */
enum SfFormatIdx { kSfFp16 = 0, kSfFp10 = 1, kSfFp8 = 2, kSfFormatCount = 3 };

inline constexpr SfLayout kSfLayouts[kSfFormatCount] = {
    { 5, 10, 15, 30, 2, 16 }, // FP16 (IEEE half for normal values)
    { 5, 4, 15, 30, 3, 10 },  // FP10
    { 4, 3, 7, 14, 4, 8 },    // FP8
};

/** All-ones when @p cond, else all-zeros. */
inline std::uint32_t
maskOf(bool cond)
{
    return 0u - static_cast<std::uint32_t>(cond);
}

/** b where mask is 0, a where mask is all-ones (per-bit select). */
inline std::uint32_t
selectBits(std::uint32_t mask, std::uint32_t a, std::uint32_t b)
{
    return b ^ ((a ^ b) & mask);
}

/**
 * Encode one FP32 bit pattern @p u into the small format's code
 * (right-aligned). Branchless; bitwise-identical to
 * gist::encodeSmallFloat for every input pattern.
 */
inline std::uint32_t
sfEncodeCode(const SfLayout &L, std::uint32_t u)
{
    const std::uint32_t m = L.m_bits;
    const std::uint32_t sign = u >> 31;
    const std::uint32_t f32_exp = (u >> 23) & 0xffu;
    const std::uint32_t f32_man = u & 0x7fffffu;
    const std::uint32_t sign_shifted = sign << (L.e_bits + m);
    const std::uint32_t man_mask = (1u << m) - 1;
    const std::uint32_t max_finite =
        sign_shifted | (static_cast<std::uint32_t>(L.max_exp_field) << m) |
        man_mask;

    // Round the 24-bit significand to m bits with round-to-nearest-even:
    // t = (frac + half - 1 + lsb) >> shift increments exactly when the
    // dropped tail exceeds half, or equals half with an odd keep-LSB.
    const std::uint32_t shift = 23 - m;
    const std::uint32_t frac24 = (1u << 23) | f32_man;
    const std::uint32_t half = 1u << (shift - 1);
    const std::uint32_t lsb = (frac24 >> shift) & 1u;
    std::uint32_t t = (frac24 + (half - 1u) + lsb) >> shift;
    // Mantissa carry (all-ones rounds up to 10.0...0): renormalize.
    const std::uint32_t carry = t >> (m + 1);
    t >>= carry;

    const std::int32_t e_field = static_cast<std::int32_t>(f32_exp) - 127 +
                                 static_cast<std::int32_t>(carry) + L.bias;

    const std::uint32_t normal =
        sign_shifted | (static_cast<std::uint32_t>(e_field) << m) |
        (t & man_mask);

    const std::uint32_t is_special = maskOf(f32_exp == 0xffu);
    const std::uint32_t is_nan = is_special & maskOf(f32_man != 0);
    const std::uint32_t is_input_zero = maskOf(f32_exp == 0);
    const std::uint32_t overflow = maskOf(e_field > L.max_exp_field);
    const std::uint32_t underflow = maskOf(e_field <= 0);

    std::uint32_t r = selectBits(overflow, max_finite, normal);
    r = selectBits(underflow | is_input_zero, sign_shifted, r);
    r = selectBits(is_special, max_finite, r); // +/-inf clamps
    r = selectBits(is_nan, 0u, r);             // NaN encodes as +0
    return r;
}

/**
 * Decode one small-format code to FP32 bits. Denormal patterns
 * (e_field == 0, never produced by the encoder) flush to signed zero;
 * reserved-exponent patterns are the caller's responsibility (the
 * public decodeSmallFloat asserts on them).
 */
inline std::uint32_t
sfDecodeCode(const SfLayout &L, std::uint32_t code)
{
    const std::uint32_t m = L.m_bits;
    const std::uint32_t sign = (code >> (L.e_bits + m)) & 1u;
    const std::uint32_t e_field = (code >> m) & ((1u << L.e_bits) - 1u);
    const std::uint32_t man = code & ((1u << m) - 1u);
    const std::uint32_t nonzero = maskOf(e_field != 0);
    const std::uint32_t f32_exp =
        e_field + 127u - static_cast<std::uint32_t>(L.bias);
    const std::uint32_t body = (f32_exp << 23) | (man << (23 - m));
    return (sign << 31) | (nonzero & body);
}

/**
 * Pack @p n codes into ceil(n / per_word) words; trailing lanes of the
 * last word are zero.
 */
inline void
sfPackWords(const SfLayout &L, const std::uint32_t *codes, std::int64_t n,
            std::uint32_t *words)
{
    const auto per_word = static_cast<std::int64_t>(L.per_word);
    std::int64_t i = 0;
    for (; i + per_word <= n; i += per_word) {
        std::uint32_t w = 0;
        for (std::int64_t l = 0; l < per_word; ++l)
            w |= codes[i + l] << (static_cast<unsigned>(l) * L.bits);
        *words++ = w;
    }
    if (i < n) {
        std::uint32_t w = 0;
        for (std::int64_t l = 0; i + l < n; ++l)
            w |= codes[i + l] << (static_cast<unsigned>(l) * L.bits);
        *words = w;
    }
}

/** Unpack @p n codes from their packed words. */
inline void
sfUnpackWords(const SfLayout &L, const std::uint32_t *words, std::int64_t n,
              std::uint32_t *codes)
{
    const auto per_word = static_cast<std::int64_t>(L.per_word);
    const std::uint32_t mask =
        (L.bits >= 32) ? ~0u : ((1u << L.bits) - 1u);
    std::int64_t i = 0;
    for (; i + per_word <= n; i += per_word) {
        const std::uint32_t w = *words++;
        for (std::int64_t l = 0; l < per_word; ++l)
            codes[i + l] = (w >> (static_cast<unsigned>(l) * L.bits)) & mask;
    }
    if (i < n) {
        const std::uint32_t w = *words;
        for (std::int64_t l = 0; i + l < n; ++l)
            codes[i + l] = (w >> (static_cast<unsigned>(l) * L.bits)) & mask;
    }
}

/**
 * Block size (values) for the staged encode/decode drivers: the codes
 * scratch stays L1-resident and the size divides every per_word (2, 3,
 * 4) and the 8-wide vector step, so only the final block has tails.
 */
inline constexpr std::int64_t kSfBlock = 3072;

/**
 * Whole-span encode driver: vectorized code conversion into an on-stack
 * block, then scalar word packing. @p enc converts cnt float bit
 * patterns to codes. The span must start word-aligned (the caller's
 * chunking is word-granular).
 */
template <class EncodeCodes>
inline void
sfEncodeBlocks(const SfLayout &L, const float *src, std::int64_t n,
               std::uint32_t *words, EncodeCodes enc)
{
    alignas(64) std::uint32_t codes[kSfBlock];
    for (std::int64_t base = 0; base < n; base += kSfBlock) {
        const std::int64_t cnt =
            n - base < kSfBlock ? n - base : kSfBlock;
        enc(L, src + base, cnt, codes);
        sfPackWords(L, codes, cnt,
                    words + base / static_cast<std::int64_t>(L.per_word));
    }
}

/** Whole-span decode driver, mirror of sfEncodeBlocks. */
template <class DecodeCodes>
inline void
sfDecodeBlocks(const SfLayout &L, const std::uint32_t *words, std::int64_t n,
               float *dst, DecodeCodes dec)
{
    alignas(64) std::uint32_t codes[kSfBlock];
    for (std::int64_t base = 0; base < n; base += kSfBlock) {
        const std::int64_t cnt =
            n - base < kSfBlock ? n - base : kSfBlock;
        sfUnpackWords(L, words + base / static_cast<std::int64_t>(L.per_word),
                      cnt, codes);
        dec(L, codes, cnt, dst + base);
    }
}

} // namespace gist::simd
