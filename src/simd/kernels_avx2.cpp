/**
 * @file
 * AVX2 backend: hand-written 8-wide intrinsics for the codec and GEMM
 * hot loops (per-file -mavx2 -mfma -mf16c -O3).
 *
 * The small-float conversions are pure integer exponent/mantissa
 * arithmetic — the same branchless formulas as sf_codes.hpp lane-lifted
 * onto __m256i (compares produce lane masks, selects are blends), so
 * codec output is bitwise-identical to the scalar reference including
 * NaN/inf/denormal and rounding-tie inputs. Tails shorter than a vector
 * fall back to the shared scalar formulas, which are identical by
 * construction.
 *
 * F16C is deliberately NOT used for the FP16 path: VCVTPS2PH keeps NaNs
 * and produces half denormals, while the paper's codec flushes denormals
 * and encodes NaN as +0 — the integer pipeline matches the reference
 * bit-for-bit and serves all three formats uniformly.
 */

#include "simd/dispatch.hpp"

#if GIST_SIMD_X86

#include <immintrin.h>

#include <cstring>

#include "simd/sf_codes.hpp"

namespace gist::simd {
namespace {

/** Lane-lifted sfEncodeCode: 8 FP32 bit patterns -> 8 codes. */
template <int IDX>
inline __m256i
encodeCodes8(__m256i u)
{
    constexpr SfLayout L = kSfLayouts[IDX];
    constexpr int m = static_cast<int>(L.m_bits);
    constexpr int shift = 23 - m;
    constexpr std::uint32_t man_mask = (1u << m) - 1u;

    const __m256i sign = _mm256_srli_epi32(u, 31);
    const __m256i f32_exp =
        _mm256_and_si256(_mm256_srli_epi32(u, 23), _mm256_set1_epi32(0xff));
    const __m256i f32_man =
        _mm256_and_si256(u, _mm256_set1_epi32(0x7fffff));
    const __m256i sign_shifted =
        _mm256_slli_epi32(sign, static_cast<int>(L.e_bits) + m);
    const __m256i max_finite = _mm256_or_si256(
        sign_shifted,
        _mm256_set1_epi32(
            (static_cast<std::int32_t>(L.max_exp_field) << m) |
            static_cast<std::int32_t>(man_mask)));

    // Round-to-nearest-even of the 24-bit significand (see sf_codes.hpp).
    const __m256i frac24 =
        _mm256_or_si256(f32_man, _mm256_set1_epi32(1 << 23));
    const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(frac24, shift),
                                         _mm256_set1_epi32(1));
    __m256i t = _mm256_srli_epi32(
        _mm256_add_epi32(frac24,
                         _mm256_add_epi32(
                             lsb, _mm256_set1_epi32((1 << (shift - 1)) - 1))),
        shift);
    const __m256i carry = _mm256_srli_epi32(t, m + 1);
    t = _mm256_srlv_epi32(t, carry);

    const __m256i e_field = _mm256_add_epi32(
        _mm256_add_epi32(f32_exp, carry),
        _mm256_set1_epi32(L.bias - 127));

    const __m256i normal = _mm256_or_si256(
        _mm256_or_si256(sign_shifted, _mm256_slli_epi32(e_field, m)),
        _mm256_and_si256(t, _mm256_set1_epi32(
                                static_cast<std::int32_t>(man_mask))));

    const __m256i is_special =
        _mm256_cmpeq_epi32(f32_exp, _mm256_set1_epi32(0xff));
    const __m256i man_is_zero =
        _mm256_cmpeq_epi32(f32_man, _mm256_setzero_si256());
    const __m256i is_nan = _mm256_andnot_si256(man_is_zero, is_special);
    const __m256i is_input_zero =
        _mm256_cmpeq_epi32(f32_exp, _mm256_setzero_si256());
    const __m256i overflow = _mm256_cmpgt_epi32(
        e_field, _mm256_set1_epi32(L.max_exp_field));
    const __m256i underflow =
        _mm256_cmpgt_epi32(_mm256_set1_epi32(1), e_field);

    __m256i r = _mm256_blendv_epi8(normal, max_finite, overflow);
    r = _mm256_blendv_epi8(r, sign_shifted,
                           _mm256_or_si256(underflow, is_input_zero));
    r = _mm256_blendv_epi8(r, max_finite, is_special); // +/-inf clamps
    r = _mm256_andnot_si256(is_nan, r);                // NaN encodes as +0
    return r;
}

/** Lane-lifted sfDecodeCode: 8 codes -> 8 FP32 bit patterns. */
template <int IDX>
inline __m256i
decodeCodes8(__m256i code)
{
    constexpr SfLayout L = kSfLayouts[IDX];
    constexpr int m = static_cast<int>(L.m_bits);

    const __m256i sign = _mm256_and_si256(
        _mm256_srli_epi32(code, static_cast<int>(L.e_bits) + m),
        _mm256_set1_epi32(1));
    const __m256i e_field = _mm256_and_si256(
        _mm256_srli_epi32(code, m),
        _mm256_set1_epi32((1 << L.e_bits) - 1));
    const __m256i man =
        _mm256_and_si256(code, _mm256_set1_epi32((1 << m) - 1));
    const __m256i e_is_zero =
        _mm256_cmpeq_epi32(e_field, _mm256_setzero_si256());
    const __m256i f32_exp =
        _mm256_add_epi32(e_field, _mm256_set1_epi32(127 - L.bias));
    const __m256i body =
        _mm256_or_si256(_mm256_slli_epi32(f32_exp, 23),
                        _mm256_slli_epi32(man, 23 - m));
    return _mm256_or_si256(_mm256_slli_epi32(sign, 31),
                           _mm256_andnot_si256(e_is_zero, body));
}

template <int IDX>
void
encodeCodesSpan(const SfLayout &, const float *src, std::int64_t n,
                std::uint32_t *codes)
{
    constexpr SfLayout L = kSfLayouts[IDX];
    const auto *bits = reinterpret_cast<const std::uint32_t *>(src);
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(codes + i),
            encodeCodes8<IDX>(_mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(bits + i))));
    for (; i < n; ++i)
        codes[i] = sfEncodeCode(L, bits[i]);
}

template <int IDX>
void
decodeCodesSpan(const SfLayout &, const std::uint32_t *codes,
                std::int64_t n, float *dst)
{
    constexpr SfLayout L = kSfLayouts[IDX];
    auto *out = reinterpret_cast<std::uint32_t *>(dst);
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(out + i),
            decodeCodes8<IDX>(_mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(codes + i))));
    for (; i < n; ++i)
        out[i] = sfDecodeCode(L, codes[i]);
}

template <int IDX>
void
sfEncodeAvx2(const float *src, std::int64_t n, std::uint32_t *words)
{
    sfEncodeBlocks(kSfLayouts[IDX], src, n, words, encodeCodesSpan<IDX>);
}

/**
 * FP16 skips the staged codes buffer entirely: encode 8 values, pack
 * the 8 halves into 4 words in-register (OR the odd lane shifted into
 * the even lane of each 64-bit pair, then compress the even 32-bit
 * lanes), and store 16 bytes.
 */
template <>
void
sfEncodeAvx2<kSfFp16>(const float *src, std::int64_t n,
                      std::uint32_t *words)
{
    constexpr SfLayout L = kSfLayouts[kSfFp16];
    const auto *bits = reinterpret_cast<const std::uint32_t *>(src);
    const __m256i gather_even =
        _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i codes = encodeCodes8<kSfFp16>(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bits + i)));
        // 64-bit pair (c_even | c_odd << 32) -> c_even | c_odd << 16.
        const __m256i paired =
            _mm256_or_si256(codes, _mm256_srli_epi64(codes, 16));
        const __m256i packed =
            _mm256_permutevar8x32_epi32(paired, gather_even);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(words + i / 2),
                         _mm256_castsi256_si128(packed));
    }
    if (i < n) {
        alignas(32) std::uint32_t codes[8];
        for (std::int64_t j = i; j < n; ++j)
            codes[j - i] = sfEncodeCode(L, bits[j]);
        sfPackWords(L, codes, n - i, words + i / 2);
    }
}

template <int IDX>
void
sfDecodeAvx2(const std::uint32_t *words, std::int64_t n, float *dst)
{
    sfDecodeBlocks(kSfLayouts[IDX], words, n, dst, decodeCodesSpan<IDX>);
}

/** FP16 unpack is a single 16->32 widen, so skip the staged buffer. */
template <>
void
sfDecodeAvx2<kSfFp16>(const std::uint32_t *words, std::int64_t n,
                      float *dst)
{
    constexpr SfLayout L = kSfLayouts[kSfFp16];
    auto *out = reinterpret_cast<std::uint32_t *>(dst);
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i codes = _mm256_cvtepu16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(words + i / 2)));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            decodeCodes8<kSfFp16>(codes));
    }
    for (; i < n; ++i) {
        const std::uint32_t w = words[i / 2];
        out[i] = sfDecodeCode(L, (w >> ((i & 1) * 16)) & 0xffffu);
    }
}

template <int IDX>
void
sfQuantizeAvx2(float *values, std::int64_t n)
{
    constexpr SfLayout L = kSfLayouts[IDX];
    auto *bits = reinterpret_cast<std::uint32_t *>(values);
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i u = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bits + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(bits + i),
            decodeCodes8<IDX>(encodeCodes8<IDX>(u)));
    }
    for (; i < n; ++i)
        bits[i] = sfDecodeCode(L, sfEncodeCode(L, bits[i]));
}

void
binarizeEncodeAvx2(const float *values, std::int64_t n, std::uint8_t *bytes)
{
    const __m256 zero = _mm256_setzero_ps();
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 m = _mm256_cmp_ps(_mm256_loadu_ps(values + i), zero,
                                       _CMP_GT_OQ);
        *bytes++ = static_cast<std::uint8_t>(_mm256_movemask_ps(m));
    }
    if (i < n) {
        std::uint32_t acc = 0;
        for (int b = 0; i + b < n; ++b)
            acc |= static_cast<std::uint32_t>(values[i + b] > 0.0f) << b;
        *bytes = static_cast<std::uint8_t>(acc);
    }
}

void
binarizeBackwardAvx2(const std::uint8_t *bytes, const float *dy,
                     std::int64_t n, float *dx)
{
    const __m256i bitpos =
        _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i b = _mm256_set1_epi32(bytes[i >> 3]);
        const __m256i keep =
            _mm256_cmpeq_epi32(_mm256_and_si256(b, bitpos), bitpos);
        const __m256 m = _mm256_and_ps(_mm256_loadu_ps(dy + i),
                                       _mm256_castsi256_ps(keep));
        _mm256_storeu_ps(dx + i, m);
    }
    for (; i < n; ++i) {
        const std::uint32_t keep =
            maskOf((bytes[i >> 3] >> (i & 7)) & 1u);
        reinterpret_cast<std::uint32_t *>(dx)[i] =
            reinterpret_cast<const std::uint32_t *>(dy)[i] & keep;
    }
}

std::int64_t
countNonzeroAvx2(const float *values, std::int64_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    std::int64_t count = 0;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // Unordered-NEQ: NaN counts as nonzero, -0.0 does not.
        const __m256 m = _mm256_cmp_ps(_mm256_loadu_ps(values + i), zero,
                                       _CMP_NEQ_UQ);
        count += _mm_popcnt_u32(
            static_cast<unsigned>(_mm256_movemask_ps(m)));
    }
    for (; i < n; ++i)
        count += (values[i] != 0.0f);
    return count;
}

/**
 * Compress-store tables for csrFillAvx2, one entry per 8-bit nonzero
 * mask: perm[m] is a _mm256_permutevar8x32_ps control moving the set
 * lanes to the front, pos[m] packs the set lane numbers as bytes so the
 * eight in-row column indices fall out of one 64-bit add.
 */
struct CsrFillLutAvx2
{
    alignas(32) std::int32_t perm[256][8];
    std::uint64_t pos[256];
};

const CsrFillLutAvx2 &
csrFillLutAvx2()
{
    static const CsrFillLutAvx2 lut = [] {
        CsrFillLutAvx2 t{};
        for (unsigned m = 0; m < 256; ++m) {
            unsigned c = 0;
            for (unsigned b = 0; b < 8; ++b) {
                if (!((m >> b) & 1u))
                    continue;
                t.perm[m][c] = static_cast<std::int32_t>(b);
                t.pos[m] |= static_cast<std::uint64_t>(b) << (8 * c);
                ++c;
            }
        }
        return t;
    }();
    return lut;
}

std::int64_t
csrFillAvx2(const float *values, std::int64_t n, std::uint8_t *idx,
            float *out, bool pad_ok)
{
    if (n > 256) { // narrow-index contract; keep the reference behavior
        std::int64_t k = 0;
        for (std::int64_t i = 0; i < n; ++i) {
            const float v = values[i];
            if (v != 0.0f) {
                idx[k] = static_cast<std::uint8_t>(i);
                out[k] = v;
                ++k;
            }
        }
        return k;
    }
    if (!pad_ok) {
        // Stage into padded stack buffers, then copy exactly count
        // elements so no store lands past the caller's slice.
        alignas(32) float vtmp[256 + 8];
        std::uint8_t itmp[256 + 8];
        const std::int64_t k = csrFillAvx2(values, n, itmp, vtmp, true);
        std::memcpy(out, vtmp, static_cast<size_t>(k) * sizeof(float));
        std::memcpy(idx, itmp, static_cast<size_t>(k));
        return k;
    }
    const CsrFillLutAvx2 &lut = csrFillLutAvx2();
    const __m256 zero = _mm256_setzero_ps();
    std::int64_t k = 0;
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 v = _mm256_loadu_ps(values + i);
        // Same predicate as countNonzeroAvx2: unordered NEQ, so NaN is
        // kept and -0.0 dropped — count and fill must agree exactly.
        const auto m = static_cast<unsigned>(_mm256_movemask_ps(
            _mm256_cmp_ps(v, zero, _CMP_NEQ_UQ)));
        if (!m)
            continue;
        const __m256i perm = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(lut.perm[m]));
        _mm256_storeu_ps(out + k, _mm256_permutevar8x32_ps(v, perm));
        const std::uint64_t pos =
            lut.pos[m] +
            0x0101010101010101ULL * static_cast<std::uint64_t>(i);
        std::memcpy(idx + k, &pos, sizeof(pos));
        k += _mm_popcnt_u32(m);
    }
    for (; i < n; ++i) {
        const float v = values[i];
        if (v != 0.0f) {
            idx[k] = static_cast<std::uint8_t>(i);
            out[k] = v;
            ++k;
        }
    }
    return k;
}

template <int IDX>
void
sfEncodeCodesAvx2(const float *src, std::int64_t n, std::uint32_t *codes)
{
    encodeCodesSpan<IDX>(kSfLayouts[IDX], src, n, codes);
}

void
axpyAvx2(std::int64_t n, float a, const float *x, float *y)
{
    const __m256 va = _mm256_set1_ps(a);
    std::int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m256 y0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + j),
                                          _mm256_loadu_ps(y + j));
        const __m256 y1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(x + j + 8),
                                          _mm256_loadu_ps(y + j + 8));
        _mm256_storeu_ps(y + j, y0);
        _mm256_storeu_ps(y + j + 8, y1);
    }
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(y + j,
                         _mm256_fmadd_ps(va, _mm256_loadu_ps(x + j),
                                         _mm256_loadu_ps(y + j)));
    for (; j < n; ++j)
        y[j] += a * x[j];
}

float
dotAvx2(std::int64_t n, const float *x, const float *y)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::int64_t p = 0;
    for (; p + 32 <= n; p += 32) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + p),
                               _mm256_loadu_ps(y + p), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + p + 8),
                               _mm256_loadu_ps(y + p + 8), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + p + 16),
                               _mm256_loadu_ps(y + p + 16), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + p + 24),
                               _mm256_loadu_ps(y + p + 24), acc3);
    }
    for (; p + 8 <= n; p += 8)
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + p),
                               _mm256_loadu_ps(y + p), acc0);
    const __m256 acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                     _mm256_add_ps(acc2, acc3));
    const __m128 lo = _mm256_castps256_ps128(acc);
    const __m128 hi = _mm256_extractf128_ps(acc, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    float sum = _mm_cvtss_f32(s);
    for (; p < n; ++p)
        sum += x[p] * y[p];
    return sum;
}

} // namespace

const SimdOps &
avx2Ops()
{
    static const SimdOps ops = {
        "avx2",
        Backend::Avx2,
        { sfEncodeAvx2<kSfFp16>, sfEncodeAvx2<kSfFp10>,
          sfEncodeAvx2<kSfFp8> },
        { sfDecodeAvx2<kSfFp16>, sfDecodeAvx2<kSfFp10>,
          sfDecodeAvx2<kSfFp8> },
        { sfQuantizeAvx2<kSfFp16>, sfQuantizeAvx2<kSfFp10>,
          sfQuantizeAvx2<kSfFp8> },
        binarizeEncodeAvx2,
        binarizeBackwardAvx2,
        countNonzeroAvx2,
        csrFillAvx2,
        { sfEncodeCodesAvx2<kSfFp16>, sfEncodeCodesAvx2<kSfFp10>,
          sfEncodeCodesAvx2<kSfFp8> },
        axpyAvx2,
        dotAvx2,
    };
    return ops;
}

} // namespace gist::simd

#endif // GIST_SIMD_X86
