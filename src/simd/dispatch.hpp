/**
 * @file
 * Runtime-dispatched SIMD kernel table for the codec and GEMM hot paths.
 *
 * Three backends, each a separate translation unit compiled with its own
 * -march flags (src/simd/CMakeLists.txt):
 *
 *   scalar  branchless reference (codec loops pinned unvectorized) — the
 *           bitwise source of truth the equivalence tests sweep against;
 *   sse2    the same generic kernels auto-vectorized for the x86-64
 *           SSE4.2 baseline;
 *   avx2    hand-written 8-wide AVX2/FMA intrinsics.
 *
 * The active backend is chosen once at first use: the GIST_SIMD
 * environment variable (scalar | sse2 | avx2) wins if set and
 * available, else the best ISA the CPU reports (probed via
 * __builtin_cpu_supports on x86). setBackend() overrides at runtime
 * (bench/tests). The integer codec kernels are bitwise-identical across
 * backends by construction; the float GEMM kernels (axpy/dot) may round
 * differently (FMA, wider accumulator trees) and are only required to be
 * deterministic within a backend.
 *
 * Every function pointer operates on a caller-chunked range, so
 * parallelFor call sites dispatch once per chunk, not per element.
 */

#pragma once

#include <cstdint>

/** 1 on x86-64 / x86 targets, where the sse2 and avx2 TUs have bodies. */
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__) || \
    defined(_M_IX86)
#define GIST_SIMD_X86 1
#else
#define GIST_SIMD_X86 0
#endif

namespace gist::simd {

enum class Backend { Scalar = 0, Sse2 = 1, Avx2 = 2 };
inline constexpr int kNumBackends = 3;

/** One backend's kernel table. */
struct SimdOps
{
    const char *name = "?";
    Backend backend = Backend::Scalar;

    /**
     * Packed small-float codecs, indexed by SfFormatIdx (fp16, fp10,
     * fp8). Encode converts n FP32 values into ceil(n / per_word)
     * packed words; decode is the inverse. Spans must start
     * word-aligned. sfQuantize is decode(encode(x)) fused in place.
     */
    void (*sfEncode[3])(const float *src, std::int64_t n,
                        std::uint32_t *words);
    void (*sfDecode[3])(const std::uint32_t *words, std::int64_t n,
                        float *dst);
    void (*sfQuantize[3])(float *values, std::int64_t n);

    /** Pack sign bits (v > 0) of n values into ceil(n / 8) bytes. */
    void (*binarizeEncode)(const float *values, std::int64_t n,
                           std::uint8_t *bytes);
    /** dx[i] = bit(i) ? dy[i] : 0 over n values (bit 0 = first value). */
    void (*binarizeBackward)(const std::uint8_t *bytes, const float *dy,
                             std::int64_t n, float *dx);

    /** Count of values != 0.0f (NaN counts, -0.0 does not). */
    std::int64_t (*countNonzero)(const float *values, std::int64_t n);

    /**
     * CSR row fill: compact the nonzeros of values[0..n) (n <= 256, the
     * narrow-index row width) in ascending order, writing each nonzero's
     * in-row column as one byte to idx[] and its value to out[]; returns
     * the nonzero count. The predicate matches countNonzero exactly (NaN
     * is nonzero, -0.0 is not). When pad_ok is set the kernel may
     * scribble up to 7 elements past the returned count in BOTH output
     * arrays (vector compress stores); with pad_ok false every store is
     * exact. Bitwise-identical across backends either way.
     */
    std::int64_t (*csrFill)(const float *values, std::int64_t n,
                            std::uint8_t *idx, float *out, bool pad_ok);

    /**
     * FP32 -> small-float conversion without word packing: one code per
     * uint32, indexed by SfFormatIdx. Same branchless convert stage as
     * sfEncode, so codes are bitwise-identical across backends.
     */
    void (*sfEncodeCodes[3])(const float *src, std::int64_t n,
                             std::uint32_t *codes);

    /** y[i] += a * x[i]; backend-deterministic, not cross-backend exact. */
    void (*axpy)(std::int64_t n, float a, const float *x, float *y);
    /** sum(x[i] * y[i]); backend-deterministic reduction order. */
    float (*dot)(std::int64_t n, const float *x, const float *y);
};

/** The active kernel table (resolves backend on first call). */
const SimdOps &ops();

/** Backend of the active table. */
Backend activeBackend();

/** Human-readable name ("scalar", "sse2", "avx2"). */
const char *backendName(Backend b);

/** True if the backend was compiled in AND this CPU can run it. */
bool backendAvailable(Backend b);

/** Strongest available backend on this machine. */
Backend bestBackend();

/** Kernel table of a specific backend (must be available). */
const SimdOps &opsFor(Backend b);

/**
 * Force the active backend (bench/tests). Not thread-safe against
 * in-flight kernels; call between parallel regions only.
 */
void setBackend(Backend b);

/**
 * Parse a GIST_SIMD value ("scalar" | "sse2" | "avx2", case-sensitive).
 * Returns false (leaving @p out untouched) for anything else.
 */
bool parseBackend(const char *s, Backend *out);

/**
 * Re-run the GIST_SIMD / autodetect selection (undoes setBackend).
 * Returns the backend now active. Exposed so tests can exercise the
 * env plumbing without reloading the process.
 */
Backend initFromEnv();

/* Per-backend tables, defined one per kernel TU. sse2Ops/avx2Ops exist
 * only when their TU is compiled in (x86 and not GIST_SIMD_DISABLE). */
const SimdOps &scalarOps();
#if GIST_SIMD_X86 && !defined(GIST_SIMD_SCALAR_ONLY)
const SimdOps &sse2Ops();
const SimdOps &avx2Ops();
#endif

} // namespace gist::simd
