/**
 * @file
 * SSE backend: the generic branchless kernels compiled for the x86-64
 * SSE4.2 baseline (per-file -msse4.2 -O3, see src/simd/CMakeLists.txt)
 * so the compiler auto-vectorizes the integer codec formulas 4-wide,
 * plus hand-written compare+movemask loops for the paths whose scalar
 * form the vectorizer cannot restructure (binarize packing, nonzero
 * counting). Bitwise-identical to the scalar reference by construction:
 * identical integer arithmetic, identical tail handling.
 */

#define GIST_KIMPL_NOVEC
#define GIST_KIMPL_NS kernels_sse2

#include "simd/kernels_generic.hpp"

#include "simd/dispatch.hpp"

#if GIST_SIMD_X86
#include <nmmintrin.h> // SSE4.2 (includes SSE2, popcnt)

namespace gist::simd {
namespace {

void
binarizeEncodeSse(const float *values, std::int64_t n, std::uint8_t *bytes)
{
    const __m128 zero = _mm_setzero_ps();
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int lo = _mm_movemask_ps(
            _mm_cmpgt_ps(_mm_loadu_ps(values + i), zero));
        const int hi = _mm_movemask_ps(
            _mm_cmpgt_ps(_mm_loadu_ps(values + i + 4), zero));
        *bytes++ = static_cast<std::uint8_t>(lo | (hi << 4));
    }
    if (i < n) {
        std::uint32_t acc = 0;
        for (int b = 0; i + b < n; ++b)
            acc |= static_cast<std::uint32_t>(values[i + b] > 0.0f) << b;
        *bytes = static_cast<std::uint8_t>(acc);
    }
}

std::int64_t
countNonzeroSse(const float *values, std::int64_t n)
{
    const __m128 zero = _mm_setzero_ps();
    std::int64_t count = 0;
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // NEQ is unordered-or-unequal: NaN counts as nonzero, -0.0 does
        // not — exactly the scalar v != 0.0f.
        const __m128 m =
            _mm_cmpneq_ps(_mm_loadu_ps(values + i), zero);
        count += _mm_popcnt_u32(
            static_cast<unsigned>(_mm_movemask_ps(m)));
    }
    for (; i < n; ++i)
        count += (values[i] != 0.0f);
    return count;
}

} // namespace

const SimdOps &
sse2Ops()
{
    namespace k = kernels_sse2;
    static const SimdOps ops = {
        "sse2",
        Backend::Sse2,
        { k::sfEncode<kSfFp16>, k::sfEncode<kSfFp10>, k::sfEncode<kSfFp8> },
        { k::sfDecode<kSfFp16>, k::sfDecode<kSfFp10>, k::sfDecode<kSfFp8> },
        { k::sfQuantize<kSfFp16>, k::sfQuantize<kSfFp10>,
          k::sfQuantize<kSfFp8> },
        binarizeEncodeSse,
        k::binarizeBackward,
        countNonzeroSse,
        k::axpy,
        k::dot,
    };
    return ops;
}

} // namespace gist::simd

#endif // GIST_SIMD_X86
