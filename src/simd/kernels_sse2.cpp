/**
 * @file
 * SSE backend: the generic branchless kernels compiled for the x86-64
 * SSE4.2 baseline (per-file -msse4.2 -O3, see src/simd/CMakeLists.txt)
 * so the compiler auto-vectorizes the integer codec formulas 4-wide,
 * plus hand-written compare+movemask loops for the paths whose scalar
 * form the vectorizer cannot restructure (binarize packing, nonzero
 * counting). Bitwise-identical to the scalar reference by construction:
 * identical integer arithmetic, identical tail handling.
 */

#define GIST_KIMPL_NOVEC
#define GIST_KIMPL_NS kernels_sse2

#include "simd/kernels_generic.hpp"

#include "simd/dispatch.hpp"

#if GIST_SIMD_X86
#include <nmmintrin.h> // SSE4.2 (includes SSE2, SSSE3, popcnt)

#include <cstring>

namespace gist::simd {
namespace {

void
binarizeEncodeSse(const float *values, std::int64_t n, std::uint8_t *bytes)
{
    const __m128 zero = _mm_setzero_ps();
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int lo = _mm_movemask_ps(
            _mm_cmpgt_ps(_mm_loadu_ps(values + i), zero));
        const int hi = _mm_movemask_ps(
            _mm_cmpgt_ps(_mm_loadu_ps(values + i + 4), zero));
        *bytes++ = static_cast<std::uint8_t>(lo | (hi << 4));
    }
    if (i < n) {
        std::uint32_t acc = 0;
        for (int b = 0; i + b < n; ++b)
            acc |= static_cast<std::uint32_t>(values[i + b] > 0.0f) << b;
        *bytes = static_cast<std::uint8_t>(acc);
    }
}

std::int64_t
countNonzeroSse(const float *values, std::int64_t n)
{
    const __m128 zero = _mm_setzero_ps();
    std::int64_t count = 0;
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // NEQ is unordered-or-unequal: NaN counts as nonzero, -0.0 does
        // not — exactly the scalar v != 0.0f.
        const __m128 m =
            _mm_cmpneq_ps(_mm_loadu_ps(values + i), zero);
        count += _mm_popcnt_u32(
            static_cast<unsigned>(_mm_movemask_ps(m)));
    }
    for (; i < n; ++i)
        count += (values[i] != 0.0f);
    return count;
}

/**
 * Compress-store tables for csrFillSse, one entry per 4-bit nonzero
 * mask: shuf[m] moves the set lanes' dword bytes to the front (for
 * _mm_shuffle_epi8), pos[m] packs the set lane numbers as bytes so the
 * in-row column indices fall out of one 32-bit add.
 */
struct CsrFillLutSse
{
    alignas(16) std::uint8_t shuf[16][16];
    std::uint32_t pos[16];
};

const CsrFillLutSse &
csrFillLutSse()
{
    static const CsrFillLutSse lut = [] {
        CsrFillLutSse t{};
        for (unsigned m = 0; m < 16; ++m) {
            unsigned c = 0;
            for (unsigned b = 0; b < 4; ++b) {
                if (!((m >> b) & 1u))
                    continue;
                for (unsigned j = 0; j < 4; ++j)
                    t.shuf[m][c * 4 + j] =
                        static_cast<std::uint8_t>(b * 4 + j);
                t.pos[m] |= b << (8 * c);
                ++c;
            }
            for (; c < 4; ++c)
                for (unsigned j = 0; j < 4; ++j)
                    t.shuf[m][c * 4 + j] = 0;
        }
        return t;
    }();
    return lut;
}

std::int64_t
csrFillSse(const float *values, std::int64_t n, std::uint8_t *idx,
           float *out, bool pad_ok)
{
    if (n > 256) // narrow-index contract; keep the reference behavior
        return kernels_sse2::csrFill(values, n, idx, out, pad_ok);
    if (!pad_ok) {
        // Stage into padded stack buffers, then copy exactly count
        // elements so no store lands past the caller's slice.
        alignas(16) float vtmp[256 + 4];
        std::uint8_t itmp[256 + 4];
        const std::int64_t k = csrFillSse(values, n, itmp, vtmp, true);
        std::memcpy(out, vtmp, static_cast<size_t>(k) * sizeof(float));
        std::memcpy(idx, itmp, static_cast<size_t>(k));
        return k;
    }
    const CsrFillLutSse &lut = csrFillLutSse();
    const __m128 zero = _mm_setzero_ps();
    std::int64_t k = 0;
    std::int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 v = _mm_loadu_ps(values + i);
        // Same predicate as countNonzeroSse: unordered NEQ, so NaN is
        // kept and -0.0 dropped — count and fill must agree exactly.
        const auto m = static_cast<unsigned>(
            _mm_movemask_ps(_mm_cmpneq_ps(v, zero)));
        if (!m)
            continue;
        const __m128i shuf = _mm_load_si128(
            reinterpret_cast<const __m128i *>(lut.shuf[m]));
        _mm_storeu_ps(out + k,
                      _mm_castsi128_ps(_mm_shuffle_epi8(
                          _mm_castps_si128(v), shuf)));
        const std::uint32_t pos =
            lut.pos[m] + 0x01010101u * static_cast<std::uint32_t>(i);
        std::memcpy(idx + k, &pos, sizeof(pos));
        k += _mm_popcnt_u32(m);
    }
    for (; i < n; ++i) {
        const float v = values[i];
        if (v != 0.0f) {
            idx[k] = static_cast<std::uint8_t>(i);
            out[k] = v;
            ++k;
        }
    }
    return k;
}

} // namespace

const SimdOps &
sse2Ops()
{
    namespace k = kernels_sse2;
    static const SimdOps ops = {
        "sse2",
        Backend::Sse2,
        { k::sfEncode<kSfFp16>, k::sfEncode<kSfFp10>, k::sfEncode<kSfFp8> },
        { k::sfDecode<kSfFp16>, k::sfDecode<kSfFp10>, k::sfDecode<kSfFp8> },
        { k::sfQuantize<kSfFp16>, k::sfQuantize<kSfFp10>,
          k::sfQuantize<kSfFp8> },
        binarizeEncodeSse,
        k::binarizeBackward,
        countNonzeroSse,
        csrFillSse,
        { k::sfEncodeCodes<kSfFp16>, k::sfEncodeCodes<kSfFp10>,
          k::sfEncodeCodes<kSfFp8> },
        k::axpy,
        k::dot,
    };
    return ops;
}

} // namespace gist::simd

#endif // GIST_SIMD_X86
