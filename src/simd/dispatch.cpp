/**
 * @file
 * Backend selection. The active table is an atomic pointer resolved on
 * first use: GIST_SIMD wins when set to an available backend (an
 * unavailable or unparsable value warns once on stderr and falls back),
 * otherwise the strongest ISA the CPU reports. Builds configured with
 * -DGIST_SIMD_DISABLE=ON compile only the scalar TU and this file with
 * GIST_SIMD_SCALAR_ONLY, so every query collapses to the reference
 * backend.
 */

#include "simd/dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if GIST_SIMD_X86 && !defined(GIST_SIMD_SCALAR_ONLY)
#define GIST_SIMD_HAVE_ISA 1
#else
#define GIST_SIMD_HAVE_ISA 0
#endif

namespace gist::simd {
namespace {

bool
cpuHasSse42()
{
#if GIST_SIMD_X86 && defined(__GNUC__)
    return __builtin_cpu_supports("sse4.2") &&
           __builtin_cpu_supports("popcnt");
#else
    return false;
#endif
}

bool
cpuHasAvx2()
{
#if GIST_SIMD_X86 && defined(__GNUC__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

const SimdOps *
resolveFromEnv()
{
    Backend b = bestBackend();
    if (const char *env = std::getenv("GIST_SIMD"); env && *env) {
        Backend requested;
        if (!parseBackend(env, &requested)) {
            std::fprintf(stderr,
                         "gist: GIST_SIMD=%s not recognized "
                         "(scalar|sse2|avx2); using %s\n",
                         env, backendName(b));
        } else if (!backendAvailable(requested)) {
            std::fprintf(stderr,
                         "gist: GIST_SIMD=%s unavailable on this "
                         "build/CPU; using %s\n",
                         env, backendName(b));
        } else {
            b = requested;
        }
    }
    return &opsFor(b);
}

/* Resolved lazily; setBackend()/initFromEnv() store a new table. Kernel
 * launches between parallel regions see a consistent table because the
 * pool barrier orders the store before the next dispatch. */
std::atomic<const SimdOps *> g_active{nullptr};

const SimdOps *
activeTable()
{
    const SimdOps *t = g_active.load(std::memory_order_acquire);
    if (t)
        return t;
    const SimdOps *resolved = resolveFromEnv();
    // First resolver to land wins; all racers resolve identically anyway.
    if (g_active.compare_exchange_strong(t, resolved,
                                         std::memory_order_acq_rel))
        return resolved;
    return t;
}

} // namespace

const SimdOps &
ops()
{
    return *activeTable();
}

Backend
activeBackend()
{
    return activeTable()->backend;
}

const char *
backendName(Backend b)
{
    switch (b) {
    case Backend::Scalar: return "scalar";
    case Backend::Sse2: return "sse2";
    case Backend::Avx2: return "avx2";
    }
    return "?";
}

bool
backendAvailable(Backend b)
{
    switch (b) {
    case Backend::Scalar:
        return true;
    case Backend::Sse2:
#if GIST_SIMD_HAVE_ISA
        return cpuHasSse42();
#else
        return false;
#endif
    case Backend::Avx2:
#if GIST_SIMD_HAVE_ISA
        return cpuHasAvx2();
#else
        return false;
#endif
    }
    return false;
}

Backend
bestBackend()
{
    if (backendAvailable(Backend::Avx2))
        return Backend::Avx2;
    if (backendAvailable(Backend::Sse2))
        return Backend::Sse2;
    return Backend::Scalar;
}

const SimdOps &
opsFor(Backend b)
{
#if GIST_SIMD_HAVE_ISA
    if (b == Backend::Avx2 && backendAvailable(Backend::Avx2))
        return avx2Ops();
    if (b == Backend::Sse2 && backendAvailable(Backend::Sse2))
        return sse2Ops();
#endif
    (void)b;
    return scalarOps();
}

bool
parseBackend(const char *s, Backend *out)
{
    if (std::strcmp(s, "scalar") == 0) {
        *out = Backend::Scalar;
        return true;
    }
    if (std::strcmp(s, "sse2") == 0) {
        *out = Backend::Sse2;
        return true;
    }
    if (std::strcmp(s, "avx2") == 0) {
        *out = Backend::Avx2;
        return true;
    }
    return false;
}

void
setBackend(Backend b)
{
    g_active.store(&opsFor(b), std::memory_order_release);
}

Backend
initFromEnv()
{
    const SimdOps *resolved = resolveFromEnv();
    g_active.store(resolved, std::memory_order_release);
    return resolved->backend;
}

} // namespace gist::simd
