/**
 * @file
 * Generic kernel bodies shared by the scalar and sse2 backend TUs.
 *
 * Included exactly once per backend translation unit with two macros
 * set:
 *
 *   GIST_KIMPL_NS     the namespace the kernels are emitted into
 *                     (kernels_scalar / kernels_sse2);
 *   GIST_KIMPL_NOVEC  attribute pinning codec loops unvectorized in the
 *                     scalar TU (empty elsewhere), so "scalar" stays a
 *                     true one-lane reference even at -O3 while the sse2
 *                     TU lets the compiler auto-vectorize the identical
 *                     branchless formulas.
 *
 * Everything here is branchless integer arithmetic from sf_codes.hpp,
 * so every instantiation produces bitwise-identical codec output.
 */

#ifndef GIST_KIMPL_NS
#error "define GIST_KIMPL_NS before including kernels_generic.hpp"
#endif

#include <cstdint>

#include "simd/sf_codes.hpp"

namespace gist::simd {
namespace GIST_KIMPL_NS {

template <int IDX>
GIST_KIMPL_NOVEC void
sfEncodeCodesLoop(const SfLayout &, const float *src, std::int64_t n,
                  std::uint32_t *codes)
{
    constexpr SfLayout L = kSfLayouts[IDX]; // compile-time shift counts
    const auto *bits = reinterpret_cast<const std::uint32_t *>(src);
    for (std::int64_t i = 0; i < n; ++i)
        codes[i] = sfEncodeCode(L, bits[i]);
}

template <int IDX>
GIST_KIMPL_NOVEC void
sfDecodeCodesLoop(const SfLayout &, const std::uint32_t *codes,
                  std::int64_t n, float *dst)
{
    constexpr SfLayout L = kSfLayouts[IDX];
    auto *out = reinterpret_cast<std::uint32_t *>(dst);
    for (std::int64_t i = 0; i < n; ++i)
        out[i] = sfDecodeCode(L, codes[i]);
}

template <int IDX>
GIST_KIMPL_NOVEC void
sfEncode(const float *src, std::int64_t n, std::uint32_t *words)
{
    sfEncodeBlocks(kSfLayouts[IDX], src, n, words, sfEncodeCodesLoop<IDX>);
}

template <int IDX>
GIST_KIMPL_NOVEC void
sfDecode(const std::uint32_t *words, std::int64_t n, float *dst)
{
    sfDecodeBlocks(kSfLayouts[IDX], words, n, dst, sfDecodeCodesLoop<IDX>);
}

template <int IDX>
GIST_KIMPL_NOVEC void
sfQuantize(float *values, std::int64_t n)
{
    constexpr SfLayout L = kSfLayouts[IDX];
    auto *bits = reinterpret_cast<std::uint32_t *>(values);
    for (std::int64_t i = 0; i < n; ++i)
        bits[i] = sfDecodeCode(L, sfEncodeCode(L, bits[i]));
}

GIST_KIMPL_NOVEC inline void
binarizeEncode(const float *values, std::int64_t n, std::uint8_t *bytes)
{
    std::int64_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint32_t acc = 0;
        for (int b = 0; b < 8; ++b)
            acc |= static_cast<std::uint32_t>(values[i + b] > 0.0f) << b;
        *bytes++ = static_cast<std::uint8_t>(acc);
    }
    if (i < n) {
        std::uint32_t acc = 0;
        for (int b = 0; i + b < n; ++b)
            acc |= static_cast<std::uint32_t>(values[i + b] > 0.0f) << b;
        *bytes = static_cast<std::uint8_t>(acc);
    }
}

GIST_KIMPL_NOVEC inline void
binarizeBackward(const std::uint8_t *bytes, const float *dy, std::int64_t n,
                 float *dx)
{
    const auto *dy_bits = reinterpret_cast<const std::uint32_t *>(dy);
    auto *dx_bits = reinterpret_cast<std::uint32_t *>(dx);
    for (std::int64_t i = 0; i < n; ++i) {
        const std::uint32_t keep =
            maskOf((bytes[i >> 3] >> (i & 7)) & 1u);
        dx_bits[i] = dy_bits[i] & keep;
    }
}

GIST_KIMPL_NOVEC inline std::int64_t
countNonzero(const float *values, std::int64_t n)
{
    std::int64_t count = 0;
    for (std::int64_t i = 0; i < n; ++i)
        count += (values[i] != 0.0f);
    return count;
}

GIST_KIMPL_NOVEC inline std::int64_t
csrFill(const float *values, std::int64_t n, std::uint8_t *idx, float *out,
        bool /*pad_ok*/)
{
    std::int64_t k = 0;
    for (std::int64_t i = 0; i < n; ++i) {
        const float v = values[i];
        if (v == 0.0f)
            continue;
        idx[k] = static_cast<std::uint8_t>(i);
        out[k] = v;
        ++k;
    }
    return k;
}

template <int IDX>
GIST_KIMPL_NOVEC void
sfEncodeCodes(const float *src, std::int64_t n, std::uint32_t *codes)
{
    sfEncodeCodesLoop<IDX>(kSfLayouts[IDX], src, n, codes);
}

/* The float GEMM microkernels are NOT pinned unvectorized: the scalar
 * backend only has to be the bitwise reference for the integer codecs,
 * and letting the compiler vectorize axpy/dot keeps GIST_SIMD=scalar
 * from regressing GEMM against the pre-dispatch code. */

inline void
axpy(std::int64_t n, float a, const float *x, float *y)
{
    for (std::int64_t j = 0; j < n; ++j)
        y[j] += a * x[j];
}

inline float
dot(std::int64_t n, const float *x, const float *y)
{
    // Four-lane accumulator split: exposes vector lanes and fixes the
    // reduction order so results are deterministic per backend.
    float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
    std::int64_t p = 0;
    for (; p + 4 <= n; p += 4) {
        acc0 += x[p] * y[p];
        acc1 += x[p + 1] * y[p + 1];
        acc2 += x[p + 2] * y[p + 2];
        acc3 += x[p + 3] * y[p + 3];
    }
    for (; p < n; ++p)
        acc0 += x[p] * y[p];
    return (acc0 + acc1) + (acc2 + acc3);
}

} // namespace GIST_KIMPL_NS
} // namespace gist::simd
