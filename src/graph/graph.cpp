#include "graph/graph.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gist {

NodeId
Graph::addInput(std::string name, Shape shape)
{
    Node n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.name = std::move(name);
    n.out_shape = std::move(shape);
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
}

NodeId
Graph::addNode(std::string name, std::unique_ptr<Layer> layer,
               std::vector<NodeId> inputs)
{
    GIST_ASSERT(layer != nullptr, "layer node needs a layer");
    GIST_ASSERT(!inputs.empty(), "layer node needs at least one input");
    const auto id = static_cast<NodeId>(nodes_.size());
    std::vector<Shape> in_shapes;
    for (NodeId in : inputs) {
        GIST_ASSERT(in >= 0 && in < id, "node ", name,
                    ": inputs must precede the node (got ", in, ")");
        in_shapes.push_back(nodes_[static_cast<size_t>(in)].out_shape);
    }
    Node n;
    n.id = id;
    n.name = std::move(name);
    n.out_shape = layer->outputShape(in_shapes);
    n.layer = std::move(layer);
    n.inputs = std::move(inputs);
    nodes_.push_back(std::move(n));
    return id;
}

const Node &
Graph::node(NodeId id) const
{
    GIST_ASSERT(id >= 0 && id < numNodes(), "node id ", id, " out of range");
    return nodes_[static_cast<size_t>(id)];
}

Node &
Graph::node(NodeId id)
{
    GIST_ASSERT(id >= 0 && id < numNodes(), "node id ", id, " out of range");
    return nodes_[static_cast<size_t>(id)];
}

void
Graph::initParams(Rng &rng)
{
    for (auto &n : nodes_) {
        if (n.layer) {
            Rng layer_rng = rng.fork(static_cast<std::uint64_t>(n.id));
            n.layer->initParams(layer_rng);
        }
    }
}

std::int64_t
Graph::numParams() const
{
    std::int64_t count = 0;
    for (const auto &n : nodes_) {
        if (!n.layer)
            continue;
        for (Tensor *p : const_cast<Layer *>(n.layer.get())->params())
            count += p->numel();
    }
    return count;
}

ScheduleInfo::ScheduleInfo(const Graph &graph_in)
    : graph(graph_in)
{
    const auto n = static_cast<size_t>(graph.numNodes());
    consumers_.resize(n);
    last_fwd_read.resize(n);
    bwd_reads.resize(n);

    for (const auto &node : graph.nodes())
        for (NodeId in : node.inputs)
            consumers_[static_cast<size_t>(in)].push_back(node.id);

    for (const auto &node : graph.nodes()) {
        const auto idx = static_cast<size_t>(node.id);

        int last_read = graph.fwdStep(node.id);
        for (NodeId c : consumers_[idx])
            last_read = std::max(last_read, graph.fwdStep(c));
        last_fwd_read[idx] = last_read;

        // Backward reads of this node's output: consumers that need
        // their stashed input X, and the node itself if it needs its
        // stashed output Y. Collected in descending node order =
        // ascending backward-step order.
        std::vector<int> reads;
        if (node.layer && node.layer->backwardNeeds().output)
            reads.push_back(graph.bwdStep(node.id));
        for (NodeId c : consumers_[idx]) {
            const auto &consumer = graph.node(c);
            if (consumer.layer && consumer.layer->backwardNeeds().input)
                reads.push_back(graph.bwdStep(c));
        }
        std::sort(reads.begin(), reads.end());
        bwd_reads[idx] = std::move(reads);
    }
}

const std::vector<NodeId> &
ScheduleInfo::consumers(NodeId id) const
{
    return consumers_[static_cast<size_t>(id)];
}

int
ScheduleInfo::lastFwdRead(NodeId id) const
{
    return last_fwd_read[static_cast<size_t>(id)];
}

const std::vector<int> &
ScheduleInfo::bwdReads(NodeId id) const
{
    return bwd_reads[static_cast<size_t>(id)];
}

int
ScheduleInfo::firstBwdRead(NodeId id) const
{
    const auto &reads = bwdReads(id);
    GIST_ASSERT(!reads.empty(), "node ", id, " is not stashed");
    return reads.front();
}

int
ScheduleInfo::lastBwdRead(NodeId id) const
{
    const auto &reads = bwdReads(id);
    GIST_ASSERT(!reads.empty(), "node ", id, " is not stashed");
    return reads.back();
}

bool
ScheduleInfo::hasGradient(NodeId id) const
{
    return graph.node(id).kind() != LayerKind::Input;
}

} // namespace gist
