/**
 * @file
 * Human-readable summaries of execution graphs.
 */

#pragma once

#include <string>

#include "graph/graph.hpp"

namespace gist {

/**
 * One line per node: id, name, kind, output shape, parameter count, and
 * stashedness under the layers' current modes.
 */
std::string graphSummary(const Graph &graph);

} // namespace gist
