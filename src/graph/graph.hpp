/**
 * @file
 * The static execution graph (CNTK analogue). Nodes are layers; each node
 * produces exactly one output feature map. Nodes are stored in topological
 * order, which fixes the schedule: forward step of node i is i, backward
 * step is 2N-1-i.
 *
 * ScheduleInfo derives, for every node output, its consumers, the step of
 * its last forward read, and the steps of its backward reads (from the
 * layers' BackwardNeeds). This is the liveness substrate both the executor
 * and the Gist Schedule Builder / memory planner operate on — the two
 * temporally-distant uses of a feature map in paper Figure 2 are exactly
 * lastFwdRead and the backward read steps.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/layer.hpp"

namespace gist {

using NodeId = std::int32_t;

/** One node of the execution graph. */
struct Node
{
    NodeId id = -1;
    std::string name;
    std::unique_ptr<Layer> layer; ///< null for input nodes
    std::vector<NodeId> inputs;
    Shape out_shape;

    LayerKind kind() const
    {
        return layer ? layer->kind() : LayerKind::Input;
    }
};

/** A static DNN execution graph in topological order. */
class Graph
{
  public:
    /** Add a graph input (the minibatch data). */
    NodeId addInput(std::string name, Shape shape);

    /** Add a layer node consuming the outputs of @p inputs. */
    NodeId addNode(std::string name, std::unique_ptr<Layer> layer,
                   std::vector<NodeId> inputs);

    std::int64_t numNodes() const
    {
        return static_cast<std::int64_t>(nodes_.size());
    }
    const Node &node(NodeId id) const;
    Node &node(NodeId id);

    /** All nodes, topologically ordered. */
    const std::vector<Node> &nodes() const { return nodes_; }
    std::vector<Node> &nodes() { return nodes_; }

    /** Initialize all layer parameters. */
    void initParams(Rng &rng);

    /** Total parameter element count. */
    std::int64_t numParams() const;

    /** Forward step index of node @p id. */
    int fwdStep(NodeId id) const { return static_cast<int>(id); }
    /** Backward step index of node @p id. */
    int bwdStep(NodeId id) const
    {
        return static_cast<int>(2 * numNodes() - 1 - id);
    }
    /** Total schedule steps (forward then backward). */
    int numSteps() const { return static_cast<int>(2 * numNodes()); }

  private:
    std::vector<Node> nodes_;
};

/** Per-node-output use records derived from a graph's BackwardNeeds. */
class ScheduleInfo
{
  public:
    /** Analyze @p graph with the layers' *current* modes/needs. */
    explicit ScheduleInfo(const Graph &graph);

    /** Nodes that read node @p id's output in the forward pass. */
    const std::vector<NodeId> &consumers(NodeId id) const;

    /** Step of the last forward read (production step if unconsumed). */
    int lastFwdRead(NodeId id) const;

    /** Ascending steps at which the output is read in the backward pass. */
    const std::vector<int> &bwdReads(NodeId id) const;

    /** True if the output must survive into the backward pass. */
    bool stashed(NodeId id) const { return !bwdReads(id).empty(); }

    int firstBwdRead(NodeId id) const;
    int lastBwdRead(NodeId id) const;

    /**
     * True if node @p id's gradient map exists: some consumer produces a
     * gradient for it (input nodes never get one).
     */
    bool hasGradient(NodeId id) const;

  private:
    const Graph &graph;
    std::vector<std::vector<NodeId>> consumers_;
    std::vector<int> last_fwd_read;
    std::vector<std::vector<int>> bwd_reads;
};

} // namespace gist
