#include "graph/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "memory/arena.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

namespace {

std::uint64_t
nanosSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/**
 * Does this plan's encoded form live in the CsrBuffer (vs DprBuffer)?
 * Repr::Swap reuses the same codecs for its transfer compression, so
 * every "which buffer" branch routes through here.
 */
bool
planUsesCsr(const StashPlan &plan)
{
    return plan.repr == StashPlan::Repr::Csr ||
           (plan.repr == StashPlan::Repr::Swap &&
            plan.swap_codec == StashPlan::SwapCodec::Csr);
}

/** Does this plan encode at all before retiring the FP32 buffer? */
bool
planEncodes(const StashPlan &plan)
{
    switch (plan.repr) {
    case StashPlan::Repr::Csr:
    case StashPlan::Repr::Dpr:
        return true;
    case StashPlan::Repr::Swap:
        return plan.swap_codec != StashPlan::SwapCodec::None;
    case StashPlan::Repr::Dense:
    case StashPlan::Repr::Recompute:
        return false;
    }
    return false;
}

} // namespace

Executor::Telemetry::Telemetry(obs::MetricRegistry &registry)
    : encode_ns(registry.counter("gist.encode.ns")),
      decode_ns(registry.counter("gist.decode.ns")),
      encoded_bytes(
          registry.counter("gist.encode.bytes")),
      dense_bytes_replaced(registry.counter(
          "gist.encode.dense_bytes_replaced")),
      csr_encoded_bytes(
          registry.counter("gist.csr.encoded_bytes")),
      csr_dense_bytes(
          registry.counter("gist.csr.dense_bytes")),
      dpr_encoded_bytes(
          registry.counter("gist.dpr.encoded_bytes")),
      dpr_dense_bytes(
          registry.counter("gist.dpr.dense_bytes")),
      sparsity_zero_elems(
          registry.counter("gist.sparsity.zero_elems")),
      sparsity_total_elems(registry.counter(
          "gist.sparsity.total_elems")),
      minibatches(
          registry.counter("gist.exec.minibatches")),
      codec_stall_ns(
          registry.counter("gist.codec.stall_ns")),
      codec_stalls(
          registry.counter("gist.codec.stalls")),
      codec_queue_wait_ns(registry.counter(
          "gist.codec.queue_wait_ns")),
      codec_run_ns(
          registry.counter("gist.codec.run_ns")),
      recompute_ns(
          registry.counter("gist.recompute.ns")),
      recompute_segments(registry.counter(
          "gist.recompute.segments")),
      recompute_nodes(
          registry.counter("gist.recompute.nodes")),
      recompute_dropped_bytes(registry.counter(
          "gist.recompute.dropped_bytes")),
      codec_queue_depth(
          registry.gauge("gist.codec.queue_depth")),
      pool_bytes(registry.gauge("gist.fmap_pool.bytes"))
{
}

Executor::Executor(Graph &graph, obs::MetricRegistry *registry)
    : graph_(graph),
      registry_(registry ? registry : &obs::MetricRegistry::instance()),
      states(static_cast<size_t>(graph.numNodes())),
      tele(*registry_),
      mem_accounts(new SlotAccount[static_cast<size_t>(graph.numNodes())])
{
    for (std::int64_t i = 0; i < graph_.numNodes(); ++i)
        states[static_cast<size_t>(i)].value = Tensor::placeholder(
            graph_.node(static_cast<NodeId>(i)).out_shape);
}

void
Executor::setStashPlan(NodeId id, StashPlan plan)
{
    GIST_ASSERT(id >= 0 && id < graph_.numNodes(), "bad node id");
    states[static_cast<size_t>(id)].plan = std::move(plan);
}

void
Executor::setNumThreads(int n)
{
    if (n > 0)
        gist::setNumThreads(n);
}

int
Executor::numThreads() const
{
    return gist::numThreads();
}

void
Executor::refreshSchedule()
{
    sched = std::make_unique<ScheduleInfo>(graph_);
    // Encode-ready / decode-prefetch points depend on the layers'
    // current modes (Binarize flips change BackwardNeeds), so they are
    // rebuilt together with the use records.
    codec_points = buildCodecPoints(graph_, *sched);
}

void
Executor::setAsyncCodec(bool on, int workers)
{
    async_codec = on;
    if (on)
        codec_queue_.setNumWorkers(std::max(1, workers));
    else
        codec_queue_.setNumWorkers(0); // inline execution (sync fallback)
}

void
Executor::setDevicePool(std::shared_ptr<DevicePool> pool)
{
    // Quiesce any in-flight evict/fetch against the old pool first.
    codec_queue_.drain();
    device_pool_ = std::move(pool);
    pending_evict_bytes_.store(0, std::memory_order_relaxed);
    evict_fifo_.clear();
}

const ScheduleInfo &
Executor::schedule() const
{
    GIST_ASSERT(sched != nullptr, "schedule not built yet");
    return *sched;
}

void
Executor::meterAdd(NodeId id, MemKind kind, std::uint64_t bytes)
{
    const std::int64_t level =
        tele.pool_bytes.add(static_cast<std::int64_t>(bytes));
    if (!obs::memprofEnabled())
        return;
    mem_accounts[static_cast<size_t>(id)]
        .bytes[static_cast<size_t>(kind)]
        .fetch_add(bytes, std::memory_order_relaxed);
    if (kind == MemKind::Encoded)
        encoded_level.fetch_add(static_cast<std::int64_t>(bytes),
                                std::memory_order_relaxed);
    notePoolLevel(level);
}

void
Executor::meterSub(NodeId id, MemKind kind, std::uint64_t bytes)
{
    GIST_ASSERT(tele.pool_bytes.current() >=
                    static_cast<std::int64_t>(bytes),
                "memory meter underflow");
    tele.pool_bytes.sub(static_cast<std::int64_t>(bytes));
    if (!obs::memprofEnabled())
        return;
    mem_accounts[static_cast<size_t>(id)]
        .bytes[static_cast<size_t>(kind)]
        .fetch_sub(bytes, std::memory_order_relaxed);
    if (kind == MemKind::Encoded)
        encoded_level.fetch_sub(static_cast<std::int64_t>(bytes),
                                std::memory_order_relaxed);
}

/**
 * New-peak probe, called on every metered add while memprof is on. The
 * fast path is one relaxed load + compare; only a strict new step peak
 * takes mp_mu and copies the per-slot accounts. In sync mode every
 * meter op happens on the main thread, so the snapshot taken here sums
 * to the pool level exactly; in async mode it is a best-effort capture
 * under concurrent codec-worker metering (see obs/memprof.hpp).
 */
void
Executor::notePoolLevel(std::int64_t level)
{
    if (level <= mp_peak_fast.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(mp_mu);
    if (level <= mp_peak)
        return;
    mp_peak = level;
    mp_peak_fast.store(level, std::memory_order_relaxed);
    mp_peak_step = cur_sched_step.load(std::memory_order_relaxed);
    const std::int64_t n = graph_.numNodes();
    mp_attr.resize(static_cast<size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
        for (size_t k = 0; k < 4; ++k)
            mp_attr[static_cast<size_t>(i)][k] =
                mem_accounts[static_cast<size_t>(i)].bytes[k].load(
                    std::memory_order_relaxed);
}

void
Executor::memprofSample(int sched_step, NodeId node, const char *phase)
{
    obs::MemProfSample s;
    s.sched_step = sched_step;
    s.node = node >= 0 ? graph_.node(node).name : std::string();
    s.phase = phase;
    s.pool_bytes = tele.pool_bytes.current();
    s.arena_bytes = static_cast<std::int64_t>(
        WorkspaceArena::instance().reservedBytes());
    s.encoded_bytes = encoded_level.load(std::memory_order_relaxed);
    s.tier_bytes =
        device_pool_
            ? static_cast<std::int64_t>(device_pool_->residentBytes())
            : 0;
    mp_samples.push_back(std::move(s));
}

void
Executor::memprofBeginStep()
{
    const std::int64_t n = graph_.numNodes();
    for (std::int64_t i = 0; i < n; ++i)
        for (size_t k = 0; k < 4; ++k)
            mem_accounts[static_cast<size_t>(i)].bytes[k].store(
                0, std::memory_order_relaxed);
    encoded_level.store(0, std::memory_order_relaxed);
    cur_sched_step.store(-1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mp_mu);
    mp_peak = 0;
    mp_peak_fast.store(0, std::memory_order_relaxed);
    mp_peak_step = -1;
    mp_attr.clear();
    mp_samples.clear();
}

void
Executor::memprofFinishStep()
{
    obs::MemProfStep step;
    step.step = tele.minibatches.value() - 1;
    step.job = job_tag_;
    step.arena_high_water = static_cast<std::int64_t>(
        WorkspaceArena::instance().stepHighWaterBytes());
    std::lock_guard<std::mutex> lock(mp_mu);
    step.peak_pool_bytes = mp_peak;
    step.peak_sched_step = mp_peak_step;
    const std::int64_t n = graph_.numNodes();
    const int half = static_cast<int>(n);
    if (mp_peak_step >= 0 && mp_peak_step < 2 * half) {
        const NodeId at = mp_peak_step < half
                              ? static_cast<NodeId>(mp_peak_step)
                              : static_cast<NodeId>(2 * half - 1 -
                                                    mp_peak_step);
        step.peak_node = graph_.node(at).name;
    }
    for (size_t i = 0; i < mp_attr.size(); ++i) {
        const auto &a = mp_attr[i];
        if (a[0] + a[1] + a[2] + a[3] == 0)
            continue;
        obs::MemProfSlot slot;
        slot.node = graph_.node(static_cast<NodeId>(i)).name;
        slot.value_bytes = a[0];
        slot.grad_bytes = a[1];
        slot.encoded_bytes = a[2];
        slot.aux_bytes = a[3];
        step.peak_attribution.push_back(std::move(slot));
    }
    // Synthesize the peak itself as a timeline point so the series'
    // maximum equals the reported peak (boundary samples alone can
    // miss mid-node transients such as a decode's value+encoded
    // overlap).
    obs::MemProfSample peak;
    peak.sched_step = mp_peak_step;
    peak.node = step.peak_node;
    peak.phase = "peak";
    peak.pool_bytes = mp_peak;
    peak.arena_bytes = step.arena_high_water;
    peak.encoded_bytes = -1; // not sampled at the peak instant
    step.timeline = std::move(mp_samples);
    step.timeline.push_back(std::move(peak));
    mp_samples.clear();
    obs::memprofRecordStep(std::move(step));
}

std::uint64_t
Executor::auxBytesOf(NodeId id) const
{
    const auto &node = graph_.node(id);
    if (!node.layer)
        return 0;
    std::vector<Shape> in_shapes;
    for (NodeId in : node.inputs)
        in_shapes.push_back(graph_.node(in).out_shape);
    return node.layer->auxStashBytes(in_shapes);
}

const Tensor &
Executor::value(NodeId id) const
{
    const auto &st = states[static_cast<size_t>(id)];
    GIST_ASSERT(st.state == BufState::Dense, "node ", id,
                " output is not materialized");
    return st.value;
}

double
Executor::lastSparsity(NodeId id) const
{
    return states[static_cast<size_t>(id)].sparsity;
}

double
Executor::lastFwdSeconds(NodeId id) const
{
    return states[static_cast<size_t>(id)].fwd_seconds;
}

double
Executor::lastBwdSeconds(NodeId id) const
{
    return states[static_cast<size_t>(id)].bwd_seconds;
}

double
Executor::lastCsrRatio(NodeId id) const
{
    return states[static_cast<size_t>(id)].csr_ratio;
}

void
Executor::retireAfterForward(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    if (st.state != BufState::Dense)
        return; // already retired (e.g. node feeding the same consumer
                // through two edges)

    if (collect_sparsity) {
        st.sparsity = st.value.sparsity();
        tele.sparsity_zero_elems.add(static_cast<std::uint64_t>(
            std::llround(st.sparsity *
                         static_cast<double>(st.value.numel()))));
        tele.sparsity_total_elems.add(
            static_cast<std::uint64_t>(st.value.numel()));
    }

    if (!sched->stashed(id)) {
        meterSub(id, MemKind::Value, st.value.bytes());
        st.value.releaseStorage();
        st.state = BufState::Empty;
        return;
    }

    if (st.plan.repr == StashPlan::Repr::Dense)
        return; // stays materialized until its last backward read

    if (st.plan.repr == StashPlan::Repr::Recompute) {
        // Store nothing: drop the buffer now, replay the producer
        // segment when the backward pass first reads this slot.
        tele.recompute_dropped_bytes.add(st.value.bytes());
        meterSub(id, MemKind::Value, st.value.bytes());
        st.value.releaseStorage();
        st.state = BufState::Empty;
        return;
    }

    if (st.plan.repr == StashPlan::Repr::Swap) {
        // vDNN-style offload: the stash always leaves the device at
        // retire time, optionally compressed on the way (the cDMA
        // idea). Raw swaps ship the FP32 buffer directly; codec swaps
        // encode first and the evict chains after the encode ticket.
        GIST_ASSERT(device_pool_ != nullptr, "node ", id,
                    " has a Swap plan but no device pool is attached");
        if (planEncodes(st.plan)) {
            if (async_codec)
                st.encode_job =
                    codec_queue_.submit([this, id] { encodeSlot(id); });
            else
                encodeSlot(id);
            st.state = BufState::Encoded;
        }
        submitEvict(id);
        return;
    }

    // Slot ENCODING: state flips to Encoded on the main thread at
    // submission; the codec worker owns the slot's buffers until the
    // encode ticket is joined (joinEncode/awaitDense/releaseStash).
    if (async_codec) {
        st.encode_job =
            codec_queue_.submit([this, id] { encodeSlot(id); });
    } else {
        encodeSlot(id);
    }
    st.state = BufState::Encoded;
}

/**
 * Encode the slot per its plan and retire the FP32 buffer. Runs inline
 * in sync mode, on a codec worker in async mode; every instrument it
 * touches (counters, the pool gauge) is lock-free and the slot buffers
 * are owned by this task until its ticket is joined.
 */
void
Executor::encodeSlot(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    const bool is_csr = planUsesCsr(st.plan);
    GIST_TRACE_SCOPE_F("encode", "encode %s %s", is_csr ? "csr" : "dpr",
                       graph_.node(id).name.c_str());
    const auto t0 = std::chrono::steady_clock::now();
    std::uint64_t encoded_bytes = 0;
    if (is_csr) {
        st.csr.setConfig(st.plan.csr); // retarget, keep allocations
        st.csr.encode(st.value.span());
        st.csr_ratio = st.csr.compressionRatio();
        encoded_bytes = st.csr.bytes();
        tele.csr_encoded_bytes.add(encoded_bytes);
        tele.csr_dense_bytes.add(st.value.bytes());
    } else {
        st.dpr.encode(st.plan.dpr, st.value.span());
        encoded_bytes = st.dpr.bytes();
        tele.dpr_encoded_bytes.add(encoded_bytes);
        tele.dpr_dense_bytes.add(st.value.bytes());
    }
    tele.encode_ns.add(nanosSince(t0));
    tele.encoded_bytes.add(encoded_bytes);
    tele.dense_bytes_replaced.add(st.value.bytes());
    meterAdd(id, MemKind::Encoded, encoded_bytes);
    meterSub(id, MemKind::Value, st.value.bytes());
    st.value.releaseStorage();
}

/**
 * Decode the slot back to FP32. The caller guarantees the encode has
 * completed (sync mode: trivially; async mode: the decode task waits on
 * the slot's encode ticket before calling this). The main-thread
 * BufState flip to Dense happens when the decode ticket is joined.
 */
void
Executor::decodeSlot(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    GIST_TRACE_SCOPE_F("decode", "decode %s %s",
                       planUsesCsr(st.plan) ? "csr" : "dpr",
                       graph_.node(id).name.c_str());
    const auto t0 = std::chrono::steady_clock::now();
    st.value.reallocate();
    meterAdd(id, MemKind::Value, st.value.bytes());
    if (planUsesCsr(st.plan)) {
        st.csr.decode(st.value.span());
        meterSub(id, MemKind::Encoded, st.csr.bytes());
        st.csr.reset(); // keep capacity for next step's encode
    } else {
        st.dpr.decode(st.value.span());
        meterSub(id, MemKind::Encoded, st.dpr.bytes());
        st.dpr.reset();
    }
    tele.decode_ns.add(nanosSince(t0));
}

void
Executor::materialize(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    if (st.state == BufState::Dense)
        return;
    GIST_ASSERT(st.state == BufState::Encoded, "node ", id,
                " has no stashed value to materialize");
    decodeSlot(id);
    st.state = BufState::Dense;
}

void
Executor::submitEvict(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    GIST_ASSERT(device_pool_ != nullptr, "evict without a device pool");
    GIST_ASSERT(st.state == BufState::Dense ||
                    st.state == BufState::Encoded,
                "node ", id, " is not evictable in its current state");
    GIST_ASSERT(!st.evict_job && !st.fetch_job && !st.decode_job,
                "node ", id, " has tier/decode work in flight");
    if (st.state == BufState::Dense) {
        st.tier_form = TierForm::Dense;
        st.evict_estimate = st.value.bytes();
    } else {
        const bool is_csr = planUsesCsr(st.plan);
        st.tier_form = is_csr ? TierForm::Csr : TierForm::Dpr;
        // Device bytes the transfer will free. With the encode still in
        // flight the CSR size is unknown (nnz-dependent), so credit the
        // FP32 upper bound; DPR is exactly sized by format and numel.
        if (st.encode_job && !st.encode_job.ready())
            st.evict_estimate =
                is_csr ? st.value.bytes()
                       : dprEncodedBytes(st.plan.dpr, st.value.numel());
        else
            st.evict_estimate = is_csr ? st.csr.bytes() : st.dpr.bytes();
    }
    // Credit before submit: with zero workers the task runs inline and
    // debits the credit before submit() returns.
    pending_evict_bytes_.fetch_add(st.evict_estimate,
                                   std::memory_order_relaxed);
    // The evict task waits on the slot's own encode ticket first — the
    // same earlier-submitted-only chaining that keeps decode prefetch
    // deadlock-free at any worker count.
    const TaskTicket after = st.encode_job;
    st.evict_job = codec_queue_.submit([this, id, after] {
        after.wait();
        evictSlot(id);
    });
    st.state = BufState::Evicted;
    evict_fifo_.push_back(id);
}

/**
 * Worker-side evict body: move the slot's device-resident payload
 * (dense FP32 or a serialized encoding) into the tier and release the
 * device bytes. The slot's buffers are owned by this task until its
 * ticket is joined.
 */
void
Executor::evictSlot(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    GIST_TRACE_SCOPE_F("evict", "evict %s", graph_.node(id).name.c_str());
    if (st.tier_form == TierForm::Dense) {
        const std::uint64_t bytes = st.value.bytes();
        device_pool_->store(id, st.value.data(), bytes);
        st.tier_bytes = bytes;
        meterSub(id, MemKind::Value, bytes);
        st.value.releaseStorage();
    } else {
        const bool is_csr = st.tier_form == TierForm::Csr;
        const std::uint64_t blob =
            is_csr ? st.csr.serializedBytes() : st.dpr.serializedBytes();
        st.xfer.resize(blob);
        if (is_csr)
            st.csr.serialize(st.xfer.data());
        else
            st.dpr.serialize(st.xfer.data());
        device_pool_->store(id, st.xfer.data(), blob);
        st.tier_bytes = blob;
        const std::uint64_t enc = is_csr ? st.csr.bytes() : st.dpr.bytes();
        meterSub(id, MemKind::Encoded, enc);
        if (is_csr)
            st.csr.reset(); // keep capacity for the fetch-back
        else
            st.dpr.reset();
    }
    pending_evict_bytes_.fetch_sub(st.evict_estimate,
                                   std::memory_order_relaxed);
}

void
Executor::submitFetch(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    if (st.state != BufState::Evicted || st.fetch_job)
        return;
    const TaskTicket after = st.evict_job; // fetch never passes its evict
    st.fetch_job = codec_queue_.submit([this, id, after] {
        after.wait();
        fetchSlot(id);
    });
}

/** Worker-side fetch body: bring the tier blob back onto the device. */
void
Executor::fetchSlot(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    GIST_TRACE_SCOPE_F("fetch", "fetch %s", graph_.node(id).name.c_str());
    if (st.tier_form == TierForm::Dense) {
        st.value.reallocate();
        meterAdd(id, MemKind::Value, st.value.bytes());
        device_pool_->fetch(id, st.value.data(), st.tier_bytes);
    } else {
        st.xfer.resize(st.tier_bytes);
        device_pool_->fetch(id, st.xfer.data(), st.tier_bytes);
        if (st.tier_form == TierForm::Csr) {
            st.csr.deserialize(st.xfer.data(), st.tier_bytes);
            meterAdd(id, MemKind::Encoded, st.csr.bytes());
        } else {
            st.dpr.deserialize(st.xfer.data(), st.tier_bytes);
            meterAdd(id, MemKind::Encoded, st.dpr.bytes());
        }
    }
    device_pool_->erase(id);
    st.tier_bytes = 0;
}

void
Executor::joinFetch(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    if (!st.fetch_job)
        return;
    joinTicket(st.fetch_job, "fetch", id);
    st.fetch_job.reset();
    st.evict_job.reset();  // fetch waited on it already
    st.encode_job.reset(); // evict waited on it already
    st.state = st.tier_form == TierForm::Dense ? BufState::Dense
                                               : BufState::Encoded;
    st.tier_form = TierForm::None;
}

void
Executor::enforcePoolCap(int cur_step)
{
    if (!device_pool_ || device_pool_->cap() == 0)
        return;
    const auto cap = static_cast<std::int64_t>(device_pool_->cap());
    // In-flight evicts are credited against the level so one overflow
    // does not trigger a cascade of duplicate evictions while the
    // workers catch up.
    const auto level = [&] {
        return tele.pool_bytes.current() -
               static_cast<std::int64_t>(pending_evict_bytes_.load(
                   std::memory_order_relaxed));
    };
    while (level() > cap) {
        // Pick the evictable stash whose backward read is furthest in
        // the future (Belady-style, on the known schedule): stashed,
        // past its forward reads, not yet into its backward reads, and
        // with no tier/decode work in flight. Encode-in-flight is fine
        // (the evict chains after it).
        NodeId best = -1;
        int best_read = -1;
        const std::int64_t n = graph_.numNodes();
        for (std::int64_t i = 0; i < n; ++i) {
            const auto id = static_cast<NodeId>(i);
            const auto &st = states[static_cast<size_t>(i)];
            if (!sched->stashed(id) ||
                st.plan.repr == StashPlan::Repr::Recompute)
                continue;
            if (st.state != BufState::Dense &&
                st.state != BufState::Encoded)
                continue;
            if (st.evict_job || st.fetch_job || st.decode_job)
                continue;
            if (sched->lastFwdRead(id) > cur_step)
                continue; // still feeding forward consumers
            const int next_read = sched->firstBwdRead(id);
            if (next_read <= cur_step)
                continue; // its backward reads have begun
            if (next_read > best_read ||
                (next_read == best_read && id < best)) {
                best = id;
                best_read = next_read;
            }
        }
        if (best < 0)
            break; // nothing evictable: allow the transient overshoot
        submitEvict(best);
    }
    // Hard backpressure: when the *actual* level is still above the cap
    // the producer has outrun the tier link; block on the oldest
    // in-flight evict (counted as a stall) instead of racing further
    // ahead. Never waits for anything but already-submitted transfers,
    // so this cannot deadlock; with an empty FIFO the overshoot stands
    // (the tier is unbounded, the device cap is a target).
    while (tele.pool_bytes.current() > cap && !evict_fifo_.empty()) {
        const NodeId vid = evict_fifo_.front();
        evict_fifo_.pop_front();
        auto &vst = states[static_cast<size_t>(vid)];
        if (vst.evict_job) {
            joinTicket(vst.evict_job, "evict", vid);
            vst.evict_job.reset();
        }
    }
}

bool
Executor::chunkedReader(NodeId consumer) const
{
    if (!elide_decode)
        return false;
    const LayerKind kind = graph_.node(consumer).kind();
    return kind == LayerKind::Conv ||
           (fused_consume && kind == LayerKind::Fc);
}

void
Executor::submitDecodes(NodeId consumer, NodeId chunked_reader)
{
    if (consumer < 0)
        return;
    // Slots the currently-executing consumer reads tile-by-tile (elide
    // mode) must not decode concurrently: the decode resets the very
    // encoding the chunked read walks. Defer those to the consumer's
    // own step.
    const bool hold = chunked_reader >= 0 && chunkedReader(chunked_reader);
    for (const DecodeTarget &t :
         codec_points.decode_targets[static_cast<size_t>(consumer)]) {
        auto &st = states[static_cast<size_t>(t.slot)];
        const NodeId slot = t.slot;
        if (st.state == BufState::Evicted) {
            // Prefetch-back: start the tier transfer now so it overlaps
            // the preceding backward compute like a decode prefetch.
            submitFetch(slot);
            if (st.tier_form == TierForm::Dense || st.decode_job)
                continue; // awaitDense joins the fetch / already chained
            if (t.chunkable && chunkedReader(consumer))
                continue; // fetch suffices; consumer walks the encoding
            if (hold) {
                const auto &ins = graph_.node(chunked_reader).inputs;
                if (std::find(ins.begin(), ins.end(), slot) != ins.end())
                    continue;
            }
            // Chain the decode behind the fetch (FIFO, earlier-submitted
            // only — the same deadlock-freedom argument as below).
            const TaskTicket after_fetch = st.fetch_job;
            st.decode_job = codec_queue_.submit([this, slot, after_fetch] {
                after_fetch.wait();
                decodeSlot(slot);
            });
            continue;
        }
        if (st.state != BufState::Encoded)
            continue; // dense plan, already decoded, or released
        if (st.decode_job)
            continue; // already in flight (submitted one node ahead)
        if (t.chunkable && chunkedReader(consumer))
            continue; // consumer reads the encoding tile-by-tile
        if (hold) {
            const auto &ins = graph_.node(chunked_reader).inputs;
            if (std::find(ins.begin(), ins.end(), t.slot) != ins.end())
                continue;
        }
        // The decode task waits on the slot's own encode ticket first:
        // with the FIFO queue a popped task only ever waits on
        // earlier-submitted tasks (already popped), so every worker
        // count down to one is deadlock-free.
        const TaskTicket after = st.encode_job;
        st.decode_job = codec_queue_.submit([this, slot, after] {
            after.wait();
            decodeSlot(slot);
        });
    }
}

/**
 * Join a codec ticket, classifying the join: ready tickets cost one
 * mutex acquisition; a not-ready ticket means the main thread is now
 * serialized behind codec work, so the blocked time is counted (and
 * traced) as a stall — the numerator of the overlap-efficiency metric.
 */
void
Executor::joinTicket(const TaskTicket &ticket, const char *what,
                     NodeId id)
{
    if (!ticket)
        return;
    if (ticket.ready()) {
        ticket.wait(); // no block; still the single rethrow path
        return;
    }
    GIST_TRACE_SCOPE_F("stall", "stall %s %s", what,
                       graph_.node(id).name.c_str());
    const auto t0 = std::chrono::steady_clock::now();
    ticket.wait();
    tele.codec_stall_ns.add(nanosSince(t0));
    tele.codec_stalls.add(1);
}

void
Executor::joinEncode(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    if (st.encode_job) {
        joinTicket(st.encode_job, "encode", id);
        st.encode_job.reset();
    }
}

void
Executor::awaitDense(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    if (st.decode_job) {
        // Blocks only if the prefetch came early.
        joinTicket(st.decode_job, "decode", id);
        st.decode_job.reset();
        st.encode_job.reset(); // decode waited on it already
        st.fetch_job.reset();  // (and, for evicted slots, on these two)
        st.evict_job.reset();
        st.tier_form = TierForm::None;
        st.state = BufState::Dense;
        return;
    }
    if (st.state == BufState::Dense)
        return;
    if (st.state == BufState::Evicted) {
        // No decode chained (raw swap, chunk-held, or sync mode): bring
        // the blob back, then decode inline if it came back encoded.
        submitFetch(id); // no-op when the prefetch is already in flight
        joinFetch(id);
        if (st.state == BufState::Dense)
            return;
        materialize(id);
        return;
    }
    // No prefetch in flight (e.g. elide-skipped slot read densely after
    // all): fall back to the synchronous decode path.
    joinEncode(id);
    materialize(id);
}

Tensor &
Executor::ensureGrad(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    if (st.grad.empty()) {
        st.grad = Tensor(graph_.node(id).out_shape);
        meterAdd(id, MemKind::Grad, st.grad.bytes());
    }
    return st.grad;
}

void
Executor::releaseStash(NodeId id)
{
    auto &st = states[static_cast<size_t>(id)];
    // Join any in-flight codec/tier work first so the buffers (and the
    // memory meter) are quiescent before the release bookkeeping.
    if (st.decode_job) {
        joinTicket(st.decode_job, "release", id);
        st.decode_job.reset();
        st.encode_job.reset();
        st.fetch_job.reset();
        st.evict_job.reset();
        st.tier_form = TierForm::None;
        st.state = BufState::Dense;
    } else if (st.fetch_job) {
        joinFetch(id); // -> Dense or Encoded
    } else if (st.evict_job) {
        joinTicket(st.evict_job, "release", id);
        st.evict_job.reset();
        st.encode_job.reset(); // evict waited on it already
    } else {
        joinEncode(id);
    }
    if (st.state == BufState::Dense) {
        meterSub(id, MemKind::Value, st.value.bytes());
    } else if (st.state == BufState::Encoded) {
        meterSub(id, MemKind::Encoded,
                 planUsesCsr(st.plan) ? st.csr.bytes() : st.dpr.bytes());
    } else if (st.state == BufState::Evicted) {
        // Released while tier-resident (its device bytes were already
        // un-metered by the evict); just drop the blob.
        device_pool_->erase(id);
        st.tier_bytes = 0;
        st.tier_form = TierForm::None;
    }
    st.value.releaseStorage();
    st.csr.clear();
    st.dpr.clear();
    st.xfer.clear();
    st.xfer.shrink_to_fit();
    st.state = BufState::Empty;
}

void
Executor::ensureRecomputed(NodeId id, int at_step)
{
    const auto &st = states[static_cast<size_t>(id)];
    if (st.plan.repr != StashPlan::Repr::Recompute ||
        st.state != BufState::Empty || !sched->stashed(id))
        return;
    replaySegment(id, at_step);
}

void
Executor::replaySegment(NodeId target, int at_step)
{
    GIST_TRACE_SCOPE_F("replay", "replay %s",
                       graph_.node(target).name.c_str());
    const auto t0 = std::chrono::steady_clock::now();

    // Find the minimal producer segment: walk ancestors from the target
    // until a materialized frontier. Dense ancestors are available as
    // is; encoded ancestors decode in place (always cheaper than
    // replaying past them, and their decode was due by their own first
    // backward read anyway — this just moves it earlier); only empty
    // ancestors are re-run.
    std::vector<NodeId> segment;
    std::vector<char> visited(static_cast<size_t>(graph_.numNodes()), 0);
    std::vector<NodeId> stack{ target };
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        if (visited[static_cast<size_t>(id)])
            continue;
        visited[static_cast<size_t>(id)] = 1;
        auto &st = states[static_cast<size_t>(id)];
        if (st.state == BufState::Dense)
            continue;
        if (st.state == BufState::Encoded ||
            st.state == BufState::Evicted) {
            awaitDense(id); // joins in-flight codec/tier work first
            continue;
        }
        segment.push_back(id);
        for (NodeId in : graph_.node(id).inputs)
            stack.push_back(in);
    }
    std::sort(segment.begin(), segment.end());

    // Re-run the forward bodies in topological order. FwdCtx::replay
    // keeps training state (BN running stats, dropout RNG) untouched so
    // the rebuilt values are bitwise-identical to the dropped ones.
    for (const NodeId id : segment) {
        auto &node = graph_.node(id);
        auto &st = states[static_cast<size_t>(id)];
        if (st.value.empty())
            st.value.reallocate();
        meterAdd(id, MemKind::Value, st.value.bytes());
        if (node.kind() == LayerKind::Input) {
            GIST_ASSERT(cur_input_ != nullptr,
                        "no minibatch input to replay from");
            st.value = *cur_input_;
        } else {
            FwdCtx ctx;
            for (NodeId in : node.inputs) {
                const auto &in_st = states[static_cast<size_t>(in)];
                GIST_ASSERT(in_st.state == BufState::Dense,
                            "replay input of node ", id,
                            " not materialized");
                ctx.inputs.push_back(&in_st.value);
            }
            ctx.output = &st.value;
            ctx.training = true;
            ctx.replay = true;
            GIST_TRACE_SCOPE_F("fwd", "replay %s", node.name.c_str());
            node.layer->forward(ctx);
            if (forward_quantize != DprFormat::Fp32 &&
                node.kind() != LayerKind::SoftmaxLoss)
                dprQuantizeInPlace(forward_quantize, st.value.span());
        }
        st.state = BufState::Dense;
    }

    // Keep replayed slots with a pending backward read at or after the
    // triggering step — the normal lastBwdRead release path owns them
    // from here (so one replay serves every dropped slot on the chain).
    // Everything else was segment scaffolding; release it.
    for (const NodeId id : segment) {
        if (sched->stashed(id) && sched->lastBwdRead(id) >= at_step)
            continue;
        auto &st = states[static_cast<size_t>(id)];
        meterSub(id, MemKind::Value, st.value.bytes());
        st.value.releaseStorage();
        st.state = BufState::Empty;
    }

    tele.recompute_ns.add(nanosSince(t0));
    tele.recompute_segments.add(1);
    tele.recompute_nodes.add(segment.size());
}

void
Executor::forwardOnly(const Tensor &input)
{
    if (!sched)
        refreshSchedule();
    for (std::int64_t i = 0; i < graph_.numNodes(); ++i) {
        const auto id = static_cast<NodeId>(i);
        auto &node = graph_.node(id);
        auto &st = states[static_cast<size_t>(i)];
        if (st.value.empty())
            st.value.reallocate();
        if (node.kind() == LayerKind::Input) {
            GIST_ASSERT(input.shape() == node.out_shape,
                        "input shape ", input.shape().toString(),
                        " does not match graph input ",
                        node.out_shape.toString());
            st.value = input;
        } else {
            FwdCtx ctx;
            for (NodeId in : node.inputs)
                ctx.inputs.push_back(&states[static_cast<size_t>(in)].value);
            ctx.output = &st.value;
            ctx.training = false;
            GIST_TRACE_SCOPE_F("fwd", "fwd %s", node.name.c_str());
            node.layer->forward(ctx);
        }
        st.state = BufState::Dense;
    }
}

float
Executor::runMinibatch(const Tensor &input,
                       std::span<const std::int32_t> labels)
{
    if (!sched)
        refreshSchedule();
    GIST_TRACE_SCOPE("exec", "minibatch");
    // Rewind the workspace arena while no kernels are in flight: any
    // region that overflowed last step regrows to its high-water size,
    // so warm steps serve all scratch without touching the heap.
    WorkspaceArena::instance().beginStep();
    last_stats = ExecStats{};
    cur_input_ = &input;
    tele.minibatches.add(1);
    // Per-run deltas of the shared instruments (see ExecStats docs).
    const std::uint64_t encode_ns0 = tele.encode_ns.value();
    const std::uint64_t decode_ns0 = tele.decode_ns.value();
    const std::uint64_t encoded_bytes0 = tele.encoded_bytes.value();
    const std::uint64_t dense_replaced0 = tele.dense_bytes_replaced.value();
    const std::uint64_t stall_ns0 = tele.codec_stall_ns.value();
    const std::uint64_t stalls0 = tele.codec_stalls.value();
    const std::uint64_t recompute_ns0 = tele.recompute_ns.value();
    const std::uint64_t recompute_segments0 =
        tele.recompute_segments.value();
    const std::uint64_t recompute_nodes0 = tele.recompute_nodes.value();
    const std::uint64_t recompute_dropped0 =
        tele.recompute_dropped_bytes.value();
    const CodecQueueStats q0 = codec_queue_.stats();
    codec_queue_.markDepth();
    const TierStats tier0 =
        device_pool_ ? device_pool_->stats() : TierStats{};
    evict_fifo_.clear(); // stale ids only; all tickets joined by now
    tele.pool_bytes.set(0);
    tele.pool_bytes.resetPeak();
    memory_trace.clear();
    const bool memprof = obs::memprofEnabled();
    if (memprof)
        memprofBeginStep();

    const auto n = graph_.numNodes();
    GIST_ASSERT(n > 0, "empty graph");
    auto *loss_layer = dynamic_cast<LossLayer *>(
        graph_.node(static_cast<NodeId>(n - 1)).layer.get());
    GIST_ASSERT(loss_layer != nullptr,
                "last graph node must be a loss layer for training");
    loss_layer->setLabels(labels);

    // ---- Forward pass ----
    for (std::int64_t i = 0; i < n; ++i) {
        const auto id = static_cast<NodeId>(i);
        auto &node = graph_.node(id);
        auto &st = states[static_cast<size_t>(i)];
        cur_sched_step.store(graph_.fwdStep(id),
                             std::memory_order_relaxed);
        if (st.value.empty())
            st.value.reallocate();
        // Count at production time whether the storage is fresh or was
        // left materialized by an interleaved forwardOnly() pass.
        meterAdd(id, MemKind::Value, st.value.bytes());
        if (node.kind() == LayerKind::Input) {
            GIST_ASSERT(input.shape() == node.out_shape,
                        "input shape mismatch");
            st.value = input;
        } else {
            FwdCtx ctx;
            for (NodeId in : node.inputs) {
                const auto &in_st = states[static_cast<size_t>(in)];
                GIST_ASSERT(in_st.state == BufState::Dense,
                            "input of node ", id, " not materialized");
                ctx.inputs.push_back(&in_st.value);
            }
            ctx.output = &st.value;
            ctx.training = true;
            const auto t_fwd = std::chrono::steady_clock::now();
            {
                GIST_TRACE_SCOPE_F("fwd", "fwd %s", node.name.c_str());
                node.layer->forward(ctx);
            }
            if (profile)
                st.fwd_seconds = secondsSince(t_fwd);
            meterAdd(id, MemKind::Aux,
                     auxBytesOf(id)); // masks/maps/BN stats captured
            if (forward_quantize != DprFormat::Fp32 &&
                node.kind() != LayerKind::SoftmaxLoss) {
                dprQuantizeInPlace(forward_quantize, st.value.span());
            }
        }
        st.state = BufState::Dense;

        // Retire every buffer whose last forward read just happened.
        for (NodeId in : node.inputs)
            if (sched->lastFwdRead(in) == graph_.fwdStep(id))
                retireAfterForward(in);
        if (sched->lastFwdRead(id) == graph_.fwdStep(id))
            retireAfterForward(id);
        enforcePoolCap(graph_.fwdStep(id));
        memory_trace.emplace_back(
            graph_.fwdStep(id),
            static_cast<std::uint64_t>(tele.pool_bytes.current()));
        if (memprof)
            memprofSample(graph_.fwdStep(id), id, "fwd");
    }

    // ---- Backward pass ----
    for (std::int64_t i = n - 1; i >= 0; --i) {
        const auto id = static_cast<NodeId>(i);
        auto &node = graph_.node(id);
        if (node.kind() == LayerKind::Input)
            continue;
        cur_sched_step.store(graph_.bwdStep(id),
                             std::memory_order_relaxed);

        const BackwardNeeds needs = node.layer->backwardNeeds();
        // Rematerialize Recompute-dropped stashes this node is about to
        // read, before the decode/materialize paths run (those assert
        // an encoded slot).
        if (needs.input)
            for (NodeId in : node.inputs)
                ensureRecomputed(in, graph_.bwdStep(id));
        if (needs.output)
            ensureRecomputed(id, graph_.bwdStep(id));
        // Can this consumer read the encoded stash tile-by-tile instead
        // of forcing a full decode? (Conv backward always supports it;
        // FC only via the fused GEMM B-pack.)
        auto chunked_ok = [&](NodeId in) {
            const auto &in_st = states[static_cast<size_t>(in)];
            return chunkedReader(id) &&
                   in_st.state == BufState::Encoded;
        };
        if (async_codec) {
            // Make sure this node's own dense reads are in flight (a
            // no-op when the previous iteration prefetched them), then
            // prefetch the next backward node's decodes so they overlap
            // this node's backward compute.
            submitDecodes(id);
            submitDecodes(codec_points.next_bwd[static_cast<size_t>(i)],
                          id);
        }
        // Land tier-resident reads back on device first. Slots with a
        // chained decode resolve through awaitDense below; the rest
        // (raw swaps, chunk-held fetches, sync mode) join their fetch
        // here so the chunked_ok probe sees the restored BufState.
        auto landFetched = [&](NodeId slot) {
            auto &slot_st = states[static_cast<size_t>(slot)];
            if (slot_st.state == BufState::Evicted && !slot_st.decode_job) {
                submitFetch(slot);
                joinFetch(slot);
            }
        };
        if (needs.input)
            for (NodeId in : node.inputs)
                landFetched(in);
        if (needs.output)
            landFetched(id);
        if (needs.input)
            for (NodeId in : node.inputs) {
                if (!chunked_ok(in)) {
                    if (async_codec)
                        awaitDense(in);
                    else
                        materialize(in);
                } else if (async_codec) {
                    joinEncode(in); // chunked read of the encoding
                }
            }
        if (needs.output) {
            if (async_codec)
                awaitDense(id);
            else
                materialize(id);
        }

        BwdCtx ctx;
        for (NodeId in : node.inputs) {
            const auto &in_st = states[static_cast<size_t>(in)];
            ctx.inputs.push_back(
                needs.input && in_st.state == BufState::Dense
                    ? &in_st.value
                    : nullptr);
            EncodedStash stash;
            if (needs.input && chunked_ok(in)) {
                if (planUsesCsr(in_st.plan)) {
                    stash.csr = &in_st.csr;
                    // Route through the row-sparse GEMM only when the
                    // measured sparsity clears the opt-in threshold —
                    // that path trades bitwise identity for
                    // nnz-proportional compute.
                    const std::int64_t numel = in_st.csr.numel();
                    if (numel > 0 && sparse_gemm_threshold <= 1.0) {
                        const double sparsity =
                            1.0 - static_cast<double>(in_st.csr.nnz()) /
                                      static_cast<double>(numel);
                        stash.sparse_compute =
                            sparsity >= sparse_gemm_threshold;
                    }
                } else {
                    stash.dpr = &in_st.dpr;
                }
                stash.fused = fused_consume;
            }
            ctx.encoded_inputs.push_back(stash);
        }
        const auto &st = states[static_cast<size_t>(i)];
        ctx.output = (needs.output && st.state == BufState::Dense)
                         ? &st.value
                         : nullptr;
        const bool is_loss = (i == n - 1);
        ctx.d_output = is_loss ? nullptr
                               : &ensureGrad(id); // consumers accumulated
        for (NodeId in : node.inputs) {
            if (graph_.node(in).kind() == LayerKind::Input) {
                ctx.d_inputs.push_back(nullptr);
            } else {
                Tensor &g = ensureGrad(in);
                ctx.d_inputs.push_back(&g);
            }
        }

        const auto t_bwd = std::chrono::steady_clock::now();
        {
            GIST_TRACE_SCOPE_F("bwd", "bwd %s", node.name.c_str());
            node.layer->backward(ctx);
        }
        if (profile)
            states[static_cast<size_t>(i)].bwd_seconds =
                secondsSince(t_bwd);

        if (forward_quantize != DprFormat::Fp32) {
            for (Tensor *d : ctx.d_inputs)
                if (d)
                    dprQuantizeInPlace(forward_quantize, d->span());
            for (Tensor *wg : node.layer->paramGrads())
                dprQuantizeInPlace(forward_quantize, wg->span());
        }

        // The node's own gradient map is consumed; release it.
        auto &own = states[static_cast<size_t>(i)];
        if (!own.grad.empty())
            meterSub(id, MemKind::Grad, own.grad.bytes());
        own.grad.releaseStorage();
        meterSub(id, MemKind::Aux, auxBytesOf(id));
        node.layer->releaseAuxStash();

        // Release stashes whose last backward read just happened.
        const int step = graph_.bwdStep(id);
        for (NodeId in : node.inputs)
            if (sched->stashed(in) && sched->lastBwdRead(in) == step)
                releaseStash(in);
        if (sched->stashed(id) && sched->lastBwdRead(id) == step)
            releaseStash(id);
        enforcePoolCap(step);
        memory_trace.emplace_back(
            step, static_cast<std::uint64_t>(tele.pool_bytes.current()));
        if (memprof)
            memprofSample(step, id, "bwd");
    }

    last_stats.loss = loss_layer->lastLoss();
    last_stats.encode_seconds =
        static_cast<double>(tele.encode_ns.value() - encode_ns0) * 1e-9;
    last_stats.decode_seconds =
        static_cast<double>(tele.decode_ns.value() - decode_ns0) * 1e-9;
    last_stats.encoded_bytes = tele.encoded_bytes.value() - encoded_bytes0;
    last_stats.dense_bytes_replaced =
        tele.dense_bytes_replaced.value() - dense_replaced0;
    last_stats.peak_pool_bytes =
        static_cast<std::uint64_t>(tele.pool_bytes.peak());
    last_stats.recompute_seconds =
        static_cast<double>(tele.recompute_ns.value() - recompute_ns0) *
        1e-9;
    last_stats.recompute_segments =
        tele.recompute_segments.value() - recompute_segments0;
    last_stats.recompute_nodes =
        tele.recompute_nodes.value() - recompute_nodes0;
    last_stats.recompute_dropped_bytes =
        tele.recompute_dropped_bytes.value() - recompute_dropped0;
    cur_input_ = nullptr;

    // Stall accounting: per-step deltas of the stall counters (bumped
    // by joinTicket) and of the CodecQueue's own per-ticket stats,
    // mirrored into the registry so snapshot-based tools see them.
    const CodecQueueStats q1 = codec_queue_.stats();
    last_stats.codec_stall_ns = tele.codec_stall_ns.value() - stall_ns0;
    last_stats.codec_stalls = tele.codec_stalls.value() - stalls0;
    last_stats.codec_queue_wait_ns = q1.queue_wait_ns - q0.queue_wait_ns;
    last_stats.codec_run_ns = q1.run_ns - q0.run_ns;
    last_stats.codec_queue_peak_depth = q1.max_depth;
    tele.codec_queue_wait_ns.add(last_stats.codec_queue_wait_ns);
    tele.codec_run_ns.add(last_stats.codec_run_ns);
    tele.codec_queue_depth.set(q1.max_depth);
    if (last_stats.codec_run_ns > 0) {
        const double stall = static_cast<double>(
            std::min(last_stats.codec_stall_ns, last_stats.codec_run_ns));
        last_stats.overlap_efficiency =
            1.0 - stall / static_cast<double>(last_stats.codec_run_ns);
    }

    // Tier traffic: per-step deltas of the DevicePool's cumulative
    // transfer statistics.
    if (device_pool_) {
        const TierStats tier1 = device_pool_->stats();
        last_stats.tier_evictions = tier1.stores - tier0.stores;
        last_stats.tier_fetches = tier1.fetches - tier0.fetches;
        last_stats.tier_bytes_out = tier1.bytes_out - tier0.bytes_out;
        last_stats.tier_bytes_in = tier1.bytes_in - tier0.bytes_in;
        last_stats.tier_write_ns = tier1.write_ns - tier0.write_ns;
        last_stats.tier_read_ns = tier1.read_ns - tier0.read_ns;
    }

    if (memprof)
        memprofFinishStep();
    return last_stats.loss;
}

} // namespace gist
