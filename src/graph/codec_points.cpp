#include "graph/codec_points.hpp"

#include <algorithm>

namespace gist {

CodecPoints
buildCodecPoints(const Graph &graph, const ScheduleInfo &sched)
{
    const auto n = static_cast<size_t>(graph.numNodes());
    CodecPoints points;
    points.encode_after_fwd.assign(n, false);
    points.decode_targets.assign(n, {});
    points.next_bwd.assign(n, -1);

    NodeId prev = -1; // backward runs ids in descending order
    for (std::int64_t i = graph.numNodes() - 1; i >= 0; --i) {
        const auto id = static_cast<NodeId>(i);
        const auto &node = graph.node(id);
        if (node.kind() == LayerKind::Input)
            continue;
        if (prev >= 0)
            points.next_bwd[static_cast<size_t>(prev)] = id;
        prev = id;

        points.encode_after_fwd[static_cast<size_t>(i)] = sched.stashed(id);

        const BackwardNeeds needs = node.layer->backwardNeeds();
        auto &targets = points.decode_targets[static_cast<size_t>(i)];
        auto add = [&](NodeId slot, bool chunkable) {
            const bool dup = std::any_of(
                targets.begin(), targets.end(),
                [&](const DecodeTarget &t) { return t.slot == slot; });
            if (!dup)
                targets.push_back(DecodeTarget{ slot, chunkable });
        };
        if (needs.input)
            for (NodeId in : node.inputs)
                if (sched.stashed(in))
                    add(in, node.kind() == LayerKind::Conv ||
                                node.kind() == LayerKind::Fc);
        if (needs.output && sched.stashed(id))
            add(id, false);
    }
    return points;
}

} // namespace gist
