/**
 * @file
 * Codec scheduling points for the asynchronous stash pipeline.
 *
 * The schedule builder derives, from a graph and its ScheduleInfo, the
 * two kinds of points the async executor acts on:
 *
 *  - encode-ready points: a stashed output's encode can be submitted to
 *    the codec queue the moment its last forward read retires it;
 *  - decode-prefetch points: for each backward node, the stash slots its
 *    backward reads densely — submitted one backward node *ahead* of the
 *    consumer so the decode overlaps the preceding node's backward
 *    compute, with the main thread blocking on the slot's ticket only if
 *    it arrives early.
 *
 * The points depend on layer modes (Binarize flips change BackwardNeeds),
 * so they are rebuilt alongside ScheduleInfo in Executor::refreshSchedule.
 */

#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace gist {

/** One stash slot a backward node reads densely. */
struct DecodeTarget
{
    NodeId slot = -1;
    /**
     * True when the consumer could read the slot's encoding tile-by-tile
     * instead (conv backward under elide_decode): the executor skips the
     * decode prefetch for these and joins the encode ticket instead.
     */
    bool chunkable = false;
};

/** Encode-ready / decode-prefetch points, indexed by node id. */
struct CodecPoints
{
    /** True if node id's output encodes right after its forward retire. */
    std::vector<bool> encode_after_fwd;
    /** Stash slots node id's backward pass reads densely. */
    std::vector<std::vector<DecodeTarget>> decode_targets;
    /**
     * Node whose backward runs immediately after node id's (skipping
     * Input nodes); -1 once the backward pass ends. Prefetch distance 1:
     * while node id's backward computes, next_bwd[id]'s decodes run.
     */
    std::vector<NodeId> next_bwd;
};

/** Derive the codec points for @p graph under its current layer modes. */
CodecPoints buildCodecPoints(const Graph &graph, const ScheduleInfo &sched);

} // namespace gist
