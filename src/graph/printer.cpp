#include "graph/printer.hpp"

#include <sstream>

namespace gist {

std::string
graphSummary(const Graph &graph)
{
    const ScheduleInfo sched(graph);
    std::ostringstream oss;
    oss << "graph: " << graph.numNodes() << " nodes, "
        << graph.numParams() << " parameters\n";
    for (const auto &node : graph.nodes()) {
        std::int64_t params = 0;
        if (node.layer)
            for (Tensor *p :
                 const_cast<Layer *>(node.layer.get())->params())
                params += p->numel();
        oss << "  [" << node.id << "] " << node.name << " ("
            << layerKindName(node.kind()) << ") -> "
            << node.out_shape.toString();
        if (params)
            oss << " params=" << params;
        if (sched.stashed(node.id))
            oss << " [stashed until step "
                << sched.lastBwdRead(node.id) << "]";
        if (!node.inputs.empty()) {
            oss << " in=";
            for (size_t i = 0; i < node.inputs.size(); ++i)
                oss << (i ? "," : "") << node.inputs[i];
        }
        oss << "\n";
    }
    return oss.str();
}

} // namespace gist
