/**
 * @file
 * Runtime for the execution graph with Gist stash management.
 *
 * The executor materializes each node's output feature map, retires it at
 * its last forward use (releasing FP32 storage for immediately-consumed
 * maps, or encoding it per the node's StashPlan for stashed maps), and
 * decodes encoded stashes right before their first backward use — the
 * runtime realization of paper Figure 2's lifetime split.
 *
 * Binarize is not a StashPlan: the Schedule Builder instead flips the ReLU
 * layer into sign-mask mode and the MaxPool layer into argmax-map mode,
 * after which their outputs simply stop being stashed (BackwardNeeds no
 * longer mention them) and the masks/maps ride along as layer aux stash.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "encodings/csr.hpp"
#include "encodings/dpr.hpp"
#include "graph/codec_points.hpp"
#include "graph/graph.hpp"
#include "memory/device_pool.hpp"
#include "obs/counters.hpp"
#include "obs/memprof.hpp"
#include "util/parallel.hpp"

namespace gist {

/** Loss layers additionally accept labels and report the scalar loss. */
class LossLayer : public Layer
{
  public:
    virtual void setLabels(std::span<const std::int32_t> labels) = 0;
    virtual float lastLoss() const = 0;
};

/** How a stashed feature map is stored between its two uses. */
struct StashPlan
{
    /**
     * Dense keeps the FP32 buffer; Csr/Dpr encode it at the last
     * forward read and decode before the first backward read.
     * Recompute stores *nothing*: the buffer is dropped at retire time
     * and the minimal producer forward segment is re-run on demand when
     * the backward pass first reads the slot (gradient-checkpointing
     * folded into the same per-slot plan space as the encodings).
     * Swap moves the stash off-device into the executor's DevicePool
     * tier at retire time (vDNN-style offload; optionally compressing
     * on the way per swap_codec — the cDMA idea) and fetches it back
     * ahead of the first backward read.
     */
    enum class Repr { Dense, Csr, Dpr, Recompute, Swap };

    /** Transfer encoding for Repr::Swap (None = raw FP32 offload). */
    enum class SwapCodec { None, Csr, Dpr };

    Repr repr = Repr::Dense;
    CsrConfig csr{};                   ///< for Repr::Csr / SwapCodec::Csr
    DprFormat dpr = DprFormat::Fp32;   ///< for Repr::Dpr / SwapCodec::Dpr
    SwapCodec swap_codec = SwapCodec::None; ///< for Repr::Swap
};

/**
 * Per-minibatch execution statistics.
 *
 * These are per-run *views* of the process-global instruments in
 * obs::MetricRegistry ("gist.encode.bytes", "gist.fmap_pool.bytes", ...):
 * the executor snapshots the registry at minibatch start and stores the
 * deltas here, so per-run numbers and cumulative telemetry always agree.
 */
struct ExecStats
{
    float loss = 0.0f;
    double encode_seconds = 0.0;
    double decode_seconds = 0.0;
    std::uint64_t encoded_bytes = 0;       ///< bytes of encoded stashes
    std::uint64_t dense_bytes_replaced = 0; ///< FP32 bytes they replaced
    /**
     * Peak bytes of simultaneously-resident feature-map-pool storage
     * (values, gradients, encoded stashes, layer aux) observed during
     * the minibatch — the executor-side ground truth the planner's
     * dynamicPeak() predicts.
     */
    std::uint64_t peak_pool_bytes = 0;

    /**
     * Async-pipeline stall accounting (all zero in sync mode, where
     * codec work never goes through tickets). A "stall" is the main
     * thread blocking on a codec ticket that was not ready — the
     * serialized share of codec time. Queue wait / run time are the
     * CodecQueue's own per-ticket deltas for this minibatch.
     */
    std::uint64_t codec_stall_ns = 0;   ///< main-thread block time
    std::uint64_t codec_stalls = 0;     ///< number of blocking joins
    std::uint64_t codec_queue_wait_ns = 0; ///< enqueue -> pick-up total
    std::uint64_t codec_run_ns = 0;        ///< codec task execution total
    std::int64_t codec_queue_peak_depth = 0; ///< max queued this step

    /**
     * Recompute accounting: forward-replay time spent rematerializing
     * dropped stashes this minibatch, how many segments were replayed,
     * how many node forwards they re-ran, and the FP32 bytes the drops
     * freed at retire time (the recompute analogue of
     * dense_bytes_replaced).
     */
    double recompute_seconds = 0.0;
    std::uint64_t recompute_segments = 0;
    std::uint64_t recompute_nodes = 0;
    std::uint64_t recompute_dropped_bytes = 0;
    /**
     * Share of codec run time hidden under main-thread compute:
     * 1 - stall/run (clamped to [0,1]); 1.0 when no codec work ran.
     */
    double overlap_efficiency = 1.0;

    /**
     * Tiered-memory accounting (all zero without a DevicePool): slot
     * evictions to / fetches from the slow tier this minibatch, the
     * transferred bytes, and the wall time the transfers took on the
     * codec workers (overlapped with compute in async mode, on the
     * critical path in sync mode).
     */
    std::uint64_t tier_evictions = 0;
    std::uint64_t tier_fetches = 0;
    std::uint64_t tier_bytes_out = 0; ///< device -> tier
    std::uint64_t tier_bytes_in = 0;  ///< tier -> device
    std::uint64_t tier_write_ns = 0;
    std::uint64_t tier_read_ns = 0;
};

/** Executes forward/backward minibatches over a Graph. */
class Executor
{
  public:
    /**
     * @param registry instrument registry this executor meters into.
     * nullptr (the default) uses the process-global registry — the
     * single-run configuration. A multi-job service passes one registry
     * per job, which makes the executor fully self-contained: the pool
     * gauge, codec counters and ExecStats deltas of concurrent
     * executors never touch each other.
     */
    explicit Executor(Graph &graph,
                      obs::MetricRegistry *registry = nullptr);

    /** Set the stash storage plan for node @p id's output. */
    void setStashPlan(NodeId id, StashPlan plan);

    /**
     * Quantize every feature map right after it is produced (and every
     * gradient map / weight gradient right after it is computed) — the
     * paper's "All-FP16" comparison arm. Fp32 disables it.
     */
    void setForwardQuantize(DprFormat fmt) { forward_quantize = fmt; }

    /** Collect per-ReLU-output sparsity each minibatch (small cost). */
    void setCollectSparsity(bool on) { collect_sparsity = on; }

    /** Record per-node forward/backward seconds each minibatch. */
    void setProfile(bool on) { profile = on; }

    /**
     * "Optimized software" (paper Section V-H): convolution backward
     * consumes DPR-encoded stashed inputs tile-by-tile instead of
     * materializing a full FP32 decode buffer.
     */
    void setElideDecode(bool on) { elide_decode = on; }

    /**
     * Fused consumption: conv/FC backward feed the encoded stash
     * straight into the im2col tile loops / the GEMM B-pack instead of
     * decodeRange into per-image scratch, deleting that arena
     * allocation. Bitwise-identical to the scratch path; requires
     * elide-decode to take effect. Usually set via
     * GistConfig::fused_consume / GIST_FUSED.
     */
    void setFusedConsume(bool on) { fused_consume = on; }

    /**
     * Sparsity at or above which a fused CSR stash is consumed by the
     * row-sparse GEMM route (compute ~ nnz). Float results are
     * tolerance- rather than bitwise-equal to the dense path, so the
     * default (2.0) disables it; GIST_FUSED=2 opts in at 0.5.
     */
    void setSparseGemmThreshold(double t) { sparse_gemm_threshold = t; }

    /**
     * Asynchronous codec pipeline: submit each stash encode to the
     * dedicated codec queue right after the producing layer's forward
     * retires it, and prefetch each decode one backward node ahead of
     * its consumer; the main thread blocks on the slot's ticket only
     * when the codec work has not finished yet. Each stash slot moves
     * through FP32_LIVE -> ENCODING -> ENCODED -> DECODING -> READY,
     * tracked by (BufState, encode/decode tickets) with all state
     * transitions on the main thread. Codec workers run their kernels
     * inline single-threaded, so lossless async runs are bitwise
     * identical to sync runs. Default off (sync fallback); usually set
     * via GistConfig::async_codec / GIST_ASYNC.
     *
     * @p workers sizes this executor's codec queue (clamped to >= 1
     * when @p on).
     */
    void setAsyncCodec(bool on, int workers = 1);

    /** True when the async codec pipeline is enabled. */
    bool asyncCodec() const { return async_codec; }

    /**
     * This executor's own codec queue (workers, stats, jitter). Each
     * executor owns one, so two executors in a process never share
     * FIFO ordering or stall accounting. Test hooks (setJitter) and
     * stat probes go through here.
     */
    CodecQueue &codecQueue() { return codec_queue_; }

    /**
     * Attach a bounded device pool + slow tier. With pool->cap() > 0,
     * stash slots overflowing the cap are evicted to the tier through
     * the codec queue after their last forward read and prefetched back
     * ahead of their backward reads; Repr::Swap plans always route
     * through the tier. Evicted contents round-trip bit-exactly, so
     * results are bitwise-identical to an unbounded run. nullptr
     * detaches. Must not be changed mid-minibatch.
     */
    void setDevicePool(std::shared_ptr<DevicePool> pool);

    /** The attached device pool (nullptr when unbounded / detached). */
    DevicePool *devicePool() const { return device_pool_.get(); }

    /**
     * Size the shared thread pool driving gemm/im2col/encode/decode.
     * n >= 1 forces that count; n == 0 keeps the current (auto-resolved)
     * setting. The pool is process-global, so this affects every
     * executor.
     */
    void setNumThreads(int n);

    /** Current thread count of the shared pool. */
    int numThreads() const;

    /** Seconds spent in node @p id's forward at the last minibatch. */
    double lastFwdSeconds(NodeId id) const;
    /** Seconds spent in node @p id's backward at the last minibatch. */
    double lastBwdSeconds(NodeId id) const;

    /**
     * Resident feature-map-pool bytes after every schedule step of the
     * last minibatch (entries: step index, bytes) — the executor-side
     * counterpart of the planner's liveness sweep.
     */
    const std::vector<std::pair<int, std::uint64_t>> &
    memoryTrace() const
    {
        return memory_trace;
    }

    /** Re-derive use records after layer modes changed. */
    void refreshSchedule();

    /**
     * One training step: forward + backward. Weight update is the
     * trainer's job (see train/).
     * @return the minibatch loss.
     */
    float runMinibatch(const Tensor &input,
                       std::span<const std::int32_t> labels);

    /** Inference-only forward pass; all node outputs stay materialized. */
    void forwardOnly(const Tensor &input);

    /** Node output value (must be materialized). */
    const Tensor &value(NodeId id) const;

    const ExecStats &stats() const { return last_stats; }

    /** Sparsity of node @p id's output at the last minibatch (-1 if off). */
    double lastSparsity(NodeId id) const;

    /** CSR compression ratio achieved for node @p id (-1 if not CSR). */
    double lastCsrRatio(NodeId id) const;

    Graph &graph() { return graph_; }
    const ScheduleInfo &schedule() const;

    /** The registry this executor meters into (global by default). */
    obs::MetricRegistry &registry() { return *registry_; }

    /**
     * Tag this executor's observability records with a job id: memprof
     * steps carry it as their "job" member and trace spans around
     * minibatches name it, so a multi-job process can split its
     * artifacts per job. Empty (the default) leaves records untagged.
     */
    void setJobTag(std::string tag) { job_tag_ = std::move(tag); }
    const std::string &jobTag() const { return job_tag_; }

  private:
    /**
     * Evicted = the slot's contents live in the DevicePool tier (an
     * evict was *submitted*; the transfer may still be in flight on a
     * codec worker). tier_form records what was shipped.
     */
    enum class BufState { Empty, Dense, Encoded, Evicted };

    /** What an Evicted slot holds in the tier. */
    enum class TierForm { None, Dense, Csr, Dpr };

    struct NodeState
    {
        Tensor value;
        Tensor grad;
        BufState state = BufState::Empty;
        StashPlan plan;
        CsrBuffer csr;
        DprBuffer dpr;
        /**
         * Async pipeline tickets. BufState stays the main thread's
         * authoritative view (Encoded = encode *submitted*); a non-empty
         * ticket means a codec worker may still own the slot's buffers,
         * so the main thread joins the ticket before touching them.
         * The tier tickets chain FIFO per slot: evict waits on encode,
         * fetch waits on evict, decode waits on fetch — each captured
         * at submission, so every task only waits on earlier-submitted
         * tickets and the queue stays deadlock-free at any worker count.
         */
        TaskTicket encode_job;
        TaskTicket decode_job;
        TaskTicket evict_job;
        TaskTicket fetch_job;
        /** What the tier blob holds while state == Evicted. */
        TierForm tier_form = TierForm::None;
        /** Host staging buffer for encoded tier blobs (not metered:
         *  it stands in for the DMA engine's bounce buffer). */
        std::vector<std::uint8_t> xfer;
        /** Stored blob size while tier-resident (0 otherwise). */
        std::uint64_t tier_bytes = 0;
        /** Device bytes an in-flight evict will free (credit against
         *  the pool gauge until the worker finishes the transfer). */
        std::uint64_t evict_estimate = 0;
        double sparsity = -1.0;
        double csr_ratio = -1.0;
        double fwd_seconds = 0.0;
        double bwd_seconds = 0.0;
    };

    void retireAfterForward(NodeId id);
    void materialize(NodeId id);
    Tensor &ensureGrad(NodeId id);
    void releaseStash(NodeId id);

    /**
     * Rematerialize a Recompute-dropped stash (no-op otherwise) before
     * the backward pass at schedule step @p at_step reads it.
     */
    void ensureRecomputed(NodeId id, int at_step);
    /**
     * Re-run the minimal producer forward segment that rebuilds @p
     * target's output: walk ancestors until a materialized (or
     * decodable) frontier, replay the empty ones in topological order
     * with FwdCtx::replay set, then release replayed intermediates with
     * no pending backward read at or after @p at_step. Dropped stashes
     * on the path are rebuilt by the same replay, so one segment serves
     * a chain of Recompute slots.
     */
    void replaySegment(NodeId target, int at_step);

    /** Codec-queue task bodies (run on codec workers in async mode). */
    void encodeSlot(NodeId id);
    void decodeSlot(NodeId id);

    /**
     * Tier path (all submissions on the main thread). submitEvict moves
     * a Dense or Encoded slot into the tier through the codec queue
     * (chained after any in-flight encode) and flips it to Evicted;
     * submitFetch chains the transfer back after the evict;
     * joinFetch blocks until the blob is back on "device" and restores
     * Dense/Encoded. evictSlot/fetchSlot are the worker-side bodies.
     */
    void submitEvict(NodeId id);
    void submitFetch(NodeId id);
    void joinFetch(NodeId id);
    void evictSlot(NodeId id);
    void fetchSlot(NodeId id);

    /**
     * Overflow control, called at schedule-step boundaries: while the
     * metered pool level (minus bytes already credited to in-flight
     * evicts) exceeds the cap, pick the evictable stash with the
     * furthest next read and submit its eviction; if the level still
     * exceeds the cap hard-join the oldest in-flight evict
     * (backpressure). Never blocks waiting for space only the caller
     * could free — when nothing is evictable the overshoot is allowed,
     * which is what keeps the loop deadlock-free.
     */
    void enforcePoolCap(int cur_step);

    /**
     * Submit decode prefetches for @p consumer's dense stash reads,
     * skipping slots @p chunked_reader is about to read tile-by-tile.
     */
    void submitDecodes(NodeId consumer, NodeId chunked_reader = -1);
    /** Join the encode ticket so the encoding is safe to read/release. */
    void joinEncode(NodeId id);
    /** Ensure the slot is materialized, preferring the prefetched decode. */
    void awaitDense(NodeId id);
    /**
     * Join @p ticket, counting (and tracing) a stall when it was not
     * ready yet — the per-join probe behind ExecStats' stall fields.
     */
    void joinTicket(const TaskTicket &ticket, const char *what,
                    NodeId id);

    /** What a metered byte delta is storage for (memprof attribution). */
    enum class MemKind : int { Value = 0, Grad = 1, Encoded = 2, Aux = 3 };

    /** Per-slot resident-byte account, one column per MemKind. */
    struct SlotAccount
    {
        std::array<std::atomic<std::uint64_t>, 4> bytes{};
    };

    /** Memory-meter bookkeeping (feature-map pool only). */
    void meterAdd(NodeId id, MemKind kind, std::uint64_t bytes);
    void meterSub(NodeId id, MemKind kind, std::uint64_t bytes);
    std::uint64_t auxBytesOf(NodeId id) const;

    /** New-peak probe: capture the attribution snapshot when @p level
     *  sets a strict step maximum (rare path, under mp_mu). */
    void notePoolLevel(std::int64_t level);
    /** Append one timeline sample at a schedule-step boundary. */
    void memprofSample(int sched_step, NodeId node, const char *phase);
    /** Reset per-step memprof scratch (accounts, peak, timeline). */
    void memprofBeginStep();
    /** Assemble and record the step's MemProfStep. */
    void memprofFinishStep();

    /**
     * Registry-backed instruments (see ExecStats). The memory meter is
     * the "gist.fmap_pool.bytes" gauge; encode/decode time and byte
     * counters split per encoding so compression ratios are derivable
     * from the registry alone.
     */
    struct Telemetry
    {
        explicit Telemetry(obs::MetricRegistry &registry);
        obs::Counter &encode_ns;
        obs::Counter &decode_ns;
        obs::Counter &encoded_bytes;
        obs::Counter &dense_bytes_replaced;
        obs::Counter &csr_encoded_bytes;
        obs::Counter &csr_dense_bytes;
        obs::Counter &dpr_encoded_bytes;
        obs::Counter &dpr_dense_bytes;
        obs::Counter &sparsity_zero_elems;
        obs::Counter &sparsity_total_elems;
        obs::Counter &minibatches;
        obs::Counter &codec_stall_ns;
        obs::Counter &codec_stalls;
        obs::Counter &codec_queue_wait_ns;
        obs::Counter &codec_run_ns;
        obs::Counter &recompute_ns;
        obs::Counter &recompute_segments;
        obs::Counter &recompute_nodes;
        obs::Counter &recompute_dropped_bytes;
        obs::Gauge &codec_queue_depth;
        obs::Gauge &pool_bytes;
    };

    Graph &graph_;
    /** Instrument registry (never null; see the constructor). Declared
     *  before tele so the Telemetry references resolve against it. */
    obs::MetricRegistry *registry_;
    /** Job id tag for memprof/trace records; empty = untagged. */
    std::string job_tag_;
    std::unique_ptr<ScheduleInfo> sched;
    CodecPoints codec_points;
    std::vector<NodeState> states;
    DprFormat forward_quantize = DprFormat::Fp32;
    bool collect_sparsity = false;
    bool profile = false;
    bool elide_decode = false;
    bool fused_consume = false;
    double sparse_gemm_threshold = 2.0;
    bool async_codec = false;
    /** Minibatch input of the in-flight runMinibatch, for replaying an
     *  Input-node stash (the cheapest possible recompute: a memcpy). */
    const Tensor *cur_input_ = nullptr;

    /** Does @p consumer read its encoded inputs tile-by-tile? */
    bool chunkedReader(NodeId consumer) const;
    std::vector<std::pair<int, std::uint64_t>> memory_trace;
    ExecStats last_stats;
    Telemetry tele;

    /** Bounded device pool + slow tier (nullptr = unbounded device). */
    std::shared_ptr<DevicePool> device_pool_;
    /** Device bytes in-flight evicts will free once their workers run
     *  (written by workers, read by enforcePoolCap). */
    std::atomic<std::uint64_t> pending_evict_bytes_{ 0 };
    /** Submission-ordered ids with an outstanding evict ticket — the
     *  backpressure join order (main thread only). */
    std::deque<NodeId> evict_fifo_;

    /**
     * Memory-profiler scratch (only touched when memprofEnabled()).
     * Accounts and the encoded-level tally are relaxed atomics because
     * codec workers meter concurrently in async mode; the capture
     * snapshot (attribution at the peak) lives under mp_mu. Timeline
     * samples are main-thread only. See obs/memprof.hpp for the
     * sync-exact / async-best-effort contract.
     */
    std::unique_ptr<SlotAccount[]> mem_accounts;
    std::atomic<std::int64_t> encoded_level{ 0 };
    std::atomic<int> cur_sched_step{ -1 };
    std::atomic<std::int64_t> mp_peak_fast{ 0 }; ///< lock-free probe
    std::mutex mp_mu; ///< guards the four fields below
    std::int64_t mp_peak = 0;
    int mp_peak_step = -1;
    std::vector<std::array<std::uint64_t, 4>> mp_attr;
    std::vector<obs::MemProfSample> mp_samples; ///< main thread only

    /**
     * The executor's own codec queue. Declared last so it is destroyed
     * first: its destructor drains every in-flight encode/evict/fetch/
     * decode task while the node states those tasks touch are still
     * alive.
     */
    CodecQueue codec_queue_;
};

} // namespace gist
