#include "graph/layer.hpp"

#include "util/rng.hpp"

namespace gist {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Input: return "Input";
      case LayerKind::Conv: return "Conv";
      case LayerKind::Relu: return "Relu";
      case LayerKind::Sigmoid: return "Sigmoid";
      case LayerKind::Tanh: return "Tanh";
      case LayerKind::MaxPool: return "MaxPool";
      case LayerKind::AvgPool: return "AvgPool";
      case LayerKind::Fc: return "Fc";
      case LayerKind::BatchNorm: return "BatchNorm";
      case LayerKind::Lrn: return "Lrn";
      case LayerKind::Concat: return "Concat";
      case LayerKind::Add: return "Add";
      case LayerKind::Dropout: return "Dropout";
      case LayerKind::Flatten: return "Flatten";
      case LayerKind::SoftmaxLoss: return "SoftmaxLoss";
    }
    return "?";
}

Layer::~Layer() = default;

void
Layer::initParams(Rng &rng)
{
    (void)rng;
}

std::vector<Tensor *>
Layer::params()
{
    return {};
}

std::vector<Tensor *>
Layer::paramGrads()
{
    return {};
}

std::vector<Tensor *>
Layer::stateTensors()
{
    return {};
}

std::vector<Rng *>
Layer::rngStreams()
{
    return {};
}

std::uint64_t
Layer::workspaceBytes(std::span<const Shape> in) const
{
    (void)in;
    return 0;
}

std::uint64_t
Layer::auxStashBytes(std::span<const Shape> in) const
{
    (void)in;
    return 0;
}

void
Layer::releaseAuxStash()
{
}

} // namespace gist
