/**
 * @file
 * The abstract Layer interface the execution graph is built from.
 *
 * The central piece for Gist is BackwardNeeds: each layer declares which
 * of its surrounding feature maps its backward pass truly reads
 * (paper Figure 4). The executor and the memory planner derive
 * stashed-vs-immediately-consumed classification from these declarations,
 * and the Schedule Builder changes them when it switches a layer into an
 * encoded mode (e.g. ReLU to sign-mask mode, MaxPool to argmax-map mode).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "encodings/csr.hpp"
#include "encodings/dpr.hpp"
#include "tensor/shape.hpp"
#include "tensor/tensor.hpp"

namespace gist {

class Rng;

/** Coarse layer taxonomy used by the Schedule Builder's pattern matcher. */
enum class LayerKind {
    Input,
    Conv,
    Relu,
    Sigmoid,
    Tanh,
    MaxPool,
    AvgPool,
    Fc,
    BatchNorm,
    Lrn,
    Concat,
    Add,
    Dropout,
    Flatten,
    SoftmaxLoss,
};

/** Name of a LayerKind ("Conv", "Relu", ...). */
const char *layerKindName(LayerKind kind);

/** Which stashed data a layer's backward pass reads (paper Fig. 4). */
struct BackwardNeeds
{
    bool input = false;  ///< needs its stashed input feature map(s) X
    bool output = false; ///< needs its stashed output feature map Y
};

/** Inputs handed to Layer::forward. */
struct FwdCtx
{
    std::vector<const Tensor *> inputs;
    Tensor *output = nullptr;
    bool training = true; ///< stash auxiliary data for backward?
    /**
     * This forward is a recompute replay of a stash the executor dropped
     * at forward time (StashPlan::Repr::Recompute). The layer must
     * reproduce its original output bitwise *without* re-mutating
     * training state: batchnorm skips the running-stat update, dropout
     * reuses its captured keep mask instead of advancing its RNG.
     * Deterministic aux (ReLU masks, pool argmax maps) may simply be
     * rewritten — the bytes come out identical.
     */
    bool replay = false;
};

/**
 * Inputs handed to Layer::backward.
 *
 * Entries of @c inputs / @c output may be null when the layer declared it
 * does not need them (the executor will have relinquished the storage).
 * Entries of @c d_inputs may be null when the upstream gradient is not
 * required (e.g. the data input); layers must *accumulate* (+=) into
 * non-null d_inputs because a feature map can feed several consumers.
 */
/**
 * A handle to an encoded (DPR or CSR) stash that consumers can decode
 * tile-by-tile without materializing the full FP32 buffer.
 */
struct EncodedStash
{
    const DprBuffer *dpr = nullptr;
    const CsrBuffer *csr = nullptr;
    /**
     * Consume the stash with the fused (decode-free) kernels instead of
     * decodeRange into a per-image scratch buffer. Bitwise-identical to
     * the scratch path; set by the executor from GistConfig.
     */
    bool fused = false;
    /**
     * Additionally route CSR stashes through the row-sparse GEMM so
     * compute scales with nnz. Opt-in (GIST_FUSED=2): float results are
     * tolerance- rather than bitwise-equal to the dense path because the
     * accumulation order differs.
     */
    bool sparse_compute = false;

    bool valid() const { return dpr || csr; }

    /** Decode values [offset, offset + out.size()). */
    void
    decodeRange(std::int64_t offset, std::span<float> out) const
    {
        if (dpr)
            dpr->decodeRange(offset, out);
        else
            csr->decodeRange(offset, out);
    }
};

/**
 * Inputs handed to Layer::backward.
 *
 * (continued) "Optimized software" path, paper Section V-H: when an
 * input stash is encoded and the layer can consume it tile-by-tile, the
 * executor passes an EncodedStash instead of materializing a full FP32
 * decode buffer.
 */
struct BwdCtx
{
    std::vector<const Tensor *> inputs;
    const Tensor *output = nullptr;
    const Tensor *d_output = nullptr;
    std::vector<Tensor *> d_inputs;
    /** Parallel to @c inputs; invalid entries mean "use the tensor". */
    std::vector<EncodedStash> encoded_inputs;
};

/** Abstract DNN layer: shape inference, forward, backward, parameters. */
class Layer
{
  public:
    virtual ~Layer();

    virtual LayerKind kind() const = 0;

    /** Output shape given input shapes; validates arity and geometry. */
    virtual Shape outputShape(std::span<const Shape> in) const = 0;

    /** What this layer's backward pass reads (may change with Gist mode). */
    virtual BackwardNeeds backwardNeeds() const = 0;

    /** Initialize parameters (no-op for parameter-free layers). */
    virtual void initParams(Rng &rng);

    /** Trainable parameters (same order as paramGrads()). */
    virtual std::vector<Tensor *> params();
    /** Gradients of params(), written by backward(). */
    virtual std::vector<Tensor *> paramGrads();

    /**
     * Non-trainable model state that training mutates and inference
     * reads (e.g. batchnorm running mean/var). Checkpointed alongside
     * params(): omitting it restores a model that silently evaluates
     * differently from the run that saved it.
     */
    virtual std::vector<Tensor *> stateTensors();

    /**
     * Per-layer deterministic RNG streams advanced by forward() in
     * training mode (e.g. the dropout mask generator). Checkpointed so
     * a resumed run draws the same masks the uninterrupted run would.
     */
    virtual std::vector<Rng *> rngStreams();

    /** Scratch (cuDNN-workspace analogue) bytes needed per invocation. */
    virtual std::uint64_t workspaceBytes(std::span<const Shape> in) const;

    /**
     * Bytes of layer-internal stash kept between forward and backward
     * (e.g. BN saved statistics, dropout mask, Gist pool argmax map).
     */
    virtual std::uint64_t auxStashBytes(std::span<const Shape> in) const;

    virtual void forward(const FwdCtx &ctx) = 0;
    virtual void backward(const BwdCtx &ctx) = 0;

    /** Release any layer-internal stash after its backward use. */
    virtual void releaseAuxStash();
};

} // namespace gist
