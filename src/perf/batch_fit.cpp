#include "perf/batch_fit.hpp"

#include "util/logging.hpp"

namespace gist {

namespace {

std::uint64_t
footprintAt(const std::function<Graph(std::int64_t)> &build,
            const GistConfig &config, const SparsityModel &sparsity,
            std::int64_t batch)
{
    Graph graph = build(batch);
    return planModel(graph, config, sparsity).pool_static;
}

} // namespace

BatchFitResult
largestFittingBatch(const std::function<Graph(std::int64_t)> &build,
                    const GistConfig &config,
                    const SparsityModel &sparsity,
                    std::uint64_t budget_bytes,
                    std::int64_t max_batch_cap)
{
    GIST_ASSERT(max_batch_cap >= 1, "bad batch cap");
    if (footprintAt(build, config, sparsity, 1) > budget_bytes)
        return {};

    // Exponential growth to bracket, then binary search.
    std::int64_t lo = 1; // known to fit
    std::int64_t hi = 1;
    while (hi < max_batch_cap &&
           footprintAt(build, config, sparsity, hi * 2) <= budget_bytes) {
        hi *= 2;
    }
    lo = hi;
    std::int64_t upper = std::min(max_batch_cap, hi * 2);
    while (lo + 1 < upper) {
        const std::int64_t mid = (lo + upper) / 2;
        if (footprintAt(build, config, sparsity, mid) <= budget_bytes)
            lo = mid;
        else
            upper = mid;
    }
    return { lo, footprintAt(build, config, sparsity, lo) };
}

double
speedupFromBatches(std::int64_t baseline_batch, std::int64_t gist_batch,
                   const GpuModelParams &params)
{
    GIST_ASSERT(baseline_batch >= 1 && gist_batch >= 1,
                "batches must be positive");
    return utilizationEta(static_cast<double>(gist_batch), params) /
           utilizationEta(static_cast<double>(baseline_batch), params);
}

} // namespace gist
