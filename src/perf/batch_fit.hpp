/**
 * @file
 * Figure 16 machinery: find the largest minibatch whose training
 * footprint fits the GPU memory budget, and convert minibatch-size gains
 * into throughput speedups via the utilization curve.
 */

#pragma once

#include <functional>

#include "core/planner.hpp"
#include "perf/gpu_model.hpp"

namespace gist {

/** Result of a fit search. */
struct BatchFitResult
{
    std::int64_t max_batch = 0;
    std::uint64_t footprint_bytes = 0; ///< at max_batch
};

/**
 * Largest batch (>= 1) whose MFR-pool static footprint fits in
 * @p budget_bytes under @p config; {0, 0} if even batch 1 does not fit.
 *
 * @param build batch -> graph factory
 */
BatchFitResult
largestFittingBatch(const std::function<Graph(std::int64_t)> &build,
                    const GistConfig &config,
                    const SparsityModel &sparsity,
                    std::uint64_t budget_bytes,
                    std::int64_t max_batch_cap = 1024);

/**
 * Training throughput speedup from growing the minibatch: per-image work
 * is constant, so throughput scales with the utilization factor.
 */
double speedupFromBatches(std::int64_t baseline_batch,
                          std::int64_t gist_batch,
                          const GpuModelParams &params);

} // namespace gist
