/**
 * @file
 * Analytic GPU performance model (Titan-X-class card).
 *
 * Offline substitution for the paper's measured GPU timings: per-layer
 * time is the roofline max of FLOP time and memory-traffic time. It is
 * used by the vDNN comparison (Figure 15: transfer-vs-compute overlap)
 * and the minibatch-scaling study (Figure 16). Absolute numbers are
 * model estimates; the comparisons consume only ratios.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace gist {

/** Hardware parameters (defaults: Maxwell GTX Titan X + PCIe 3.0 x16). */
struct GpuModelParams
{
    double peak_flops = 6.1e12;   ///< FP32 FLOP/s
    double mem_bandwidth = 336e9; ///< GDDR5 bytes/s
    double pcie_bandwidth = 12e9; ///< effective host link bytes/s
    /** Achievable fraction of peak FLOPs for dense conv/GEMM kernels. */
    double compute_efficiency = 0.55;
    /**
     * Minibatch size at which kernels reach half of their saturated
     * throughput (drives the Figure 16 utilization curve).
     */
    double batch_half_point = 4.0;
};

/** Estimated forward/backward seconds for one node. */
struct LayerTime
{
    double fwd = 0.0;
    double bwd = 0.0;
};

/** FLOPs of one forward invocation of @p node. */
std::uint64_t layerForwardFlops(const Graph &graph, const Node &node);

/** Bytes read+written by one forward invocation (roofline traffic). */
std::uint64_t layerForwardBytes(const Graph &graph, const Node &node);

/** Roofline time estimate for one node (backward ~ 2x forward FLOPs). */
LayerTime estimateLayerTime(const Graph &graph, const Node &node,
                            const GpuModelParams &params);

/** Per-node times for the whole graph (indexed by NodeId). */
std::vector<LayerTime> estimateGraphTimes(const Graph &graph,
                                          const GpuModelParams &params);

/** Sum of fwd+bwd across the graph: the no-transfer minibatch time. */
double minibatchComputeSeconds(const Graph &graph,
                               const GpuModelParams &params);

/**
 * GPU utilization factor in [0, 1) as a function of minibatch size:
 * b / (b + batch_half_point). Throughput(b) = b * eta(b) / t(b).
 */
double utilizationEta(double batch, const GpuModelParams &params);

} // namespace gist
