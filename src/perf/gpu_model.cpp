#include "perf/gpu_model.hpp"

#include <algorithm>

#include "layers/conv.hpp"
#include "layers/fc.hpp"

namespace gist {

std::uint64_t
layerForwardFlops(const Graph &graph, const Node &node)
{
    const std::uint64_t out_elems =
        static_cast<std::uint64_t>(node.out_shape.numel());
    switch (node.kind()) {
      case LayerKind::Conv: {
        const auto *conv = static_cast<const ConvLayer *>(node.layer.get());
        const auto &spec = conv->spec();
        const std::uint64_t taps =
            static_cast<std::uint64_t>(conv->inChannels()) *
            static_cast<std::uint64_t>(spec.kernel_h * spec.kernel_w);
        return 2 * out_elems * taps;
      }
      case LayerKind::Fc: {
        const auto &in_shape = graph.node(node.inputs[0]).out_shape;
        const std::uint64_t in_features = static_cast<std::uint64_t>(
            in_shape.numel() / in_shape.dim(0));
        return 2 * out_elems * in_features;
      }
      case LayerKind::BatchNorm:
      case LayerKind::Lrn:
        return 8 * out_elems;
      case LayerKind::MaxPool:
      case LayerKind::AvgPool: {
        // ~window size comparisons/adds per output.
        std::uint64_t in_elems = 0;
        for (NodeId in : node.inputs)
            in_elems += static_cast<std::uint64_t>(
                graph.node(in).out_shape.numel());
        return in_elems;
      }
      default:
        return out_elems;
    }
}

std::uint64_t
layerForwardBytes(const Graph &graph, const Node &node)
{
    std::uint64_t bytes =
        static_cast<std::uint64_t>(node.out_shape.numel()) * 4;
    for (NodeId in : node.inputs)
        bytes += static_cast<std::uint64_t>(
                     graph.node(in).out_shape.numel()) * 4;
    if (node.layer)
        for (Tensor *p :
             const_cast<Layer *>(node.layer.get())->params())
            bytes += static_cast<std::uint64_t>(p->numel()) * 4;
    return bytes;
}

LayerTime
estimateLayerTime(const Graph &graph, const Node &node,
                  const GpuModelParams &params)
{
    if (node.kind() == LayerKind::Input)
        return {};
    const double flops =
        static_cast<double>(layerForwardFlops(graph, node));
    const double bytes =
        static_cast<double>(layerForwardBytes(graph, node));
    const double t_compute =
        flops / (params.peak_flops * params.compute_efficiency);
    const double t_memory = bytes / params.mem_bandwidth;
    LayerTime t;
    t.fwd = std::max(t_compute, t_memory);
    // Backward runs ~2x the forward FLOPs (dW and dX passes) and touches
    // the gradients in addition to the stashes.
    t.bwd = std::max(2.0 * t_compute, 2.0 * t_memory);
    return t;
}

std::vector<LayerTime>
estimateGraphTimes(const Graph &graph, const GpuModelParams &params)
{
    std::vector<LayerTime> times(static_cast<size_t>(graph.numNodes()));
    for (const auto &node : graph.nodes())
        times[static_cast<size_t>(node.id)] =
            estimateLayerTime(graph, node, params);
    return times;
}

double
minibatchComputeSeconds(const Graph &graph, const GpuModelParams &params)
{
    double total = 0.0;
    for (const auto &t : estimateGraphTimes(graph, params))
        total += t.fwd + t.bwd;
    return total;
}

double
utilizationEta(double batch, const GpuModelParams &params)
{
    return batch / (batch + params.batch_half_point);
}

} // namespace gist
