/**
 * @file
 * CPU<->GPU swapping baselines for the Figure 15 comparison.
 *
 * Both baselines offload every stashed feature map to host memory after
 * its forward use and bring it back for its backward use over PCIe:
 *
 *  - Naive swap: transfers are synchronous — compute blocks until each
 *    offload/fetch completes (~30% overhead in the paper).
 *  - vDNN: transfers run on a separate PCIe stream and a prefetcher
 *    issues fetches in backward-use order, so only uncovered transfer
 *    time stalls compute (~15% average, up to 27%).
 *
 * Gist's overhead, modeled for the same comparison, is the extra memory
 * traffic of its encode/decode kernels — no PCIe involvement.
 */

#pragma once

#include <limits>

#include "core/gist.hpp"
#include "perf/gpu_model.hpp"

namespace gist {

/** Outcome of a swap-strategy simulation. */
struct SwapSimResult
{
    double base_seconds = 0.0;   ///< compute-only minibatch time
    double total_seconds = 0.0;  ///< with the strategy applied
    std::uint64_t transferred_bytes = 0; ///< one-way offload volume

    /**
     * Overhead relative to the compute-only time. NaN when there is no
     * base time to divide by — a zero-compute model has no meaningful
     * overhead fraction, and 0.0 would silently read as "free".
     * Callers that print it should render NaN as "n/a".
     */
    double
    overheadFraction() const
    {
        return base_seconds > 0.0
                   ? (total_seconds - base_seconds) / base_seconds
                   : std::numeric_limits<double>::quiet_NaN();
    }
};

/** Synchronous offload/fetch of all stashed feature maps. */
SwapSimResult simulateNaiveSwap(Graph &graph,
                                const GpuModelParams &params);

/** vDNN-style overlapped offload + ordered prefetch. */
SwapSimResult simulateVdnn(Graph &graph, const GpuModelParams &params);

/**
 * CDMA-style extension (the paper's reference [42]): vDNN whose DMA
 * engine compresses sparse feature maps (CSR with narrow indices) on
 * the way across PCIe, shrinking transfer time for ReLU-derived maps.
 */
SwapSimResult simulateVdnnCompressed(Graph &graph,
                                     const GpuModelParams &params,
                                     const SparsityModel &sparsity);

/**
 * Gist's modeled overhead fraction: encode+decode kernels add memory
 * traffic proportional to the FP32 and encoded sizes of every encoded
 * stash (they are bandwidth-bound elementwise kernels).
 */
double gistOverheadModel(Graph &graph, const GistConfig &config,
                         const SparsityModel &sparsity,
                         const GpuModelParams &params);

} // namespace gist
