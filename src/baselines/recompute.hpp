/**
 * @file
 * Recompute (gradient checkpointing) baseline — the paper's Section II-B
 * third alternative (Chen et al., "Training Deep Nets with Sublinear
 * Memory Cost"): instead of stashing every feature map, keep only every
 * k-th one ("checkpoints") and re-run the forward pass of each segment
 * when the backward sweep reaches it.
 *
 * The paper's argument against it: the largest layers are also the
 * slowest to recompute, so the memory win costs real time. This module
 * quantifies both sides with the same planner/perf machinery used for
 * Gist, so `bench/ext_recompute` can put them on one axis.
 */

#pragma once

#include "core/gist.hpp"
#include "perf/gpu_model.hpp"

namespace gist {

/** Outcome of a recompute-policy simulation. */
struct RecomputeResult
{
    std::uint64_t footprint = 0;   ///< fmap-pool bytes, CNTK sharing
    double overhead_fraction = 0;  ///< extra time / baseline time
    int checkpoints = 0;           ///< stashes kept
    int recomputed = 0;            ///< stashes dropped + recomputed
};

/**
 * Simulate checkpointing every @p interval nodes (interval >= 1;
 * 1 keeps everything = the baseline). The graph is put in baseline
 * (dense) mode.
 */
RecomputeResult simulateRecompute(Graph &graph, int interval,
                                  const GpuModelParams &params);

/** Chen et al.'s sqrt(N) heuristic interval for @p graph. */
int sqrtCheckpointInterval(const Graph &graph);

} // namespace gist
