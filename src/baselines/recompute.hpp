/**
 * @file
 * Recompute (gradient checkpointing) baseline — the paper's Section II-B
 * third alternative (Chen et al., "Training Deep Nets with Sublinear
 * Memory Cost"): instead of stashing every feature map, keep only every
 * k-th one ("checkpoints") and re-run the forward pass of each segment
 * when the backward sweep reaches it.
 *
 * The paper's argument against it: the largest layers are also the
 * slowest to recompute, so the memory win costs real time. This module
 * quantifies both sides with the same planner/perf machinery used for
 * Gist, so `bench/ext_recompute` can put them on one axis.
 */

#pragma once

#include "core/gist.hpp"
#include "perf/gpu_model.hpp"

namespace gist {

/** Outcome of a recompute-policy simulation. */
struct RecomputeResult
{
    std::uint64_t footprint = 0;   ///< fmap-pool bytes, CNTK sharing
    double overhead_fraction = 0;  ///< extra time / baseline time
    int checkpoints = 0;           ///< stashes kept
    int recomputed = 0;            ///< stashes dropped + recomputed
};

/**
 * Simulate checkpointing every @p interval nodes (interval >= 1;
 * 1 keeps everything = the baseline). The graph is put in baseline
 * (dense) mode.
 *
 * This is the *analytic* model (closed-form liveness + GPU cost
 * table); recomputeSchedule() below is the measured counterpart that
 * actually runs the replays.
 */
RecomputeResult simulateRecompute(Graph &graph, int interval,
                                  const GpuModelParams &params);

/**
 * The pure-recompute policy as a runnable schedule: baseline (dense)
 * mode with every stashed slot that is not a checkpoint flipped to
 * StashPlan::Repr::Recompute. Checkpoints (the graph input and every
 * @p interval-th node) stay resident and bound each replay segment —
 * the executor's on-demand replay then *measures* what
 * simulateRecompute() models. Apply with applyToExecutor() like any
 * other schedule; results are bitwise-identical to keeping everything.
 */
BuiltSchedule recomputeSchedule(Graph &graph, int interval);

/** Chen et al.'s sqrt(N) heuristic interval for @p graph. */
int sqrtCheckpointInterval(const Graph &graph);

} // namespace gist
