#include "baselines/swap_sim.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace gist {

namespace {

/** Per-stash transfer description. */
struct StashTransfer
{
    NodeId node = -1;
    double bytes = 0.0;
    double seconds = 0.0;
};

/**
 * Which stashed fmaps get swapped to the host: following vDNN's
 * best-performing policy (vDNN_conv), the inputs of convolution layers —
 * the large early feature maps that dominate the footprint. Other
 * stashes stay resident.
 */
std::vector<bool>
swappedSet(const Graph &graph, const ScheduleInfo &sched)
{
    std::vector<bool> swap(static_cast<size_t>(graph.numNodes()), false);
    for (const auto &node : graph.nodes()) {
        if (node.kind() != LayerKind::Conv)
            continue;
        for (NodeId in : node.inputs)
            if (sched.stashed(in))
                swap[static_cast<size_t>(in)] = true;
    }
    return swap;
}

/** Collect the swapped fmaps of the baseline-configured graph. */
std::vector<StashTransfer>
collectStashes(Graph &graph, const GpuModelParams &params)
{
    buildSchedule(graph, GistConfig::baseline());
    const ScheduleInfo sched(graph);
    const auto swap = swappedSet(graph, sched);
    std::vector<StashTransfer> stashes;
    for (const auto &node : graph.nodes()) {
        if (!swap[static_cast<size_t>(node.id)])
            continue;
        StashTransfer t;
        t.node = node.id;
        t.bytes = static_cast<double>(node.out_shape.numel()) * 4.0;
        t.seconds = t.bytes / params.pcie_bandwidth;
        stashes.push_back(t);
    }
    return stashes;
}

} // namespace

SwapSimResult
simulateNaiveSwap(Graph &graph, const GpuModelParams &params)
{
    const auto stashes = collectStashes(graph, params);
    const auto times = estimateGraphTimes(graph, params);

    SwapSimResult result;
    for (const auto &t : times)
        result.base_seconds += t.fwd + t.bwd;
    // Synchronous: every offload and every fetch serializes with compute.
    double transfer_seconds = 0.0;
    for (const auto &s : stashes) {
        transfer_seconds += 2.0 * s.seconds;
        result.transferred_bytes += static_cast<std::uint64_t>(s.bytes);
    }
    result.total_seconds = result.base_seconds + transfer_seconds;
    return result;
}

namespace {

/** Transfer bytes of node id's fmap under an optional compressor. */
double
transferBytes(const Graph &graph, NodeId id,
              const SparsityModel *compress)
{
    const double dense =
        static_cast<double>(graph.node(id).out_shape.numel()) * 4.0;
    if (!compress)
        return dense;
    const double sparsity = compress->at(graph, id);
    const double csr = static_cast<double>(csrBytesForSparsity(
        CsrConfig{}, graph.node(id).out_shape.numel(), sparsity));
    return std::min(dense, csr);
}

SwapSimResult
simulateVdnnImpl(Graph &graph, const GpuModelParams &params,
                 const SparsityModel *compress)
{
    const auto stashes = collectStashes(graph, params);
    const auto times = estimateGraphTimes(graph, params);
    const ScheduleInfo sched(graph);
    const auto swap = swappedSet(graph, sched);

    SwapSimResult result;
    for (const auto &t : times)
        result.base_seconds += t.fwd + t.bwd;
    for (const auto &s : stashes)
        result.transferred_bytes += static_cast<std::uint64_t>(s.bytes);

    // ---- Forward: offloads run on their own PCIe stream and overlap
    // with compute; the pass is over when both streams drain (memory for
    // in-flight layers is assumed sufficient, as in vDNN's common case).
    std::vector<double> offload_end(
        static_cast<size_t>(graph.numNodes()), 0.0);
    double compute_clock = 0.0;
    double offload_clock = 0.0;
    for (const auto &node : graph.nodes()) {
        compute_clock += times[static_cast<size_t>(node.id)].fwd;
        if (swap[static_cast<size_t>(node.id)]) {
            const double bytes = transferBytes(graph, node.id, compress);
            offload_clock = std::max(offload_clock, compute_clock) +
                            bytes / params.pcie_bandwidth;
            offload_end[static_cast<size_t>(node.id)] = offload_clock;
        }
    }
    const double forward_end = std::max(compute_clock, offload_clock);

    // ---- Backward: the prefetcher brings a stash back a bounded number
    // of layers ahead of its use (vDNN can only hold a few prefetched
    // buffers at once). The fetch for backward-layer k's stashes may
    // start once layer (k + window)'s backward started; compute stalls
    // whenever a fetch is not done in time.
    constexpr int kPrefetchWindow = 2;
    std::vector<double> fetch_end(static_cast<size_t>(graph.numNodes()),
                                  0.0);
    std::vector<bool> fetched(static_cast<size_t>(graph.numNodes()),
                              false);
    std::vector<double> bwd_starts; // start time of each processed layer
    double clock = forward_end;
    double fetch_clock = forward_end;
    for (std::int64_t i = graph.numNodes() - 1; i >= 0; --i) {
        const auto id = static_cast<NodeId>(i);
        const auto &node = graph.node(id);
        if (node.kind() == LayerKind::Input)
            continue;
        const BackwardNeeds needs = node.layer->backwardNeeds();
        std::vector<NodeId> wanted;
        if (needs.output && swap[static_cast<size_t>(id)])
            wanted.push_back(id);
        if (needs.input)
            for (NodeId in : node.inputs)
                if (swap[static_cast<size_t>(in)])
                    wanted.push_back(in);

        // The earliest issue time permitted by the lookahead window.
        double window_gate = forward_end;
        if (bwd_starts.size() >= kPrefetchWindow)
            window_gate = bwd_starts[bwd_starts.size() - kPrefetchWindow];

        double ready = clock;
        for (NodeId s : wanted) {
            const auto idx = static_cast<size_t>(s);
            if (!fetched[idx]) {
                const double bytes = transferBytes(graph, s, compress);
                const double start = std::max(
                    { fetch_clock, offload_end[idx], window_gate });
                fetch_clock = start + bytes / params.pcie_bandwidth;
                fetch_end[idx] = fetch_clock;
                fetched[idx] = true;
            }
            ready = std::max(ready, fetch_end[idx]);
        }
        bwd_starts.push_back(ready);
        clock = ready + times[static_cast<size_t>(id)].bwd;
    }
    result.total_seconds = clock;
    return result;
}

} // namespace

SwapSimResult
simulateVdnn(Graph &graph, const GpuModelParams &params)
{
    return simulateVdnnImpl(graph, params, nullptr);
}

SwapSimResult
simulateVdnnCompressed(Graph &graph, const GpuModelParams &params,
                       const SparsityModel &sparsity)
{
    return simulateVdnnImpl(graph, params, &sparsity);
}

double
gistOverheadModel(Graph &graph, const GistConfig &config,
                  const SparsityModel &sparsity,
                  const GpuModelParams &params)
{
    const BuiltSchedule schedule = buildSchedule(graph, config);
    const auto buffers = planBuffers(graph, schedule, sparsity);
    const double base = minibatchComputeSeconds(graph, params);

    // Each encoded stash costs an encode (read FP32, write encoded) and
    // a decode (read encoded, write FP32) elementwise kernel pass.
    double codec_seconds = 0.0;
    for (const auto &node : graph.nodes()) {
        const auto &decision = schedule.of(node.id);
        if (decision.repr == StashPlan::Repr::Dense &&
            !decision.binarized)
            continue;
        const double fp32 =
            static_cast<double>(node.out_shape.numel()) * 4.0;
        double encoded = fp32;
        if (decision.repr == StashPlan::Repr::Csr) {
            encoded = static_cast<double>(csrBytesForSparsity(
                schedule.config.csr, node.out_shape.numel(),
                sparsity.at(graph, node.id)));
        } else if (decision.repr == StashPlan::Repr::Dpr) {
            encoded = static_cast<double>(dprEncodedBytes(
                schedule.config.dpr_format, node.out_shape.numel()));
        } else if (decision.binarized) {
            encoded = fp32 / 32.0;
        }
        codec_seconds += 2.0 * (fp32 + encoded) / params.mem_bandwidth;
    }
    (void)buffers;
    return codec_seconds / base;
}

} // namespace gist
