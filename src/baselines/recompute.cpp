#include "baselines/recompute.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace gist {

BuiltSchedule
recomputeSchedule(Graph &graph, int interval)
{
    GIST_ASSERT(interval >= 1, "checkpoint interval must be >= 1");
    BuiltSchedule schedule = buildSchedule(graph, GistConfig::baseline());
    const ScheduleInfo sched(graph);
    for (const auto &node : graph.nodes()) {
        if (!sched.stashed(node.id))
            continue;
        if (node.kind() == LayerKind::Input ||
            (node.id % interval) == 0)
            continue; // checkpoint: stays resident, bounds the segment
        schedule.decisions[static_cast<size_t>(node.id)].repr =
            StashPlan::Repr::Recompute;
    }
    return schedule;
}

int
sqrtCheckpointInterval(const Graph &graph)
{
    return std::max(
        2, static_cast<int>(std::lround(
               std::sqrt(static_cast<double>(graph.numNodes())))));
}

RecomputeResult
simulateRecompute(Graph &graph, int interval, const GpuModelParams &params)
{
    GIST_ASSERT(interval >= 1, "checkpoint interval must be >= 1");
    const auto schedule = buildSchedule(graph, GistConfig::baseline());
    const ScheduleInfo sched(graph);
    const auto times = estimateGraphTimes(graph, params);

    RecomputeResult result;

    // A node's stash is kept iff it is a checkpoint (or the graph
    // input, which is always resident).
    auto is_checkpoint = [&](NodeId id) {
        return graph.node(id).kind() == LayerKind::Input ||
               (id % interval) == 0;
    };

    // Segment end (last node id in this node's segment).
    auto segment_last = [&](NodeId id) {
        const auto n = static_cast<NodeId>(graph.numNodes() - 1);
        const NodeId last = static_cast<NodeId>(
            (id / interval + 1) * interval - 1);
        return std::min(last, n);
    };

    // Rematerializing any dropped stash re-runs the *whole segment's*
    // forward pass from its checkpoint (convs included) — this is why
    // the paper finds recompute expensive: the biggest maps belong to
    // the slowest-to-recompute segments.
    std::vector<bool> segment_replayed(
        static_cast<size_t>(graph.numNodes() / interval + 2), false);

    std::vector<PlannedBuffer> buffers;
    double recompute_seconds = 0.0;
    double base_seconds = 0.0;
    for (const auto &node : graph.nodes()) {
        base_seconds += times[static_cast<size_t>(node.id)].fwd +
                        times[static_cast<size_t>(node.id)].bwd;
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(node.out_shape.numel()) * 4;

        if (!sched.stashed(node.id)) {
            buffers.push_back({ node.name + ":fmap",
                                DataClass::ImmediateFmap, bytes,
                                { graph.fwdStep(node.id),
                                  sched.lastFwdRead(node.id) },
                                true, node.id });
        } else if (is_checkpoint(node.id)) {
            ++result.checkpoints;
            buffers.push_back({ node.name + ":fmap",
                                DataClass::StashedFmap, bytes,
                                { graph.fwdStep(node.id),
                                  sched.lastBwdRead(node.id) },
                                true, node.id });
        } else {
            ++result.recomputed;
            // Forward copy dies at its last forward read; the segment's
            // backward re-materializes it from the preceding checkpoint
            // just before the segment's backward sweep starts.
            buffers.push_back({ node.name + ":fmap",
                                DataClass::ImmediateFmap, bytes,
                                { graph.fwdStep(node.id),
                                  sched.lastFwdRead(node.id) },
                                true, node.id });
            const NodeId seg_last = segment_last(node.id);
            buffers.push_back({ node.name + ":re",
                                DataClass::DecodeScratch, bytes,
                                { graph.bwdStep(seg_last),
                                  sched.lastBwdRead(node.id) },
                                true, node.id });
            segment_replayed[static_cast<size_t>(node.id / interval)] =
                true;
        }

        // Gradient maps (same as the regular planner).
        if (node.kind() == LayerKind::Input)
            continue;
        const auto &consumers = sched.consumers(node.id);
        if (!consumers.empty()) {
            int first_writer = graph.bwdStep(node.id);
            for (NodeId c : consumers)
                first_writer = std::min(first_writer, graph.bwdStep(c));
            buffers.push_back({ node.name + ":grad",
                                DataClass::GradientMap, bytes,
                                { first_writer,
                                  graph.bwdStep(node.id) },
                                true, node.id });
        }
    }
    (void)schedule;

    // Charge one extra forward execution for every replayed segment.
    for (const auto &node : graph.nodes()) {
        if (node.kind() == LayerKind::Input)
            continue;
        if (segment_replayed[static_cast<size_t>(node.id / interval)])
            recompute_seconds += times[static_cast<size_t>(node.id)].fwd;
    }

    result.footprint = allocateCntkStyle(buffers).total_bytes;
    result.overhead_fraction =
        base_seconds > 0.0 ? recompute_seconds / base_seconds : 0.0;
    return result;
}

} // namespace gist
