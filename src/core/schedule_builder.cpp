#include "core/schedule_builder.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/planner.hpp"
#include "memory/device_pool.hpp"
#include "layers/pool.hpp"
#include "layers/relu.hpp"
#include "obs/calibrate.hpp"
#include "obs/memprof.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace gist {

StashPlan::SwapCodec
swapCodecFor(const GistConfig &config, StashCategory category)
{
    if (config.ssdc && category == StashCategory::ReluConv)
        return StashPlan::SwapCodec::Csr;
    if (config.dpr)
        return StashPlan::SwapCodec::Dpr;
    return StashPlan::SwapCodec::None;
}

BuiltSchedule
buildSchedule(Graph &graph, const GistConfig &config)
{
    BuiltSchedule built;
    built.config = config;
    built.decisions.assign(static_cast<size_t>(graph.numNodes()), {});

    const auto categories = classifyStashes(graph);
    for (size_t i = 0; i < categories.size(); ++i)
        built.decisions[i].category = categories[i];

    // Reset every switchable layer to its baseline mode first so a
    // schedule can be rebuilt with a different config.
    for (auto &node : graph.nodes()) {
        if (auto *relu = dynamic_cast<ReluLayer *>(
                const_cast<Layer *>(node.layer.get()))) {
            relu->setStashMode(ReluLayer::StashMode::Dense);
        } else if (auto *pool = dynamic_cast<MaxPoolLayer *>(
                       const_cast<Layer *>(node.layer.get()))) {
            pool->setStashMode(MaxPoolLayer::StashMode::Dense);
        }
    }

    // Binarize: flip ReLU->Pool pairs into mask/argmax-map modes. After
    // the flip neither the ReLU output nor the pool input/output is
    // needed in the backward pass.
    if (config.binarize) {
        for (auto &node : graph.nodes()) {
            const auto idx = static_cast<size_t>(node.id);
            if (built.decisions[idx].category != StashCategory::ReluPool)
                continue;
            auto *relu = dynamic_cast<ReluLayer *>(node.layer.get());
            GIST_ASSERT(relu, "ReluPool category on a non-ReLU node");
            relu->setStashMode(ReluLayer::StashMode::Mask);
            built.decisions[idx].binarized = true;
            // The single consumer is the MaxPool (classification rule).
            for (auto &consumer : graph.nodes()) {
                if (consumer.inputs.size() == 1 &&
                    consumer.inputs[0] == node.id &&
                    consumer.kind() == LayerKind::MaxPool) {
                    auto *pool = dynamic_cast<MaxPoolLayer *>(
                        consumer.layer.get());
                    pool->setStashMode(MaxPoolLayer::StashMode::IndexMap);
                    built.decisions[static_cast<size_t>(consumer.id)]
                        .binarized = true;
                }
            }
        }
    }

    // Stashedness with the new modes decides the storage representation.
    const ScheduleInfo sched(graph);
    for (auto &node : graph.nodes()) {
        const auto idx = static_cast<size_t>(node.id);
        auto &decision = built.decisions[idx];
        if (!sched.stashed(node.id)) {
            decision.repr = StashPlan::Repr::Dense;
        } else if (config.ssdc &&
                   decision.category == StashCategory::ReluConv) {
            decision.repr = StashPlan::Repr::Csr;
        } else if (config.dpr) {
            decision.repr = StashPlan::Repr::Dpr;
        } else {
            decision.repr = StashPlan::Repr::Dense;
        }
    }

    // Inplace ReLU: the output may overwrite its producer's buffer when
    // the producer's map is immediately consumed and feeds only this ReLU.
    if (config.inplace_relu) {
        std::vector<int> consumer_count(
            static_cast<size_t>(graph.numNodes()), 0);
        for (const auto &node : graph.nodes())
            for (NodeId in : node.inputs)
                ++consumer_count[static_cast<size_t>(in)];
        for (const auto &node : graph.nodes()) {
            if (node.kind() != LayerKind::Relu)
                continue;
            const NodeId parent = node.inputs[0];
            if (graph.node(parent).kind() == LayerKind::Input)
                continue;
            if (consumer_count[static_cast<size_t>(parent)] != 1)
                continue;
            if (sched.stashed(parent))
                continue;
            built.decisions[static_cast<size_t>(node.id)].inplace = true;
        }
    }

    // Memory budget: hand every stash slot to the hybrid planner, which
    // re-chooses the representations (keep / CSR / DPR / recompute)
    // against the budget. GIST_MEM_BUDGET overrides the config so
    // benchmarks sweep budgets without a rebuild.
    std::uint64_t budget = config.mem_budget_bytes;
    if (const char *env = std::getenv("GIST_MEM_BUDGET"))
        budget = parseByteSize(env);
    // Device pool cap (the bounded "device" the swap tier sits behind).
    // Resolved here so the hybrid planner sees it: a nonzero cap makes
    // Swap an eligible per-slot choice.
    if (const char *env = std::getenv("GIST_DEVICE_POOL"))
        built.config.device_pool_bytes = parseByteSize(env);
    if (budget > 0) {
        std::string cal_path = config.calibration_path;
        if (cal_path.empty())
            if (const char *env = std::getenv("GIST_CALIBRATION"))
                cal_path = env;
        obs::CalibrationTable table;
        bool have_table = false;
        if (!cal_path.empty()) {
            std::string err;
            have_table = obs::CalibrationTable::load(cal_path, table,
                                                     &err);
            if (!have_table)
                GIST_WARN("hybrid planner falling back to the static "
                          "cost model: ",
                          err);
        }
        optimizeHybridSchedule(graph, built, budget,
                               have_table ? &table : nullptr);
    }

    return built;
}

std::string
hybridPlanJson(const BuiltSchedule &schedule)
{
    const HybridPlan &plan = schedule.hybrid;
    if (!plan.active)
        return {};
    const auto reprName = [](StashPlan::Repr r) {
        switch (r) {
          case StashPlan::Repr::Dense: return "keep";
          case StashPlan::Repr::Csr: return "csr";
          case StashPlan::Repr::Dpr: return "dpr";
          case StashPlan::Repr::Recompute: return "recompute";
          case StashPlan::Repr::Swap: return "swap";
        }
        return "?";
    };
    char buf[256];
    std::string out = "{\"kind\": \"gist-hybrid-plan\", \"version\": 1,";
    std::snprintf(buf, sizeof buf,
                  " \"budget_bytes\": %llu, \"feasible\": %s,"
                  " \"calibrated\": %s, \"keep_peak_bytes\": %llu,"
                  " \"planned_peak_bytes\": %llu,"
                  " \"est_overhead_seconds\": %.9g,"
                  " \"missing_shapes\": %d, \"slots\": [",
                  static_cast<unsigned long long>(plan.budget_bytes),
                  plan.feasible ? "true" : "false",
                  plan.calibrated ? "true" : "false",
                  static_cast<unsigned long long>(plan.keep_peak_bytes),
                  static_cast<unsigned long long>(
                      plan.planned_peak_bytes),
                  plan.est_overhead_seconds, plan.missing_shapes);
    out += buf;
    bool first = true;
    for (const HybridSlot &slot : plan.slots) {
        // Node names come from model builders (identifier-style); no
        // escaping machinery needed for a diagnostics artifact.
        std::snprintf(buf, sizeof buf,
                      "%s{\"node\": %d, \"name\": \"%s\","
                      " \"category\": \"%s\", \"repr\": \"%s\","
                      " \"fp32_bytes\": %llu, \"stored_bytes\": %llu,"
                      " \"tier_bytes\": %llu, \"est_seconds\": %.9g}",
                      first ? "" : ", ", slot.node, slot.name.c_str(),
                      stashCategoryName(slot.category),
                      reprName(slot.repr),
                      static_cast<unsigned long long>(slot.fp32_bytes),
                      static_cast<unsigned long long>(slot.stored_bytes),
                      static_cast<unsigned long long>(slot.tier_bytes),
                      slot.est_seconds);
        out += buf;
        first = false;
    }
    out += "]}";
    return out;
}

void
applyToExecutor(const BuiltSchedule &schedule, Executor &exec)
{
    const auto &graph = exec.graph();
    for (const auto &node : graph.nodes()) {
        const auto &decision = schedule.of(node.id);
        StashPlan plan;
        switch (decision.repr) {
          case StashPlan::Repr::Dense:
            plan.repr = StashPlan::Repr::Dense;
            break;
          case StashPlan::Repr::Csr:
            plan.repr = StashPlan::Repr::Csr;
            plan.csr = schedule.config.csr;
            break;
          case StashPlan::Repr::Dpr:
            plan.repr = StashPlan::Repr::Dpr;
            plan.dpr = schedule.config.dpr_format;
            break;
          case StashPlan::Repr::Recompute:
            plan.repr = StashPlan::Repr::Recompute;
            break;
          case StashPlan::Repr::Swap:
            plan.repr = StashPlan::Repr::Swap;
            plan.swap_codec =
                swapCodecFor(schedule.config, decision.category);
            if (plan.swap_codec == StashPlan::SwapCodec::Csr)
                plan.csr = schedule.config.csr;
            else if (plan.swap_codec == StashPlan::SwapCodec::Dpr)
                plan.dpr = schedule.config.dpr_format;
            break;
        }
        exec.setStashPlan(node.id, plan);
    }
    // Bounded device: attach the pool + slow tier whenever a cap is set
    // or the plan contains swap slots (a pure-swap plan still needs the
    // tier even on an unbounded device). Env overrides let benchmarks
    // redirect the tier without a rebuild; the cap itself was resolved
    // in buildSchedule() so the planner and executor agree on it.
    {
        bool any_swap = false;
        for (const auto &decision : schedule.decisions)
            any_swap |= decision.repr == StashPlan::Repr::Swap;
        if (schedule.config.device_pool_bytes > 0 || any_swap) {
            DevicePoolConfig pc;
            pc.registry = &exec.registry();
            pc.cap_bytes = schedule.config.device_pool_bytes;
            pc.tier_path = schedule.config.tier_path;
            if (const char *env = std::getenv("GIST_TIER_PATH"))
                pc.tier_path = env;
            pc.tier_bytes_per_second =
                schedule.config.tier_bandwidth_bytes_per_s;
            if (const char *env = std::getenv("GIST_TIER_GBPS"))
                pc.tier_bytes_per_second =
                    std::strtod(env, nullptr) * 1e9;
            exec.setDevicePool(std::make_shared<DevicePool>(pc));
        } else {
            exec.setDevicePool(nullptr);
        }
    }
    exec.setElideDecode(schedule.config.elide_decode_buffer);
    // Fused consumption: config value, overridable by GIST_FUSED.
    // 0 = decode-to-scratch path, 1 = fused (bitwise), 2 = fused plus
    // the row-sparse GEMM route at >= 50% measured sparsity
    // (tolerance-gated opt-in).
    bool fused_consume = schedule.config.fused_consume;
    double sparse_thr = schedule.config.sparse_gemm_threshold;
    if (const char *env = std::getenv("GIST_FUSED")) {
        const long v = std::strtol(env, nullptr, 10);
        fused_consume = v != 0;
        if (v >= 2 && sparse_thr > 1.0)
            sparse_thr = 0.5;
    }
    exec.setFusedConsume(fused_consume);
    exec.setSparseGemmThreshold(sparse_thr);
    exec.setNumThreads(schedule.config.num_threads);
    // Async codec pipeline: config value, overridable by GIST_ASYNC so
    // benchmarks flip modes without a rebuild. The env override lives
    // here (config layer) on purpose: tests drive Executor::setAsyncCodec
    // directly for side-by-side sync/async comparisons.
    bool async_codec = schedule.config.async_codec;
    if (const char *env = std::getenv("GIST_ASYNC"))
        async_codec = std::strtol(env, nullptr, 10) != 0;
    int codec_threads = schedule.config.codec_threads;
    if (const char *env = std::getenv("GIST_CODEC_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            codec_threads = static_cast<int>(v);
        else
            GIST_WARN("ignoring bad GIST_CODEC_THREADS value '", env, "'");
    }
    exec.setAsyncCodec(async_codec, codec_threads);
    if (!schedule.config.trace_path.empty())
        obs::traceStart(schedule.config.trace_path);
    if (!schedule.config.metrics_path.empty())
        obs::metricsOpen(schedule.config.metrics_path);
    if (!schedule.config.memprof_path.empty())
        obs::memprofStart(schedule.config.memprof_path);
    // Surface the hybrid plan in the run's artifacts, so gist_prof can
    // put plan-vs-actual side by side: one "plan" record in the metrics
    // JSONL and a "plan" object in the memprof JSON.
    if (schedule.hybrid.active) {
        const std::string plan_json = hybridPlanJson(schedule);
        if (obs::metricsEnabled()) {
            obs::JsonLine line;
            line.field("record", "plan").raw("plan", plan_json);
            obs::metricsWrite(line);
        }
        obs::memprofSetPlan(plan_json);
    }
    exec.refreshSchedule();
}

} // namespace gist
