#include "core/config.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/logging.hpp"

namespace gist {

std::uint64_t
parseByteSize(const std::string &text)
{
    if (text.empty())
        GIST_FATAL("empty byte-size string");
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str())
        GIST_FATAL("malformed byte-size '", text, "'");
    if (!std::isfinite(value) || value < 0.0)
        GIST_FATAL("byte-size '", text, "' is not a finite non-negative value");
    double scale = 1.0;
    std::string suffix;
    for (const char *p = end; *p != '\0'; ++p)
        if (!std::isspace(static_cast<unsigned char>(*p)))
            suffix += static_cast<char>(
                std::tolower(static_cast<unsigned char>(*p)));
    if (suffix == "k" || suffix == "kb")
        scale = 1024.0;
    else if (suffix == "m" || suffix == "mb")
        scale = 1024.0 * 1024.0;
    else if (suffix == "g" || suffix == "gb")
        scale = 1024.0 * 1024.0 * 1024.0;
    else if (!suffix.empty())
        GIST_FATAL("malformed byte-size suffix '", text, "'");
    const double scaled = value * scale;
    // 2^64 exactly; >= catches the doubles that would wrap on conversion.
    if (scaled >= 18446744073709551616.0)
        GIST_FATAL("byte-size '", text, "' overflows 64 bits");
    return static_cast<std::uint64_t>(scaled);
}

} // namespace gist
