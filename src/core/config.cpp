#include "core/config.hpp"

#include <cctype>
#include <cstdlib>

#include "util/logging.hpp"

namespace gist {

std::uint64_t
parseByteSize(const std::string &text)
{
    if (text.empty()) {
        GIST_WARN("empty byte-size string");
        return 0;
    }
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || value < 0.0) {
        GIST_WARN("malformed byte-size '", text, "'");
        return 0;
    }
    double scale = 1.0;
    std::string suffix;
    for (const char *p = end; *p != '\0'; ++p)
        if (!std::isspace(static_cast<unsigned char>(*p)))
            suffix += static_cast<char>(
                std::tolower(static_cast<unsigned char>(*p)));
    if (suffix == "k" || suffix == "kb")
        scale = 1024.0;
    else if (suffix == "m" || suffix == "mb")
        scale = 1024.0 * 1024.0;
    else if (suffix == "g" || suffix == "gb")
        scale = 1024.0 * 1024.0 * 1024.0;
    else if (!suffix.empty()) {
        GIST_WARN("malformed byte-size suffix '", text, "'");
        return 0;
    }
    return static_cast<std::uint64_t>(value * scale);
}

} // namespace gist
