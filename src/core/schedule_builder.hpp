/**
 * @file
 * Gist's Schedule Builder (paper Section IV-B).
 *
 * Given an execution graph and a GistConfig it
 *  1. pattern-matches the stash categories (classify.hpp),
 *  2. rewrites the execution: flips ReLU layers into sign-mask mode and
 *     MaxPool layers into argmax-map mode for Binarize pairs, and assigns
 *     CSR/DPR StashPlans (the runtime encode/decode functions) to the
 *     remaining stashed feature maps,
 *  3. produces the per-buffer liveness the memory allocator consumes
 *     (planner.hpp drives step 3).
 */

#pragma once

#include <vector>

#include "core/classify.hpp"
#include "core/config.hpp"
#include "graph/executor.hpp"

namespace gist {

/** What the Schedule Builder decided for each node's output. */
struct ScheduleDecision
{
    StashCategory category = StashCategory::NotStashed;
    StashPlan::Repr repr = StashPlan::Repr::Dense;
    bool binarized = false;    ///< ReLU mask + pool map applied
    bool inplace = false;      ///< output aliases its producer's buffer
};

/** The rewritten schedule: per-node decisions plus the config used. */
struct BuiltSchedule
{
    GistConfig config;
    std::vector<ScheduleDecision> decisions;

    const ScheduleDecision &
    of(NodeId id) const
    {
        return decisions[static_cast<size_t>(id)];
    }
};

/**
 * Apply @p config to @p graph: set layer modes (mutates ReLU/MaxPool
 * layers) and compute per-node decisions. Call with the graph in
 * baseline mode or any previous mode; modes are (re)set absolutely.
 */
BuiltSchedule buildSchedule(Graph &graph, const GistConfig &config);

/**
 * Install the runtime side of @p schedule on an executor: StashPlans for
 * CSR/DPR nodes (layer modes were already set by buildSchedule).
 */
void applyToExecutor(const BuiltSchedule &schedule, Executor &exec);

} // namespace gist
