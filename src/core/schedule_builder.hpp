/**
 * @file
 * Gist's Schedule Builder (paper Section IV-B).
 *
 * Given an execution graph and a GistConfig it
 *  1. pattern-matches the stash categories (classify.hpp),
 *  2. rewrites the execution: flips ReLU layers into sign-mask mode and
 *     MaxPool layers into argmax-map mode for Binarize pairs, and assigns
 *     CSR/DPR StashPlans (the runtime encode/decode functions) to the
 *     remaining stashed feature maps,
 *  3. produces the per-buffer liveness the memory allocator consumes
 *     (planner.hpp drives step 3).
 */

#pragma once

#include <vector>

#include "core/classify.hpp"
#include "core/config.hpp"
#include "graph/executor.hpp"

namespace gist {

/** What the Schedule Builder decided for each node's output. */
struct ScheduleDecision
{
    StashCategory category = StashCategory::NotStashed;
    StashPlan::Repr repr = StashPlan::Repr::Dense;
    bool binarized = false;    ///< ReLU mask + pool map applied
    bool inplace = false;      ///< output aliases its producer's buffer
};

/** One stash slot's outcome from the budget-driven hybrid planner. */
struct HybridSlot
{
    NodeId node = -1;
    std::string name;
    StashCategory category = StashCategory::Other;
    StashPlan::Repr repr = StashPlan::Repr::Dense;
    std::uint64_t fp32_bytes = 0;   ///< dense bytes the choice governs
    std::uint64_t stored_bytes = 0; ///< modeled bytes across the gap
    std::uint64_t tier_bytes = 0;   ///< bytes moved per direction (swap)
    double est_seconds = 0.0;       ///< modeled per-step overhead
};

/**
 * Summary of the hybrid planner's run (active only when a memory
 * budget was set). The modeled peak is a conservative upper bound of
 * the executor's measured ExecStats::peak_pool_bytes, so feasible
 * plans keep the measured peak at or under the budget too.
 */
struct HybridPlan
{
    bool active = false;      ///< a budget was set and planning ran
    bool feasible = true;     ///< planned peak fits the budget
    bool calibrated = false;  ///< priced from a measured calibration.json
    std::uint64_t budget_bytes = 0;
    std::uint64_t keep_peak_bytes = 0;    ///< all-keep modeled peak
    std::uint64_t planned_peak_bytes = 0; ///< chosen-plan modeled peak
    double est_overhead_seconds = 0.0;    ///< codec + replay per step
    int missing_shapes = 0; ///< uncalibrated shapes priced statically
    std::vector<HybridSlot> slots;        ///< one per stash slot
};

/** The rewritten schedule: per-node decisions plus the config used. */
struct BuiltSchedule
{
    GistConfig config;
    std::vector<ScheduleDecision> decisions;
    HybridPlan hybrid; ///< inactive unless a mem budget drove the build

    const ScheduleDecision &
    of(NodeId id) const
    {
        return decisions[static_cast<size_t>(id)];
    }
};

/**
 * The transfer codec a Swap slot compresses with before eviction (the
 * cDMA idea: stack the paper's encodings on the slow-tier transfer).
 * Deterministic from config + category so the planner's pricing, the
 * buffer model and applyToExecutor() always agree: CSR for ReluConv
 * slots when SSDC is on, else DPR when enabled, else raw FP32.
 */
StashPlan::SwapCodec swapCodecFor(const GistConfig &config,
                                  StashCategory category);

/**
 * The hybrid plan as a JSON object string (single line), the payload
 * applyToExecutor() emits into the metrics JSONL ("plan" record) and
 * the memprof JSON so gist_prof can show plan-vs-actual. Empty when
 * the plan is inactive.
 */
std::string hybridPlanJson(const BuiltSchedule &schedule);

/**
 * Apply @p config to @p graph: set layer modes (mutates ReLU/MaxPool
 * layers) and compute per-node decisions. Call with the graph in
 * baseline mode or any previous mode; modes are (re)set absolutely.
 */
BuiltSchedule buildSchedule(Graph &graph, const GistConfig &config);

/**
 * Install the runtime side of @p schedule on an executor: StashPlans for
 * CSR/DPR nodes (layer modes were already set by buildSchedule).
 */
void applyToExecutor(const BuiltSchedule &schedule, Executor &exec);

} // namespace gist
