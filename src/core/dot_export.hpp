/**
 * @file
 * Graphviz export of a Gist-rewritten execution graph: nodes colored by
 * the Schedule Builder's decision (binarized / CSR / DPR / dense stash /
 * immediate), edges follow dataflow. Feed the output to `dot -Tsvg`.
 */

#pragma once

#include <string>

#include "core/schedule_builder.hpp"

namespace gist {

/** Render @p graph with @p schedule's decisions as a DOT digraph. */
std::string toDot(const Graph &graph, const BuiltSchedule &schedule);

} // namespace gist
