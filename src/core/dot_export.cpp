#include "core/dot_export.hpp"

#include <sstream>

namespace gist {

namespace {

const char *
fillColor(const ScheduleDecision &decision, bool stashed)
{
    if (decision.binarized)
        return "#8dd3c7"; // teal: Binarize
    switch (decision.repr) {
      case StashPlan::Repr::Csr:
        return "#ffffb3"; // yellow: SSDC
      case StashPlan::Repr::Dpr:
        return "#fb8072"; // red: DPR
      case StashPlan::Repr::Recompute:
        return "#b3de69"; // green: recompute
      case StashPlan::Repr::Swap:
        return "#80b1d3"; // blue: swapped to the slow tier
      case StashPlan::Repr::Dense:
        break;
    }
    return stashed ? "#bebada" /* violet: dense stash */
                   : "#ffffff" /* white: immediate */;
}

} // namespace

std::string
toDot(const Graph &graph, const BuiltSchedule &schedule)
{
    const ScheduleInfo sched(graph);
    std::ostringstream oss;
    oss << "digraph gist {\n"
        << "  rankdir=TB;\n"
        << "  node [shape=box, style=filled, fontname=\"monospace\"];\n"
        << "  label=\"teal=Binarize yellow=SSDC red=DPR green=recompute "
           "blue=swap violet=dense stash white=immediate; "
           "dashed border = inplace\";\n";
    for (const auto &node : graph.nodes()) {
        const auto &decision = schedule.of(node.id);
        oss << "  n" << node.id << " [label=\"" << node.name << "\\n"
            << layerKindName(node.kind()) << " "
            << node.out_shape.toString() << "\", fillcolor=\""
            << fillColor(decision, sched.stashed(node.id)) << "\"";
        if (decision.inplace)
            oss << ", style=\"filled,dashed\"";
        oss << "];\n";
    }
    for (const auto &node : graph.nodes())
        for (NodeId in : node.inputs)
            oss << "  n" << in << " -> n" << node.id << ";\n";
    oss << "}\n";
    return oss.str();
}

} // namespace gist
