/**
 * @file
 * The memory planner: turns a (Schedule-Builder-rewritten) graph into
 * planned buffers with lifetimes, runs the allocator policies over them,
 * and reports footprints / Memory Footprint Ratios.
 *
 * This is the analytical path used for the paper's full-scale networks:
 * footprints depend only on shapes, lifetimes and the allocator, so no
 * tensor data is ever materialized.
 */

#pragma once

#include <map>
#include <vector>

#include "core/schedule_builder.hpp"
#include "core/sparsity.hpp"
#include "memory/allocator.hpp"
#include "memory/report.hpp"

namespace gist {

/** Enumerate all planned buffers for @p graph under @p schedule. */
std::vector<PlannedBuffer> planBuffers(const Graph &graph,
                                       const BuiltSchedule &schedule,
                                       const SparsityModel &sparsity);

/** The classes that participate in the paper's MFR pool (weights,
 *  weight gradients and workspace are excluded, Section V-A). */
bool inMfrPool(DataClass cls);

/** Footprint summary of one configuration. */
struct PlanSummary
{
    /** Raw per-class byte totals (before any sharing). */
    std::map<DataClass, std::uint64_t> raw;
    /** MFR-pool footprint under CNTK-style static sharing. */
    std::uint64_t pool_static = 0;
    /** MFR-pool footprint under simulated dynamic allocation. */
    std::uint64_t pool_dynamic = 0;
    /** MFR-pool bytes with no sharing at all. */
    std::uint64_t pool_raw = 0;
    /** Raw bytes outside the pool (weights, grads, workspace). */
    std::uint64_t weights = 0;
    std::uint64_t weight_grads = 0;
    std::uint64_t workspace = 0;
};

/**
 * Summarize @p buffers.
 * @param investigation forbid sharing for stashed/encoded fmaps (the
 *        paper's investigation baseline).
 */
PlanSummary summarize(const std::vector<PlannedBuffer> &buffers,
                      bool investigation);

/**
 * Convenience: configure @p graph with @p config, plan, and summarize.
 * Mutates the graph's layer modes (call again to re-plan another config).
 */
PlanSummary planModel(Graph &graph, const GistConfig &config,
                      const SparsityModel &sparsity,
                      bool investigation = false);

} // namespace gist
