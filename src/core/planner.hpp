/**
 * @file
 * The memory planner: turns a (Schedule-Builder-rewritten) graph into
 * planned buffers with lifetimes, runs the allocator policies over them,
 * and reports footprints / Memory Footprint Ratios.
 *
 * This is the analytical path used for the paper's full-scale networks:
 * footprints depend only on shapes, lifetimes and the allocator, so no
 * tensor data is ever materialized.
 */

#pragma once

#include <map>
#include <vector>

#include "core/schedule_builder.hpp"
#include "core/sparsity.hpp"
#include "memory/allocator.hpp"
#include "memory/report.hpp"
#include "obs/calibrate.hpp"

namespace gist {

/** Enumerate all planned buffers for @p graph under @p schedule. */
std::vector<PlannedBuffer> planBuffers(const Graph &graph,
                                       const BuiltSchedule &schedule,
                                       const SparsityModel &sparsity);

/** The classes that participate in the paper's MFR pool (weights,
 *  weight gradients and workspace are excluded, Section V-A). */
bool inMfrPool(DataClass cls);

/** Footprint summary of one configuration. */
struct PlanSummary
{
    /** Raw per-class byte totals (before any sharing). */
    std::map<DataClass, std::uint64_t> raw;
    /** MFR-pool footprint under CNTK-style static sharing. */
    std::uint64_t pool_static = 0;
    /** MFR-pool footprint under simulated dynamic allocation. */
    std::uint64_t pool_dynamic = 0;
    /** MFR-pool bytes with no sharing at all. */
    std::uint64_t pool_raw = 0;
    /** Raw bytes outside the pool (weights, grads, workspace). */
    std::uint64_t weights = 0;
    std::uint64_t weight_grads = 0;
    std::uint64_t workspace = 0;
};

/**
 * Summarize @p buffers.
 * @param investigation forbid sharing for stashed/encoded fmaps (the
 *        paper's investigation baseline).
 */
PlanSummary summarize(const std::vector<PlannedBuffer> &buffers,
                      bool investigation);

/**
 * Convenience: configure @p graph with @p config, plan, and summarize.
 * Mutates the graph's layer modes (call again to re-plan another config).
 */
PlanSummary planModel(Graph &graph, const GistConfig &config,
                      const SparsityModel &sparsity,
                      bool investigation = false);

/**
 * One kernel invocation class a schedule implies: the calibration key
 * (kernel, shape), the bytes one call moves, and how many calls one
 * training step issues. This is the bridge between the static schedule
 * and the measured per-host table tools/gist_calibrate writes.
 */
struct KernelShape
{
    std::string kernel;           ///< "gemm", "im2col", "csr_encode", ...
    std::string shape;            ///< human key, e.g. "m=64,n=784,k=576"
    std::uint64_t work_bytes = 0; ///< bytes one call moves
    std::uint64_t calls = 0;      ///< invocations per training step
};

/**
 * Enumerate the kernel shapes one minibatch of @p graph dispatches under
 * @p schedule: per-image conv im2col + forward/backward GEMMs, per-node
 * FC GEMMs, and one encode + one decode per encoded stash slot. Shapes
 * with identical (kernel, shape) keys are merged with summed calls.
 */
std::vector<KernelShape> collectKernelShapes(const Graph &graph,
                                             const BuiltSchedule &schedule);

/** Per-kernel-family cost split of estimateStepCost(). */
struct CostEstimate
{
    double encode_seconds = 0.0;
    double decode_seconds = 0.0;
    double gemm_seconds = 0.0;
    double im2col_seconds = 0.0;
    /** Kernel shapes the table had no entry for (costed as zero). */
    int missing = 0;

    double total() const
    {
        return encode_seconds + decode_seconds + gemm_seconds +
               im2col_seconds;
    }
};

/**
 * Estimated seconds per training step of @p graph under @p schedule,
 * priced from a measured calibration @p table: exact (kernel, shape)
 * entries when present, work_bytes interpolation otherwise. Kernels the
 * table has never seen contribute zero and bump CostEstimate::missing,
 * so callers can tell a cheap schedule from an unpriced one. Every
 * missing shape also bumps the process-global
 * "gist.planner.missing_shapes" counter (visible in the metrics JSONL
 * snapshot), and the first call that drops shapes warns on stderr
 * naming the largest one dropped — a silently-unpriced schedule looks
 * exactly like a cheap one otherwise.
 */
CostEstimate estimateStepCost(const Graph &graph,
                              const BuiltSchedule &schedule,
                              const obs::CalibrationTable &table);

/**
 * The budget-driven hybrid planner (the `--mem-budget` tentpole).
 *
 * Re-chooses the storage representation of every stashed slot in
 * @p schedule among {keep FP32, CSR, DPR, recompute} — CSR only where
 * the config enables SSDC and the slot classifies ReluConv, DPR only
 * where the config enables DPR, recompute always — minimizing the
 * estimated per-step overhead subject to the modeled peak of the
 * feature-map pool staying at or under @p budget_bytes.
 *
 * Greedy over the liveness graph: starting from all-keep it applies
 * the single-slot upgrade with the best seconds-per-byte score at the
 * peak until the plan fits (tied-peak steps are handled by scoring
 * byte reduction *at the peak level* rather than the raw max). The
 * move chain never raises the modeled peak, so sweeping descending
 * budgets yields monotonically non-increasing planned peaks. A final
 * revert pass downgrades expensive choices the peak turned out not to
 * need. When even the most aggressive plan overshoots, the minimum-peak
 * plan is kept and HybridPlan::feasible is false (with a warning).
 *
 * Choices are priced by @p table (measured host calibration, log-log
 * interpolated for unmeasured shapes) when non-null, otherwise by the
 * static roofline model in perf/gpu_model.hpp. Results land in
 * @p schedule: decisions[].repr is rewritten and schedule.hybrid is
 * filled (plan summary + per-slot table for the JSON artifacts).
 */
void optimizeHybridSchedule(const Graph &graph, BuiltSchedule &schedule,
                            std::uint64_t budget_bytes,
                            const obs::CalibrationTable *table);

} // namespace gist
