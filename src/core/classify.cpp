#include "core/classify.hpp"

#include "util/logging.hpp"

namespace gist {

namespace {

/**
 * BackwardNeeds of a node with every layer in its baseline (dense) mode,
 * regardless of any Gist mode already applied. Only ReLU and MaxPool have
 * switchable modes.
 */
BackwardNeeds
baselineNeeds(const Node &node)
{
    switch (node.kind()) {
      case LayerKind::Relu:
        return { false, true };
      case LayerKind::MaxPool:
        return { true, true };
      case LayerKind::Input:
        return { false, false };
      default:
        return node.layer->backwardNeeds();
    }
}

} // namespace

const char *
stashCategoryName(StashCategory cat)
{
    switch (cat) {
      case StashCategory::NotStashed: return "NotStashed";
      case StashCategory::ReluPool: return "ReluPool";
      case StashCategory::ReluConv: return "ReluConv";
      case StashCategory::Other: return "Other";
    }
    return "?";
}

std::vector<StashCategory>
classifyStashes(const Graph &graph)
{
    const auto n = static_cast<size_t>(graph.numNodes());
    std::vector<std::vector<NodeId>> consumers(n);
    for (const auto &node : graph.nodes())
        for (NodeId in : node.inputs)
            consumers[static_cast<size_t>(in)].push_back(node.id);

    std::vector<StashCategory> categories(n, StashCategory::NotStashed);
    for (const auto &node : graph.nodes()) {
        const auto idx = static_cast<size_t>(node.id);

        // Baseline stashedness: needed by its own backward or by a
        // consumer's backward.
        bool stashed = baselineNeeds(node).output;
        for (NodeId c : consumers[idx])
            stashed = stashed || baselineNeeds(graph.node(c)).input;
        if (!stashed)
            continue;

        const bool relu = node.kind() == LayerKind::Relu;
        const bool pool_like = node.kind() == LayerKind::MaxPool ||
                               node.kind() == LayerKind::AvgPool;

        if (relu && consumers[idx].size() == 1 &&
            graph.node(consumers[idx][0]).kind() == LayerKind::MaxPool) {
            categories[idx] = StashCategory::ReluPool;
            continue;
        }

        bool feeds_conv = false;
        for (NodeId c : consumers[idx])
            feeds_conv =
                feeds_conv || graph.node(c).kind() == LayerKind::Conv;

        // A pool output is only SSDC-worthy when the pooled values come
        // from a ReLU (paper: "Pool-Conv layer combinations if the
        // preceding ReLU layer has high sparsity") — pooling a dense
        // activation (sigmoid/tanh) yields a dense map.
        bool relu_sourced = relu;
        if (pool_like) {
            NodeId src = node.inputs[0];
            while (graph.node(src).kind() == LayerKind::MaxPool ||
                   graph.node(src).kind() == LayerKind::AvgPool)
                src = graph.node(src).inputs[0];
            relu_sourced = graph.node(src).kind() == LayerKind::Relu;
        }
        if ((relu || (pool_like && relu_sourced)) && feeds_conv) {
            categories[idx] = StashCategory::ReluConv;
            continue;
        }

        categories[idx] = StashCategory::Other;
    }
    return categories;
}

} // namespace gist
