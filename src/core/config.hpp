/**
 * @file
 * GistConfig: which of the paper's optimizations are switched on.
 *
 * Table I mapping:
 *   ReLU->Pool stashes  -> Binarize          (lossless)
 *   ReLU/Pool->Conv     -> SSDC              (lossless)
 *   other stashes       -> DPR               (lossy)
 *   immediately consumed-> inplace ReLU      (lossless)
 */

#pragma once

#include <cstdint>
#include <string>

#include "encodings/csr.hpp"
#include "encodings/dpr.hpp"

namespace gist {

/**
 * Parse a human byte-size string: a non-negative number with an
 * optional k/m/g (or kb/mb/gb, any case) suffix, e.g. "64m", "1.5G",
 * "262144". Malformed input (empty string, no digits, negative or
 * non-finite value, unknown suffix, or a product that overflows 64
 * bits) is a hard error: a silently-zero budget would quietly disable
 * the planner the caller asked for.
 */
std::uint64_t parseByteSize(const std::string &text);

/** Enabled Gist optimizations and their parameters. */
struct GistConfig
{
    bool binarize = false;     ///< Binarize on ReLU->Pool pairs
    bool ssdc = false;         ///< CSR stash on ReLU/Pool->Conv fmaps
    bool dpr = false;          ///< DPR on remaining stashed fmaps
    DprFormat dpr_format = DprFormat::Fp16;
    bool inplace_relu = false; ///< ReLU overwrites its (immediate) input
    /**
     * "Optimized software" (Section V-H): the backward computation reads
     * encoded data directly, so no FP32 decode buffer is materialized.
     * Affects the memory plan only.
     */
    bool elide_decode_buffer = false;
    /**
     * Fused consumption: conv/FC backward pull encoded stashes straight
     * into the im2col tile loops / the GEMM B-pack, deleting the
     * per-image decode scratch from the arena frame. Bitwise-identical
     * to the scratch path and a no-op unless elide_decode_buffer is on.
     * The GIST_FUSED environment variable (0/1/2) overrides this in
     * applyToExecutor().
     */
    bool fused_consume = true;
    /**
     * Measured sparsity at or above which a fused CSR stash is consumed
     * by the row-sparse GEMM (compute ~ nnz) instead of the bitwise
     * fused im2col. Values > 1 disable the sparse route (the default:
     * its float results are tolerance- rather than bitwise-equal);
     * GIST_FUSED=2 lowers it to 0.5.
     */
    double sparse_gemm_threshold = 2.0;
    /** CSR layout (narrow 1-byte indices by default). */
    CsrConfig csr{};
    /**
     * Worker threads for the parallel hot paths (gemm, im2col, the
     * encoders). 0 = leave the global pool as configured (first use
     * auto-resolves from GIST_THREADS, then hardware concurrency);
     * 1 runs everything inline. Applied by applyToExecutor() and
     * Trainer::run().
     */
    int num_threads = 0;
    /**
     * Asynchronous codec pipeline: submit stash encodes to dedicated
     * codec worker(s) right after the producing forward and prefetch
     * decodes one backward node ahead, so codec time overlaps compute
     * instead of landing on the critical path. Lossless configs stay
     * bitwise-identical to sync runs. Default off (the sync fallback);
     * the GIST_ASYNC environment variable (0/1) overrides this in
     * applyToExecutor().
     */
    bool async_codec = false;
    /**
     * Dedicated codec-queue worker threads when async_codec is on
     * (clamped to >= 1). GIST_CODEC_THREADS overrides.
     */
    int codec_threads = 1;
    /**
     * Chrome trace-event JSON output file. Non-empty starts the span
     * tracer in applyToExecutor(); the file is written on traceStop()
     * or at process exit. Equivalent to setting GIST_TRACE=<path>.
     */
    std::string trace_path;
    /**
     * JSONL metrics sink (one record per trainer step/epoch). Non-empty
     * opens the sink in applyToExecutor(). Equivalent to
     * GIST_METRICS=<path>.
     */
    std::string metrics_path;
    /**
     * Memory-timeline profiler output JSON (per-step peak attribution
     * and fig15-style samples). Non-empty starts the profiler in
     * applyToExecutor(); the file is written at memprofStop() or at
     * process exit. Equivalent to GIST_MEMPROF=<path>.
     */
    std::string memprof_path;
    /**
     * Peak feature-map-pool budget in bytes. 0 (the default) keeps the
     * static Table I assignment above. Non-zero hands every stash slot
     * to the cost-model-driven hybrid planner (core/planner.cpp), which
     * chooses per slot among {keep FP32, CSR, DPR, recompute} — gated
     * by the binarize/ssdc/dpr flags — minimizing estimated step time
     * subject to the modeled peak staying at or under the budget. The
     * GIST_MEM_BUDGET environment variable (bytes, k/m/g suffixes)
     * overrides this in buildSchedule().
     */
    std::uint64_t mem_budget_bytes = 0;
    /**
     * calibration.json (written by tools/gist_calibrate) used to price
     * the hybrid planner's choices with this host's measured kernel
     * costs. Empty consults GIST_CALIBRATION; when neither yields a
     * table the planner falls back to the static roofline model
     * (perf/gpu_model.hpp).
     */
    std::string calibration_path;
    /**
     * Device feature-map pool cap in bytes (the tiered-memory engine).
     * 0 (the default) = unbounded device, no eviction. Non-zero bounds
     * the metered pool: stash slots overflowing the cap are evicted to
     * the pool's slow tier through the codec workers and prefetched
     * back before their backward reads (memory/device_pool.hpp). Also
     * unlocks the planner's per-slot "swap" choice. GIST_DEVICE_POOL
     * (bytes, k/m/g suffixes) overrides in buildSchedule().
     */
    std::uint64_t device_pool_bytes = 0;
    /**
     * Slow-tier spill directory. Non-empty uses a file-backed tier
     * (one file per evicted slot); empty uses the in-memory tier.
     * GIST_TIER_PATH overrides in applyToExecutor().
     */
    std::string tier_path;
    /**
     * Modeled device<->tier link bandwidth, bytes/second. Throttles the
     * in-memory tier (deterministic stall experiments) and prices the
     * planner's swap choice. 0 = unthrottled transfers priced at the
     * PCIe bandwidth of the roofline model. GIST_TIER_GBPS (in GB/s)
     * overrides in applyToExecutor().
     */
    double tier_bandwidth_bytes_per_s = 0.0;

    /** No optimizations: the CNTK baseline. */
    static GistConfig baseline() { return GistConfig{}; }

    /** All lossless optimizations: Binarize + SSDC + inplace. */
    static GistConfig
    lossless()
    {
        GistConfig cfg;
        cfg.binarize = true;
        cfg.ssdc = true;
        cfg.inplace_relu = true;
        return cfg;
    }

    /** Lossless plus DPR at the given width (DPR also packs CSR values). */
    static GistConfig
    lossy(DprFormat fmt)
    {
        GistConfig cfg = lossless();
        cfg.dpr = true;
        cfg.dpr_format = fmt;
        cfg.csr.value_format = fmt;
        return cfg;
    }
};

} // namespace gist
