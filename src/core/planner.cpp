#include "core/planner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>

#include "layers/conv.hpp"
#include "obs/counters.hpp"
#include "perf/gpu_model.hpp"
#include "tensor/im2col.hpp"
#include "util/logging.hpp"

namespace gist {

namespace {

/** Input shapes of a node (for workspace/aux queries). */
std::vector<Shape>
inputShapes(const Graph &graph, const Node &node)
{
    std::vector<Shape> shapes;
    for (NodeId in : node.inputs)
        shapes.push_back(graph.node(in).out_shape);
    return shapes;
}

} // namespace

bool
inMfrPool(DataClass cls)
{
    switch (cls) {
      case DataClass::StashedFmap:
      case DataClass::ImmediateFmap:
      case DataClass::GradientMap:
      case DataClass::EncodedFmap:
      case DataClass::DecodeScratch:
        return true;
      case DataClass::Weight:
      case DataClass::WeightGrad:
      case DataClass::Workspace:
        return false;
    }
    return false;
}

std::vector<PlannedBuffer>
planBuffers(const Graph &graph, const BuiltSchedule &schedule,
            const SparsityModel &sparsity)
{
    const ScheduleInfo sched(graph);
    const int last_step = graph.numSteps() - 1;
    std::vector<PlannedBuffer> buffers;

    // Which nodes are overwritten inplace by their ReLU consumer; the
    // merged buffer is emitted at the ReLU with the parent's birth step.
    std::vector<bool> absorbed(static_cast<size_t>(graph.numNodes()),
                               false);
    for (const auto &node : graph.nodes())
        if (schedule.of(node.id).inplace)
            absorbed[static_cast<size_t>(node.inputs[0])] = true;

    for (const auto &node : graph.nodes()) {
        const NodeId id = node.id;
        const size_t first_buffer = buffers.size();
        const auto &decision = schedule.of(id);
        const std::uint64_t fp32_bytes =
            static_cast<std::uint64_t>(node.out_shape.numel()) * 4;

        // ---- The output feature map ----
        if (!absorbed[static_cast<size_t>(id)]) {
            int birth = graph.fwdStep(id);
            if (decision.inplace)
                birth = graph.fwdStep(node.inputs[0]);

            if (!sched.stashed(id)) {
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::ImmediateFmap, fp32_bytes,
                                    { birth, sched.lastFwdRead(id) },
                                    true });
            } else if (decision.repr == StashPlan::Repr::Dense) {
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::StashedFmap, fp32_bytes,
                                    { birth, sched.lastBwdRead(id) },
                                    true });
            } else if (decision.repr == StashPlan::Repr::Recompute) {
                // Recompute stores nothing across the gap: the FP32 map
                // dies at its last forward read and a replayed copy
                // serves the backward reads. (The replay's transient
                // segment scaffolding is modeled by the hybrid planner's
                // evaluation, not here — it depends on which *other*
                // slots are dropped.)
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::ImmediateFmap, fp32_bytes,
                                    { birth, sched.lastFwdRead(id) },
                                    true });
                buffers.push_back({ node.name + ":rem",
                                    DataClass::StashedFmap, fp32_bytes,
                                    { sched.firstBwdRead(id),
                                      sched.lastBwdRead(id) },
                                    true });
            } else if (decision.repr == StashPlan::Repr::Swap) {
                // Swap: the map leaves the device across the gap. What
                // stays resident is only the transfer scaffolding — the
                // encoded form (when the transfer is compressed) exists
                // momentarily around the eviction and again around the
                // fetch, and the fetched copy serves the backward reads.
                const int last_fwd = sched.lastFwdRead(id);
                const int first_bwd = sched.firstBwdRead(id);
                const int last_bwd = sched.lastBwdRead(id);
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::ImmediateFmap, fp32_bytes,
                                    { birth, last_fwd }, true });
                const StashPlan::SwapCodec codec =
                    swapCodecFor(schedule.config, decision.category);
                if (codec != StashPlan::SwapCodec::None) {
                    const std::uint64_t enc_bytes =
                        codec == StashPlan::SwapCodec::Csr
                            ? csrBytesForSparsity(
                                  schedule.config.csr,
                                  node.out_shape.numel(),
                                  sparsity.at(graph, id))
                            : dprEncodedBytes(schedule.config.dpr_format,
                                              node.out_shape.numel());
                    buffers.push_back({ node.name + ":enc",
                                        DataClass::EncodedFmap, enc_bytes,
                                        { last_fwd, last_fwd }, true });
                    buffers.push_back({ node.name + ":enc",
                                        DataClass::EncodedFmap, enc_bytes,
                                        { first_bwd, first_bwd }, true });
                    buffers.push_back({ node.name + ":dec",
                                        DataClass::DecodeScratch,
                                        fp32_bytes,
                                        { first_bwd, last_bwd }, true });
                } else {
                    buffers.push_back({ node.name + ":rem",
                                        DataClass::StashedFmap,
                                        fp32_bytes,
                                        { first_bwd, last_bwd }, true });
                }
            } else {
                // Encoded stash: the FP32 copy becomes immediately
                // consumed, the encoded form bridges the temporal gap,
                // and (unless elided) a decode buffer serves the
                // backward reads — paper Figure 2.
                const int last_fwd = sched.lastFwdRead(id);
                const int first_bwd = sched.firstBwdRead(id);
                const int last_bwd = sched.lastBwdRead(id);
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::ImmediateFmap, fp32_bytes,
                                    { birth, last_fwd }, true });
                std::uint64_t enc_bytes = 0;
                if (decision.repr == StashPlan::Repr::Csr) {
                    enc_bytes = csrBytesForSparsity(
                        schedule.config.csr, node.out_shape.numel(),
                        sparsity.at(graph, id));
                } else {
                    enc_bytes = dprEncodedBytes(schedule.config.dpr_format,
                                                node.out_shape.numel());
                }
                buffers.push_back({ node.name + ":enc",
                                    DataClass::EncodedFmap, enc_bytes,
                                    { last_fwd, first_bwd }, true });
                if (!schedule.config.elide_decode_buffer) {
                    buffers.push_back({ node.name + ":dec",
                                        DataClass::DecodeScratch,
                                        fp32_bytes,
                                        { first_bwd, last_bwd }, true });
                }
            }
        }

        if (node.kind() == LayerKind::Input) {
            for (size_t b = first_buffer; b < buffers.size(); ++b)
                buffers[b].origin_node = id;
            continue;
        }

        // ---- The gradient map of this node's output ----
        // Written by the backward passes of this node's consumers
        // (earliest first), consumed by this node's own backward step.
        const auto &consumers = sched.consumers(id);
        if (!consumers.empty()) {
            int first_writer = graph.bwdStep(id);
            for (NodeId c : consumers)
                first_writer = std::min(first_writer, graph.bwdStep(c));
            buffers.push_back({ node.name + ":grad",
                                DataClass::GradientMap, fp32_bytes,
                                { first_writer, graph.bwdStep(id) },
                                true });
        }

        const auto in_shapes = inputShapes(graph, node);

        // ---- Layer-internal aux stash ----
        const std::uint64_t aux =
            node.layer->auxStashBytes(in_shapes);
        if (aux > 0) {
            const bool gist_aux = decision.binarized;
            buffers.push_back({ node.name + ":aux",
                                gist_aux ? DataClass::EncodedFmap
                                         : DataClass::StashedFmap,
                                aux,
                                { graph.fwdStep(id), graph.bwdStep(id) },
                                true });
        }

        // ---- Workspace (forward and backward invocations) ----
        const std::uint64_t ws = node.layer->workspaceBytes(in_shapes);
        if (ws > 0) {
            buffers.push_back({ node.name + ":ws_f", DataClass::Workspace,
                                ws,
                                { graph.fwdStep(id), graph.fwdStep(id) },
                                true });
            buffers.push_back({ node.name + ":ws_b", DataClass::Workspace,
                                ws,
                                { graph.bwdStep(id), graph.bwdStep(id) },
                                true });
        }

        // ---- Parameters ----
        std::uint64_t param_bytes = 0;
        for (Tensor *p : node.layer->params())
            param_bytes += static_cast<std::uint64_t>(p->numel()) * 4;
        if (param_bytes > 0) {
            buffers.push_back({ node.name + ":w", DataClass::Weight,
                                param_bytes, { 0, last_step }, false });
            buffers.push_back({ node.name + ":dw", DataClass::WeightGrad,
                                param_bytes, { 0, last_step }, false });
        }

        for (size_t b = first_buffer; b < buffers.size(); ++b)
            buffers[b].origin_node = id;
    }
    return buffers;
}

PlanSummary
summarize(const std::vector<PlannedBuffer> &buffers, bool investigation)
{
    PlanSummary summary;
    summary.raw = bytesByClass(buffers);
    summary.weights = summary.raw[DataClass::Weight];
    summary.weight_grads = summary.raw[DataClass::WeightGrad];
    // Workspace is shared across layers (disjoint single-step lifetimes),
    // so its contribution is the maximum, not the sum.
    for (const auto &buf : buffers)
        if (buf.cls == DataClass::Workspace)
            summary.workspace = std::max(summary.workspace, buf.bytes);

    std::vector<PlannedBuffer> pool;
    for (const auto &buf : buffers) {
        if (!inMfrPool(buf.cls))
            continue;
        PlannedBuffer copy = buf;
        if (investigation && (buf.cls == DataClass::StashedFmap ||
                              buf.cls == DataClass::EncodedFmap)) {
            copy.shareable = false;
        }
        pool.push_back(std::move(copy));
        summary.pool_raw += buf.bytes;
    }
    summary.pool_static = allocateCntkStyle(pool).total_bytes;
    summary.pool_dynamic = dynamicPeak(pool);
    return summary;
}

PlanSummary
planModel(Graph &graph, const GistConfig &config,
          const SparsityModel &sparsity, bool investigation)
{
    const BuiltSchedule schedule = buildSchedule(graph, config);
    const auto buffers = planBuffers(graph, schedule, sparsity);
    return summarize(buffers, investigation);
}

namespace {

std::string
gemmKey(std::int64_t m, std::int64_t n, std::int64_t k)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "m=%lld,n=%lld,k=%lld",
                  static_cast<long long>(m), static_cast<long long>(n),
                  static_cast<long long>(k));
    return buf;
}

/** Bytes one m x n x k GEMM touches (A + B + C, fp32). */
std::uint64_t
gemmBytes(std::int64_t m, std::int64_t n, std::int64_t k)
{
    return 4ull * static_cast<std::uint64_t>(m * k + k * n + m * n);
}

} // namespace

std::vector<KernelShape>
collectKernelShapes(const Graph &graph, const BuiltSchedule &schedule)
{
    const ScheduleInfo sched(graph);
    std::vector<KernelShape> out;
    const auto add = [&out](std::string kernel, std::string shape,
                            std::uint64_t work, std::uint64_t calls) {
        for (KernelShape &ks : out) {
            if (ks.kernel == kernel && ks.shape == shape) {
                ks.calls += calls;
                return;
            }
        }
        out.push_back(
            { std::move(kernel), std::move(shape), work, calls });
    };

    for (const auto &node : graph.nodes()) {
        const NodeId id = node.id;
        const auto &decision = schedule.of(id);

        // ---- Codec kernels: one encode + one decode per encoded stash.
        // Recompute stores nothing (no codec); Swap runs the transfer
        // codec's encode/decode when the transfer is compressed.
        bool emit_csr = decision.repr == StashPlan::Repr::Csr;
        bool emit_dpr = decision.repr == StashPlan::Repr::Dpr;
        if (decision.repr == StashPlan::Repr::Swap) {
            const StashPlan::SwapCodec codec =
                swapCodecFor(schedule.config, decision.category);
            emit_csr = codec == StashPlan::SwapCodec::Csr;
            emit_dpr = codec == StashPlan::SwapCodec::Dpr;
        }
        if (sched.stashed(id) && (emit_csr || emit_dpr)) {
            const std::int64_t numel = node.out_shape.numel();
            const std::uint64_t fp32 =
                static_cast<std::uint64_t>(numel) * 4;
            char key[48];
            if (emit_csr) {
                std::snprintf(key, sizeof key, "numel=%lld",
                              static_cast<long long>(numel));
                add("csr_encode", key, fp32, 1);
                add("csr_decode", key, fp32, 1);
            } else {
                std::snprintf(key, sizeof key, "fmt=%s,numel=%lld",
                              dprFormatName(schedule.config.dpr_format),
                              static_cast<long long>(numel));
                add("dpr_encode", key, fp32, 1);
                add("dpr_decode", key, fp32, 1);
            }
        }

        // ---- Compute kernels at the schedule's shapes.
        if (node.kind() == LayerKind::Conv) {
            const auto *conv =
                static_cast<const ConvLayer *>(node.layer.get());
            const ConvSpec &spec = conv->spec();
            const Shape &in = graph.node(node.inputs[0]).out_shape;
            const ConvGeometry g{ in.c(),        in.h(),
                                  in.w(),        spec.kernel_h,
                                  spec.kernel_w, spec.stride_h,
                                  spec.stride_w, spec.pad_h,
                                  spec.pad_w };
            const auto batch = static_cast<std::uint64_t>(in.n());
            const std::int64_t m = spec.out_channels;
            const std::int64_t n = g.colCols();
            const std::int64_t k = g.colRows();
            char key[160];
            std::snprintf(key, sizeof key,
                          "c=%lld,h=%lld,w=%lld,kh=%lld,kw=%lld,"
                          "sh=%lld,sw=%lld,ph=%lld,pw=%lld",
                          static_cast<long long>(in.c()),
                          static_cast<long long>(in.h()),
                          static_cast<long long>(in.w()),
                          static_cast<long long>(spec.kernel_h),
                          static_cast<long long>(spec.kernel_w),
                          static_cast<long long>(spec.stride_h),
                          static_cast<long long>(spec.stride_w),
                          static_cast<long long>(spec.pad_h),
                          static_cast<long long>(spec.pad_w));
            add("im2col", key,
                4ull * static_cast<std::uint64_t>(
                           in.c() * in.h() * in.w() + k * n),
                batch);
            // Forward Y = W * cols, backward dW = dY * cols^T and
            // dcols = W^T * dY — one GEMM per image each.
            add("gemm", gemmKey(m, n, k), gemmBytes(m, n, k), batch);
            add("gemm", gemmKey(m, k, n), gemmBytes(m, k, n), batch);
            add("gemm", gemmKey(k, n, m), gemmBytes(k, n, m), batch);
        } else if (node.kind() == LayerKind::Fc) {
            const Shape &in = graph.node(node.inputs[0]).out_shape;
            const std::int64_t batch = in.dim(0);
            const std::int64_t in_f = in.numel() / batch;
            const std::int64_t out_f = node.out_shape.numel() / batch;
            // Forward Y = X * W^T, backward dX = dY * W and
            // dW = dY^T * X — whole-batch GEMMs.
            add("gemm", gemmKey(batch, out_f, in_f),
                gemmBytes(batch, out_f, in_f), 1);
            add("gemm", gemmKey(batch, in_f, out_f),
                gemmBytes(batch, in_f, out_f), 1);
            add("gemm", gemmKey(out_f, in_f, batch),
                gemmBytes(out_f, in_f, batch), 1);
        }
    }
    return out;
}

CostEstimate
estimateStepCost(const Graph &graph, const BuiltSchedule &schedule,
                 const obs::CalibrationTable &table)
{
    CostEstimate est;
    const KernelShape *worst_missing = nullptr;
    std::uint64_t worst_work = 0;
    const auto shapes = collectKernelShapes(graph, schedule);
    for (const KernelShape &ks : shapes) {
        double seconds;
        if (const obs::CalibrationEntry *e =
                table.find(ks.kernel, ks.shape)) {
            seconds = e->seconds;
        } else {
            seconds = table.secondsFor(ks.kernel, ks.work_bytes);
            if (seconds < 0.0) {
                ++est.missing;
                const std::uint64_t work = ks.work_bytes * ks.calls;
                if (!worst_missing || work > worst_work) {
                    worst_missing = &ks;
                    worst_work = work;
                }
                continue;
            }
        }
        const double total = seconds * static_cast<double>(ks.calls);
        if (ks.kernel == "gemm")
            est.gemm_seconds += total;
        else if (ks.kernel == "im2col")
            est.im2col_seconds += total;
        else if (ks.kernel.ends_with("_encode"))
            est.encode_seconds += total;
        else if (ks.kernel.ends_with("_decode"))
            est.decode_seconds += total;
    }
    if (est.missing > 0) {
        obs::MetricRegistry::instance()
            .counter("gist.planner.missing_shapes")
            .add(static_cast<std::uint64_t>(est.missing));
        // Warn once per process, not per call: schedule sweeps price
        // hundreds of configs against one table and every one of them
        // would repeat the same complaint.
        static std::atomic<bool> warned{ false };
        if (!warned.exchange(true)) {
            GIST_WARN("calibration table has no entry for ",
                      est.missing, " kernel shape(s); largest dropped: ",
                      worst_missing->kernel, "[", worst_missing->shape,
                      "] (", worst_work,
                      " work bytes/step costed as zero)");
        }
    }
    return est;
}

// ================== The budget-driven hybrid planner ==================

namespace {

/**
 * Prices the planner's per-slot choices. With a calibration table the
 * measured entries rule (exact key, then log-log work_bytes
 * interpolation); shapes the table has never seen fall back to a
 * bandwidth estimate and are recorded in the missing set. With no
 * table everything is priced by the static roofline model
 * (perf/gpu_model.hpp) — absolute numbers are then model estimates,
 * but the planner only compares choices against each other.
 */
class HybridCost
{
  public:
    HybridCost(const Graph &graph, const GistConfig &config,
               const obs::CalibrationTable *table)
        : graph_(graph), config_(config), table_(table),
          fwd_memo_(static_cast<size_t>(graph.numNodes()), -1.0)
    {
        if (table_) {
            // Host stream-bandwidth proxy for kernels the table cannot
            // price directly (elementwise forwards, copies): the best
            // measured codec throughput — codecs are memory-bound, so
            // their peak GB/s is what a streaming pass achieves here.
            for (const auto &e : table_->entries)
                if (e.kernel.ends_with("_encode") ||
                    e.kernel.ends_with("_decode"))
                    host_bw_ = std::max(host_bw_, e.gbps() * 1e9);
            if (host_bw_ <= 0.0)
                for (const auto &e : table_->entries)
                    host_bw_ = std::max(host_bw_, e.gbps() * 1e9);
        }
        if (host_bw_ <= 0.0)
            host_bw_ = params_.mem_bandwidth;
        // Slow-tier link speed, for pricing Swap transfers: a measured
        // throttle from the config wins, else the modeled host link.
        tier_bw_ = config.tier_bandwidth_bytes_per_s > 0.0
                       ? config.tier_bandwidth_bytes_per_s
                       : params_.pcie_bandwidth;
    }

    /** Distinct (kernel, shape) keys that had to be priced statically. */
    int missingCount() const
    {
        return static_cast<int>(missing_.size());
    }

    /** Encode + decode seconds for storing slot @p id as @p repr. */
    double
    codecSeconds(NodeId id, StashPlan::Repr repr)
    {
        const Node &node = graph_.node(id);
        const std::int64_t numel = node.out_shape.numel();
        const auto fp32 = static_cast<std::uint64_t>(numel) * 4;
        char key[48];
        const char *enc;
        const char *dec;
        if (repr == StashPlan::Repr::Csr) {
            std::snprintf(key, sizeof key, "numel=%lld",
                          static_cast<long long>(numel));
            enc = "csr_encode";
            dec = "csr_decode";
        } else {
            std::snprintf(key, sizeof key, "fmt=%s,numel=%lld",
                          dprFormatName(config_.dpr_format),
                          static_cast<long long>(numel));
            enc = "dpr_encode";
            dec = "dpr_decode";
        }
        double total = 0.0;
        for (const char *kernel : { enc, dec }) {
            const double s = kernelSeconds(kernel, key, fp32);
            // Static fallback: one read + one write of the dense bytes.
            total += s >= 0.0 ? s
                              : 2.0 * static_cast<double>(fp32) / host_bw_;
        }
        return total;
    }

    /**
     * Seconds to move @p bytes one way across the slow tier. Prefers a
     * calibrated tier_write/tier_read bandwidth fit when the table has
     * one; otherwise the configured/modeled link speed.
     */
    double
    tierSeconds(const char *kernel, std::uint64_t bytes)
    {
        if (table_) {
            const double s = table_->secondsFor(kernel, bytes);
            if (s >= 0.0)
                return s;
        }
        return static_cast<double>(bytes) / tier_bw_;
    }

    /** Seconds to re-run node @p id's forward once (replay pricing). */
    double
    fwdSeconds(NodeId id)
    {
        double &memo = fwd_memo_[static_cast<size_t>(id)];
        if (memo >= 0.0)
            return memo;
        const Node &node = graph_.node(id);
        const std::uint64_t out_bytes =
            static_cast<std::uint64_t>(node.out_shape.numel()) * 4;
        if (node.kind() == LayerKind::Input) {
            // Replaying the input slot is a copy of the minibatch.
            return memo = 2.0 * static_cast<double>(out_bytes) / host_bw_;
        }
        if (!table_) {
            // Static roofline — self-consistent with the static codec
            // fallback above (same GpuModelParams bandwidth).
            return memo = estimateLayerTime(graph_, node, params_).fwd;
        }
        if (node.kind() == LayerKind::Conv) {
            const auto *conv =
                static_cast<const ConvLayer *>(node.layer.get());
            const ConvSpec &spec = conv->spec();
            const Shape &in = graph_.node(node.inputs[0]).out_shape;
            const ConvGeometry g{ in.c(),        in.h(),
                                  in.w(),        spec.kernel_h,
                                  spec.kernel_w, spec.stride_h,
                                  spec.stride_w, spec.pad_h,
                                  spec.pad_w };
            const std::int64_t m = spec.out_channels;
            const std::int64_t n = g.colCols();
            const std::int64_t k = g.colRows();
            char key[160];
            std::snprintf(key, sizeof key,
                          "c=%lld,h=%lld,w=%lld,kh=%lld,kw=%lld,"
                          "sh=%lld,sw=%lld,ph=%lld,pw=%lld",
                          static_cast<long long>(in.c()),
                          static_cast<long long>(in.h()),
                          static_cast<long long>(in.w()),
                          static_cast<long long>(spec.kernel_h),
                          static_cast<long long>(spec.kernel_w),
                          static_cast<long long>(spec.stride_h),
                          static_cast<long long>(spec.stride_w),
                          static_cast<long long>(spec.pad_h),
                          static_cast<long long>(spec.pad_w));
            const std::uint64_t col_work =
                4ull * static_cast<std::uint64_t>(
                           in.c() * in.h() * in.w() + k * n);
            double per_image = tableOrBandwidth("im2col", key, col_work);
            per_image += tableOrBandwidth("gemm", gemmKey(m, n, k),
                                          gemmBytes(m, n, k));
            return memo = per_image * static_cast<double>(in.n());
        }
        if (node.kind() == LayerKind::Fc) {
            const Shape &in = graph_.node(node.inputs[0]).out_shape;
            const std::int64_t batch = in.dim(0);
            const std::int64_t in_f = in.numel() / batch;
            const std::int64_t out_f =
                node.out_shape.numel() / batch;
            return memo = tableOrBandwidth(
                       "gemm", gemmKey(batch, out_f, in_f),
                       gemmBytes(batch, out_f, in_f));
        }
        // Elementwise-ish layers: a streaming pass over inputs + output.
        std::uint64_t moved = out_bytes;
        for (NodeId in : node.inputs)
            moved += static_cast<std::uint64_t>(
                         graph_.node(in).out_shape.numel()) *
                     4;
        return memo = static_cast<double>(moved) / host_bw_;
    }

  private:
    /** Table price; -1 when the table cannot price it (key recorded). */
    double
    kernelSeconds(const std::string &kernel, const std::string &shape,
                  std::uint64_t work_bytes)
    {
        if (!table_)
            return -1.0;
        if (const obs::CalibrationEntry *e = table_->find(kernel, shape))
            return e->seconds;
        const double s = table_->secondsFor(kernel, work_bytes);
        if (s >= 0.0)
            return s;
        missing_.insert(kernel + "|" + shape);
        return -1.0;
    }

    double
    tableOrBandwidth(const std::string &kernel, const std::string &shape,
                     std::uint64_t work_bytes)
    {
        const double s = kernelSeconds(kernel, shape, work_bytes);
        return s >= 0.0 ? s
                        : static_cast<double>(work_bytes) / host_bw_;
    }

    const Graph &graph_;
    const GistConfig &config_;
    const obs::CalibrationTable *table_;
    GpuModelParams params_{};
    double host_bw_ = 0.0;
    double tier_bw_ = 0.0;
    std::vector<double> fwd_memo_;
    std::set<std::string> missing_;
};

/** One simulated forward-replay the executor would run. */
struct ReplayEvent
{
    NodeId target = -1;           ///< dropped slot whose read triggers it
    int step = 0;                 ///< backward step of the trigger
    std::vector<NodeId> segment;  ///< forwards re-run (topological)
    std::vector<NodeId> decoded;  ///< encoded ancestors decoded early
};

/**
 * Mirror of Executor::ensureRecomputed()/replaySegment() over the
 * candidate representation vector: sweep the backward schedule tracking
 * per-slot availability and record every replay the executor would
 * issue — which slot triggers it, at which step, which forwards it
 * re-runs, and which of those stay resident afterwards (exactly the
 * executor's keep rule: stashed with a pending read at or after the
 * trigger). Chained drops share one event, as they share one replay.
 */
std::vector<ReplayEvent>
simulateReplays(const Graph &graph, const ScheduleInfo &sched,
                const std::vector<StashPlan::Repr> &repr)
{
    enum class Avail : char { Empty, Dense, Encoded };
    const auto n = static_cast<size_t>(graph.numNodes());
    std::vector<Avail> avail(n, Avail::Empty);
    for (size_t i = 0; i < n; ++i) {
        if (!sched.stashed(static_cast<NodeId>(i)))
            continue;
        switch (repr[i]) {
          case StashPlan::Repr::Dense:
            avail[i] = Avail::Dense;
            break;
          case StashPlan::Repr::Csr:
          case StashPlan::Repr::Dpr:
          case StashPlan::Repr::Swap:
            // Swap behaves like an encoded stash for replay purposes:
            // the slot is fetched back (and decoded) before its first
            // backward read, so it can serve as a replay frontier.
            avail[i] = Avail::Encoded;
            break;
          case StashPlan::Repr::Recompute:
            avail[i] = Avail::Empty;
            break;
        }
    }

    std::vector<ReplayEvent> events;
    const auto ensure = [&](NodeId target, int step) {
        auto &a = avail[static_cast<size_t>(target)];
        if (a == Avail::Dense)
            return;
        if (a == Avail::Encoded) {
            a = Avail::Dense; // the normal decode-before-first-read
            return;
        }
        ReplayEvent ev;
        ev.target = target;
        ev.step = step;
        std::vector<char> visited(n, 0);
        std::vector<NodeId> stack{ target };
        while (!stack.empty()) {
            const NodeId id = stack.back();
            stack.pop_back();
            if (visited[static_cast<size_t>(id)])
                continue;
            visited[static_cast<size_t>(id)] = 1;
            if (avail[static_cast<size_t>(id)] == Avail::Dense)
                continue;
            if (avail[static_cast<size_t>(id)] == Avail::Encoded) {
                ev.decoded.push_back(id);
                avail[static_cast<size_t>(id)] = Avail::Dense;
                continue;
            }
            ev.segment.push_back(id);
            for (NodeId in : graph.node(id).inputs)
                stack.push_back(in);
        }
        std::sort(ev.segment.begin(), ev.segment.end());
        for (const NodeId s : ev.segment)
            avail[static_cast<size_t>(s)] =
                (sched.stashed(s) && sched.lastBwdRead(s) >= step)
                    ? Avail::Dense
                    : Avail::Empty;
        events.push_back(std::move(ev));
    };

    for (auto i = static_cast<std::int64_t>(n) - 1; i >= 0; --i) {
        const auto id = static_cast<NodeId>(i);
        const Node &node = graph.node(id);
        if (node.kind() == LayerKind::Input)
            continue;
        const int step = graph.bwdStep(id);
        const BackwardNeeds needs = node.layer->backwardNeeds();
        if (needs.input)
            for (NodeId in : node.inputs)
                ensure(in, step);
        if (needs.output)
            ensure(id, step);
        for (NodeId in : node.inputs)
            if (sched.stashed(in) && sched.lastBwdRead(in) == step)
                avail[static_cast<size_t>(in)] = Avail::Empty;
        if (sched.stashed(id) && sched.lastBwdRead(id) == step)
            avail[static_cast<size_t>(id)] = Avail::Empty;
    }
    return events;
}

/** One candidate plan, evaluated: modeled footprint and overhead. */
struct PlanEval
{
    std::uint64_t peak = 0;          ///< max pool bytes over the steps
    double seconds = 0.0;            ///< codec + replay time per step
    std::vector<std::int64_t> live;  ///< per-step modeled pool bytes
    std::vector<double> slot_seconds; ///< per-node overhead attribution
};

PlanEval
evaluatePlan(const Graph &graph, const ScheduleInfo &sched,
             const BuiltSchedule &base,
             const std::vector<StashPlan::Repr> &repr,
             const SparsityModel &sparsity, HybridCost &cost)
{
    BuiltSchedule cand = base;
    for (size_t i = 0; i < repr.size(); ++i)
        cand.decisions[i].repr = repr[i];
    std::vector<PlannedBuffer> buffers =
        planBuffers(graph, cand, sparsity);

    PlanEval ev;
    ev.slot_seconds.assign(repr.size(), 0.0);

    // Replay scaffolding: transient segment forwards are all resident at
    // the trigger step (the executor releases them right after the
    // replay loop); kept forwards are already modeled by their ":rem"
    // buffer. Early-decoded ancestors only need extra modeling when the
    // decode-scratch buffer is elided from the plan.
    for (const ReplayEvent &re : simulateReplays(graph, sched, repr)) {
        double seg_seconds = 0.0;
        for (const NodeId s : re.segment) {
            seg_seconds += cost.fwdSeconds(s);
            if (sched.stashed(s) && sched.lastBwdRead(s) >= re.step)
                continue;
            const Node &sn = graph.node(s);
            buffers.push_back(
                { sn.name + ":replay", DataClass::ImmediateFmap,
                  static_cast<std::uint64_t>(sn.out_shape.numel()) * 4,
                  { re.step, re.step }, true, s });
        }
        if (base.config.elide_decode_buffer) {
            for (const NodeId d : re.decoded) {
                const Node &dn = graph.node(d);
                buffers.push_back(
                    { dn.name + ":replay_dec", DataClass::DecodeScratch,
                      static_cast<std::uint64_t>(dn.out_shape.numel()) *
                          4,
                      { re.step, sched.lastBwdRead(d) }, true, d });
            }
        }
        ev.seconds += seg_seconds;
        ev.slot_seconds[static_cast<size_t>(re.target)] += seg_seconds;
    }

    for (const auto &node : graph.nodes()) {
        if (!sched.stashed(node.id))
            continue;
        const auto r = repr[static_cast<size_t>(node.id)];
        if (r == StashPlan::Repr::Csr || r == StashPlan::Repr::Dpr) {
            const double s = cost.codecSeconds(node.id, r);
            ev.seconds += s;
            ev.slot_seconds[static_cast<size_t>(node.id)] += s;
        } else if (r == StashPlan::Repr::Swap) {
            // Swap pays the round trip over the slow tier, plus the
            // transfer codec when the eviction is compressed (the cDMA
            // idea: fewer bytes on the link buys back stall time).
            const StashPlan::SwapCodec codec =
                swapCodecFor(base.config, base.of(node.id).category);
            std::uint64_t moved =
                static_cast<std::uint64_t>(node.out_shape.numel()) * 4;
            double s = 0.0;
            if (codec == StashPlan::SwapCodec::Csr) {
                moved = csrBytesForSparsity(base.config.csr,
                                            node.out_shape.numel(),
                                            sparsity.at(graph, node.id));
                s += cost.codecSeconds(node.id, StashPlan::Repr::Csr);
            } else if (codec == StashPlan::SwapCodec::Dpr) {
                moved = dprEncodedBytes(base.config.dpr_format,
                                        node.out_shape.numel());
                s += cost.codecSeconds(node.id, StashPlan::Repr::Dpr);
            }
            s += cost.tierSeconds("tier_write", moved) +
                 cost.tierSeconds("tier_read", moved);
            ev.seconds += s;
            ev.slot_seconds[static_cast<size_t>(node.id)] += s;
        }
    }

    const int steps = graph.numSteps();
    std::vector<std::int64_t> delta(static_cast<size_t>(steps) + 1, 0);
    for (const PlannedBuffer &b : buffers) {
        if (!inMfrPool(b.cls))
            continue;
        const int s = std::clamp(b.live.start, 0, steps - 1);
        const int e = std::clamp(b.live.end, s, steps - 1);
        delta[static_cast<size_t>(s)] +=
            static_cast<std::int64_t>(b.bytes);
        delta[static_cast<size_t>(e) + 1] -=
            static_cast<std::int64_t>(b.bytes);
    }
    ev.live.resize(static_cast<size_t>(steps));
    std::int64_t run = 0;
    for (int t = 0; t < steps; ++t) {
        run += delta[static_cast<size_t>(t)];
        ev.live[static_cast<size_t>(t)] = run;
        ev.peak = std::max(ev.peak, static_cast<std::uint64_t>(
                                        std::max<std::int64_t>(run, 0)));
    }
    return ev;
}

} // namespace

void
optimizeHybridSchedule(const Graph &graph, BuiltSchedule &schedule,
                       std::uint64_t budget_bytes,
                       const obs::CalibrationTable *table)
{
    const ScheduleInfo sched(graph);
    const auto n = static_cast<size_t>(graph.numNodes());

    // CSR sizes are planned at twice the sparsity model's density
    // (equivalently: half the modeled zeros are assumed real). The
    // margin keeps feasible plans feasible in the executor even when
    // early-training sparsity undershoots the model — a budget is a
    // promise, an optimistic size estimate would break it.
    const auto margined = [](double sparsity) {
        return std::max(0.0, 1.0 - 2.0 * (1.0 - sparsity));
    };
    const SparsityModel planning_sparsity(margined(0.70),
                                          margined(0.40));

    HybridCost cost(graph, schedule.config, table);

    // Upgrade targets per stash slot, gated exactly like the static
    // Table I assignment: CSR needs SSDC enabled and a ReluConv slot,
    // DPR needs the DPR flag; recompute is always available (it is
    // lossless and needs no codec).
    std::vector<std::vector<StashPlan::Repr>> upgrades(n);
    for (const auto &node : graph.nodes()) {
        if (!sched.stashed(node.id))
            continue;
        auto &up = upgrades[static_cast<size_t>(node.id)];
        if (schedule.config.ssdc &&
            schedule.of(node.id).category == StashCategory::ReluConv)
            up.push_back(StashPlan::Repr::Csr);
        if (schedule.config.dpr)
            up.push_back(StashPlan::Repr::Dpr);
        if (schedule.config.device_pool_bytes > 0)
            up.push_back(StashPlan::Repr::Swap);
        up.push_back(StashPlan::Repr::Recompute);
    }

    std::vector<StashPlan::Repr> repr(n, StashPlan::Repr::Dense);
    PlanEval cur =
        evaluatePlan(graph, sched, schedule, repr, planning_sparsity,
                     cost);
    const std::uint64_t keep_peak = cur.peak;

    // Greedy move chain. Each iteration applies the single-slot upgrade
    // with the lowest seconds-per-byte-of-peak-relief. Relief is the
    // byte mass removed from the peak plateau — everything above the
    // highest live level *below* the current peak — so ties across
    // several peak steps score by how many of them a move clears, and a
    // deep cut scores by how far it cuts. Moves may never raise the
    // modeled peak. The chain is budget-independent (the budget only
    // decides where along it we stop), which makes budget sweeps yield
    // monotonically non-increasing planned peaks.
    while (budget_bytes > 0 && cur.peak > budget_bytes) {
        std::int64_t plateau_floor = 0;
        for (const std::int64_t v : cur.live)
            if (v >= 0 && static_cast<std::uint64_t>(v) < cur.peak)
                plateau_floor = std::max(plateau_floor, v);

        double best_score = 0.0;
        NodeId best_slot = -1;
        StashPlan::Repr best_to = StashPlan::Repr::Dense;
        PlanEval best_eval;
        for (const auto &node : graph.nodes()) {
            const auto idx = static_cast<size_t>(node.id);
            if (upgrades[idx].empty())
                continue;
            for (const StashPlan::Repr to : upgrades[idx]) {
                // Allowed transitions: Dense -> anything eligible,
                // Csr/Dpr -> Recompute. Never downgrade here (the
                // revert pass owns that direction).
                if (repr[idx] == to)
                    continue;
                if (repr[idx] != StashPlan::Repr::Dense &&
                    to != StashPlan::Repr::Recompute)
                    continue;
                if (repr[idx] == StashPlan::Repr::Recompute)
                    continue;
                auto cand = repr;
                cand[idx] = to;
                PlanEval e = evaluatePlan(graph, sched, schedule, cand,
                                          planning_sparsity, cost);
                if (e.peak > cur.peak)
                    continue;
                double relief = 0.0;
                for (size_t t = 0; t < cur.live.size(); ++t) {
                    const auto above = [&](std::int64_t v) {
                        return static_cast<double>(
                            std::max<std::int64_t>(v - plateau_floor,
                                                   0));
                    };
                    relief += above(cur.live[t]) - above(e.live[t]);
                }
                if (relief <= 0.0)
                    continue;
                const double dt =
                    std::max(e.seconds - cur.seconds, 1e-12);
                const double score = dt / relief;
                if (best_slot < 0 || score < best_score) {
                    best_score = score;
                    best_slot = node.id;
                    best_to = to;
                    best_eval = std::move(e);
                }
            }
        }
        if (best_slot < 0)
            break; // no single move relieves the peak any further
        repr[static_cast<size_t>(best_slot)] = best_to;
        cur = std::move(best_eval);
    }

    const bool feasible =
        budget_bytes == 0 || cur.peak <= budget_bytes;

    // Revert pass: walk the chosen choices from most to least expensive
    // and undo any the peak turned out not to need. A revert must leave
    // the modeled peak exactly unchanged — looser would let different
    // budgets land on different peaks for the same chain state and
    // break the sweep's monotonicity.
    std::vector<NodeId> chosen;
    for (size_t i = 0; i < n; ++i)
        if (repr[i] != StashPlan::Repr::Dense && sched.stashed(
                static_cast<NodeId>(i)))
            chosen.push_back(static_cast<NodeId>(i));
    std::sort(chosen.begin(), chosen.end(), [&](NodeId a, NodeId b) {
        const double sa = cur.slot_seconds[static_cast<size_t>(a)];
        const double sb = cur.slot_seconds[static_cast<size_t>(b)];
        return sa != sb ? sa > sb : a < b;
    });
    for (const NodeId id : chosen) {
        const auto idx = static_cast<size_t>(id);
        std::vector<StashPlan::Repr> alts{ StashPlan::Repr::Dense };
        if (repr[idx] == StashPlan::Repr::Recompute ||
            repr[idx] == StashPlan::Repr::Swap)
            for (const StashPlan::Repr up : upgrades[idx])
                if (up != StashPlan::Repr::Recompute && up != repr[idx])
                    alts.push_back(up);
        for (const StashPlan::Repr alt : alts) {
            auto cand = repr;
            cand[idx] = alt;
            PlanEval e = evaluatePlan(graph, sched, schedule, cand,
                                      planning_sparsity, cost);
            if (e.peak != cur.peak || e.seconds >= cur.seconds)
                continue;
            repr = std::move(cand);
            cur = std::move(e);
            break;
        }
    }

    // Publish: rewrite the decisions and fill the plan summary.
    HybridPlan &plan = schedule.hybrid;
    plan.active = true;
    plan.feasible = feasible;
    plan.calibrated = table != nullptr;
    plan.budget_bytes = budget_bytes;
    plan.keep_peak_bytes = keep_peak;
    plan.planned_peak_bytes = cur.peak;
    plan.est_overhead_seconds = cur.seconds;
    plan.missing_shapes = cost.missingCount();
    for (const auto &node : graph.nodes()) {
        if (!sched.stashed(node.id))
            continue;
        const auto idx = static_cast<size_t>(node.id);
        schedule.decisions[idx].repr = repr[idx];
        HybridSlot slot;
        slot.node = node.id;
        slot.name = node.name;
        slot.category = schedule.of(node.id).category;
        slot.repr = repr[idx];
        slot.fp32_bytes =
            static_cast<std::uint64_t>(node.out_shape.numel()) * 4;
        switch (repr[idx]) {
          case StashPlan::Repr::Dense:
            slot.stored_bytes = slot.fp32_bytes;
            break;
          case StashPlan::Repr::Csr:
            slot.stored_bytes = csrBytesForSparsity(
                schedule.config.csr, node.out_shape.numel(),
                planning_sparsity.at(graph, node.id));
            break;
          case StashPlan::Repr::Dpr:
            slot.stored_bytes = dprEncodedBytes(
                schedule.config.dpr_format, node.out_shape.numel());
            break;
          case StashPlan::Repr::Recompute:
            slot.stored_bytes = 0;
            break;
          case StashPlan::Repr::Swap: {
            // Nothing stays device-resident across the gap; what the
            // choice costs is the per-direction tier traffic.
            slot.stored_bytes = 0;
            const StashPlan::SwapCodec codec = swapCodecFor(
                schedule.config, schedule.of(node.id).category);
            switch (codec) {
              case StashPlan::SwapCodec::Csr:
                slot.tier_bytes = csrBytesForSparsity(
                    schedule.config.csr, node.out_shape.numel(),
                    planning_sparsity.at(graph, node.id));
                break;
              case StashPlan::SwapCodec::Dpr:
                slot.tier_bytes = dprEncodedBytes(
                    schedule.config.dpr_format,
                    node.out_shape.numel());
                break;
              case StashPlan::SwapCodec::None:
                slot.tier_bytes = slot.fp32_bytes;
                break;
            }
            break;
          }
        }
        slot.est_seconds = cur.slot_seconds[idx];
        plan.slots.push_back(std::move(slot));
    }
    if (cost.missingCount() > 0)
        obs::MetricRegistry::instance()
            .counter("gist.planner.missing_shapes")
            .add(static_cast<std::uint64_t>(cost.missingCount()));
    if (!feasible)
        GIST_WARN("mem budget ", budget_bytes,
                  " bytes is infeasible: even the most aggressive "
                  "hybrid plan peaks at ",
                  cur.peak, " bytes (all-keep peak ", keep_peak,
                  "); proceeding with the minimum-peak plan");
}

} // namespace gist
