#include "core/planner.hpp"

#include <algorithm>
#include <cstdio>

#include "layers/conv.hpp"
#include "tensor/im2col.hpp"
#include "util/logging.hpp"

namespace gist {

namespace {

/** Input shapes of a node (for workspace/aux queries). */
std::vector<Shape>
inputShapes(const Graph &graph, const Node &node)
{
    std::vector<Shape> shapes;
    for (NodeId in : node.inputs)
        shapes.push_back(graph.node(in).out_shape);
    return shapes;
}

} // namespace

bool
inMfrPool(DataClass cls)
{
    switch (cls) {
      case DataClass::StashedFmap:
      case DataClass::ImmediateFmap:
      case DataClass::GradientMap:
      case DataClass::EncodedFmap:
      case DataClass::DecodeScratch:
        return true;
      case DataClass::Weight:
      case DataClass::WeightGrad:
      case DataClass::Workspace:
        return false;
    }
    return false;
}

std::vector<PlannedBuffer>
planBuffers(const Graph &graph, const BuiltSchedule &schedule,
            const SparsityModel &sparsity)
{
    const ScheduleInfo sched(graph);
    const int last_step = graph.numSteps() - 1;
    std::vector<PlannedBuffer> buffers;

    // Which nodes are overwritten inplace by their ReLU consumer; the
    // merged buffer is emitted at the ReLU with the parent's birth step.
    std::vector<bool> absorbed(static_cast<size_t>(graph.numNodes()),
                               false);
    for (const auto &node : graph.nodes())
        if (schedule.of(node.id).inplace)
            absorbed[static_cast<size_t>(node.inputs[0])] = true;

    for (const auto &node : graph.nodes()) {
        const NodeId id = node.id;
        const size_t first_buffer = buffers.size();
        const auto &decision = schedule.of(id);
        const std::uint64_t fp32_bytes =
            static_cast<std::uint64_t>(node.out_shape.numel()) * 4;

        // ---- The output feature map ----
        if (!absorbed[static_cast<size_t>(id)]) {
            int birth = graph.fwdStep(id);
            if (decision.inplace)
                birth = graph.fwdStep(node.inputs[0]);

            if (!sched.stashed(id)) {
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::ImmediateFmap, fp32_bytes,
                                    { birth, sched.lastFwdRead(id) },
                                    true });
            } else if (decision.repr == StashPlan::Repr::Dense) {
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::StashedFmap, fp32_bytes,
                                    { birth, sched.lastBwdRead(id) },
                                    true });
            } else {
                // Encoded stash: the FP32 copy becomes immediately
                // consumed, the encoded form bridges the temporal gap,
                // and (unless elided) a decode buffer serves the
                // backward reads — paper Figure 2.
                const int last_fwd = sched.lastFwdRead(id);
                const int first_bwd = sched.firstBwdRead(id);
                const int last_bwd = sched.lastBwdRead(id);
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::ImmediateFmap, fp32_bytes,
                                    { birth, last_fwd }, true });
                std::uint64_t enc_bytes = 0;
                if (decision.repr == StashPlan::Repr::Csr) {
                    enc_bytes = csrBytesForSparsity(
                        schedule.config.csr, node.out_shape.numel(),
                        sparsity.at(graph, id));
                } else {
                    enc_bytes = dprEncodedBytes(schedule.config.dpr_format,
                                                node.out_shape.numel());
                }
                buffers.push_back({ node.name + ":enc",
                                    DataClass::EncodedFmap, enc_bytes,
                                    { last_fwd, first_bwd }, true });
                if (!schedule.config.elide_decode_buffer) {
                    buffers.push_back({ node.name + ":dec",
                                        DataClass::DecodeScratch,
                                        fp32_bytes,
                                        { first_bwd, last_bwd }, true });
                }
            }
        }

        if (node.kind() == LayerKind::Input) {
            for (size_t b = first_buffer; b < buffers.size(); ++b)
                buffers[b].origin_node = id;
            continue;
        }

        // ---- The gradient map of this node's output ----
        // Written by the backward passes of this node's consumers
        // (earliest first), consumed by this node's own backward step.
        const auto &consumers = sched.consumers(id);
        if (!consumers.empty()) {
            int first_writer = graph.bwdStep(id);
            for (NodeId c : consumers)
                first_writer = std::min(first_writer, graph.bwdStep(c));
            buffers.push_back({ node.name + ":grad",
                                DataClass::GradientMap, fp32_bytes,
                                { first_writer, graph.bwdStep(id) },
                                true });
        }

        const auto in_shapes = inputShapes(graph, node);

        // ---- Layer-internal aux stash ----
        const std::uint64_t aux =
            node.layer->auxStashBytes(in_shapes);
        if (aux > 0) {
            const bool gist_aux = decision.binarized;
            buffers.push_back({ node.name + ":aux",
                                gist_aux ? DataClass::EncodedFmap
                                         : DataClass::StashedFmap,
                                aux,
                                { graph.fwdStep(id), graph.bwdStep(id) },
                                true });
        }

        // ---- Workspace (forward and backward invocations) ----
        const std::uint64_t ws = node.layer->workspaceBytes(in_shapes);
        if (ws > 0) {
            buffers.push_back({ node.name + ":ws_f", DataClass::Workspace,
                                ws,
                                { graph.fwdStep(id), graph.fwdStep(id) },
                                true });
            buffers.push_back({ node.name + ":ws_b", DataClass::Workspace,
                                ws,
                                { graph.bwdStep(id), graph.bwdStep(id) },
                                true });
        }

        // ---- Parameters ----
        std::uint64_t param_bytes = 0;
        for (Tensor *p : node.layer->params())
            param_bytes += static_cast<std::uint64_t>(p->numel()) * 4;
        if (param_bytes > 0) {
            buffers.push_back({ node.name + ":w", DataClass::Weight,
                                param_bytes, { 0, last_step }, false });
            buffers.push_back({ node.name + ":dw", DataClass::WeightGrad,
                                param_bytes, { 0, last_step }, false });
        }

        for (size_t b = first_buffer; b < buffers.size(); ++b)
            buffers[b].origin_node = id;
    }
    return buffers;
}

PlanSummary
summarize(const std::vector<PlannedBuffer> &buffers, bool investigation)
{
    PlanSummary summary;
    summary.raw = bytesByClass(buffers);
    summary.weights = summary.raw[DataClass::Weight];
    summary.weight_grads = summary.raw[DataClass::WeightGrad];
    // Workspace is shared across layers (disjoint single-step lifetimes),
    // so its contribution is the maximum, not the sum.
    for (const auto &buf : buffers)
        if (buf.cls == DataClass::Workspace)
            summary.workspace = std::max(summary.workspace, buf.bytes);

    std::vector<PlannedBuffer> pool;
    for (const auto &buf : buffers) {
        if (!inMfrPool(buf.cls))
            continue;
        PlannedBuffer copy = buf;
        if (investigation && (buf.cls == DataClass::StashedFmap ||
                              buf.cls == DataClass::EncodedFmap)) {
            copy.shareable = false;
        }
        pool.push_back(std::move(copy));
        summary.pool_raw += buf.bytes;
    }
    summary.pool_static = allocateCntkStyle(pool).total_bytes;
    summary.pool_dynamic = dynamicPeak(pool);
    return summary;
}

PlanSummary
planModel(Graph &graph, const GistConfig &config,
          const SparsityModel &sparsity, bool investigation)
{
    const BuiltSchedule schedule = buildSchedule(graph, config);
    const auto buffers = planBuffers(graph, schedule, sparsity);
    return summarize(buffers, investigation);
}

namespace {

std::string
gemmKey(std::int64_t m, std::int64_t n, std::int64_t k)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "m=%lld,n=%lld,k=%lld",
                  static_cast<long long>(m), static_cast<long long>(n),
                  static_cast<long long>(k));
    return buf;
}

/** Bytes one m x n x k GEMM touches (A + B + C, fp32). */
std::uint64_t
gemmBytes(std::int64_t m, std::int64_t n, std::int64_t k)
{
    return 4ull * static_cast<std::uint64_t>(m * k + k * n + m * n);
}

} // namespace

std::vector<KernelShape>
collectKernelShapes(const Graph &graph, const BuiltSchedule &schedule)
{
    const ScheduleInfo sched(graph);
    std::vector<KernelShape> out;
    const auto add = [&out](std::string kernel, std::string shape,
                            std::uint64_t work, std::uint64_t calls) {
        for (KernelShape &ks : out) {
            if (ks.kernel == kernel && ks.shape == shape) {
                ks.calls += calls;
                return;
            }
        }
        out.push_back(
            { std::move(kernel), std::move(shape), work, calls });
    };

    for (const auto &node : graph.nodes()) {
        const NodeId id = node.id;
        const auto &decision = schedule.of(id);

        // ---- Codec kernels: one encode + one decode per encoded stash.
        if (sched.stashed(id) &&
            decision.repr != StashPlan::Repr::Dense) {
            const std::int64_t numel = node.out_shape.numel();
            const std::uint64_t fp32 =
                static_cast<std::uint64_t>(numel) * 4;
            char key[48];
            if (decision.repr == StashPlan::Repr::Csr) {
                std::snprintf(key, sizeof key, "numel=%lld",
                              static_cast<long long>(numel));
                add("csr_encode", key, fp32, 1);
                add("csr_decode", key, fp32, 1);
            } else {
                std::snprintf(key, sizeof key, "fmt=%s,numel=%lld",
                              dprFormatName(schedule.config.dpr_format),
                              static_cast<long long>(numel));
                add("dpr_encode", key, fp32, 1);
                add("dpr_decode", key, fp32, 1);
            }
        }

        // ---- Compute kernels at the schedule's shapes.
        if (node.kind() == LayerKind::Conv) {
            const auto *conv =
                static_cast<const ConvLayer *>(node.layer.get());
            const ConvSpec &spec = conv->spec();
            const Shape &in = graph.node(node.inputs[0]).out_shape;
            const ConvGeometry g{ in.c(),        in.h(),
                                  in.w(),        spec.kernel_h,
                                  spec.kernel_w, spec.stride_h,
                                  spec.stride_w, spec.pad_h,
                                  spec.pad_w };
            const auto batch = static_cast<std::uint64_t>(in.n());
            const std::int64_t m = spec.out_channels;
            const std::int64_t n = g.colCols();
            const std::int64_t k = g.colRows();
            char key[160];
            std::snprintf(key, sizeof key,
                          "c=%lld,h=%lld,w=%lld,kh=%lld,kw=%lld,"
                          "sh=%lld,sw=%lld,ph=%lld,pw=%lld",
                          static_cast<long long>(in.c()),
                          static_cast<long long>(in.h()),
                          static_cast<long long>(in.w()),
                          static_cast<long long>(spec.kernel_h),
                          static_cast<long long>(spec.kernel_w),
                          static_cast<long long>(spec.stride_h),
                          static_cast<long long>(spec.stride_w),
                          static_cast<long long>(spec.pad_h),
                          static_cast<long long>(spec.pad_w));
            add("im2col", key,
                4ull * static_cast<std::uint64_t>(
                           in.c() * in.h() * in.w() + k * n),
                batch);
            // Forward Y = W * cols, backward dW = dY * cols^T and
            // dcols = W^T * dY — one GEMM per image each.
            add("gemm", gemmKey(m, n, k), gemmBytes(m, n, k), batch);
            add("gemm", gemmKey(m, k, n), gemmBytes(m, k, n), batch);
            add("gemm", gemmKey(k, n, m), gemmBytes(k, n, m), batch);
        } else if (node.kind() == LayerKind::Fc) {
            const Shape &in = graph.node(node.inputs[0]).out_shape;
            const std::int64_t batch = in.dim(0);
            const std::int64_t in_f = in.numel() / batch;
            const std::int64_t out_f = node.out_shape.numel() / batch;
            // Forward Y = X * W^T, backward dX = dY * W and
            // dW = dY^T * X — whole-batch GEMMs.
            add("gemm", gemmKey(batch, out_f, in_f),
                gemmBytes(batch, out_f, in_f), 1);
            add("gemm", gemmKey(batch, in_f, out_f),
                gemmBytes(batch, in_f, out_f), 1);
            add("gemm", gemmKey(out_f, in_f, batch),
                gemmBytes(out_f, in_f, batch), 1);
        }
    }
    return out;
}

CostEstimate
estimateStepCost(const Graph &graph, const BuiltSchedule &schedule,
                 const obs::CalibrationTable &table)
{
    CostEstimate est;
    for (const KernelShape &ks : collectKernelShapes(graph, schedule)) {
        double seconds;
        if (const obs::CalibrationEntry *e =
                table.find(ks.kernel, ks.shape)) {
            seconds = e->seconds;
        } else {
            seconds = table.secondsFor(ks.kernel, ks.work_bytes);
            if (seconds < 0.0) {
                ++est.missing;
                continue;
            }
        }
        const double total = seconds * static_cast<double>(ks.calls);
        if (ks.kernel == "gemm")
            est.gemm_seconds += total;
        else if (ks.kernel == "im2col")
            est.im2col_seconds += total;
        else if (ks.kernel.ends_with("_encode"))
            est.encode_seconds += total;
        else if (ks.kernel.ends_with("_decode"))
            est.decode_seconds += total;
    }
    return est;
}

} // namespace gist
