#include "core/planner.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace gist {

namespace {

/** Input shapes of a node (for workspace/aux queries). */
std::vector<Shape>
inputShapes(const Graph &graph, const Node &node)
{
    std::vector<Shape> shapes;
    for (NodeId in : node.inputs)
        shapes.push_back(graph.node(in).out_shape);
    return shapes;
}

} // namespace

bool
inMfrPool(DataClass cls)
{
    switch (cls) {
      case DataClass::StashedFmap:
      case DataClass::ImmediateFmap:
      case DataClass::GradientMap:
      case DataClass::EncodedFmap:
      case DataClass::DecodeScratch:
        return true;
      case DataClass::Weight:
      case DataClass::WeightGrad:
      case DataClass::Workspace:
        return false;
    }
    return false;
}

std::vector<PlannedBuffer>
planBuffers(const Graph &graph, const BuiltSchedule &schedule,
            const SparsityModel &sparsity)
{
    const ScheduleInfo sched(graph);
    const int last_step = graph.numSteps() - 1;
    std::vector<PlannedBuffer> buffers;

    // Which nodes are overwritten inplace by their ReLU consumer; the
    // merged buffer is emitted at the ReLU with the parent's birth step.
    std::vector<bool> absorbed(static_cast<size_t>(graph.numNodes()),
                               false);
    for (const auto &node : graph.nodes())
        if (schedule.of(node.id).inplace)
            absorbed[static_cast<size_t>(node.inputs[0])] = true;

    for (const auto &node : graph.nodes()) {
        const NodeId id = node.id;
        const size_t first_buffer = buffers.size();
        const auto &decision = schedule.of(id);
        const std::uint64_t fp32_bytes =
            static_cast<std::uint64_t>(node.out_shape.numel()) * 4;

        // ---- The output feature map ----
        if (!absorbed[static_cast<size_t>(id)]) {
            int birth = graph.fwdStep(id);
            if (decision.inplace)
                birth = graph.fwdStep(node.inputs[0]);

            if (!sched.stashed(id)) {
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::ImmediateFmap, fp32_bytes,
                                    { birth, sched.lastFwdRead(id) },
                                    true });
            } else if (decision.repr == StashPlan::Repr::Dense) {
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::StashedFmap, fp32_bytes,
                                    { birth, sched.lastBwdRead(id) },
                                    true });
            } else {
                // Encoded stash: the FP32 copy becomes immediately
                // consumed, the encoded form bridges the temporal gap,
                // and (unless elided) a decode buffer serves the
                // backward reads — paper Figure 2.
                const int last_fwd = sched.lastFwdRead(id);
                const int first_bwd = sched.firstBwdRead(id);
                const int last_bwd = sched.lastBwdRead(id);
                buffers.push_back({ node.name + ":fmap",
                                    DataClass::ImmediateFmap, fp32_bytes,
                                    { birth, last_fwd }, true });
                std::uint64_t enc_bytes = 0;
                if (decision.repr == StashPlan::Repr::Csr) {
                    enc_bytes = csrBytesForSparsity(
                        schedule.config.csr, node.out_shape.numel(),
                        sparsity.at(graph, id));
                } else {
                    enc_bytes = dprEncodedBytes(schedule.config.dpr_format,
                                                node.out_shape.numel());
                }
                buffers.push_back({ node.name + ":enc",
                                    DataClass::EncodedFmap, enc_bytes,
                                    { last_fwd, first_bwd }, true });
                if (!schedule.config.elide_decode_buffer) {
                    buffers.push_back({ node.name + ":dec",
                                        DataClass::DecodeScratch,
                                        fp32_bytes,
                                        { first_bwd, last_bwd }, true });
                }
            }
        }

        if (node.kind() == LayerKind::Input) {
            for (size_t b = first_buffer; b < buffers.size(); ++b)
                buffers[b].origin_node = id;
            continue;
        }

        // ---- The gradient map of this node's output ----
        // Written by the backward passes of this node's consumers
        // (earliest first), consumed by this node's own backward step.
        const auto &consumers = sched.consumers(id);
        if (!consumers.empty()) {
            int first_writer = graph.bwdStep(id);
            for (NodeId c : consumers)
                first_writer = std::min(first_writer, graph.bwdStep(c));
            buffers.push_back({ node.name + ":grad",
                                DataClass::GradientMap, fp32_bytes,
                                { first_writer, graph.bwdStep(id) },
                                true });
        }

        const auto in_shapes = inputShapes(graph, node);

        // ---- Layer-internal aux stash ----
        const std::uint64_t aux =
            node.layer->auxStashBytes(in_shapes);
        if (aux > 0) {
            const bool gist_aux = decision.binarized;
            buffers.push_back({ node.name + ":aux",
                                gist_aux ? DataClass::EncodedFmap
                                         : DataClass::StashedFmap,
                                aux,
                                { graph.fwdStep(id), graph.bwdStep(id) },
                                true });
        }

        // ---- Workspace (forward and backward invocations) ----
        const std::uint64_t ws = node.layer->workspaceBytes(in_shapes);
        if (ws > 0) {
            buffers.push_back({ node.name + ":ws_f", DataClass::Workspace,
                                ws,
                                { graph.fwdStep(id), graph.fwdStep(id) },
                                true });
            buffers.push_back({ node.name + ":ws_b", DataClass::Workspace,
                                ws,
                                { graph.bwdStep(id), graph.bwdStep(id) },
                                true });
        }

        // ---- Parameters ----
        std::uint64_t param_bytes = 0;
        for (Tensor *p : node.layer->params())
            param_bytes += static_cast<std::uint64_t>(p->numel()) * 4;
        if (param_bytes > 0) {
            buffers.push_back({ node.name + ":w", DataClass::Weight,
                                param_bytes, { 0, last_step }, false });
            buffers.push_back({ node.name + ":dw", DataClass::WeightGrad,
                                param_bytes, { 0, last_step }, false });
        }

        for (size_t b = first_buffer; b < buffers.size(); ++b)
            buffers[b].origin_node = id;
    }
    return buffers;
}

PlanSummary
summarize(const std::vector<PlannedBuffer> &buffers, bool investigation)
{
    PlanSummary summary;
    summary.raw = bytesByClass(buffers);
    summary.weights = summary.raw[DataClass::Weight];
    summary.weight_grads = summary.raw[DataClass::WeightGrad];
    // Workspace is shared across layers (disjoint single-step lifetimes),
    // so its contribution is the maximum, not the sum.
    for (const auto &buf : buffers)
        if (buf.cls == DataClass::Workspace)
            summary.workspace = std::max(summary.workspace, buf.bytes);

    std::vector<PlannedBuffer> pool;
    for (const auto &buf : buffers) {
        if (!inMfrPool(buf.cls))
            continue;
        PlannedBuffer copy = buf;
        if (investigation && (buf.cls == DataClass::StashedFmap ||
                              buf.cls == DataClass::EncodedFmap)) {
            copy.shareable = false;
        }
        pool.push_back(std::move(copy));
        summary.pool_raw += buf.bytes;
    }
    summary.pool_static = allocateCntkStyle(pool).total_bytes;
    summary.pool_dynamic = dynamicPeak(pool);
    return summary;
}

PlanSummary
planModel(Graph &graph, const GistConfig &config,
          const SparsityModel &sparsity, bool investigation)
{
    const BuiltSchedule schedule = buildSchedule(graph, config);
    const auto buffers = planBuffers(graph, schedule, sparsity);
    return summarize(buffers, investigation);
}

} // namespace gist
