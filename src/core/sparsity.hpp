/**
 * @file
 * Sparsity assumptions the memory planner feeds into the SSDC size model.
 * SSDC's compression is data-dependent (paper Section V-E); planning-time
 * footprints therefore parameterize per-node sparsity, either as defaults
 * motivated by the paper's measurements (ReLU outputs frequently exceed
 * 80% zeros on VGG16; pooled maps are denser because max-pooling keeps
 * the largest window value) or as values measured from a training run.
 */

#pragma once

#include <map>

#include "graph/graph.hpp"

namespace gist {

/** Per-node sparsity (fraction of zero elements) assumptions. */
class SparsityModel
{
  public:
    /** Defaults: ReLU outputs 70% zeros, pooled outputs 40%. */
    SparsityModel() = default;

    SparsityModel(double relu, double pool)
        : relu_default(relu), pool_default(pool)
    {
    }

    /** Override the sparsity of one node's output (e.g. measured). */
    void set(NodeId id, double sparsity) { overrides[id] = sparsity; }

    /** Sparsity of node @p id's output in @p graph. */
    double
    at(const Graph &graph, NodeId id) const
    {
        if (auto it = overrides.find(id); it != overrides.end())
            return it->second;
        switch (graph.node(id).kind()) {
          case LayerKind::Relu:
            return relu_default;
          case LayerKind::MaxPool:
          case LayerKind::AvgPool:
            return pool_default;
          default:
            return 0.0;
        }
    }

  private:
    double relu_default = 0.70;
    double pool_default = 0.40;
    std::map<NodeId, double> overrides;
};

} // namespace gist
