/**
 * @file
 * Stash-category classification: the Schedule Builder's pattern matcher
 * over the execution graph (paper Figure 3's three categories).
 */

#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace gist {

/** Which encoding a stashed feature map is eligible for. */
enum class StashCategory {
    NotStashed, ///< immediately consumed in the forward pass
    ReluPool,   ///< ReLU output consumed by a MaxPool: Binarize
    ReluConv,   ///< ReLU/Pool output feeding a Conv: SSDC
    Other,      ///< remaining stashed fmaps: DPR
};

/** Name of a StashCategory ("ReluPool", ...). */
const char *stashCategoryName(StashCategory cat);

/**
 * Classify every node's output feature map with the layers in their
 * *baseline* (dense) modes.
 *
 * Rules, mirroring Section III:
 *  - ReluPool: a ReLU whose only consumer is a MaxPool. ReLU's own
 *    backward needs just the sign of Y and the pool can switch to the
 *    argmax map, so 1-bit storage suffices.
 *  - ReluConv: a ReLU or Pool output with at least one Conv consumer
 *    (exact values are needed in backward, but they are sparse).
 *  - Other: any remaining stashed feature map (DPR territory).
 */
std::vector<StashCategory> classifyStashes(const Graph &graph);

} // namespace gist
