/**
 * @file
 * Public umbrella header for the Gist library.
 *
 * Typical use:
 *
 *   gist::Graph graph = gist::models::vgg16(64);
 *   auto summary_base = gist::planModel(graph, gist::GistConfig::baseline(),
 *                                       {});
 *   auto summary_gist = gist::planModel(
 *       graph, gist::GistConfig::lossy(gist::DprFormat::Fp16), {});
 *   double mfr = double(summary_base.pool_static) /
 *                double(summary_gist.pool_static);
 *
 * or, for real training with the encodings live in the loop:
 *
 *   gist::Executor exec(graph);
 *   auto schedule = gist::buildSchedule(graph, config);
 *   gist::applyToExecutor(schedule, exec);
 *   exec.runMinibatch(batch, labels);
 */

#pragma once

#include "core/classify.hpp"
#include "core/config.hpp"
#include "core/planner.hpp"
#include "core/schedule_builder.hpp"
#include "core/sparsity.hpp"
