#include "obs/memprof.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "util/logging.hpp"

namespace gist::obs {

namespace detail {
std::atomic<bool> g_memprof_on{ false };
} // namespace detail

namespace {

struct MemProfState
{
    std::mutex mu;
    std::vector<MemProfStep> steps;
    std::string path;
    std::string plan_json; ///< hybrid plan object, "" = none
};

MemProfState &
state()
{
    // Leaked on purpose, like the trace registry: the atexit flush may
    // run during static teardown.
    static MemProfState *s = new MemProfState;
    return *s;
}

void
escapeJson(const std::string &in, std::string &out)
{
    for (const char ch : in) {
        const unsigned char c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    escapeJson(s, out);
    out += '"';
    return out;
}

} // namespace

void
memprofStart(const std::string &path)
{
    {
        MemProfState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        s.path = path;
    }
    if (!path.empty()) {
        // Make the file appear even when the caller never stops the
        // profiler (config-path route); memprofStop() is write-once so
        // a second flush from the trace atexit hook is a no-op.
        static std::once_flag once;
        std::call_once(once, [] { std::atexit([] { memprofStop(); }); });
    }
    detail::g_memprof_on.store(true, std::memory_order_release);
}

void
memprofStop()
{
    detail::g_memprof_on.store(false, std::memory_order_release);
    std::string path;
    {
        MemProfState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        path.swap(s.path); // write once; a later stop is a no-op
    }
    if (!path.empty())
        memprofWrite(path);
}

void
memprofRecordStep(MemProfStep step)
{
    MemProfState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.steps.push_back(std::move(step));
}

std::vector<MemProfStep>
memprofCollect()
{
    MemProfState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.steps;
}

void
memprofReset()
{
    MemProfState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.steps.clear();
}

void
memprofSetPlan(std::string plan_json)
{
    MemProfState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.plan_json = std::move(plan_json);
}

std::string
memprofPlan()
{
    MemProfState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.plan_json;
}

bool
memprofWrite(const std::string &path)
{
    const std::vector<MemProfStep> steps = memprofCollect();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        GIST_WARN("cannot open memprof file '", path, "'");
        return false;
    }
    std::fprintf(f, "{\n  \"version\": 1,\n  \"kind\": \"gist-memprof\",");
    const std::string plan = memprofPlan();
    if (!plan.empty())
        std::fprintf(f, "\n  \"plan\": %s,", plan.c_str());
    std::fprintf(f, "\n  \"steps\": [");
    bool first_step = true;
    for (const MemProfStep &st : steps) {
        std::fprintf(f, "%s\n    {\"step\": %llu,", first_step ? "" : ",",
                     static_cast<unsigned long long>(st.step));
        if (!st.job.empty())
            std::fprintf(f, " \"job\": %s,", quoted(st.job).c_str());
        std::fprintf(f, " \"peak_pool_bytes\": %lld,"
                        " \"peak_sched_step\": %d,"
                        " \"peak_node\": %s,"
                        " \"arena_high_water\": %lld,",
                     static_cast<long long>(st.peak_pool_bytes),
                     st.peak_sched_step, quoted(st.peak_node).c_str(),
                     static_cast<long long>(st.arena_high_water));
        first_step = false;
        std::fprintf(f, "\n     \"peak_attribution\": [");
        bool first = true;
        for (const MemProfSlot &slot : st.peak_attribution) {
            std::fprintf(
                f,
                "%s\n       {\"node\": %s, \"value_bytes\": %llu,"
                " \"grad_bytes\": %llu, \"encoded_bytes\": %llu,"
                " \"aux_bytes\": %llu, \"total_bytes\": %llu}",
                first ? "" : ",", quoted(slot.node).c_str(),
                static_cast<unsigned long long>(slot.value_bytes),
                static_cast<unsigned long long>(slot.grad_bytes),
                static_cast<unsigned long long>(slot.encoded_bytes),
                static_cast<unsigned long long>(slot.aux_bytes),
                static_cast<unsigned long long>(slot.total()));
            first = false;
        }
        std::fprintf(f, "%s],", first ? "" : "\n     ");
        std::fprintf(f, "\n     \"timeline\": [");
        first = true;
        for (const MemProfSample &smp : st.timeline) {
            std::fprintf(
                f,
                "%s\n       {\"sched_step\": %d, \"node\": %s,"
                " \"phase\": %s, \"pool_bytes\": %lld,"
                " \"arena_bytes\": %lld, \"encoded_bytes\": %lld,"
                " \"tier_bytes\": %lld}",
                first ? "" : ",", smp.sched_step,
                quoted(smp.node).c_str(), quoted(smp.phase).c_str(),
                static_cast<long long>(smp.pool_bytes),
                static_cast<long long>(smp.arena_bytes),
                static_cast<long long>(smp.encoded_bytes),
                static_cast<long long>(smp.tier_bytes));
            first = false;
        }
        std::fprintf(f, "%s]}", first ? "" : "\n     ");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    GIST_INFORM("memory timeline written to ", path, " (", steps.size(),
                " steps)");
    return true;
}

} // namespace gist::obs
