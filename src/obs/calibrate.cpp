#include "obs/calibrate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/jsonin.hpp"
#include "util/logging.hpp"

namespace gist::obs {

namespace {

void
escapeJson(const std::string &in, std::string &out)
{
    for (const char ch : in) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default: out += ch;
        }
    }
}

std::string
quoted(const std::string &s)
{
    std::string out = "\"";
    escapeJson(s, out);
    out += '"';
    return out;
}

} // namespace

const CalibrationEntry *
CalibrationTable::find(const std::string &kernel,
                       const std::string &shape) const
{
    for (const CalibrationEntry &e : entries)
        if (e.kernel == kernel && e.shape == shape)
            return &e;
    return nullptr;
}

double
CalibrationTable::secondsFor(const std::string &kernel,
                             std::uint64_t work_bytes) const
{
    // Gather the kernel's (work_bytes, seconds) points sorted by work.
    std::vector<const CalibrationEntry *> pts;
    for (const CalibrationEntry &e : entries)
        if (e.kernel == kernel && e.work_bytes > 0 && e.seconds > 0.0)
            pts.push_back(&e);
    if (pts.empty())
        return -1.0;
    std::sort(pts.begin(), pts.end(),
              [](const CalibrationEntry *a, const CalibrationEntry *b) {
                  return a->work_bytes < b->work_bytes;
              });
    const double w = static_cast<double>(work_bytes);
    if (work_bytes <= pts.front()->work_bytes)
        return pts.front()->seconds * w /
               static_cast<double>(pts.front()->work_bytes);
    if (work_bytes >= pts.back()->work_bytes)
        return pts.back()->seconds * w /
               static_cast<double>(pts.back()->work_bytes);
    for (size_t i = 1; i < pts.size(); ++i) {
        if (work_bytes > pts[i]->work_bytes)
            continue;
        // Log-log interpolation: kernel cost curves are close to power
        // laws in bytes moved (cache-level regime changes bend them on
        // a linear axis), so interpolating log(seconds) against
        // log(bytes) reproduces any local t = c * w^p segment exactly —
        // in particular a constant-throughput segment (p = 1), where
        // linear interpolation agrees.
        const double w0 = static_cast<double>(pts[i - 1]->work_bytes);
        const double w1 = static_cast<double>(pts[i]->work_bytes);
        const double t0 = pts[i - 1]->seconds;
        const double t1 = pts[i]->seconds;
        if (w0 == w1)
            return std::min(t0, t1);
        const double f = (std::log(w) - std::log(w0)) /
                         (std::log(w1) - std::log(w0));
        return std::exp(std::log(t0) +
                        f * (std::log(t1) - std::log(t0)));
    }
    return pts.back()->seconds; // unreachable
}

bool
CalibrationTable::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        GIST_WARN("cannot open calibration file '", path, "'");
        return false;
    }
    std::fprintf(f,
                 "{\n  \"version\": %d,\n  \"kind\":"
                 " \"gist-calibration\",\n  \"host\": %s,\n"
                 "  \"simd\": %s,\n  \"threads\": %d,\n"
                 "  \"created\": %s,\n  \"entries\": [",
                 version, quoted(host).c_str(), quoted(simd).c_str(),
                 threads, quoted(created).c_str());
    bool first = true;
    for (const CalibrationEntry &e : entries) {
        std::fprintf(f,
                     "%s\n    {\"kernel\": %s, \"shape\": %s,"
                     " \"work_bytes\": %llu, \"seconds\": %.9g,"
                     " \"gbps\": %.4f}",
                     first ? "" : ",", quoted(e.kernel).c_str(),
                     quoted(e.shape).c_str(),
                     static_cast<unsigned long long>(e.work_bytes),
                     e.seconds, e.gbps());
        first = false;
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return true;
}

bool
CalibrationTable::load(const std::string &path, CalibrationTable &out,
                       std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    JsonValue root;
    std::string perr;
    if (!JsonValue::parse(ss.str(), root, &perr)) {
        if (err)
            *err = path + ": " + perr;
        return false;
    }
    if (!root.isObject()) {
        if (err)
            *err = path + ": top level is not an object";
        return false;
    }
    const std::int64_t version = root.intOr("version", -1);
    if (version != kVersion) {
        if (err)
            *err = path + ": calibration version " +
                   std::to_string(version) + " != expected " +
                   std::to_string(kVersion);
        return false;
    }
    if (root.stringOr("kind", "") != "gist-calibration") {
        if (err)
            *err = path + ": not a gist-calibration file";
        return false;
    }
    out = CalibrationTable{};
    out.version = static_cast<int>(version);
    out.host = root.stringOr("host", "unknown");
    out.simd = root.stringOr("simd", "unknown");
    out.threads = static_cast<int>(root.intOr("threads", 0));
    out.created = root.stringOr("created", "");
    const JsonValue *entries = root.get("entries");
    if (!entries || !entries->isArray()) {
        if (err)
            *err = path + ": missing entries array";
        return false;
    }
    for (const JsonValue &je : entries->items()) {
        CalibrationEntry e;
        e.kernel = je.stringOr("kernel", "");
        e.shape = je.stringOr("shape", "");
        e.work_bytes =
            static_cast<std::uint64_t>(je.intOr("work_bytes", 0));
        e.seconds = je.numberOr("seconds", 0.0);
        if (e.kernel.empty() || e.seconds <= 0.0) {
            if (err)
                *err = path + ": entry with empty kernel or"
                              " non-positive seconds";
            return false;
        }
        out.entries.push_back(std::move(e));
    }
    return true;
}

} // namespace gist::obs
