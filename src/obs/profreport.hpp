/**
 * @file
 * Offline profile-report builder behind tools/gist_prof: joins a
 * Chrome trace JSON, a metrics JSONL and a memprof timeline JSON into
 * one human-readable text report (top-k spans, per-node critical path,
 * stall summary, peak-memory attribution). Pure functions over parsed
 * JsonValues so tests can drive them without touching the filesystem.
 */

#pragma once

#include <string>
#include <vector>

#include "util/jsonin.hpp"

namespace gist::obs {

struct ProfReportOptions
{
    int top_k = 12; ///< rows in the span and attribution tables
};

/** Read and parse one JSON file. False + @p err on failure. */
bool loadJsonFile(const std::string &path, JsonValue &out,
                  std::string *err = nullptr);

/** Read a JSONL file (one JSON object per non-empty line). */
bool loadJsonLines(const std::string &path, std::vector<JsonValue> &out,
                   std::string *err = nullptr);

/**
 * Render the report. Any input may be null — its sections are skipped
 * with a note, so partial artifact sets still produce a report.
 */
std::string renderProfReport(const JsonValue *trace,
                             const std::vector<JsonValue> *metrics,
                             const JsonValue *memprof,
                             const ProfReportOptions &opts = {});

} // namespace gist::obs
