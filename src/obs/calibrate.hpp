/**
 * @file
 * Per-host kernel cost calibration table: measured seconds for the
 * dispatched encode/decode/GEMM/im2col kernels at the shapes a real
 * schedule uses, persisted as versioned JSON (`calibration.json`).
 *
 * This file is the data model only (save/load/lookup/interpolation);
 * the measurement driver lives in tools/gist_calibrate.cpp (it needs
 * the tensor/encodings/graph layers, which must not become gist_obs
 * dependencies), and the consumer is src/core/planner.cpp's
 * estimateStepCost() — the measured substrate for ROADMAP item 3's
 * hybrid encode-vs-recompute-vs-swap planner.
 *
 * Cost model: each entry records the bytes the kernel moves per call,
 * so cost(kernel, work_bytes) interpolates log-log in bytes between
 * same-kernel entries (kernel cost curves are near power laws, which
 * log-log reproduces exactly) and extrapolates at the nearest entry's
 * throughput. Per-kernel-name entries, not a parametric model: the
 * planner only ever asks about shapes the schedule contains, which is
 * exactly what the calibrator measured.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gist::obs {

/** One measured kernel at one shape. */
struct CalibrationEntry
{
    std::string kernel; ///< e.g. "csr_encode", "gemm", "im2col"
    std::string shape;  ///< human key, e.g. "m=64,n=784,k=576"
    std::uint64_t work_bytes = 0; ///< bytes moved per call (GB/s basis)
    double seconds = 0.0;         ///< measured seconds per call

    double
    gbps() const
    {
        return seconds > 0.0
                   ? static_cast<double>(work_bytes) / seconds / 1e9
                   : 0.0;
    }
};

/** The versioned per-host table. */
struct CalibrationTable
{
    static constexpr int kVersion = 1;

    int version = kVersion;
    std::string host;    ///< hostname (or "unknown")
    std::string simd;    ///< dispatched backend ("avx2", "scalar", ...)
    int threads = 0;     ///< pool size during measurement
    std::string created; ///< ISO-8601 UTC timestamp
    std::vector<CalibrationEntry> entries;

    /** Exact (kernel, shape) lookup; nullptr when absent. */
    const CalibrationEntry *find(const std::string &kernel,
                                 const std::string &shape) const;

    /**
     * Estimated seconds for @p kernel moving @p work_bytes: log-log
     * interpolation in work_bytes between the two bracketing entries
     * of that kernel, throughput extrapolation outside the measured
     * range. Returns a negative value when the kernel has no entries.
     */
    double secondsFor(const std::string &kernel,
                      std::uint64_t work_bytes) const;

    /** Write as JSON; false (with a warning) on I/O failure. */
    bool save(const std::string &path) const;

    /**
     * Parse @p path. False when the file is unreadable, not JSON, or
     * a newer/older version than kVersion (forward compatibility is
     * an explicit re-calibrate, never a silent partial read).
     */
    static bool load(const std::string &path, CalibrationTable &out,
                     std::string *err = nullptr);
};

} // namespace gist::obs
