#include "obs/counters.hpp"

namespace gist::obs {

MetricRegistry &
MetricRegistry::instance()
{
    // Intentionally leaked so instrument references never dangle, even
    // from code running during static teardown.
    static MetricRegistry *r = new MetricRegistry;
    return *r;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

std::vector<MetricSample>
MetricRegistry::snapshot() const
{
    std::vector<MetricSample> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[name, c] : counters_)
        out.push_back({ name, static_cast<std::int64_t>(c->value()),
                        false, 0 });
    for (const auto &[name, g] : gauges_)
        out.push_back({ name, g->current(), true, g->peak() });
    return out;
}

void
MetricRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_) {
        g->set(0);
        g->resetPeak();
    }
}

} // namespace gist::obs
