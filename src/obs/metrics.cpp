#include "obs/metrics.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "util/logging.hpp"

namespace gist::obs {

namespace {

MetricsSink &
sink()
{
    // Intentionally leaked: the atexit flush hook (and spans destructing
    // during static teardown) may run after function-local statics are
    // destroyed, so the sink must outlive them all.
    static MetricsSink *s = new MetricsSink;
    return *s;
}

void
appendEscaped(std::string &out, const char *in)
{
    for (const char *p = in; *p; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

} // namespace

void
JsonLine::keyPrefix(const char *key)
{
    if (!first_)
        body_ += ',';
    first_ = false;
    body_ += '"';
    appendEscaped(body_, key);
    body_ += "\":";
}

JsonLine &
JsonLine::field(const char *key, const char *value)
{
    keyPrefix(key);
    body_ += '"';
    appendEscaped(body_, value);
    body_ += '"';
    return *this;
}

JsonLine &
JsonLine::field(const char *key, const std::string &value)
{
    return field(key, value.c_str());
}

JsonLine &
JsonLine::field(const char *key, double value)
{
    keyPrefix(key);
    if (!std::isfinite(value)) {
        body_ += "null";
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.9g", value);
        body_ += buf;
    }
    return *this;
}

JsonLine &
JsonLine::field(const char *key, std::uint64_t value)
{
    keyPrefix(key);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    body_ += buf;
    return *this;
}

JsonLine &
JsonLine::field(const char *key, std::int64_t value)
{
    keyPrefix(key);
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    body_ += buf;
    return *this;
}

JsonLine &
JsonLine::field(const char *key, int value)
{
    return field(key, static_cast<std::int64_t>(value));
}

JsonLine &
JsonLine::raw(const char *key, const std::string &json)
{
    keyPrefix(key);
    body_ += json.empty() ? "null" : json;
    return *this;
}

std::string
JsonLine::str() const
{
    return body_ + "}";
}

MetricsSink::~MetricsSink()
{
    close();
}

bool
MetricsSink::open(const std::string &path, bool append)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (f_)
        std::fclose(f_);
    f_ = std::fopen(path.c_str(), append ? "a" : "w");
    if (!f_) {
        GIST_WARN("cannot open metrics file '", path, "'");
        path_.clear();
        on_.store(false, std::memory_order_release);
        return false;
    }
    path_ = path;
    on_.store(true, std::memory_order_release);
    return true;
}

void
MetricsSink::write(const JsonLine &line)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!f_)
        return;
    const std::string text = line.str();
    std::fwrite(text.data(), 1, text.size(), f_);
    std::fputc('\n', f_);
    std::fflush(f_); // the artifact survives an abnormal exit
}

void
MetricsSink::close()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (f_)
        std::fclose(f_);
    f_ = nullptr;
    path_.clear();
    on_.store(false, std::memory_order_release);
}

std::string
MetricsSink::path() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return path_;
}

bool
metricsEnabled()
{
    return sink().enabled();
}

void
metricsOpen(const std::string &path, bool append)
{
    sink().open(path, append);
}

void
metricsWrite(const JsonLine &line)
{
    sink().write(line);
}

void
metricsClose()
{
    sink().close();
}

std::string
metricsPath()
{
    return sink().path();
}

} // namespace gist::obs
