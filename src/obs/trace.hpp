/**
 * @file
 * Span tracer: RAII scopes recorded into per-thread ring buffers and
 * written out as Chrome trace-event JSON (loadable in chrome://tracing
 * or https://ui.perfetto.dev).
 *
 * Design constraints, in priority order:
 *  1. Zero overhead when off: GIST_TRACE_SCOPE compiles to one relaxed
 *     atomic load + branch; nothing else runs.
 *  2. Race-free when on: each thread appends to its own fixed-capacity
 *     buffer (registered on first use; pool workers are identified via
 *     gist::currentWorkerIndex() from util/parallel). The only
 *     cross-thread communication is the buffer's head index, published
 *     with release semantics and read by the writer with acquire, so a
 *     flush can run while other threads keep recording.
 *  3. Bounded memory: a full buffer drops further events (counted and
 *     reported in the trace's otherData) rather than reallocating.
 *
 * Enabling: traceStart(path) programmatically, the GistConfig::trace_path
 * field, or the GIST_TRACE=<path> environment variable (picked up at
 * static-init time; the file is written at traceStop() or process exit).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gist::obs {

namespace detail {

extern std::atomic<bool> g_trace_on;

/** Nanoseconds on the trace clock (steady, process-relative). */
std::uint64_t traceNowNs();

/**
 * Append one complete span to the calling thread's buffer.
 * @p cat must be a string literal (stored by pointer); @p name is
 * copied (truncated to the event's fixed name field).
 */
void traceRecord(const char *cat, const char *name, std::uint64_t ts_ns,
                 std::uint64_t dur_ns);

} // namespace detail

/** Is the tracer recording? One relaxed load — safe on any hot path. */
inline bool
traceEnabled()
{
    return detail::g_trace_on.load(std::memory_order_relaxed);
}

/**
 * Start recording. @p path is where traceStop() (or process exit)
 * writes the Chrome trace; an empty path records in memory only
 * (drain with traceCollect(), used by the tests).
 */
void traceStart(const std::string &path);

/** Stop recording and write the trace file (if a path was given). */
void traceStop();

/** Path traceStop() will write to; empty if memory-only or stopped. */
std::string tracePath();

/** Write the events recorded so far to @p path; keeps recording. */
bool traceWrite(const std::string &path);

/** Drop all buffered events. Call only while no thread is recording. */
void traceReset();

/** Events committed across all thread buffers. */
std::uint64_t traceEventCount();

/** Events dropped because a thread's buffer filled up. */
std::uint64_t traceDroppedEvents();

/** Per-thread buffer capacity in events. */
std::uint64_t traceCapacityPerThread();

/** A decoded span, for tests and the JSON writer. */
struct TraceEventData
{
    std::string name;
    std::string cat;
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    int tid = 0;          ///< buffer registration order (trace row id)
    int worker_index = 0; ///< pool worker index, 0 = caller/external
};

/** Snapshot of every committed event, sorted by start timestamp. */
std::vector<TraceEventData> traceCollect();

/**
 * RAII span. Inactive (default-constructed) scopes cost one branch in
 * the destructor. Use via the GIST_TRACE_SCOPE macros.
 */
class TraceScope
{
  public:
    TraceScope() = default;
    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

    /** Arm the scope with a literal category and a copied name. */
    void
    begin(const char *cat, const char *name)
    {
        cat_ = cat;
        copyName(name);
        t0_ = detail::traceNowNs();
    }

    /** Arm with a printf-formatted name (composed only when tracing). */
    void beginf(const char *cat, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    ~TraceScope()
    {
        if (cat_)
            detail::traceRecord(cat_, name_, t0_,
                                detail::traceNowNs() - t0_);
    }

  private:
    void copyName(const char *name);

    char name_[48] = { 0 };
    const char *cat_ = nullptr;
    std::uint64_t t0_ = 0;
};

} // namespace gist::obs

#define GIST_OBS_CONCAT2(a, b) a##b
#define GIST_OBS_CONCAT(a, b) GIST_OBS_CONCAT2(a, b)

/**
 * Trace the enclosing scope as one span. @p cat must be a string
 * literal; @p name may be any C string (copied). When tracing is off
 * this is a single branch.
 */
#define GIST_TRACE_SCOPE(cat, name)                                          \
    ::gist::obs::TraceScope GIST_OBS_CONCAT(gist_trace_scope_, __LINE__);    \
    if (::gist::obs::traceEnabled())                                         \
        GIST_OBS_CONCAT(gist_trace_scope_, __LINE__).begin((cat), (name))

/** Same, with a printf-style name (formatted only when tracing is on). */
#define GIST_TRACE_SCOPE_F(cat, ...)                                         \
    ::gist::obs::TraceScope GIST_OBS_CONCAT(gist_trace_scope_, __LINE__);    \
    if (::gist::obs::traceEnabled())                                         \
        GIST_OBS_CONCAT(gist_trace_scope_, __LINE__).beginf((cat),           \
                                                            __VA_ARGS__)
