/**
 * @file
 * JSONL step-metrics sink: one JSON object per line, written by the
 * trainer per step/epoch (loss, examples/sec, encoded bytes, peak stash
 * bytes, codec seconds) so external tools can tail/plot a run.
 *
 * Opening: metricsOpen(path) programmatically, the
 * GistConfig::metrics_path field, or the GIST_METRICS=<path>
 * environment variable. Writes are mutex-serialized and flushed per
 * line, so the artifact is complete even if the process dies mid-run.
 */

#pragma once

#include <cstdint>
#include <string>

namespace gist::obs {

/** Builder for one JSONL record; fields appear in insertion order. */
class JsonLine
{
  public:
    JsonLine &field(const char *key, const char *value);
    JsonLine &field(const char *key, const std::string &value);
    JsonLine &field(const char *key, double value); ///< NaN/inf -> null
    JsonLine &field(const char *key, std::uint64_t value);
    JsonLine &field(const char *key, std::int64_t value);
    JsonLine &field(const char *key, int value);
    /** Splice @p json in verbatim as the value (caller-validated JSON). */
    JsonLine &raw(const char *key, const std::string &json);

    /** The finished one-line object, e.g. {"loss":0.5,"step":3}. */
    std::string str() const;

  private:
    void keyPrefix(const char *key);

    std::string body_ = "{";
    bool first_ = true;
};

/** Is a sink open? One relaxed load — safe to check per step. */
bool metricsEnabled();

/**
 * Open the sink at @p path; replaces any open sink. By default the file
 * is truncated; pass @p append = true to continue an existing file
 * (resumed training runs keep the metrics history they are extending).
 */
void metricsOpen(const std::string &path, bool append = false);

/** Append one record (no-op while no sink is open). */
void metricsWrite(const JsonLine &line);

/** Flush and close the sink. */
void metricsClose();

/** Path of the open sink; empty when closed. */
std::string metricsPath();

} // namespace gist::obs
