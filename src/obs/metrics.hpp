/**
 * @file
 * JSONL step-metrics sink: one JSON object per line, written by the
 * trainer per step/epoch (loss, examples/sec, encoded bytes, peak stash
 * bytes, codec seconds) so external tools can tail/plot a run.
 *
 * Opening: metricsOpen(path) programmatically, the
 * GistConfig::metrics_path field, or the GIST_METRICS=<path>
 * environment variable. Writes are mutex-serialized and flushed per
 * line, so the artifact is complete even if the process dies mid-run.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace gist::obs {

/** Builder for one JSONL record; fields appear in insertion order. */
class JsonLine
{
  public:
    JsonLine &field(const char *key, const char *value);
    JsonLine &field(const char *key, const std::string &value);
    JsonLine &field(const char *key, double value); ///< NaN/inf -> null
    JsonLine &field(const char *key, std::uint64_t value);
    JsonLine &field(const char *key, std::int64_t value);
    JsonLine &field(const char *key, int value);
    /** Splice @p json in verbatim as the value (caller-validated JSON). */
    JsonLine &raw(const char *key, const std::string &json);

    /** The finished one-line object, e.g. {"loss":0.5,"step":3}. */
    std::string str() const;

  private:
    void keyPrefix(const char *key);

    std::string body_ = "{";
    bool first_ = true;
};

/**
 * One JSONL output file. The process-global sink (metricsOpen() /
 * metricsWrite() below) is an instance of this class; a multi-job
 * service opens one MetricsSink per job so concurrent jobs never share
 * a file or interleave records. Writes are mutex-serialized and flushed
 * per line, so the artifact is complete even if the process dies
 * mid-run.
 */
class MetricsSink
{
  public:
    MetricsSink() = default;
    ~MetricsSink();

    MetricsSink(const MetricsSink &) = delete;
    MetricsSink &operator=(const MetricsSink &) = delete;

    /** Open @p path (truncate, or @p append). Replaces any open file.
     *  @return false (with a warning) when the file cannot be opened. */
    bool open(const std::string &path, bool append = false);

    /** Is a file open? One relaxed load — safe to check per step. */
    bool enabled() const { return on_.load(std::memory_order_relaxed); }

    /** Append one record (no-op while closed). */
    void write(const JsonLine &line);

    /** Flush and close. */
    void close();

    /** Path of the open file; empty when closed. */
    std::string path() const;

  private:
    mutable std::mutex mu_;
    std::FILE *f_ = nullptr;
    std::string path_;
    std::atomic<bool> on_{ false };
};

/** Is the process-global sink open? Safe to check per step. */
bool metricsEnabled();

/**
 * Open the sink at @p path; replaces any open sink. By default the file
 * is truncated; pass @p append = true to continue an existing file
 * (resumed training runs keep the metrics history they are extending).
 */
void metricsOpen(const std::string &path, bool append = false);

/** Append one record (no-op while no sink is open). */
void metricsWrite(const JsonLine &line);

/** Flush and close the sink. */
void metricsClose();

/** Path of the open sink; empty when closed. */
std::string metricsPath();

} // namespace gist::obs
