#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "obs/counters.hpp"
#include "obs/memprof.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist::obs {

namespace detail {
std::atomic<bool> g_trace_on{ false };
} // namespace detail

namespace {

constexpr std::uint32_t kCapacity = 1 << 16; ///< events per thread

/** Fixed-size storage for one span (name copied, category by pointer). */
struct RawEvent
{
    char name[48];
    const char *cat;
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;
};

/**
 * One thread's ring. Only the owning thread writes; it publishes the
 * count of committed events through `head` (release), so any reader
 * that loads `head` (acquire) may safely read events[0 .. head).
 * A full buffer drops events instead of wrapping — overwritten slots
 * would race with a concurrent flush.
 */
struct ThreadBuf
{
    std::vector<RawEvent> events{ kCapacity };
    std::atomic<std::uint32_t> head{ 0 };
    std::atomic<std::uint64_t> dropped{ 0 };
    int tid = 0;
    int worker_index = 0;
};

struct TraceState
{
    std::mutex mu;
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    std::string path;
};

TraceState &
state()
{
    // Intentionally leaked: scopes and the atexit flush hook may fire
    // during static teardown, after function-local statics are gone.
    static TraceState *s = new TraceState;
    return *s;
}

/** Trace epoch: fixed at process start so timestamps are comparable. */
std::chrono::steady_clock::time_point
epoch()
{
    static const auto t0 = std::chrono::steady_clock::now();
    return t0;
}

// Buffers are shared_ptrs so the registry keeps a thread's events alive
// (and flushable) after the thread exits — pool workers die on resize.
thread_local std::shared_ptr<ThreadBuf> tls_buf_owner;
thread_local ThreadBuf *tls_buf = nullptr;

ThreadBuf &
localBuf()
{
    if (!tls_buf) {
        auto buf = std::make_shared<ThreadBuf>();
        buf->worker_index = currentWorkerIndex();
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        buf->tid = static_cast<int>(s.bufs.size());
        s.bufs.push_back(buf);
        tls_buf_owner = buf;
        tls_buf = buf.get();
    }
    return *tls_buf;
}

/** Flush-at-exit, registered once the tracer or sink is first opened. */
void
ensureAtexitFlush()
{
    static const bool registered = [] {
        std::atexit([] {
            traceStop();
            memprofStop();
            metricsClose();
        });
        return true;
    }();
    (void)registered;
}

void
escapeJson(const char *in, std::string &out)
{
    for (const char *p = in; *p; ++p) {
        const unsigned char c = static_cast<unsigned char>(*p);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

/**
 * Reads GIST_TRACE / GIST_METRICS once at static-init time so a plain
 * `GIST_TRACE=trace.json ./binary` works with no code changes; the
 * artifacts are flushed by the atexit hook.
 */
struct EnvInit
{
    EnvInit()
    {
        if (const char *t = std::getenv("GIST_TRACE"); t && *t)
            traceStart(t);
        if (const char *m = std::getenv("GIST_METRICS"); m && *m)
            metricsOpen(m);
        if (const char *p = std::getenv("GIST_MEMPROF"); p && *p) {
            memprofStart(p);
            ensureAtexitFlush();
        }
    }
};
EnvInit g_env_init;

} // namespace

namespace detail {

std::uint64_t
traceNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
}

void
traceRecord(const char *cat, const char *name, std::uint64_t ts_ns,
            std::uint64_t dur_ns)
{
    if (!g_trace_on.load(std::memory_order_relaxed))
        return; // tracing stopped between scope entry and exit
    ThreadBuf &b = localBuf();
    const std::uint32_t h = b.head.load(std::memory_order_relaxed);
    if (h >= kCapacity) {
        b.dropped.fetch_add(1, std::memory_order_relaxed);
        // Mirror into the registry so a metrics snapshot flags the
        // truncation even when nobody inspects the trace footer. The
        // name lookup resolves once; drops are already the cold path.
        static Counter &drops =
            MetricRegistry::instance().counter("gist.trace.dropped");
        drops.add(1);
        return;
    }
    RawEvent &e = b.events[h];
    std::snprintf(e.name, sizeof(e.name), "%s", name);
    e.cat = cat;
    e.ts_ns = ts_ns;
    e.dur_ns = dur_ns;
    b.head.store(h + 1, std::memory_order_release);
}

} // namespace detail

void
TraceScope::copyName(const char *name)
{
    std::snprintf(name_, sizeof(name_), "%s", name);
}

void
TraceScope::beginf(const char *cat, const char *fmt, ...)
{
    cat_ = cat;
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(name_, sizeof(name_), fmt, args);
    va_end(args);
    t0_ = detail::traceNowNs();
}

void
traceStart(const std::string &path)
{
    epoch(); // pin the clock origin before the first span
    {
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        s.path = path;
    }
    if (!path.empty())
        ensureAtexitFlush();
    detail::g_trace_on.store(true, std::memory_order_release);
}

void
traceStop()
{
    detail::g_trace_on.store(false, std::memory_order_release);
    std::string path;
    {
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        path.swap(s.path); // write once; a later stop is a no-op
    }
    if (!path.empty())
        traceWrite(path);
}

std::string
tracePath()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.path;
}

std::vector<TraceEventData>
traceCollect()
{
    std::vector<TraceEventData> out;
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &buf : s.bufs) {
        const std::uint32_t n = buf->head.load(std::memory_order_acquire);
        for (std::uint32_t i = 0; i < n; ++i) {
            const RawEvent &e = buf->events[i];
            out.push_back({ e.name, e.cat, e.ts_ns, e.dur_ns, buf->tid,
                            buf->worker_index });
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceEventData &a, const TraceEventData &b) {
                         return a.ts_ns < b.ts_ns;
                     });
    return out;
}

bool
traceWrite(const std::string &path)
{
    const auto events = traceCollect();
    const std::uint64_t dropped = traceDroppedEvents();

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        GIST_WARN("cannot open trace file '", path, "'");
        return false;
    }

    std::fprintf(f, "{\n  \"displayTimeUnit\": \"ms\",\n");
    std::fprintf(f,
                 "  \"otherData\": {\"dropped_events\": %llu},\n",
                 static_cast<unsigned long long>(dropped));
    std::fprintf(f, "  \"traceEvents\": [\n");

    // Thread-name metadata rows first, then the spans in ts order.
    bool first = true;
    {
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        for (const auto &buf : s.bufs) {
            char tname[32];
            if (buf->worker_index > 0)
                std::snprintf(tname, sizeof(tname), "pool worker %d",
                              buf->worker_index);
            else if (buf->worker_index < 0)
                std::snprintf(tname, sizeof(tname), "codec worker %d",
                              -buf->worker_index);
            else if (buf->tid == 0)
                std::snprintf(tname, sizeof(tname), "main");
            else
                std::snprintf(tname, sizeof(tname), "thread %d",
                              buf->tid);
            std::fprintf(f,
                         "%s    {\"name\": \"thread_name\", \"ph\": \"M\","
                         " \"pid\": 1, \"tid\": %d,"
                         " \"args\": {\"name\": \"%s\"}}",
                         first ? "" : ",\n", buf->tid, tname);
            first = false;
        }
    }

    std::string name;
    for (const auto &e : events) {
        name.clear();
        escapeJson(e.name.c_str(), name);
        std::fprintf(f,
                     "%s    {\"name\": \"%s\", \"cat\": \"%s\","
                     " \"ph\": \"X\", \"ts\": %.3f, \"dur\": %.3f,"
                     " \"pid\": 1, \"tid\": %d}",
                     first ? "" : ",\n", name.c_str(), e.cat.c_str(),
                     static_cast<double>(e.ts_ns) / 1e3,
                     static_cast<double>(e.dur_ns) / 1e3, e.tid);
        first = false;
    }
    // Footer: per-thread drop accounting. A truncated trace must not
    // look complete — every thread that overflowed its ring gets a row,
    // and a top-level warning string makes the loss obvious to both
    // humans and the gist_prof report.
    std::fprintf(f, "\n  ]");
    if (dropped > 0) {
        std::fprintf(f, ",\n  \"droppedByThread\": [");
        bool dfirst = true;
        TraceState &s = state();
        std::lock_guard<std::mutex> lock(s.mu);
        for (const auto &buf : s.bufs) {
            const std::uint64_t d =
                buf->dropped.load(std::memory_order_relaxed);
            if (d == 0)
                continue;
            std::fprintf(f,
                         "%s\n    {\"tid\": %d, \"worker_index\": %d,"
                         " \"dropped\": %llu}",
                         dfirst ? "" : ",", buf->tid, buf->worker_index,
                         static_cast<unsigned long long>(d));
            dfirst = false;
        }
        std::fprintf(f,
                     "\n  ],\n  \"warning\": \"trace truncated: %llu"
                     " events dropped (ring capacity %u/thread)\"",
                     static_cast<unsigned long long>(dropped),
                     kCapacity);
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    if (dropped > 0)
        GIST_WARN("trace '", path, "' is truncated: ", dropped,
                  " events dropped (ring capacity ", kCapacity,
                  " per thread)");
    GIST_INFORM("trace written to ", path, " (", events.size(),
                " spans, ", dropped, " dropped)");
    return true;
}

void
traceReset()
{
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &buf : s.bufs) {
        buf->head.store(0, std::memory_order_release);
        buf->dropped.store(0, std::memory_order_relaxed);
    }
}

std::uint64_t
traceEventCount()
{
    std::uint64_t n = 0;
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &buf : s.bufs)
        n += buf->head.load(std::memory_order_acquire);
    return n;
}

std::uint64_t
traceDroppedEvents()
{
    std::uint64_t n = 0;
    TraceState &s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto &buf : s.bufs)
        n += buf->dropped.load(std::memory_order_relaxed);
    return n;
}

std::uint64_t
traceCapacityPerThread()
{
    return kCapacity;
}

} // namespace gist::obs
