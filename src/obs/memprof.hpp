/**
 * @file
 * Memory timeline profiler — the fig15-style footprint-over-time view.
 *
 * The executor samples the resident feature-map pool, the workspace
 * arena and the encoded-stash share at every schedule-step boundary,
 * and captures a per-slot byte attribution snapshot at the exact
 * moment the pool reaches a new step peak (meter granularity, so
 * mid-node transients like a decode's value+encoded overlap are
 * never missed). One MemProfStep is recorded per minibatch.
 *
 * Exactness contract: in sync mode every meter update happens on the
 * main thread, so `peak_pool_bytes` equals the pool gauge's peak
 * exactly and the attribution rows sum to it exactly. In async mode
 * codec workers update the meter concurrently; the capture is then a
 * best-effort snapshot (relaxed atomics, taken under the profiler's
 * capture mutex) whose sum can transiently differ from the peak by
 * in-flight deltas.
 *
 * Activation: GIST_MEMPROF=<path> at process start (written by the
 * atexit flush hook), GistConfig::memprof_path via applyToExecutor(),
 * or memprofStart() directly. An empty path collects in memory only
 * (what the tests use via memprofCollect()).
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gist::obs {

namespace detail {
extern std::atomic<bool> g_memprof_on;
} // namespace detail

/** One footprint sample at a schedule-step boundary (or at the peak). */
struct MemProfSample
{
    int sched_step = -1;        ///< fwd: node id, bwd: 2N-1-id
    std::string node;           ///< node whose boundary this is
    std::string phase;          ///< "fwd" | "bwd" | "peak"
    std::int64_t pool_bytes = 0;    ///< fmap-pool gauge level
    std::int64_t arena_bytes = 0;   ///< workspace arena reserved bytes
    std::int64_t encoded_bytes = 0; ///< encoded-stash share of the pool
    std::int64_t tier_bytes = 0;    ///< slow-tier resident bytes
};

/** Per-slot byte account captured at the step's pool peak. */
struct MemProfSlot
{
    std::string node;
    std::uint64_t value_bytes = 0;
    std::uint64_t grad_bytes = 0;
    std::uint64_t encoded_bytes = 0;
    std::uint64_t aux_bytes = 0;

    std::uint64_t
    total() const
    {
        return value_bytes + grad_bytes + encoded_bytes + aux_bytes;
    }
};

/** One minibatch's worth of timeline + peak attribution. */
struct MemProfStep
{
    std::uint64_t step = 0;           ///< minibatch ordinal
    /** Owning job id in a multi-job service (Executor::setJobTag);
     *  empty for single-run processes. */
    std::string job;
    std::int64_t peak_pool_bytes = 0; ///< == pool gauge peak
    int peak_sched_step = -1;         ///< schedule step at the peak
    std::string peak_node;            ///< node executing at the peak
    std::int64_t arena_high_water = 0;
    std::vector<MemProfSlot> peak_attribution; ///< nonzero slots only
    std::vector<MemProfSample> timeline;
};

/** Hot-path check (one relaxed load); false means meters skip tagging. */
inline bool
memprofEnabled()
{
    return detail::g_memprof_on.load(std::memory_order_relaxed);
}

/**
 * Enable collection. Non-empty @p path is written by memprofStop()
 * (and by the atexit hook); empty collects in memory only.
 */
void memprofStart(const std::string &path);

/** Disable collection and write the JSON if a path was set (once). */
void memprofStop();

/** Append one step record (called by the executor at minibatch end). */
void memprofRecordStep(MemProfStep step);

/**
 * Attach the hybrid planner's plan (a JSON object string) to the
 * profile: memprofWrite() embeds it as the "plan" member so gist_prof
 * shows plan-vs-actual. Empty clears it. Survives memprofReset().
 */
void memprofSetPlan(std::string plan_json);

/** The attached plan JSON; empty when none. */
std::string memprofPlan();

/** Copy of everything recorded so far (test hook). */
std::vector<MemProfStep> memprofCollect();

/** Drop all recorded steps (test isolation). */
void memprofReset();

/** Write the recorded steps as versioned JSON; true on success. */
bool memprofWrite(const std::string &path);

} // namespace gist::obs
