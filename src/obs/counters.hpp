/**
 * @file
 * Process-global counter/gauge registry — the numeric side of the
 * observability layer.
 *
 * Counter: monotonically increasing uint64 (bytes encoded, elements
 * seen, nanoseconds spent). Gauge: a level with built-in peak tracking
 * (the executor's feature-map-pool memory meter). All mutation is
 * lock-free atomics, so kernels on any pool thread may bump them;
 * lookup-by-name takes the registry mutex once, after which the
 * returned reference stays valid for the process lifetime.
 *
 * Derived quantities stay out of the registry by design: a compression
 * ratio is dense_bytes / encoded_bytes of two counters, observed
 * sparsity is zero_elems / total_elems — integer counters compose
 * race-free where a stored double would not.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gist::obs {

/** Monotonic event/byte/time accumulator. */
class Counter
{
  public:
    void
    add(std::uint64_t n)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        v_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> v_{ 0 };
};

/** A level (can rise and fall) that remembers its high-water mark. */
class Gauge
{
  public:
    /** @return the level right after this add (for peak attribution). */
    std::int64_t
    add(std::int64_t n)
    {
        const std::int64_t now =
            cur_.fetch_add(n, std::memory_order_relaxed) + n;
        updatePeak(now);
        return now;
    }

    void
    sub(std::int64_t n)
    {
        cur_.fetch_sub(n, std::memory_order_relaxed);
    }

    void
    set(std::int64_t v)
    {
        cur_.store(v, std::memory_order_relaxed);
        updatePeak(v);
    }

    std::int64_t
    current() const
    {
        return cur_.load(std::memory_order_relaxed);
    }

    std::int64_t
    peak() const
    {
        return peak_.load(std::memory_order_relaxed);
    }

    /** Restart peak tracking from the current level. */
    void
    resetPeak()
    {
        peak_.store(cur_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    }

  private:
    void
    updatePeak(std::int64_t v)
    {
        std::int64_t p = peak_.load(std::memory_order_relaxed);
        while (v > p &&
               !peak_.compare_exchange_weak(p, v,
                                            std::memory_order_relaxed)) {
        }
    }

    std::atomic<std::int64_t> cur_{ 0 };
    std::atomic<std::int64_t> peak_{ 0 };
};

/** One registry entry at snapshot time. */
struct MetricSample
{
    std::string name;
    std::int64_t value = 0;  ///< counter value or gauge current
    bool is_gauge = false;
    std::int64_t peak = 0;   ///< gauges only
};

/** Named registry; instruments register lazily and live forever. */
class MetricRegistry
{
  public:
    static MetricRegistry &instance();

    /** Find-or-create; the reference never dangles. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);

    /** Point-in-time copy of every instrument, sorted by name. */
    std::vector<MetricSample> snapshot() const;

    /** Zero every counter and gauge (test isolation helper). */
    void resetAll();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

} // namespace gist::obs
