#include "obs/profreport.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace gist::obs {

namespace {

/** printf into a std::string (report lines are short and fixed-form). */
std::string
fmt(const char *f, ...)
{
    char buf[512];
    va_list args;
    va_start(args, f);
    std::vsnprintf(buf, sizeof(buf), f, args);
    va_end(args);
    return buf;
}

std::string
bytesHuman(double b)
{
    if (b >= 1024.0 * 1024.0)
        return fmt("%8.2f MiB", b / (1024.0 * 1024.0));
    if (b >= 1024.0)
        return fmt("%8.2f KiB", b / 1024.0);
    return fmt("%8.0f B  ", b);
}

struct SpanAgg
{
    double total_ms = 0.0;
    std::uint64_t count = 0;
};

void
sectionTopSpans(const JsonValue &trace, int top_k, std::ostringstream &out)
{
    const JsonValue *events = trace.get("traceEvents");
    if (!events || !events->isArray()) {
        out << "  (no traceEvents array)\n";
        return;
    }
    std::map<std::string, SpanAgg> by_name; // "cat name" -> agg
    double wall_lo = 0.0, wall_hi = 0.0;
    bool any = false;
    for (const JsonValue &e : events->items()) {
        if (e.stringOr("ph", "") != "X")
            continue;
        const double ts = e.numberOr("ts", 0.0);
        const double dur = e.numberOr("dur", 0.0);
        if (!any || ts < wall_lo)
            wall_lo = ts;
        if (!any || ts + dur > wall_hi)
            wall_hi = ts + dur;
        any = true;
        SpanAgg &agg =
            by_name[e.stringOr("cat", "?") + " " + e.stringOr("name", "?")];
        agg.total_ms += dur / 1e3;
        ++agg.count;
    }
    if (!any) {
        out << "  (no spans)\n";
        return;
    }
    const double wall_ms = (wall_hi - wall_lo) / 1e3;
    out << fmt("  wall clock covered: %.2f ms, %zu distinct spans\n",
               wall_ms, by_name.size());
    std::vector<std::pair<std::string, SpanAgg>> rows(by_name.begin(),
                                                      by_name.end());
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second.total_ms > b.second.total_ms;
    });
    out << "  total ms     count   mean ms   % wall  span\n";
    for (size_t i = 0;
         i < rows.size() && i < static_cast<size_t>(top_k); ++i) {
        const auto &[name, agg] = rows[i];
        out << fmt("  %9.3f  %8llu  %8.3f  %6.1f%%  %s\n", agg.total_ms,
                   static_cast<unsigned long long>(agg.count),
                   agg.total_ms / static_cast<double>(agg.count),
                   wall_ms > 0.0 ? 100.0 * agg.total_ms / wall_ms : 0.0,
                   name.c_str());
    }
}

/**
 * Main-thread (tid 0) fwd/bwd time per node: the executor runs the
 * schedule serially on the main thread, so these totals ARE the
 * per-node critical path; codec-worker time only matters when it
 * surfaces as a "stall" span.
 */
void
sectionCriticalPath(const JsonValue &trace, int top_k,
                    std::ostringstream &out)
{
    const JsonValue *events = trace.get("traceEvents");
    if (!events || !events->isArray()) {
        out << "  (no traceEvents array)\n";
        return;
    }
    struct NodeTime
    {
        double fwd_ms = 0.0, bwd_ms = 0.0, stall_ms = 0.0;
    };
    std::map<std::string, NodeTime> by_node;
    double total = 0.0;
    for (const JsonValue &e : events->items()) {
        if (e.stringOr("ph", "") != "X" || e.intOr("tid", -1) != 0)
            continue;
        const std::string cat = e.stringOr("cat", "");
        const std::string name = e.stringOr("name", "");
        const double ms = e.numberOr("dur", 0.0) / 1e3;
        // Span names are "fwd <node>" / "bwd <node>" / "stall <kind>
        // <node>": attribute to the node label after the prefix.
        const size_t sp = name.rfind(' ');
        if (sp == std::string::npos)
            continue;
        const std::string node = name.substr(sp + 1);
        if (cat == "fwd")
            by_node[node].fwd_ms += ms;
        else if (cat == "bwd")
            by_node[node].bwd_ms += ms;
        else if (cat == "stall")
            by_node[node].stall_ms += ms;
        else
            continue;
        total += ms;
    }
    if (by_node.empty()) {
        out << "  (no fwd/bwd spans on the main thread)\n";
        return;
    }
    std::vector<std::pair<std::string, NodeTime>> rows(by_node.begin(),
                                                       by_node.end());
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second.fwd_ms + a.second.bwd_ms + a.second.stall_ms >
               b.second.fwd_ms + b.second.bwd_ms + b.second.stall_ms;
    });
    out << fmt("  main-thread node time: %.3f ms\n", total);
    out << "   total ms    fwd ms    bwd ms  stall ms    cum%  node\n";
    double cum = 0.0;
    for (size_t i = 0;
         i < rows.size() && i < static_cast<size_t>(top_k); ++i) {
        const auto &[node, t] = rows[i];
        const double row = t.fwd_ms + t.bwd_ms + t.stall_ms;
        cum += row;
        out << fmt("  %9.3f %9.3f %9.3f %9.3f  %5.1f%%  %s\n", row,
                   t.fwd_ms, t.bwd_ms, t.stall_ms,
                   total > 0.0 ? 100.0 * cum / total : 0.0, node.c_str());
    }
}

void
sectionStalls(const JsonValue *trace,
              const std::vector<JsonValue> *metrics,
              std::ostringstream &out)
{
    if (trace) {
        double stall_ms = 0.0;
        std::uint64_t stalls = 0;
        if (const JsonValue *events = trace->get("traceEvents");
            events && events->isArray()) {
            for (const JsonValue &e : events->items()) {
                if (e.stringOr("cat", "") != "stall")
                    continue;
                stall_ms += e.numberOr("dur", 0.0) / 1e3;
                ++stalls;
            }
        }
        out << fmt("  trace: %llu stall spans, %.3f ms blocked\n",
                   static_cast<unsigned long long>(stalls), stall_ms);
        const JsonValue *dropped = trace->get("droppedByThread");
        const double drop_total =
            trace->get("otherData")
                ? trace->get("otherData")->numberOr("dropped_events", 0.0)
                : 0.0;
        if (drop_total > 0.0 || (dropped && !dropped->items().empty()))
            out << fmt("  WARNING: trace truncated, %.0f events dropped"
                       " — totals above undercount\n",
                       drop_total);
    }
    if (!metrics) {
        out << "  (no metrics.jsonl: per-step stall counters missing)\n";
        return;
    }
    std::uint64_t steps = 0, stalls = 0;
    double stall_s = 0.0, wait_s = 0.0, overlap_sum = 0.0;
    double depth_max = 0.0;
    for (const JsonValue &r : *metrics) {
        if (r.stringOr("type", "") != "step")
            continue;
        ++steps;
        stall_s += r.numberOr("codec_stall_seconds", 0.0);
        stalls += static_cast<std::uint64_t>(r.numberOr("codec_stalls", 0));
        wait_s += r.numberOr("codec_queue_wait_seconds", 0.0);
        overlap_sum += r.numberOr("overlap_efficiency", 1.0);
        depth_max = std::max(
            depth_max, r.numberOr("codec_queue_peak_depth", 0.0));
    }
    if (steps == 0) {
        out << "  (no step records in metrics.jsonl)\n";
        return;
    }
    out << fmt("  steps: %llu   blocking joins: %llu   main-thread"
               " stall: %.3f s\n",
               static_cast<unsigned long long>(steps),
               static_cast<unsigned long long>(stalls), stall_s);
    out << fmt("  codec queue wait: %.3f s   peak queue depth: %.0f\n",
               wait_s, depth_max);
    out << fmt("  mean overlap efficiency: %.3f (1.0 = codec fully"
               " hidden under compute)\n",
               overlap_sum / static_cast<double>(steps));
}

void
sectionMemory(const JsonValue &memprof, int top_k, std::ostringstream &out)
{
    const JsonValue *steps = memprof.get("steps");
    if (!steps || !steps->isArray() || steps->items().empty()) {
        out << "  (no steps in memprof timeline)\n";
        return;
    }
    // Report the step with the largest peak — the one that sizes the
    // device memory the run needs.
    const JsonValue *worst = &steps->items().front();
    for (const JsonValue &s : steps->items())
        if (s.numberOr("peak_pool_bytes", 0.0) >
            worst->numberOr("peak_pool_bytes", 0.0))
            worst = &s;
    out << fmt("  worst step: %lld (of %zu recorded)\n",
               worst->intOr("step", -1), steps->items().size());
    out << fmt("  peak pool: %s at schedule step %lld (%s)\n",
               bytesHuman(worst->numberOr("peak_pool_bytes", 0.0)).c_str(),
               worst->intOr("peak_sched_step", -1),
               worst->stringOr("peak_node", "?").c_str());
    out << fmt("  arena high-water: %s\n",
               bytesHuman(worst->numberOr("arena_high_water", 0.0)).c_str());
    const JsonValue *attr = worst->get("peak_attribution");
    if (!attr || !attr->isArray())
        return;
    std::vector<const JsonValue *> rows;
    for (const JsonValue &slot : attr->items())
        rows.push_back(&slot);
    std::sort(rows.begin(), rows.end(),
              [](const JsonValue *a, const JsonValue *b) {
                  return a->numberOr("total_bytes", 0.0) >
                         b->numberOr("total_bytes", 0.0);
              });
    const double peak = worst->numberOr("peak_pool_bytes", 0.0);
    out << "         total       value        grad     encoded"
           "         aux  % peak  slot\n";
    for (size_t i = 0;
         i < rows.size() && i < static_cast<size_t>(top_k); ++i) {
        const JsonValue &s = *rows[i];
        out << fmt(
            "  %s %s %s %s %s  %5.1f%%  %s\n",
            bytesHuman(s.numberOr("total_bytes", 0.0)).c_str(),
            bytesHuman(s.numberOr("value_bytes", 0.0)).c_str(),
            bytesHuman(s.numberOr("grad_bytes", 0.0)).c_str(),
            bytesHuman(s.numberOr("encoded_bytes", 0.0)).c_str(),
            bytesHuman(s.numberOr("aux_bytes", 0.0)).c_str(),
            peak > 0.0 ? 100.0 * s.numberOr("total_bytes", 0.0) / peak
                       : 0.0,
            s.stringOr("node", "?").c_str());
    }
}

void
sectionPlan(const JsonValue &memprof, int top_k, std::ostringstream &out)
{
    const JsonValue *plan = memprof.get("plan");
    if (!plan || !plan->isObject()) {
        out << "  (no hybrid plan in memprof timeline — run with"
               " GIST_MEM_BUDGET to plan one)\n";
        return;
    }
    // Measured peak: max over the timeline's steps, the same number
    // sectionMemory reports — the plan's promise is against this.
    double measured = 0.0;
    if (const JsonValue *steps = memprof.get("steps"))
        if (steps->isArray())
            for (const JsonValue &s : steps->items())
                measured = std::max(
                    measured, s.numberOr("peak_pool_bytes", 0.0));
    const auto boolOf = [&](const char *key) {
        const JsonValue *v = plan->get(key);
        return v && v->isBool() && v->asBool();
    };
    const double budget = plan->numberOr("budget_bytes", 0.0);
    const double planned = plan->numberOr("planned_peak_bytes", 0.0);
    out << fmt("  budget: %s (%s, %s pricing)\n",
               bytesHuman(budget).c_str(),
               boolOf("feasible") ? "feasible" : "INFEASIBLE",
               boolOf("calibrated") ? "calibrated" : "roofline");
    out << fmt("  planned peak: %s   keep-everything peak: %s   "
               "measured peak: %s%s\n",
               bytesHuman(planned).c_str(),
               bytesHuman(plan->numberOr("keep_peak_bytes", 0.0)).c_str(),
               measured > 0.0 ? bytesHuman(measured).c_str() : "?",
               measured > budget && budget > 0.0 ? "  ** OVER BUDGET **"
                                                 : "");
    const auto missing = plan->intOr("missing_shapes", 0);
    if (missing > 0)
        out << fmt("  uncalibrated shapes: %lld (priced by fallback)\n",
                   static_cast<long long>(missing));
    const JsonValue *slots = plan->get("slots");
    if (!slots || !slots->isArray())
        return;
    int keep = 0, changed = 0;
    std::vector<const JsonValue *> rows;
    for (const JsonValue &s : slots->items()) {
        if (s.stringOr("repr", "keep") == std::string("keep")) {
            ++keep;
            continue;
        }
        ++changed;
        rows.push_back(&s);
    }
    out << fmt("  %d stash slots: %d kept, %d re-represented\n",
               keep + changed, keep, changed);
    std::sort(rows.begin(), rows.end(),
              [](const JsonValue *a, const JsonValue *b) {
                  return a->numberOr("fp32_bytes", 0.0) >
                         b->numberOr("fp32_bytes", 0.0);
              });
    if (!rows.empty())
        out << "  repr            fp32      stored  est s/step  slot\n";
    for (size_t i = 0;
         i < rows.size() && i < static_cast<size_t>(top_k); ++i) {
        const JsonValue &s = *rows[i];
        out << fmt("  %-9s %s %s   %.6f  %s\n",
                   s.stringOr("repr", "?").c_str(),
                   bytesHuman(s.numberOr("fp32_bytes", 0.0)).c_str(),
                   bytesHuman(s.numberOr("stored_bytes", 0.0)).c_str(),
                   s.numberOr("est_seconds", 0.0),
                   s.stringOr("name", "?").c_str());
    }
}

} // namespace

bool
loadJsonFile(const std::string &path, JsonValue &out, std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    std::string perr;
    if (!JsonValue::parse(text, out, &perr)) {
        if (err)
            *err = path + ": " + perr;
        return false;
    }
    return true;
}

bool
loadJsonLines(const std::string &path, std::vector<JsonValue> &out,
              std::string *err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (err)
            *err = "cannot open '" + path + "'";
        return false;
    }
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v;
        std::string perr;
        if (!JsonValue::parse(line, v, &perr)) {
            if (err)
                *err = path + ":" + std::to_string(lineno) + ": " + perr;
            return false;
        }
        out.push_back(std::move(v));
    }
    return true;
}

std::string
renderProfReport(const JsonValue *trace,
                 const std::vector<JsonValue> *metrics,
                 const JsonValue *memprof, const ProfReportOptions &opts)
{
    std::ostringstream out;
    out << "== gist_prof report ==\n\n";

    out << "-- top spans by total time --\n";
    if (trace)
        sectionTopSpans(*trace, opts.top_k, out);
    else
        out << "  (no trace.json given)\n";

    out << "\n-- per-node critical path (main thread) --\n";
    if (trace)
        sectionCriticalPath(*trace, opts.top_k, out);
    else
        out << "  (no trace.json given)\n";

    out << "\n-- async codec stalls --\n";
    sectionStalls(trace, metrics, out);

    out << "\n-- peak memory attribution --\n";
    if (memprof)
        sectionMemory(*memprof, opts.top_k, out);
    else
        out << "  (no memprof timeline given)\n";

    out << "\n-- hybrid plan vs actual --\n";
    if (memprof)
        sectionPlan(*memprof, opts.top_k, out);
    else
        out << "  (no memprof timeline given)\n";

    return out.str();
}

} // namespace gist::obs
