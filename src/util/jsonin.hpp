/**
 * @file
 * Minimal JSON reader for the profiling toolchain: calibration tables,
 * trace files, metrics JSONL and memprof timelines are all written by
 * this codebase, so the parser favors smallness and clear errors over
 * speed. Strict JSON (RFC 8259) with one extension: none.
 *
 * Values are an immutable tree; object member order is preserved (the
 * writer side is deterministic, and tests diff round-trips).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gist {

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }

    /** Array elements (empty for non-arrays). */
    const std::vector<JsonValue> &items() const { return items_; }

    /** Object members in file order (empty for non-objects). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *get(const std::string &key) const;

    /** Convenience typed lookups with defaults. */
    double numberOr(const std::string &key, double def) const;
    std::string stringOr(const std::string &key,
                         const std::string &def) const;
    std::int64_t intOr(const std::string &key, std::int64_t def) const;

    /**
     * Parse @p text into @p out. On failure returns false and, when
     * @p err is non-null, stores a one-line reason with offset.
     */
    static bool parse(std::string_view text, JsonValue &out,
                      std::string *err = nullptr);

  private:
    friend class JsonParser;
    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace gist
