#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/logging.hpp"

namespace gist {

Table::Table(std::vector<std::string> header_cells)
    : header(std::move(header_cells))
{
    GIST_ASSERT(!header.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    GIST_ASSERT(cells.size() == header.size(), "row has ", cells.size(),
                " cells, expected ", header.size());
    rows.push_back(Row{ std::move(cells), false });
}

void
Table::addSeparator()
{
    rows.push_back(Row{ {}, true });
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header.size());
    for (size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        if (row.separator)
            continue;
        for (size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto emit_row = [&](std::ostringstream &oss,
                        const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                oss << "  ";
            if (c == 0) {
                oss << cells[c]
                    << std::string(widths[c] - cells[c].size(), ' ');
            } else {
                oss << std::string(widths[c] - cells[c].size(), ' ')
                    << cells[c];
            }
        }
        oss << "\n";
    };

    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);

    std::ostringstream oss;
    emit_row(oss, header);
    oss << std::string(total, '-') << "\n";
    for (const auto &row : rows) {
        if (row.separator)
            oss << std::string(total, '-') << "\n";
        else
            emit_row(oss, row.cells);
    }
    return oss.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace gist
