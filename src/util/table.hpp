/**
 * @file
 * Column-aligned plain-text table printer for benchmark reports.
 *
 * Every figure/table binary in bench/ prints its rows through this class
 * so the output is uniform and diffable.
 */

#pragma once

#include <string>
#include <vector>

namespace gist {

/** Accumulates rows of string cells and renders them with aligned columns. */
class Table
{
  public:
    /** @param header Column titles (fixes the column count). */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render with 2-space gutters; first column left-aligned, rest right. */
    std::string render() const;

    /** Convenience: render() to stdout. */
    void print() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> header;
    std::vector<Row> rows;
};

} // namespace gist
