/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding
 * every checkpoint section against on-disk corruption. Table-driven,
 * incremental: feed chunks by passing the previous return value as
 * @p seed. Matches zlib's crc32() bit-for-bit so files can be checked
 * with standard tools.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace gist {

/** CRC-32 of @p len bytes at @p data, continuing from @p seed. */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

} // namespace gist
