/**
 * @file
 * Small bit-manipulation helpers used by the encoding kernels.
 */

#pragma once

#include <cstdint>
#include <type_traits>

namespace gist {

/** Extract bits [lo, lo+len) of @p value. */
template <typename T>
constexpr T
bitsOf(T value, unsigned lo, unsigned len)
{
    static_assert(std::is_unsigned_v<T>);
    if (len == 0)
        return 0;
    const T mask = (len >= sizeof(T) * 8) ? ~T{0} : ((T{1} << len) - 1);
    return static_cast<T>(value >> lo) & mask;
}

/** Insert @p field into bits [lo, lo+len) of @p value. */
template <typename T>
constexpr T
insertBits(T value, unsigned lo, unsigned len, T field)
{
    static_assert(std::is_unsigned_v<T>);
    const T mask = (len >= sizeof(T) * 8) ? ~T{0} : ((T{1} << len) - 1);
    return static_cast<T>((value & ~(mask << lo)) |
                          ((field & mask) << lo));
}

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

/** Round @p a up to a multiple of @p b. */
template <typename T>
constexpr T
roundUp(T a, T b)
{
    return ceilDiv(a, b) * b;
}

/** Number of bytes needed to hold @p n_bits bits. */
constexpr std::uint64_t
bytesForBits(std::uint64_t n_bits)
{
    return ceilDiv<std::uint64_t>(n_bits, 8);
}

} // namespace gist
