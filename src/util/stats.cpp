#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace gist {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        GIST_ASSERT(x > 0.0, "geomean requires positive inputs, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *units[] = { "B", "KB", "MB", "GB", "TB" };
    double value = static_cast<double>(bytes);
    int unit = 0;
    while (value >= 1024.0 && unit < 4) {
        value /= 1024.0;
        ++unit;
    }
    char buf[64];
    if (unit == 0)
        std::snprintf(buf, sizeof(buf), "%llu B",
                      static_cast<unsigned long long>(bytes));
    else
        std::snprintf(buf, sizeof(buf), "%.2f %s", value, units[unit]);
    return buf;
}

std::string
formatRatio(double ratio)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
    return buf;
}

std::string
formatPercent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
    return buf;
}

} // namespace gist
