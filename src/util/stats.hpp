/**
 * @file
 * Tiny statistics helpers used by reports and benchmarks.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gist {

/** Arithmetic mean; 0 for an empty input. */
double mean(const std::vector<double> &xs);

/** Geometric mean; 0 for an empty input. All inputs must be > 0. */
double geomean(const std::vector<double> &xs);

/** Sample standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Maximum; 0 for an empty input. */
double maxOf(const std::vector<double> &xs);

/** Render a byte count as a human-friendly string ("1.50 GB"). */
std::string formatBytes(std::uint64_t bytes);

/** Render a ratio with two decimals and a trailing 'x' ("1.82x"). */
std::string formatRatio(double ratio);

/** Render a fraction as a percentage string ("42.0%"). */
std::string formatPercent(double fraction);

} // namespace gist
