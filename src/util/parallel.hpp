/**
 * @file
 * Shared parallel-execution layer: a persistent thread pool plus a
 * chunked parallelFor() used by every hot path (gemm, im2col, the
 * encoders, elementwise ops).
 *
 * Determinism contract: when parallelFor() splits a range, it statically
 * partitions [begin, end) into fixed chunks of at most @p grain
 * iterations whose boundaries depend only on (begin, end, grain) — never
 * on the number of threads or on scheduling order. Kernels must compute
 * every element independently of which chunk delivered it (all callers
 * in this codebase do); under that rule results are bitwise-identical at
 * any thread count, including the single-thread path, which skips
 * chunking entirely and runs fn(begin, end) in one call so 1-thread
 * configurations never pay per-chunk dispatch overhead.
 *
 * Thread count resolution (first use, or after setNumThreads(0)):
 *   1. explicit setNumThreads(n) with n >= 1 wins;
 *   2. else the GIST_THREADS environment variable;
 *   3. else std::thread::hardware_concurrency().
 * A resolved count of 1 disables the pool entirely: parallelFor() runs
 * inline on the caller's thread with zero synchronization.
 */

#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <type_traits>

namespace gist {

/**
 * Loop body for parallelFor: processes the half-open range [begin, end).
 *
 * A non-owning callable reference (not std::function): parallelFor is
 * fully synchronous, so the callee never outlives the call expression
 * and nothing needs to be copied — constructing one is two pointer
 * stores, never a heap allocation. That keeps tiny hot-path loops
 * (im2col rows, codec chunks) allocation-free, which the arena's
 * zero-alloc steady-state accounting depends on.
 */
class RangeFn
{
  public:
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, RangeFn> &&
                  std::is_invocable_v<F &, std::int64_t, std::int64_t>>>
    RangeFn(F &&f) // NOLINT: implicit by design, mirrors function_ref
        : obj_(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          call_([](void *obj, std::int64_t b, std::int64_t e) {
              (*static_cast<std::remove_reference_t<F> *>(obj))(b, e);
          })
    {
    }

    void
    operator()(std::int64_t begin, std::int64_t end) const
    {
        call_(obj_, begin, end);
    }

  private:
    void *obj_;
    void (*call_)(void *, std::int64_t, std::int64_t);
};

/**
 * Resolve a requested thread count: @p requested >= 1 is taken verbatim;
 * 0 (or negative) consults GIST_THREADS, then hardware_concurrency().
 */
int resolveThreadCount(int requested);

/**
 * Set the global worker count. n >= 1 forces exactly n threads (1 means
 * fully inline execution); n <= 0 re-resolves from the environment.
 * Recreates the persistent pool; cheap if the count is unchanged.
 */
void setNumThreads(int n);

/** Current global thread count (resolving the default on first call). */
int numThreads();

/**
 * Dense index of the calling thread within the persistent pool: pool
 * workers return their spawn index (1 .. numThreads()-1, stable for the
 * worker's lifetime); codec-queue workers return a negative index
 * (-1 .. -numWorkers(), stable likewise); the parallelFor caller and
 * any thread outside both pools return 0. The tracing layer (src/obs/)
 * registers its per-thread buffers with this index so every worker gets
 * a stable, named display row in the trace.
 */
int currentWorkerIndex();

/**
 * Run fn over [begin, end) in chunks of at most @p grain iterations,
 * spread across the persistent pool. Blocks until every chunk finished.
 *
 * - Chunking is static (see file comment): safe for bitwise-deterministic
 *   kernels as long as each element is computed chunk-independently.
 * - A 1-thread pool, a nested call, or a range that fits one chunk
 *   degenerates to a single plain function call (no chunk loop).
 * - The calling thread participates in multi-thread runs, so tiny jobs
 *   often finish before a worker even wakes.
 * - Nested calls from inside a worker run inline on that worker — no
 *   deadlock, no thread explosion.
 * - @p grain <= 0 is treated as 1.
 */
void parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const RangeFn &fn);

/**
 * Convenience: pick a grain that yields roughly 4 chunks per thread
 * (load-balance slack without per-chunk overhead dominating), but never
 * below @p min_grain, and snap it up to a multiple of @p align so chunk
 * boundaries respect packed-word layouts (8 values/byte for binarize,
 * 3 values/word for FP10, ...).
 */
std::int64_t chooseGrain(std::int64_t range, std::int64_t min_grain,
                         std::int64_t align = 1);

namespace detail {

/** Shared completion record behind a TaskTicket (see below). */
struct TaskState
{
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
};

} // namespace detail

/**
 * Completion handle for one task submitted to the CodecQueue. Cheap to
 * copy (shared_ptr); a default-constructed ticket is "empty" and all
 * operations on it are no-ops, so callers can keep one per stash slot
 * and only pay when a task is actually in flight.
 *
 * wait() blocks until the task ran to completion and rethrows any
 * exception the task threw (once per wait() call, matching the
 * parallelFor error contract).
 */
class TaskTicket
{
  public:
    TaskTicket() = default;

    /** True if this ticket refers to a submitted task. */
    explicit operator bool() const { return state_ != nullptr; }

    /** True if the task has run to completion (false for empty). */
    bool ready() const;

    /** Block until done; rethrow the task's exception. Empty: no-op. */
    void wait() const;

    /** Drop the reference; the ticket becomes empty. */
    void reset() { state_.reset(); }

  private:
    friend class CodecQueue;
    std::shared_ptr<detail::TaskState> state_;
};

/**
 * Aggregate CodecQueue statistics, maintained with plain relaxed
 * atomics inside the queue (the util layer cannot depend on the
 * obs registry; the executor mirrors these into it per step).
 * Counters are cumulative since process start; callers diff two
 * snapshots for per-step views. `max_depth` is a watermark since the
 * last markDepth() call.
 */
struct CodecQueueStats
{
    std::uint64_t submitted = 0;     ///< tasks handed to submit()
    std::uint64_t completed = 0;     ///< tasks run to completion
    std::uint64_t queue_wait_ns = 0; ///< total enqueue -> pick-up ns
    std::uint64_t run_ns = 0;        ///< total task execution ns
    std::int64_t depth = 0;          ///< tasks enqueued, not picked up
    std::int64_t max_depth = 0;      ///< depth watermark since markDepth()
};

/**
 * A small dedicated FIFO task queue for asynchronous codec work
 * (stash encode/decode), separate from the data-parallel ThreadPool so
 * codec jobs never contend with parallelFor for the pool's single job
 * slot. Tasks run in strict submission order per worker pick-up; with
 * one worker the execution order equals the submission order exactly,
 * which the executor's encode-before-decode slot protocol relies on for
 * deadlock freedom (a decode task only waits on tickets submitted
 * before it).
 *
 * Determinism: codec workers are marked as "inside a worker", so any
 * nested parallelFor runs inline single-threaded — by the static
 * chunking contract above this is bitwise-identical to running the same
 * codec through the pool, which is what keeps async lossless runs
 * bit-for-bit equal to sync runs.
 *
 * setNumWorkers(0) disables the queue: submit() runs the task inline on
 * the calling thread (still capturing exceptions into the ticket), so
 * callers need no special sync fallback path.
 *
 * Each queue instance owns its worker threads and statistics: the
 * executor embeds one per instance, so two executors in one process
 * never share workers, stall accounting, or jitter state. Destroying a
 * queue drains every submitted task first, so owners must declare it
 * after (destroy it before) any state its tasks touch.
 */
class CodecQueue
{
  public:
    CodecQueue();
    ~CodecQueue();

    CodecQueue(const CodecQueue &) = delete;
    CodecQueue &operator=(const CodecQueue &) = delete;

    /**
     * Resize to @p n dedicated worker threads (n <= 0 means inline
     * execution). Drains all in-flight tasks first; cheap when the
     * count is unchanged.
     */
    void setNumWorkers(int n);

    /** Current worker count (0 = inline execution). */
    int numWorkers();

    /** Enqueue a task; returns a ticket completed when the task ran. */
    TaskTicket submit(std::function<void()> fn);

    /** Block until every task submitted so far has completed. */
    void drain();

    /**
     * Point-in-time copy of the queue statistics (see CodecQueueStats).
     * Inline-executed tasks (zero workers) count as submitted/completed
     * with zero queue wait, so sync-fallback runs stay comparable.
     */
    CodecQueueStats stats() const;

    /** Restart the max-depth watermark from the current depth. */
    void markDepth();

    /**
     * Test hook: when @p seed != 0, workers interleave a seeded
     * pseudo-random number of std::this_thread::yield() calls around
     * each task, shaking out ordering assumptions in stress tests.
     * Yields never change task order (FIFO pop under the queue mutex),
     * only timing.
     */
    void setJitter(std::uint64_t seed);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace gist
