#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace gist {

namespace {

/** Set while a thread runs chunks of a job, so nested parallelFor()
 *  calls execute inline instead of re-entering (and deadlocking) the
 *  pool. */
thread_local bool tls_in_worker = false;

/** Spawn index of a pool worker; 0 for every other thread. */
thread_local int tls_worker_index = 0;

/**
 * One in-flight parallelFor: a statically chunked range plus an atomic
 * cursor. Which thread claims which chunk is scheduling noise; the chunk
 * boundaries themselves are fixed, which is what determinism needs.
 */
struct Job
{
    std::int64_t begin = 0;
    std::int64_t grain = 1;
    std::int64_t end = 0;
    std::int64_t num_chunks = 0;
    const RangeFn *fn = nullptr;
    std::atomic<std::int64_t> next_chunk{ 0 };
    std::atomic<std::int64_t> done_chunks{ 0 };
    int workers_inside = 0; ///< guarded by the pool's wake_mu_
    std::exception_ptr error;
    std::mutex error_mu;

    /** Claim and run chunks until none remain. */
    void
    work()
    {
        for (;;) {
            const std::int64_t c =
                next_chunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= num_chunks)
                return;
            const std::int64_t lo = begin + c * grain;
            const std::int64_t hi = std::min(end, lo + grain);
            try {
                (*fn)(lo, hi);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!error)
                    error = std::current_exception();
            }
            done_chunks.fetch_add(1, std::memory_order_release);
        }
    }

    bool
    finished() const
    {
        return done_chunks.load(std::memory_order_acquire) == num_chunks;
    }
};

/**
 * Persistent worker pool. Workers sleep on a condition variable between
 * jobs; parallelFor publishes one Job at a time (callers serialize on
 * job_mu_, so independent subsystems can share the pool safely). A job
 * generation counter tells sleeping workers a *new* job arrived, so a
 * worker that already drained the current job does not busy-spin on it.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    int
    numThreads()
    {
        std::lock_guard<std::mutex> lock(resize_mu_);
        return threads_;
    }

    void
    resize(int n)
    {
        std::lock_guard<std::mutex> lock(resize_mu_);
        const int resolved = resolveThreadCount(n);
        if (resolved == threads_)
            return;
        stopWorkers();
        threads_ = resolved;
        startWorkers();
    }

    void
    run(std::int64_t begin, std::int64_t end, std::int64_t grain,
        const RangeFn &fn)
    {
        Job job;
        job.begin = begin;
        job.end = end;
        job.grain = grain;
        job.num_chunks = ceilDiv(end - begin, grain);
        job.fn = &fn;

        // One parallelFor at a time; a second caller blocks here until
        // the pool frees up rather than interleaving two jobs.
        std::lock_guard<std::mutex> job_lock(job_mu_);
        {
            std::lock_guard<std::mutex> lock(wake_mu_);
            current_ = &job;
            ++job_gen_;
        }
        wake_cv_.notify_all();

        // The caller is a full participant: with a busy pool it still
        // makes progress, and tiny jobs often finish before any worker
        // even wakes. Mark it a worker so nested calls run inline.
        tls_in_worker = true;
        job.work();
        tls_in_worker = false;

        // Retire the job only once no worker can still touch it (the
        // job lives on this stack frame).
        {
            std::unique_lock<std::mutex> lock(wake_mu_);
            done_cv_.wait(lock, [&] {
                return job.finished() && job.workers_inside == 0;
            });
            current_ = nullptr;
        }
        if (job.error)
            std::rethrow_exception(job.error);
    }

  private:
    ThreadPool() { resize(0); }

    ~ThreadPool()
    {
        std::lock_guard<std::mutex> lock(resize_mu_);
        stopWorkers();
    }

    void
    startWorkers()
    {
        // threads_ counts the caller, so spawn threads_ - 1 workers.
        stop_ = false;
        for (int i = 1; i < threads_; ++i)
            workers_.emplace_back([this, i] {
                tls_worker_index = i;
                workerLoop();
            });
    }

    void
    stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lock(wake_mu_);
            stop_ = true;
        }
        wake_cv_.notify_all();
        for (auto &t : workers_)
            t.join();
        workers_.clear();
    }

    void
    workerLoop()
    {
        tls_in_worker = true;
        std::uint64_t seen_gen = 0;
        for (;;) {
            Job *job = nullptr;
            {
                std::unique_lock<std::mutex> lock(wake_mu_);
                wake_cv_.wait(lock, [&] {
                    return stop_ ||
                           (current_ != nullptr && job_gen_ != seen_gen);
                });
                if (stop_)
                    return;
                job = current_;
                seen_gen = job_gen_;
                ++job->workers_inside;
            }
            job->work();
            {
                std::lock_guard<std::mutex> lock(wake_mu_);
                --job->workers_inside;
            }
            // The caller's predicate reads done_chunks and
            // workers_inside; taking wake_mu_ above orders this notify
            // after its predicate check, so the wakeup cannot be lost.
            done_cv_.notify_all();
        }
    }

    std::mutex resize_mu_; ///< guards threads_ / workers_
    std::mutex job_mu_;    ///< serializes parallelFor callers
    std::mutex wake_mu_;   ///< guards current_ / job_gen_ / stop_
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;
    Job *current_ = nullptr;
    std::uint64_t job_gen_ = 0;
    bool stop_ = false;
    int threads_ = 0;
};

} // namespace

int
resolveThreadCount(int requested)
{
    if (requested >= 1)
        return requested;
    if (const char *env = std::getenv("GIST_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<int>(v);
        GIST_WARN("ignoring bad GIST_THREADS value '", env, "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

void
setNumThreads(int n)
{
    ThreadPool::instance().resize(n);
}

int
numThreads()
{
    return ThreadPool::instance().numThreads();
}

int
currentWorkerIndex()
{
    return tls_worker_index;
}

void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const RangeFn &fn)
{
    if (end <= begin)
        return;
    if (grain <= 0)
        grain = 1;
    // Inline fast paths: single chunk or nested call.
    if (end - begin <= grain || tls_in_worker) {
        fn(begin, end);
        return;
    }
    ThreadPool &pool = ThreadPool::instance();
    if (pool.numThreads() <= 1) {
        // One call covering the whole range: kernels compute elements
        // chunk-independently (see chooseGrain), so skipping the chunk
        // loop keeps results identical while shedding per-chunk dispatch
        // overhead — the difference is what made several 1-thread
        // kernels slower than their pre-pool serial form.
        fn(begin, end);
        return;
    }
    pool.run(begin, end, grain, fn);
}

std::int64_t
chooseGrain(std::int64_t range, std::int64_t min_grain, std::int64_t align)
{
    GIST_ASSERT(min_grain > 0 && align > 0, "bad grain parameters");
    // Grain scales with the pool size, so chunk *boundaries* differ
    // across thread counts. Kernels built on chooseGrain must therefore
    // compute each output element independently of its chunk (true for
    // every use in this codebase); kernels whose reduction order follows
    // chunk boundaries should pass a fixed grain to parallelFor instead.
    const auto threads = static_cast<std::int64_t>(numThreads());
    std::int64_t grain = std::max(min_grain, ceilDiv(range, threads * 4));
    grain = roundUp(grain, align);
    return grain;
}

} // namespace gist
