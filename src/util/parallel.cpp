#include "util/parallel.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/bits.hpp"
#include "util/logging.hpp"

namespace gist {

namespace {

/** Set while a thread runs chunks of a job, so nested parallelFor()
 *  calls execute inline instead of re-entering (and deadlocking) the
 *  pool. */
thread_local bool tls_in_worker = false;

/** Spawn index of a pool worker; 0 for every other thread. */
thread_local int tls_worker_index = 0;

/**
 * One in-flight parallelFor: a statically chunked range plus an atomic
 * cursor. Which thread claims which chunk is scheduling noise; the chunk
 * boundaries themselves are fixed, which is what determinism needs.
 */
struct Job
{
    std::int64_t begin = 0;
    std::int64_t grain = 1;
    std::int64_t end = 0;
    std::int64_t num_chunks = 0;
    const RangeFn *fn = nullptr;
    std::atomic<std::int64_t> next_chunk{ 0 };
    std::atomic<std::int64_t> done_chunks{ 0 };
    int workers_inside = 0; ///< guarded by the pool's wake_mu_
    std::exception_ptr error;
    std::mutex error_mu;

    /** Claim and run chunks until none remain. */
    void
    work()
    {
        for (;;) {
            const std::int64_t c =
                next_chunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= num_chunks)
                return;
            const std::int64_t lo = begin + c * grain;
            const std::int64_t hi = std::min(end, lo + grain);
            try {
                (*fn)(lo, hi);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mu);
                if (!error)
                    error = std::current_exception();
            }
            done_chunks.fetch_add(1, std::memory_order_release);
        }
    }

    bool
    finished() const
    {
        return done_chunks.load(std::memory_order_acquire) == num_chunks;
    }
};

/**
 * Persistent worker pool. Workers sleep on a condition variable between
 * jobs; parallelFor publishes one Job at a time (callers serialize on
 * job_mu_, so independent subsystems can share the pool safely). A job
 * generation counter tells sleeping workers a *new* job arrived, so a
 * worker that already drained the current job does not busy-spin on it.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    int
    numThreads() const
    {
        // Lock-free: parallelFor and chooseGrain read this on every
        // call, and a mutex here put two lock/unlock pairs on the
        // single-thread fast path of small kernels (binarize backward
        // lost ~4% to it). Relaxed is enough — resize() never runs
        // concurrently with work.
        return threads_.load(std::memory_order_relaxed);
    }

    void
    resize(int n)
    {
        std::lock_guard<std::mutex> lock(resize_mu_);
        const int resolved = resolveThreadCount(n);
        if (resolved == threads_.load(std::memory_order_relaxed))
            return;
        stopWorkers();
        threads_.store(resolved, std::memory_order_relaxed);
        startWorkers();
    }

    void
    run(std::int64_t begin, std::int64_t end, std::int64_t grain,
        const RangeFn &fn)
    {
        Job job;
        job.begin = begin;
        job.end = end;
        job.grain = grain;
        job.num_chunks = ceilDiv(end - begin, grain);
        job.fn = &fn;

        // One parallelFor at a time; a second caller blocks here until
        // the pool frees up rather than interleaving two jobs.
        std::lock_guard<std::mutex> job_lock(job_mu_);
        {
            std::lock_guard<std::mutex> lock(wake_mu_);
            current_ = &job;
            ++job_gen_;
        }
        wake_cv_.notify_all();

        // The caller is a full participant: with a busy pool it still
        // makes progress, and tiny jobs often finish before any worker
        // even wakes. Mark it a worker so nested calls run inline.
        tls_in_worker = true;
        job.work();
        tls_in_worker = false;

        // Retire the job only once no worker can still touch it (the
        // job lives on this stack frame).
        {
            std::unique_lock<std::mutex> lock(wake_mu_);
            done_cv_.wait(lock, [&] {
                return job.finished() && job.workers_inside == 0;
            });
            current_ = nullptr;
        }
        if (job.error)
            std::rethrow_exception(job.error);
    }

  private:
    ThreadPool() { resize(0); }

    ~ThreadPool()
    {
        std::lock_guard<std::mutex> lock(resize_mu_);
        stopWorkers();
    }

    void
    startWorkers()
    {
        // threads_ counts the caller, so spawn threads_ - 1 workers.
        stop_ = false;
        const int n = threads_.load(std::memory_order_relaxed);
        for (int i = 1; i < n; ++i)
            workers_.emplace_back([this, i] {
                tls_worker_index = i;
                workerLoop();
            });
    }

    void
    stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lock(wake_mu_);
            stop_ = true;
        }
        wake_cv_.notify_all();
        for (auto &t : workers_)
            t.join();
        workers_.clear();
    }

    void
    workerLoop()
    {
        tls_in_worker = true;
        std::uint64_t seen_gen = 0;
        for (;;) {
            Job *job = nullptr;
            {
                std::unique_lock<std::mutex> lock(wake_mu_);
                wake_cv_.wait(lock, [&] {
                    return stop_ ||
                           (current_ != nullptr && job_gen_ != seen_gen);
                });
                if (stop_)
                    return;
                job = current_;
                seen_gen = job_gen_;
                ++job->workers_inside;
            }
            job->work();
            {
                std::lock_guard<std::mutex> lock(wake_mu_);
                --job->workers_inside;
            }
            // The caller's predicate reads done_chunks and
            // workers_inside; taking wake_mu_ above orders this notify
            // after its predicate check, so the wakeup cannot be lost.
            done_cv_.notify_all();
        }
    }

    std::mutex resize_mu_; ///< serializes resize(); guards workers_
    std::mutex job_mu_;    ///< serializes parallelFor callers
    std::mutex wake_mu_;   ///< guards current_ / job_gen_ / stop_
    std::condition_variable wake_cv_;
    std::condition_variable done_cv_;
    std::vector<std::thread> workers_;
    Job *current_ = nullptr;
    std::uint64_t job_gen_ = 0;
    bool stop_ = false;
    std::atomic<int> threads_{ 0 };
};

} // namespace

int
resolveThreadCount(int requested)
{
    if (requested >= 1)
        return requested;
    if (const char *env = std::getenv("GIST_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<int>(v);
        GIST_WARN("ignoring bad GIST_THREADS value '", env, "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? static_cast<int>(hw) : 1;
}

void
setNumThreads(int n)
{
    ThreadPool::instance().resize(n);
}

int
numThreads()
{
    return ThreadPool::instance().numThreads();
}

int
currentWorkerIndex()
{
    return tls_worker_index;
}

void
parallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
            const RangeFn &fn)
{
    if (end <= begin)
        return;
    if (grain <= 0)
        grain = 1;
    // Inline fast paths: single chunk or nested call.
    if (end - begin <= grain || tls_in_worker) {
        fn(begin, end);
        return;
    }
    ThreadPool &pool = ThreadPool::instance();
    if (pool.numThreads() <= 1) {
        // One call covering the whole range: kernels compute elements
        // chunk-independently (see chooseGrain), so skipping the chunk
        // loop keeps results identical while shedding per-chunk dispatch
        // overhead — the difference is what made several 1-thread
        // kernels slower than their pre-pool serial form.
        fn(begin, end);
        return;
    }
    pool.run(begin, end, grain, fn);
}

bool
TaskTicket::ready() const
{
    if (!state_)
        return false;
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
}

void
TaskTicket::wait() const
{
    if (!state_)
        return;
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->error)
        std::rethrow_exception(state_->error);
}

/**
 * FIFO queue + dedicated worker threads. One mutex guards the deque and
 * the in-flight count; per-task completion is published through the
 * ticket's own TaskState so waiters never contend with submitters.
 */
struct CodecQueue::Impl
{
    struct Task
    {
        std::function<void()> fn;
        std::shared_ptr<detail::TaskState> state;
        std::uint64_t enqueue_ns = 0; ///< stamp for queue-wait stats
    };

    std::mutex mu;                 ///< guards queue / in_flight / stop
    std::condition_variable wake;  ///< workers sleep here
    std::condition_variable idle;  ///< drain() sleeps here
    std::deque<Task> queue;
    std::vector<std::thread> workers;
    int in_flight = 0; ///< tasks popped but not yet completed
    bool stop = false;
    std::atomic<std::uint64_t> jitter{ 0 };

    // Stall-accounting stats: plain relaxed atomics, never the obs
    // registry (gist_obs links gist_util, so the dependency only runs
    // the other way; the executor mirrors these per step). All writes
    // are monotonic adds except the depth gauge and its watermark.
    std::atomic<std::uint64_t> submitted{ 0 };
    std::atomic<std::uint64_t> completed{ 0 };
    std::atomic<std::uint64_t> queue_wait_ns{ 0 };
    std::atomic<std::uint64_t> run_ns{ 0 };
    std::atomic<std::int64_t> depth{ 0 };
    std::atomic<std::int64_t> max_depth{ 0 };

    static std::uint64_t
    nowNs()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    void
    noteDepth(std::int64_t d)
    {
        std::int64_t m = max_depth.load(std::memory_order_relaxed);
        while (d > m &&
               !max_depth.compare_exchange_weak(
                   m, d, std::memory_order_relaxed)) {
        }
    }

    /** xorshift step on the shared jitter state; returns 0..3 yields. */
    int
    jitterYields()
    {
        std::uint64_t s = jitter.load(std::memory_order_relaxed);
        if (s == 0)
            return 0;
        std::uint64_t x = s;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        jitter.store(x, std::memory_order_relaxed);
        return static_cast<int>(x & 3);
    }

    static void
    complete(const std::shared_ptr<detail::TaskState> &state,
             std::exception_ptr error)
    {
        {
            std::lock_guard<std::mutex> lock(state->mu);
            state->done = true;
            state->error = std::move(error);
        }
        state->cv.notify_all();
    }

    static std::exception_ptr
    runGuarded(const std::function<void()> &fn)
    {
        try {
            fn();
        } catch (...) {
            return std::current_exception();
        }
        return nullptr;
    }

    void
    workerLoop(int spawn_index)
    {
        // Mark the thread as a worker so nested parallelFor from codec
        // kernels runs inline (bitwise-identical by the static chunking
        // contract, and free of pool-mutex contention); the negative
        // index gives the trace layer a distinct "codec worker" row.
        tls_in_worker = true;
        tls_worker_index = -spawn_index;
        for (;;) {
            Task task;
            {
                std::unique_lock<std::mutex> lock(mu);
                wake.wait(lock, [&] { return stop || !queue.empty(); });
                if (stop && queue.empty())
                    return;
                task = std::move(queue.front());
                queue.pop_front();
                ++in_flight;
            }
            depth.fetch_sub(1, std::memory_order_relaxed);
            const std::uint64_t t_pick = nowNs();
            queue_wait_ns.fetch_add(t_pick - task.enqueue_ns,
                                    std::memory_order_relaxed);
            for (int i = jitterYields(); i > 0; --i)
                std::this_thread::yield();
            std::exception_ptr error = runGuarded(task.fn);
            run_ns.fetch_add(nowNs() - t_pick,
                             std::memory_order_relaxed);
            completed.fetch_add(1, std::memory_order_relaxed);
            for (int i = jitterYields(); i > 0; --i)
                std::this_thread::yield();
            complete(task.state, std::move(error));
            {
                std::lock_guard<std::mutex> lock(mu);
                --in_flight;
            }
            idle.notify_all();
        }
    }

    void
    startWorkers(int n)
    {
        stop = false;
        for (int i = 1; i <= n; ++i)
            workers.emplace_back([this, i] { workerLoop(i); });
    }

    void
    stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            stop = true;
        }
        wake.notify_all();
        for (auto &t : workers)
            t.join();
        workers.clear();
    }
};

CodecQueue::CodecQueue() : impl_(new Impl) {}

CodecQueue::~CodecQueue()
{
    impl_->stopWorkers();
}

void
CodecQueue::setNumWorkers(int n)
{
    if (n < 0)
        n = 0;
    if (n == numWorkers())
        return;
    drain();
    impl_->stopWorkers();
    impl_->startWorkers(n);
}

int
CodecQueue::numWorkers()
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return static_cast<int>(impl_->workers.size());
}

TaskTicket
CodecQueue::submit(std::function<void()> fn)
{
    GIST_ASSERT(fn != nullptr, "CodecQueue::submit: null task");
    TaskTicket ticket;
    ticket.state_ = std::make_shared<detail::TaskState>();
    impl_->submitted.fetch_add(1, std::memory_order_relaxed);
    bool inline_run = false;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        if (impl_->workers.empty()) {
            inline_run = true;
        } else {
            impl_->queue.push_back(Impl::Task{ std::move(fn),
                                               ticket.state_,
                                               Impl::nowNs() });
            impl_->noteDepth(
                impl_->depth.fetch_add(1, std::memory_order_relaxed) +
                1);
        }
    }
    if (inline_run) {
        // No workers: run on the calling thread, still routing any
        // exception through the ticket so callers have one error path.
        // Zero queue wait by definition; run time still counts so the
        // overlap metric's denominator covers sync-fallback codec work.
        const std::uint64_t t0 = Impl::nowNs();
        Impl::complete(ticket.state_, Impl::runGuarded(fn));
        impl_->run_ns.fetch_add(Impl::nowNs() - t0,
                                std::memory_order_relaxed);
        impl_->completed.fetch_add(1, std::memory_order_relaxed);
    } else {
        impl_->wake.notify_one();
    }
    return ticket;
}

void
CodecQueue::drain()
{
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->idle.wait(lock, [&] {
        return impl_->queue.empty() && impl_->in_flight == 0;
    });
}

CodecQueueStats
CodecQueue::stats() const
{
    CodecQueueStats s;
    s.submitted = impl_->submitted.load(std::memory_order_relaxed);
    s.completed = impl_->completed.load(std::memory_order_relaxed);
    s.queue_wait_ns =
        impl_->queue_wait_ns.load(std::memory_order_relaxed);
    s.run_ns = impl_->run_ns.load(std::memory_order_relaxed);
    s.depth = impl_->depth.load(std::memory_order_relaxed);
    s.max_depth = impl_->max_depth.load(std::memory_order_relaxed);
    return s;
}

void
CodecQueue::markDepth()
{
    impl_->max_depth.store(impl_->depth.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
}

void
CodecQueue::setJitter(std::uint64_t seed)
{
    impl_->jitter.store(seed, std::memory_order_relaxed);
}

std::int64_t
chooseGrain(std::int64_t range, std::int64_t min_grain, std::int64_t align)
{
    GIST_ASSERT(min_grain > 0 && align > 0, "bad grain parameters");
    // Grain scales with the pool size, so chunk *boundaries* differ
    // across thread counts. Kernels built on chooseGrain must therefore
    // compute each output element independently of its chunk (true for
    // every use in this codebase); kernels whose reduction order follows
    // chunk boundaries should pass a fixed grain to parallelFor instead.
    const auto threads = static_cast<std::int64_t>(numThreads());
    std::int64_t grain = std::max(min_grain, ceilDiv(range, threads * 4));
    grain = roundUp(grain, align);
    return grain;
}

} // namespace gist
