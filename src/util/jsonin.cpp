#include "util/jsonin.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gist {

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

double
JsonValue::numberOr(const std::string &key, double def) const
{
    const JsonValue *v = get(key);
    return v && v->isNumber() ? v->asNumber() : def;
}

std::string
JsonValue::stringOr(const std::string &key, const std::string &def) const
{
    const JsonValue *v = get(key);
    return v && v->isString() ? v->asString() : def;
}

std::int64_t
JsonValue::intOr(const std::string &key, std::int64_t def) const
{
    const JsonValue *v = get(key);
    return v && v->isNumber() ? static_cast<std::int64_t>(v->asNumber())
                              : def;
}

/** Recursive-descent parser over a string_view; depth-capped. */
class JsonParser
{
  public:
    JsonParser(std::string_view text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool
    run(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing data after top-level value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 128;

    bool
    fail(const char *what)
    {
        if (err_) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "%s at offset %zu", what,
                          pos_);
            *err_ = buf;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail("bad literal");
        pos_ += len;
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n':
            out.type_ = JsonValue::Type::Null;
            return literal("null", 4);
          case 't':
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = true;
            return literal("true", 4);
          case 'f':
            out.type_ = JsonValue::Type::Bool;
            out.bool_ = false;
            return literal("false", 5);
          case '"':
            out.type_ = JsonValue::Type::String;
            return parseString(out.str_);
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        const std::string num(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double v = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size() || !std::isfinite(v))
            return fail("bad number");
        out.type_ = JsonValue::Type::Number;
        out.num_ = v;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            if (++pos_ >= text_.size())
                return fail("unterminated escape");
            switch (text_[pos_]) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 >= text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 1; i <= 4; ++i) {
                    const char h = text_[pos_ + static_cast<size_t>(i)];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                pos_ += 4;
                // BMP code point to UTF-8 (surrogate pairs are not
                // produced by any writer in this repo; a lone
                // surrogate round-trips as the replacement sequence).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue &out, int depth)
    {
        ++pos_; // '['
        out.type_ = JsonValue::Type::Array;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue item;
            skipWs();
            if (!parseValue(item, depth + 1))
                return false;
            out.items_.push_back(std::move(item));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out, int depth)
    {
        ++pos_; // '{'
        out.type_ = JsonValue::Type::Object;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue val;
            if (!parseValue(val, depth + 1))
                return false;
            out.members_.emplace_back(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    std::string *err_;
    size_t pos_ = 0;
};

bool
JsonValue::parse(std::string_view text, JsonValue &out, std::string *err)
{
    out = JsonValue();
    JsonParser p(text, err);
    return p.run(out);
}

} // namespace gist
