/**
 * @file
 * Logging and error-reporting helpers, in the gem5 spirit.
 *
 * panic()  -- an internal invariant was violated (a bug in this library);
 *             aborts so a debugger/core dump can catch it.
 * fatal()  -- the caller asked for something unsupported or inconsistent
 *             (user error); exits with status 1.
 * warn()   -- something works, but not as well as it should.
 * inform() -- plain status output.
 */

#pragma once

#include <cstdlib>
#include <sstream>
#include <string>

namespace gist {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Panic, Fatal };

namespace detail {

/** Emit a formatted log line to stderr; aborts/exits for Panic/Fatal. */
[[noreturn]] void logAndDie(LogLevel level, const char *file, int line,
                            const std::string &msg);

void logMessage(LogLevel level, const char *file, int line,
                const std::string &msg);

/** Stream-compose a message out of arbitrary << -able parts. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Toggle inform() output (benchmarks silence it). */
void setInformEnabled(bool enabled);
bool informEnabled();

} // namespace gist

#define GIST_PANIC(...)                                                      \
    ::gist::detail::logAndDie(::gist::LogLevel::Panic, __FILE__, __LINE__,   \
                              ::gist::detail::composeMessage(__VA_ARGS__))

#define GIST_FATAL(...)                                                      \
    ::gist::detail::logAndDie(::gist::LogLevel::Fatal, __FILE__, __LINE__,   \
                              ::gist::detail::composeMessage(__VA_ARGS__))

#define GIST_WARN(...)                                                       \
    ::gist::detail::logMessage(::gist::LogLevel::Warn, __FILE__, __LINE__,   \
                               ::gist::detail::composeMessage(__VA_ARGS__))

#define GIST_INFORM(...)                                                     \
    ::gist::detail::logMessage(::gist::LogLevel::Inform, __FILE__, __LINE__, \
                               ::gist::detail::composeMessage(__VA_ARGS__))

/** Always-on invariant check (independent of NDEBUG). */
#define GIST_ASSERT(cond, ...)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            GIST_PANIC("assertion failed: " #cond " ",                       \
                       ::gist::detail::composeMessage(__VA_ARGS__));         \
        }                                                                    \
    } while (0)
