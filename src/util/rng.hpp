/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in this repository that needs randomness (weight init,
 * synthetic datasets, property-test inputs) goes through Rng so results
 * are reproducible across runs and platforms. The core generator is
 * splitmix64, which is fast, has a full 2^64 period per stream, and is
 * trivially seedable.
 */

#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace gist {

/**
 * Serializable snapshot of an Rng, POD so checkpoints can store streams
 * bit-exactly (the Box-Muller spare is kept as raw float bits).
 */
struct RngState
{
    std::uint64_t state = 0;
    std::uint32_t spare_bits = 0;
    bool have_spare = false;
};

/** Deterministic RNG (splitmix64) with uniform/normal helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + static_cast<float>(uniform()) * (hi - lo);
    }

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t
    uniformInt(std::uint64_t n)
    {
        return next() % n;
    }

    /** Standard normal via Box-Muller. */
    float
    normal()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-12)
            u1 = 1e-12;
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        spare = static_cast<float>(r * std::sin(theta));
        haveSpare = true;
        return static_cast<float>(r * std::cos(theta));
    }

    /** Normal with the given mean and standard deviation. */
    float
    normal(float mean, float stddev)
    {
        return mean + stddev * normal();
    }

    /** Derive an independent stream (e.g. per layer or per example). */
    Rng
    fork(std::uint64_t stream_id)
    {
        return Rng(next() ^ (stream_id * 0xd1342543de82ef95ULL));
    }

    /** Snapshot the full generator state (checkpointing). */
    RngState
    saveState() const
    {
        return { state, std::bit_cast<std::uint32_t>(spare), haveSpare };
    }

    /** Restore a snapshot; the stream continues bit-exactly. */
    void
    restoreState(const RngState &s)
    {
        state = s.state;
        spare = std::bit_cast<float>(s.spare_bits);
        haveSpare = s.have_spare;
    }

  private:
    std::uint64_t state;
    float spare = 0.0f;
    bool haveSpare = false;
};

} // namespace gist
