#include "util/logging.hpp"

#include <cstdio>
#include <stdexcept>

namespace gist {

namespace {

bool informOn = true;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Panic: return "panic";
      case LogLevel::Fatal: return "fatal";
    }
    return "?";
}

} // namespace

void
setInformEnabled(bool enabled)
{
    informOn = enabled;
}

bool
informEnabled()
{
    return informOn;
}

namespace detail {

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (level == LogLevel::Inform && !informOn)
        return;
    if (level == LogLevel::Inform) {
        std::fprintf(stderr, "%s: %s\n", levelName(level), msg.c_str());
    } else {
        std::fprintf(stderr, "%s: %s (%s:%d)\n", levelName(level),
                     msg.c_str(), file, line);
    }
}

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    logMessage(level, file, line, msg);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace gist
