#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <stdexcept>

namespace gist {

namespace {

bool informOn = true;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Panic: return "panic";
      case LogLevel::Fatal: return "fatal";
    }
    return "?";
}

/** "[HH:MM:SS.mmm] " wall-clock prefix. */
void
timestampPrefix(char *buf, size_t len)
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count() %
        1000;
    std::tm tm{};
    localtime_r(&secs, &tm);
    std::snprintf(buf, len, "[%02d:%02d:%02d.%03d] ", tm.tm_hour,
                  tm.tm_min, tm.tm_sec, static_cast<int>(ms));
}

} // namespace

void
setInformEnabled(bool enabled)
{
    informOn = enabled;
}

bool
informEnabled()
{
    return informOn;
}

namespace detail {

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (level == LogLevel::Inform && !informOn)
        return;

    // Compose the whole line up front and emit it as one locked write,
    // so messages from different pool threads never interleave.
    char ts[24];
    timestampPrefix(ts, sizeof(ts));
    std::string out;
    out.reserve(msg.size() + 64);
    out += ts;
    out += levelName(level);
    out += ": ";
    out += msg;
    if (level != LogLevel::Inform) {
        char loc[300];
        std::snprintf(loc, sizeof(loc), " (%s:%d)", file, line);
        out += loc;
    }
    out += '\n';

    flockfile(stderr);
    std::fwrite(out.data(), 1, out.size(), stderr);
    funlockfile(stderr);
}

void
logAndDie(LogLevel level, const char *file, int line, const std::string &msg)
{
    logMessage(level, file, line, msg);
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail

} // namespace gist
