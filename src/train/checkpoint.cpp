#include "train/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <vector>

#include "util/logging.hpp"

namespace gist {

namespace {

constexpr char kMagic[8] = { 'G', 'I', 'S', 'T', 'C', 'K', 'P', 'T' };
constexpr std::uint32_t kVersion = 1;

std::vector<Tensor *>
paramsOf(Graph &graph)
{
    std::vector<Tensor *> out;
    for (auto &node : graph.nodes())
        if (node.layer)
            for (Tensor *p : node.layer->params())
                out.push_back(p);
    return out;
}

template <typename T>
void
writePod(std::ofstream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::ifstream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    return value;
}

} // namespace

void
saveWeights(Graph &graph, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        GIST_FATAL("cannot open ", path, " for writing");
    out.write(kMagic, sizeof(kMagic));
    writePod(out, kVersion);

    const auto params = paramsOf(graph);
    writePod(out, static_cast<std::uint64_t>(params.size()));
    for (Tensor *p : params) {
        GIST_ASSERT(!p->empty(), "cannot checkpoint unallocated params");
        writePod(out, static_cast<std::uint64_t>(p->numel()));
        out.write(reinterpret_cast<const char *>(p->data()),
                  static_cast<std::streamsize>(p->numel()) * 4);
    }
    if (!out)
        GIST_FATAL("short write to ", path);
}

void
loadWeights(Graph &graph, const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        GIST_FATAL("cannot open ", path, " for reading");
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        GIST_FATAL(path, " is not a Gist checkpoint");
    const auto version = readPod<std::uint32_t>(in);
    if (version != kVersion)
        GIST_FATAL("unsupported checkpoint version ", version);

    const auto params = paramsOf(graph);
    const auto count = readPod<std::uint64_t>(in);
    if (count != params.size())
        GIST_FATAL("checkpoint has ", count, " tensors, graph expects ",
                   params.size());
    for (Tensor *p : params) {
        const auto numel = readPod<std::uint64_t>(in);
        if (numel != static_cast<std::uint64_t>(p->numel()))
            GIST_FATAL("checkpoint tensor has ", numel,
                       " elements, graph expects ", p->numel());
        if (p->empty())
            p->reallocate();
        in.read(reinterpret_cast<char *>(p->data()),
                static_cast<std::streamsize>(p->numel()) * 4);
    }
    if (!in)
        GIST_FATAL("short read from ", path);
}

} // namespace gist
