#include "train/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <stdexcept>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/crc32.hpp"
#include "util/logging.hpp"

namespace gist {

namespace {

constexpr char kMagic[8] = { 'G', 'I', 'S', 'T', 'C', 'K', 'P', 'T' };
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersionV2 = 2;

constexpr std::uint32_t
fourcc(char a, char b, char c, char d)
{
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
           static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kSecWeights = fourcc('W', 'G', 'T', 'S');
constexpr std::uint32_t kSecState = fourcc('S', 'T', 'A', 'T');
constexpr std::uint32_t kSecRng = fourcc('R', 'N', 'G', 'S');
constexpr std::uint32_t kSecVelocity = fourcc('V', 'E', 'L', 'O');
constexpr std::uint32_t kSecDataset = fourcc('D', 'C', 'U', 'R');
constexpr std::uint32_t kSecCounters = fourcc('C', 'T', 'R', 'S');
constexpr std::uint32_t kSecLr = fourcc('L', 'R', 'S', 'C');

const char *
sectionName(std::uint32_t id)
{
    switch (id) {
      case kSecWeights: return "weights";
      case kSecState: return "state";
      case kSecRng: return "rng";
      case kSecVelocity: return "velocity";
      case kSecDataset: return "dataset";
      case kSecCounters: return "counters";
      case kSecLr: return "lr";
    }
    return "?";
}

CheckpointFault g_fault = CheckpointFault::None;

CheckpointFault
consumeFault()
{
    const CheckpointFault f = g_fault;
    g_fault = CheckpointFault::None;
    return f;
}

// ------------------------------------------------------- graph accessors

std::vector<Tensor *>
paramsOf(Graph &graph)
{
    std::vector<Tensor *> out;
    for (auto &node : graph.nodes())
        if (node.layer)
            for (Tensor *p : node.layer->params())
                out.push_back(p);
    return out;
}

std::vector<Tensor *>
stateOf(Graph &graph)
{
    std::vector<Tensor *> out;
    for (auto &node : graph.nodes())
        if (node.layer)
            for (Tensor *t : node.layer->stateTensors())
                out.push_back(t);
    return out;
}

std::vector<Rng *>
rngsOf(Graph &graph)
{
    std::vector<Rng *> out;
    for (auto &node : graph.nodes())
        if (node.layer)
            for (Rng *r : node.layer->rngStreams())
                out.push_back(r);
    return out;
}

// ----------------------------------------------------------- serializing

using Bytes = std::vector<std::uint8_t>;

void
putRaw(Bytes &buf, const void *src, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(src);
    buf.insert(buf.end(), p, p + n);
}

template <typename T>
void
putPod(Bytes &buf, const T &value)
{
    putRaw(buf, &value, sizeof(T));
}

Bytes
tensorListPayload(const std::vector<Tensor *> &tensors)
{
    Bytes out;
    putPod(out, static_cast<std::uint64_t>(tensors.size()));
    for (Tensor *t : tensors) {
        GIST_ASSERT(!t->empty(), "cannot checkpoint unallocated tensors");
        putPod(out, static_cast<std::uint64_t>(t->numel()));
        putRaw(out, t->data(),
               static_cast<std::size_t>(t->numel()) * sizeof(float));
    }
    return out;
}

Bytes
velocityPayload(const std::vector<std::vector<float>> &velocity)
{
    Bytes out;
    putPod(out, static_cast<std::uint64_t>(velocity.size()));
    for (const auto &v : velocity) {
        putPod(out, static_cast<std::uint64_t>(v.size()));
        putRaw(out, v.data(), v.size() * sizeof(float));
    }
    return out;
}

Bytes
rngPayload(const std::vector<Rng *> &rngs)
{
    Bytes out;
    putPod(out, static_cast<std::uint32_t>(rngs.size()));
    for (const Rng *r : rngs) {
        const RngState s = r->saveState();
        putPod(out, s.state);
        putPod(out, s.spare_bits);
        putPod(out, static_cast<std::uint8_t>(s.have_spare));
    }
    return out;
}

struct SectionOut
{
    std::uint32_t id;
    Bytes payload;
};

Bytes
assembleFile(const std::vector<SectionOut> &sections)
{
    Bytes out;
    putRaw(out, kMagic, sizeof(kMagic));
    putPod(out, kVersionV2);
    putPod(out, static_cast<std::uint32_t>(sections.size()));
    for (const SectionOut &s : sections) {
        putPod(out, s.id);
        putPod(out, static_cast<std::uint64_t>(s.payload.size()));
        putPod(out, crc32(s.payload.data(), s.payload.size()));
        putRaw(out, s.payload.data(), s.payload.size());
    }
    return out;
}

/**
 * Publish @p bytes at @p path via temp file + fsync + atomic rename.
 * Any failure (or injected fault) leaves the previous file untouched.
 */
void
publishFile(const std::string &path, const Bytes &bytes)
{
    const auto t0 = std::chrono::steady_clock::now();
    const CheckpointFault fault = consumeFault();
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        throw std::runtime_error(detail::composeMessage(
            "cannot open ", tmp, " for writing"));
    std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    if (fault == CheckpointFault::ShortWrite)
        written = bytes.size() / 2;
    if (written != bytes.size() || std::fflush(f) != 0) {
        std::fclose(f);
        std::remove(tmp.c_str());
        throw std::runtime_error(detail::composeMessage(
            "short write to ", tmp, " (", written, " of ", bytes.size(),
            " bytes); previous checkpoint at ", path, " left intact"));
    }
    if (::fsync(::fileno(f)) != 0) {
        std::fclose(f);
        std::remove(tmp.c_str());
        throw std::runtime_error(detail::composeMessage(
            "fsync failed for ", tmp, "; previous checkpoint at ", path,
            " left intact"));
    }
    std::fclose(f);
    if (fault == CheckpointFault::CrashBeforeRename)
        return; // simulated kill: durable temp file, no publication
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error(detail::composeMessage(
            "cannot rename ", tmp, " over ", path,
            "; previous checkpoint left intact"));
    }
    // Make the rename itself durable (best effort: some filesystems
    // reject directory fsync).
    const auto slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }

    auto &registry = obs::MetricRegistry::instance();
    registry.counter("gist.checkpoint.bytes").add(bytes.size());
    registry.counter("gist.checkpoint.write_ns")
        .add(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()));
}

// ------------------------------------------------------------- parsing

/** Bounds-checked reader over an in-memory span of the file. */
struct Cursor
{
    const std::uint8_t *base;
    std::size_t len;
    std::size_t off = 0;
    /** Section (or structure) name used in truncation errors. */
    const char *what;

    std::size_t remaining() const { return len - off; }

    const std::uint8_t *
    take(std::size_t n)
    {
        if (remaining() < n)
            GIST_FATAL("checkpoint section '", what, "' truncated (need ",
                       n, " bytes, ", remaining(), " left)");
        const std::uint8_t *p = base + off;
        off += n;
        return p;
    }

    template <typename T>
    T
    pod()
    {
        T value;
        std::memcpy(&value, take(sizeof(T)), sizeof(T));
        return value;
    }
};

void
parseTensorList(Cursor &cur, const std::vector<Tensor *> &tensors)
{
    const auto count = cur.pod<std::uint64_t>();
    if (count != tensors.size())
        GIST_FATAL("checkpoint section '", cur.what, "' has ", count,
                   " tensors, graph expects ", tensors.size());
    for (std::size_t i = 0; i < tensors.size(); ++i) {
        Tensor *t = tensors[i];
        const auto numel = cur.pod<std::uint64_t>();
        if (numel != static_cast<std::uint64_t>(t->numel()))
            GIST_FATAL("checkpoint section '", cur.what, "': tensor ", i,
                       " has ", numel, " elements, graph expects ",
                       t->numel());
        if (t->empty())
            t->reallocate();
        std::memcpy(t->data(),
                    cur.take(static_cast<std::size_t>(numel) *
                             sizeof(float)),
                    static_cast<std::size_t>(numel) * sizeof(float));
    }
}

void
parseVelocity(Cursor &cur, std::vector<std::vector<float>> &velocity,
              const std::vector<Tensor *> &params)
{
    const auto count = cur.pod<std::uint64_t>();
    if (count != params.size())
        GIST_FATAL("checkpoint section 'velocity' has ", count,
                   " tensors, graph expects ", params.size());
    velocity.clear();
    for (std::size_t i = 0; i < params.size(); ++i) {
        const auto numel = cur.pod<std::uint64_t>();
        if (numel != static_cast<std::uint64_t>(params[i]->numel()))
            GIST_FATAL("checkpoint section 'velocity': tensor ", i,
                       " has ", numel, " elements, graph expects ",
                       params[i]->numel());
        std::vector<float> v(static_cast<std::size_t>(numel));
        std::memcpy(v.data(),
                    cur.take(v.size() * sizeof(float)),
                    v.size() * sizeof(float));
        velocity.push_back(std::move(v));
    }
}

void
parseRng(Cursor &cur, const std::vector<Rng *> &rngs)
{
    const auto count = cur.pod<std::uint32_t>();
    if (count != rngs.size())
        GIST_FATAL("checkpoint section 'rng' has ", count,
                   " streams, graph expects ", rngs.size());
    for (Rng *r : rngs) {
        RngState s;
        s.state = cur.pod<std::uint64_t>();
        s.spare_bits = cur.pod<std::uint32_t>();
        s.have_spare = cur.pod<std::uint8_t>() != 0;
        r->restoreState(s);
    }
}

void
endSection(const Cursor &cur)
{
    if (cur.remaining() != 0)
        GIST_FATAL("checkpoint section '", cur.what, "' has ",
                   cur.remaining(), " trailing payload bytes");
}

Bytes
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        GIST_FATAL("cannot open ", path, " for reading");
    const auto size = static_cast<std::size_t>(in.tellg());
    Bytes bytes(size);
    in.seekg(0);
    in.read(reinterpret_cast<char *>(bytes.data()),
            static_cast<std::streamsize>(size));
    if (!in)
        GIST_FATAL("read error on ", path);
    return bytes;
}

/**
 * Load a v1 (pre-section) file: magic, u32 version, u64 tensor count,
 * then per tensor u64 numel + FP32 data. Every field read is bounds-
 * checked so truncation is reported where it happened, not as a
 * misleading downstream mismatch; trailing bytes are rejected.
 */
void
loadV1(Cursor &cur, Graph &graph, const std::string &path)
{
    cur.what = "weights";
    parseTensorList(cur, paramsOf(graph));
    if (cur.remaining() != 0)
        GIST_FATAL(path, " has ", cur.remaining(),
                   " trailing bytes after the last tensor");
    if (!stateOf(graph).empty())
        GIST_WARN(path, " is a v1 checkpoint with no model-state ",
                  "section; batchnorm running statistics keep their ",
                  "current values");
}

/** Sections of a v2 file, CRC-validated, keyed by id. */
std::map<std::uint32_t, Cursor>
splitSections(Cursor &cur, const std::string &path)
{
    cur.what = "file header";
    const auto section_count = cur.pod<std::uint32_t>();
    std::map<std::uint32_t, Cursor> sections;
    for (std::uint32_t i = 0; i < section_count; ++i) {
        cur.what = "section header";
        const auto id = cur.pod<std::uint32_t>();
        const auto bytes = cur.pod<std::uint64_t>();
        const auto stored_crc = cur.pod<std::uint32_t>();
        cur.what = sectionName(id);
        if (cur.remaining() < bytes)
            GIST_FATAL("checkpoint section '", sectionName(id),
                       "' truncated (need ", bytes, " bytes, ",
                       cur.remaining(), " left)");
        const std::uint8_t *payload = cur.base + cur.off;
        cur.off += static_cast<std::size_t>(bytes);
        const std::uint32_t computed =
            crc32(payload, static_cast<std::size_t>(bytes));
        if (computed != stored_crc)
            GIST_FATAL("checkpoint section '", sectionName(id),
                       "' CRC mismatch (file corrupt)");
        if (sections.count(id))
            GIST_FATAL("duplicate checkpoint section '", sectionName(id),
                       "'");
        if (sectionName(id)[0] == '?') {
            GIST_WARN(path, ": skipping unknown checkpoint section id ",
                      id);
            continue;
        }
        sections.emplace(
            id, Cursor{ payload, static_cast<std::size_t>(bytes), 0,
                        sectionName(id) });
    }
    if (cur.remaining() != 0)
        GIST_FATAL(path, " has ", cur.remaining(),
                   " trailing bytes after the last section");
    return sections;
}

/**
 * Shared v1/v2 load. @p state may be null (weights-only request).
 * @return true when full training state was present and restored.
 */
bool
loadFile(Graph &graph, TrainState *state, const std::string &path)
{
    GIST_TRACE_SCOPE("checkpoint", "restore");
    const Bytes bytes = readFile(path);
    Cursor cur{ bytes.data(), bytes.size(), 0, "file header" };
    if (cur.remaining() < sizeof(kMagic) + sizeof(std::uint32_t) ||
        std::memcmp(cur.take(sizeof(kMagic)), kMagic, sizeof(kMagic)) !=
            0)
        GIST_FATAL(path, " is not a Gist checkpoint");
    const auto version = cur.pod<std::uint32_t>();
    if (version == kVersionV1) {
        loadV1(cur, graph, path);
        return false;
    }
    if (version != kVersionV2)
        GIST_FATAL("unsupported checkpoint version ", version);

    auto sections = splitSections(cur, path);
    const auto find = [&](std::uint32_t id) -> Cursor * {
        auto it = sections.find(id);
        return it == sections.end() ? nullptr : &it->second;
    };

    Cursor *weights = find(kSecWeights);
    if (!weights)
        GIST_FATAL(path, " is missing checkpoint section 'weights'");
    parseTensorList(*weights, paramsOf(graph));
    endSection(*weights);

    if (Cursor *model_state = find(kSecState)) {
        parseTensorList(*model_state, stateOf(graph));
        endSection(*model_state);
    } else if (!stateOf(graph).empty()) {
        GIST_WARN(path, " has no model-state section; batchnorm running ",
                  "statistics keep their current values");
    }

    const std::uint32_t train_ids[] = { kSecVelocity, kSecRng,
                                        kSecDataset, kSecCounters,
                                        kSecLr };
    std::size_t present = 0;
    for (const std::uint32_t id : train_ids)
        present += find(id) != nullptr;
    if (present == 0)
        return false; // weights-only v2 file
    for (const std::uint32_t id : train_ids)
        if (!find(id))
            GIST_FATAL(path, " has incomplete training state: missing ",
                       "section '", sectionName(id), "'");
    if (!state)
        return true; // caller asked for weights only; state validated

    parseVelocity(*find(kSecVelocity), state->velocity, paramsOf(graph));
    endSection(*find(kSecVelocity));
    parseRng(*find(kSecRng), rngsOf(graph));
    endSection(*find(kSecRng));

    Cursor *dataset = find(kSecDataset);
    state->dataset_seed = dataset->pod<std::uint64_t>();
    state->epoch_offset = dataset->pod<std::int64_t>();
    endSection(*dataset);

    Cursor *counters = find(kSecCounters);
    state->epoch = counters->pod<std::int64_t>();
    state->step = counters->pod<std::int64_t>();
    endSection(*counters);

    Cursor *lr = find(kSecLr);
    state->lr = std::bit_cast<float>(lr->pod<std::uint32_t>());
    endSection(*lr);
    return true;
}

} // namespace

void
setCheckpointFault(CheckpointFault fault)
{
    g_fault = fault;
}

void
saveWeights(Graph &graph, const std::string &path)
{
    GIST_TRACE_SCOPE("checkpoint", "save");
    std::vector<SectionOut> sections;
    sections.push_back({ kSecWeights, tensorListPayload(paramsOf(graph)) });
    sections.push_back({ kSecState, tensorListPayload(stateOf(graph)) });
    publishFile(path, assembleFile(sections));
}

void
loadWeights(Graph &graph, const std::string &path)
{
    loadFile(graph, nullptr, path);
}

void
saveCheckpoint(Graph &graph, const TrainState &state,
               const std::string &path)
{
    GIST_TRACE_SCOPE("checkpoint", "save");
    std::vector<SectionOut> sections;
    sections.push_back({ kSecWeights, tensorListPayload(paramsOf(graph)) });
    sections.push_back({ kSecState, tensorListPayload(stateOf(graph)) });
    sections.push_back({ kSecRng, rngPayload(rngsOf(graph)) });
    sections.push_back({ kSecVelocity, velocityPayload(state.velocity) });
    Bytes dataset;
    putPod(dataset, state.dataset_seed);
    putPod(dataset, state.epoch_offset);
    sections.push_back({ kSecDataset, std::move(dataset) });
    Bytes counters;
    putPod(counters, state.epoch);
    putPod(counters, state.step);
    sections.push_back({ kSecCounters, std::move(counters) });
    Bytes lr;
    putPod(lr, std::bit_cast<std::uint32_t>(state.lr));
    sections.push_back({ kSecLr, std::move(lr) });
    publishFile(path, assembleFile(sections));
}

bool
loadCheckpoint(Graph &graph, TrainState &state, const std::string &path)
{
    return loadFile(graph, &state, path);
}

} // namespace gist
