/**
 * @file
 * Weight checkpointing: save/restore all trainable parameters of a graph
 * to a small self-describing binary file, so training runs (e.g. the
 * accuracy studies) can be resumed or inspected offline.
 *
 * Format: magic "GISTCKPT", u32 version, u64 tensor count, then per
 * tensor: u64 element count followed by raw little-endian FP32 data.
 * Tensors are ordered exactly as Graph::nodes() x Layer::params().
 */

#pragma once

#include <string>

#include "graph/graph.hpp"

namespace gist {

/** Write every parameter tensor of @p graph to @p path. */
void saveWeights(Graph &graph, const std::string &path);

/**
 * Load parameters saved by saveWeights into @p graph. The graph must
 * have the same parameter structure (fatal error otherwise) and its
 * parameters must already be allocated (initParams).
 */
void loadWeights(Graph &graph, const std::string &path);

} // namespace gist
