/**
 * @file
 * Crash-safe training checkpoints.
 *
 * Format v2 is a sectioned binary file: magic "GISTCKPT", u32 version,
 * u32 section count, then per section a 16-byte header (u32 fourcc id,
 * u64 payload bytes, u32 CRC-32 of the payload) followed by the payload.
 * Sections:
 *
 *   "WGTS" trainable parameters   u64 tensor count, then per tensor
 *                                 u64 numel + raw little-endian FP32
 *   "STAT" model state tensors    same layout (batchnorm running stats)
 *   "RNGS" layer RNG streams      u32 count, then per stream u64 state,
 *                                 u32 spare bits, u8 have-spare
 *   "VELO" optimizer velocity     same layout as WGTS
 *   "DCUR" dataset cursor         u64 dataset seed, i64 examples already
 *                                 consumed in the current epoch
 *   "CTRS" progress counters      i64 epoch, i64 global step
 *   "LRSC" LR schedule position   u32 raw FP32 bits of the current LR
 *
 * Tensor-list sections are ordered exactly as Graph::nodes() x the
 * layer's accessor. Writers publish atomically: the file is written to
 * "<path>.tmp", flushed and fsync'd, then rename(2)d over @p path, so a
 * crash at any point leaves the previous checkpoint intact. Readers
 * validate structure and CRCs section by section and reject trailing
 * bytes; every error names the offending section. Version-1 files
 * (weights only, no sections) remain loadable.
 */

#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace gist {

/** Training-loop state carried by a v2 checkpoint beyond the model. */
struct TrainState
{
    std::int64_t epoch = 0;        ///< epoch the next step belongs to
    std::int64_t step = 0;         ///< global minibatch count so far
    std::int64_t epoch_offset = 0; ///< examples consumed in this epoch
    std::uint64_t dataset_seed = 0; ///< sanity check against the dataset
    float lr = 0.0f;               ///< LR in effect (decay applied)
    std::vector<std::vector<float>> velocity; ///< per-param momentum
};

/**
 * Write parameters + model state (batchnorm running stats) of @p graph
 * to @p path, atomically. No training-loop sections: use saveCheckpoint
 * for a resumable snapshot.
 */
void saveWeights(Graph &graph, const std::string &path);

/**
 * Load parameters (and, for v2 files, model state) saved by
 * saveWeights/saveCheckpoint into @p graph. The graph must have the
 * same parameter structure (fatal error otherwise). Accepts v1 files.
 */
void loadWeights(Graph &graph, const std::string &path);

/**
 * Write a full resumable snapshot: everything saveWeights covers plus
 * the layer RNG streams and @p state. Atomic: the previous checkpoint
 * at @p path survives any crash or write failure.
 */
void saveCheckpoint(Graph &graph, const TrainState &state,
                    const std::string &path);

/**
 * Restore a checkpoint into @p graph (+ @p state when present).
 * @return true when the file carries full training state, false for a
 * weights-only file (v1, or v2 written by saveWeights) — the caller
 * should then start optimizer state fresh. A v2 file with only part of
 * the training-state sections is rejected as corrupt.
 */
bool loadCheckpoint(Graph &graph, TrainState &state,
                    const std::string &path);

/**
 * Fault injection for the crash-safety tests. ShortWrite makes the next
 * save observe a partial fwrite (as if the disk filled); the save must
 * fail without touching the published checkpoint. CrashBeforeRename
 * makes the next save stop after the temp file is durable but before
 * the rename — the on-disk state a SIGKILL at that instant leaves.
 * One-shot: the fault resets to None after it fires.
 */
enum class CheckpointFault { None, ShortWrite, CrashBeforeRename };
void setCheckpointFault(CheckpointFault fault);

} // namespace gist
