#include "train/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace gist {

namespace {

/** Clamp to [0, 1]. */
float
clamp01(float x)
{
    return std::min(1.0f, std::max(0.0f, x));
}

} // namespace

SyntheticDataset::SyntheticDataset(const Spec &spec)
    : spec_(spec),
      example_elems(spec.channels * spec.image * spec.image)
{
    GIST_ASSERT(spec_.classes >= 2 && spec_.image >= 4, "bad dataset spec");
    Rng rng(spec_.seed);

    // Smooth per-class prototypes: a few random low-frequency sinusoids
    // per channel so classes differ in orientation/phase structure.
    prototypes.assign(
        static_cast<size_t>(spec_.classes * example_elems), 0.0f);
    for (std::int64_t k = 0; k < spec_.classes; ++k) {
        Rng class_rng = rng.fork(static_cast<std::uint64_t>(k) + 1);
        for (std::int64_t c = 0; c < spec_.channels; ++c) {
            const float fx = class_rng.uniform(0.5f, 2.5f);
            const float fy = class_rng.uniform(0.5f, 2.5f);
            const float phase = class_rng.uniform(0.0f, 6.28f);
            const float amp = class_rng.uniform(0.3f, 0.5f);
            for (std::int64_t y = 0; y < spec_.image; ++y) {
                for (std::int64_t x = 0; x < spec_.image; ++x) {
                    const float u =
                        static_cast<float>(x) /
                        static_cast<float>(spec_.image) * 6.28f;
                    const float v =
                        static_cast<float>(y) /
                        static_cast<float>(spec_.image) * 6.28f;
                    const size_t idx = static_cast<size_t>(
                        ((k * spec_.channels + c) * spec_.image + y) *
                            spec_.image + x);
                    prototypes[idx] =
                        0.5f +
                        amp * std::sin(fx * u + fy * v + phase);
                }
            }
        }
    }

    auto generate = [&](std::int64_t count, std::vector<float> &images,
                        std::vector<std::int32_t> &labels,
                        std::uint64_t stream) {
        Rng split_rng = rng.fork(stream);
        images.assign(static_cast<size_t>(count * example_elems), 0.0f);
        labels.assign(static_cast<size_t>(count), 0);
        for (std::int64_t i = 0; i < count; ++i) {
            const auto label = static_cast<std::int32_t>(
                split_rng.uniformInt(
                    static_cast<std::uint64_t>(spec_.classes)));
            labels[static_cast<size_t>(i)] = label;
            makeExample(split_rng, label,
                        images.data() + i * example_elems);
        }
    };
    generate(spec_.num_train, train_images, train_labels, 1001);
    generate(spec_.num_eval, eval_images, eval_labels, 2002);
}

void
SyntheticDataset::makeExample(Rng &rng, std::int32_t label,
                              float *out) const
{
    // Small circular shifts: enough to reward convolutional (shift-
    // tolerant) features, small enough that classes stay coherent.
    const std::uint64_t max_shift =
        static_cast<std::uint64_t>(spec_.image / 4 + 1);
    const std::int64_t shift_x =
        static_cast<std::int64_t>(rng.uniformInt(max_shift));
    const std::int64_t shift_y =
        static_cast<std::int64_t>(rng.uniformInt(max_shift));
    const float *proto = prototypes.data() + label * example_elems;
    for (std::int64_t c = 0; c < spec_.channels; ++c) {
        for (std::int64_t y = 0; y < spec_.image; ++y) {
            for (std::int64_t x = 0; x < spec_.image; ++x) {
                const std::int64_t sy = (y + shift_y) % spec_.image;
                const std::int64_t sx = (x + shift_x) % spec_.image;
                const float base =
                    proto[(c * spec_.image + sy) * spec_.image + sx];
                out[(c * spec_.image + y) * spec_.image + x] = clamp01(
                    base + rng.normal(0.0f, spec_.noise));
            }
        }
    }
}

void
SyntheticDataset::fill(const std::vector<float> &images,
                       const std::vector<std::int32_t> &labels_in,
                       std::int64_t count, std::int64_t start,
                       Tensor &batch,
                       std::vector<std::int32_t> &labels_out) const
{
    const auto &shape = batch.shape();
    GIST_ASSERT(shape.rank() == 4 && shape.c() == spec_.channels &&
                    shape.h() == spec_.image && shape.w() == spec_.image,
                "batch tensor shape mismatch: ", shape.toString());
    const std::int64_t batch_size = shape.n();
    labels_out.resize(static_cast<size_t>(batch_size));
    for (std::int64_t i = 0; i < batch_size; ++i) {
        const std::int64_t src = (start + i) % count;
        std::copy_n(images.data() + src * example_elems, example_elems,
                    batch.data() + i * example_elems);
        labels_out[static_cast<size_t>(i)] =
            labels_in[static_cast<size_t>(src)];
    }
}

void
SyntheticDataset::trainBatch(std::int64_t start, Tensor &batch,
                             std::vector<std::int32_t> &labels) const
{
    fill(train_images, train_labels, spec_.num_train, start, batch,
         labels);
}

void
SyntheticDataset::evalBatch(std::int64_t start, Tensor &batch,
                            std::vector<std::int32_t> &labels) const
{
    fill(eval_images, eval_labels, spec_.num_eval, start, batch, labels);
}

} // namespace gist
