#include "train/sparsity_probe.hpp"

#include "core/gist.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

namespace gist {

MeasuredSparsity
measureSparsity(Graph &graph, int epochs, std::uint64_t seed)
{
    Rng rng(seed);
    graph.initParams(rng);
    Executor exec(graph);
    applyToExecutor(buildSchedule(graph, GistConfig::baseline()), exec);
    exec.setCollectSparsity(true);
    Trainer trainer(exec);

    const auto &in_shape = graph.node(0).out_shape;
    SyntheticDataset::Spec spec;
    spec.num_train = 256;
    spec.num_eval = 32;
    spec.channels = in_shape.c();
    spec.image = in_shape.h();
    spec.seed = seed;
    SyntheticDataset data(spec);

    TrainConfig tc;
    tc.epochs = epochs;
    tc.batch_size = in_shape.n();
    tc.learning_rate = 0.04f;
    tc.lr_decay = 0.6f;
    tc.lr_decay_epochs = 3;
    tc.clip_grad_norm = 5.0f;
    trainer.run(data, tc);

    MeasuredSparsity out;
    for (const auto &node : graph.nodes()) {
        const double s = exec.lastSparsity(node.id);
        if (s < 0.0)
            continue;
        if (node.kind() == LayerKind::Relu) {
            out.relu += s;
            ++out.relu_layers;
        } else if (node.kind() == LayerKind::MaxPool ||
                   node.kind() == LayerKind::AvgPool) {
            out.pool += s;
            ++out.pool_layers;
        }
    }
    if (out.relu_layers)
        out.relu /= out.relu_layers;
    if (out.pool_layers)
        out.pool /= out.pool_layers;
    return out;
}

} // namespace gist
