/**
 * @file
 * Measure real activation sparsity by briefly training a network and
 * averaging the per-layer zero fractions — the measured counterpart to
 * SparsityModel's paper-motivated defaults. The figure harness trains
 * each full-scale network's tiny twin and feeds the result into the
 * planner's SSDC size model (the paper measures sparsity on the real
 * ImageNet runs; Fig 14 shows the trajectory).
 */

#pragma once

#include "graph/graph.hpp"

namespace gist {

/** Average measured sparsities by layer kind. */
struct MeasuredSparsity
{
    double relu = 0.0;
    double pool = 0.0;
    int relu_layers = 0;
    int pool_layers = 0;
};

/**
 * Train @p graph (which must be a trainable, initialized-or-not tiny
 * model) for @p epochs on the synthetic dataset and return the final
 * per-kind average output sparsity. Parameters are (re)initialized from
 * @p seed; the graph's layer modes are reset to baseline.
 */
MeasuredSparsity measureSparsity(Graph &graph, int epochs = 4,
                                 std::uint64_t seed = 5);

} // namespace gist
