#include "train/trainer.hpp"

#include <chrono>
#include <cmath>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "train/checkpoint.hpp"

#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

namespace {

std::vector<Tensor *>
allParams(Graph &graph)
{
    std::vector<Tensor *> out;
    for (auto &node : graph.nodes())
        if (node.layer)
            for (Tensor *p : node.layer->params())
                out.push_back(p);
    return out;
}

std::vector<Tensor *>
allParamGrads(Graph &graph)
{
    std::vector<Tensor *> out;
    for (auto &node : graph.nodes())
        if (node.layer)
            for (Tensor *g : node.layer->paramGrads())
                out.push_back(g);
    return out;
}

} // namespace

std::vector<std::int32_t>
argmaxRows(const Tensor &logits)
{
    const std::int64_t rows = logits.shape().dim(0);
    const std::int64_t cols = logits.numel() / rows;
    std::vector<std::int32_t> out(static_cast<size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) {
        const float *row = logits.data() + r * cols;
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < cols; ++c)
            if (row[c] > row[best])
                best = c;
        out[static_cast<size_t>(r)] = static_cast<std::int32_t>(best);
    }
    return out;
}

Trainer::Trainer(Executor &executor)
    : exec(executor)
{
    for (Tensor *p : allParams(exec.graph())) {
        GIST_ASSERT(!p->empty(),
                    "initialize parameters before constructing a Trainer");
        velocity.emplace_back(static_cast<size_t>(p->numel()), 0.0f);
    }
}

void
Trainer::clipGradients(float max_norm)
{
    double norm_sq = 0.0;
    auto grads = allParamGrads(exec.graph());
    for (Tensor *g : grads)
        for (std::int64_t i = 0; i < g->numel(); ++i)
            norm_sq += double(g->at(i)) * double(g->at(i));
    const double norm = std::sqrt(norm_sq);
    if (norm <= max_norm || norm == 0.0)
        return;
    const float factor = static_cast<float>(max_norm / norm);
    for (Tensor *g : grads)
        scale(g->span(), factor);
}

void
Trainer::sgdStep(float lr, float momentum, float weight_decay)
{
    auto params = allParams(exec.graph());
    auto grads = allParamGrads(exec.graph());
    GIST_ASSERT(params.size() == grads.size() &&
                    params.size() == velocity.size(),
                "parameter bookkeeping mismatch");
    for (size_t i = 0; i < params.size(); ++i) {
        float *w = params[i]->data();
        const float *g = grads[i]->data();
        float *v = velocity[i].data();
        const auto n = static_cast<size_t>(params[i]->numel());
        for (size_t j = 0; j < n; ++j) {
            const float grad = g[j] + weight_decay * w[j];
            v[j] = momentum * v[j] - lr * grad;
            w[j] += v[j];
        }
    }
}

double
Trainer::evaluate(const SyntheticDataset &data, std::int64_t batch_size)
{
    GIST_TRACE_SCOPE("train", "evaluate");
    Graph &graph = exec.graph();
    const NodeId loss_node = static_cast<NodeId>(graph.numNodes() - 1);
    const NodeId logits_node = graph.node(loss_node).inputs[0];

    Tensor batch(graph.node(0).out_shape);
    GIST_ASSERT(batch.shape().n() == batch_size,
                "graph batch dim != eval batch size");
    std::vector<std::int32_t> labels;
    std::int64_t correct = 0;
    std::int64_t total = 0;
    for (std::int64_t start = 0; start + batch_size <= data.numEval();
         start += batch_size) {
        data.evalBatch(start, batch, labels);
        exec.forwardOnly(batch);
        const auto preds = argmaxRows(exec.value(logits_node));
        for (size_t i = 0; i < labels.size(); ++i)
            correct += (preds[i] == labels[i]);
        total += batch_size;
    }
    return total ? static_cast<double>(correct) /
                       static_cast<double>(total)
                 : 0.0;
}

void
Trainer::saveCheckpointNow(const TrainConfig &config,
                           const SyntheticDataset &data, std::int64_t epoch,
                           std::int64_t step, std::int64_t epoch_offset,
                           float lr)
{
    TrainState state;
    state.epoch = epoch;
    state.step = step;
    state.epoch_offset = epoch_offset;
    state.dataset_seed = data.spec().seed;
    state.lr = lr;
    state.velocity = velocity;
    saveCheckpoint(exec.graph(), state, config.checkpoint_path);
}

bool
Trainer::restoreCheckpoint(const TrainConfig &config,
                           const SyntheticDataset &data, float &lr,
                           int &first_epoch, std::int64_t &steps,
                           std::int64_t &resume_offset)
{
    TrainState state;
    if (!loadCheckpoint(exec.graph(), state, config.checkpoint_path)) {
        GIST_WARN("checkpoint ", config.checkpoint_path,
                  " is weights-only; resuming with fresh optimizer state");
        return true;
    }
    GIST_ASSERT(state.velocity.size() == velocity.size(),
                "parameter bookkeeping mismatch on resume");
    for (size_t i = 0; i < velocity.size(); ++i)
        GIST_ASSERT(state.velocity[i].size() == velocity[i].size(),
                    "velocity size mismatch on resume");
    velocity = std::move(state.velocity);
    if (state.dataset_seed != data.spec().seed)
        GIST_WARN("checkpoint ", config.checkpoint_path,
                  " was written against dataset seed ", state.dataset_seed,
                  ", resuming on seed ", data.spec().seed);
    lr = state.lr;
    first_epoch = static_cast<int>(state.epoch);
    steps = state.step;
    resume_offset = state.epoch_offset;
    GIST_INFORM("resumed from ", config.checkpoint_path, " at epoch ",
                state.epoch, ", step ", state.step);
    return true;
}

std::vector<EpochRecord>
Trainer::run(const SyntheticDataset &data, const TrainConfig &config)
{
    TrainLoop loop(*this, data, config);
    while (loop.step()) {
    }
    return loop.finish();
}

TrainLoop::TrainLoop(Trainer &trainer, const SyntheticDataset &data,
                     const TrainConfig &config)
    : trainer_(trainer),
      data_(data),
      cfg_(config),
      batch_(trainer.exec.graph().node(0).out_shape),
      lr_(config.learning_rate)
{
    if (cfg_.num_threads > 0)
        setNumThreads(cfg_.num_threads);
    GIST_ASSERT(batch_.shape().n() == cfg_.batch_size,
                "graph batch dim != train batch size");
    has_ckpt_ = !cfg_.checkpoint_path.empty();
    if (has_ckpt_ && cfg_.resume &&
        std::ifstream(cfg_.checkpoint_path).good()) {
        resumed_ = trainer_.restoreCheckpoint(cfg_, data_, lr_,
                                              first_epoch_, steps_,
                                              resume_offset_);
    }
    if (!cfg_.metrics_path.empty()) {
        if (cfg_.sink)
            cfg_.sink->open(cfg_.metrics_path, /*append=*/resumed_);
        else
            obs::metricsOpen(cfg_.metrics_path, /*append=*/resumed_);
    }
    epoch_ = first_epoch_;
    cur_epoch_ = first_epoch_;
    cur_offset_ = resume_offset_;
    if ((cfg_.max_steps > 0 && steps_ >= cfg_.max_steps) ||
        epoch_ >= cfg_.epochs) {
        done_ = true;
        return;
    }
    enterEpoch();
}

bool
TrainLoop::metricsOn() const
{
    return cfg_.sink ? cfg_.sink->enabled() : obs::metricsEnabled();
}

void
TrainLoop::writeMetrics(const obs::JsonLine &rec)
{
    if (cfg_.sink)
        cfg_.sink->write(rec);
    else
        obs::metricsWrite(rec);
}

void
TrainLoop::enterEpoch()
{
    // The restored LR already includes the decay for the epoch the
    // checkpoint was taken in; re-applying it would diverge from the
    // uninterrupted run.
    const bool resumed_epoch = resumed_ && epoch_ == first_epoch_;
    if (!resumed_epoch && epoch_ > 0 && cfg_.lr_decay != 1.0f &&
        cfg_.lr_decay_epochs > 0 && epoch_ % cfg_.lr_decay_epochs == 0)
        lr_ *= cfg_.lr_decay;
    loss_sum_ = 0.0;
    batches_ = 0;
    start_ = resumed_epoch ? resume_offset_ : 0;
}

void
TrainLoop::closeEpoch()
{
    if (batches_ == 0)
        return; // resumed exactly at this epoch's end
    EpochRecord rec;
    rec.epoch = epoch_;
    rec.mean_loss =
        static_cast<float>(loss_sum_ / static_cast<double>(batches_));
    rec.eval_accuracy = trainer_.evaluate(data_, cfg_.batch_size);
    records_.push_back(rec);
    if (metricsOn()) {
        obs::JsonLine line;
        line.field("type", "epoch");
        if (!cfg_.job_id.empty())
            line.field("job", cfg_.job_id);
        line.field("epoch", epoch_)
            .field("mean_loss", static_cast<double>(rec.mean_loss))
            .field("eval_accuracy", rec.eval_accuracy)
            .field("steps", static_cast<std::int64_t>(steps_));
        writeMetrics(line);
    }
}

void
TrainLoop::executeStep()
{
    data_.trainBatch(start_, batch_, labels_);
    const auto t0 = std::chrono::steady_clock::now();
    float step_loss;
    {
        GIST_TRACE_SCOPE_F("train", "step %lld",
                           static_cast<long long>(steps_ + 1));
        step_loss = trainer_.exec.runMinibatch(batch_, labels_);
        if (cfg_.clip_grad_norm > 0.0f)
            trainer_.clipGradients(cfg_.clip_grad_norm);
        trainer_.sgdStep(lr_, cfg_.momentum, cfg_.weight_decay);
    }
    const double step_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    loss_sum_ += step_loss;
    total_seconds_ += step_seconds;
    total_codec_ += trainer_.exec.stats().encode_seconds +
                    trainer_.exec.stats().decode_seconds;
    ++batches_;
    ++steps_;
    ++run_steps_;
    cur_epoch_ = epoch_;
    cur_offset_ = start_ + cfg_.batch_size;
    start_ += cfg_.batch_size;
    if (has_ckpt_ && cfg_.checkpoint_every_steps > 0 &&
        steps_ % cfg_.checkpoint_every_steps == 0)
        trainer_.saveCheckpointNow(cfg_, data_, cur_epoch_, steps_,
                                   cur_offset_, lr_);
    if (metricsOn()) {
        const ExecStats &stats = trainer_.exec.stats();
        obs::JsonLine rec;
        rec.field("type", "step");
        if (!cfg_.job_id.empty())
            rec.field("job", cfg_.job_id);
        rec.field("step", static_cast<std::int64_t>(steps_))
            .field("epoch", epoch_)
            .field("loss", static_cast<double>(step_loss))
            .field("examples_per_sec",
                   step_seconds > 0.0
                       ? static_cast<double>(cfg_.batch_size) /
                             step_seconds
                       : 0.0)
            .field("step_seconds", step_seconds)
            .field("encode_seconds", stats.encode_seconds)
            .field("decode_seconds", stats.decode_seconds)
            .field("encoded_bytes", stats.encoded_bytes)
            .field("dense_bytes_replaced", stats.dense_bytes_replaced)
            .field("peak_pool_bytes", stats.peak_pool_bytes)
            .field("codec_stall_seconds",
                   static_cast<double>(stats.codec_stall_ns) / 1e9)
            .field("codec_stalls",
                   static_cast<std::int64_t>(stats.codec_stalls))
            .field("codec_queue_wait_seconds",
                   static_cast<double>(stats.codec_queue_wait_ns) / 1e9)
            .field("codec_queue_peak_depth",
                   static_cast<std::int64_t>(
                       stats.codec_queue_peak_depth))
            .field("overlap_efficiency", stats.overlap_efficiency)
            .field("recompute_seconds", stats.recompute_seconds)
            .field("recompute_segments",
                   static_cast<std::int64_t>(stats.recompute_segments))
            .field("recompute_dropped_bytes",
                   stats.recompute_dropped_bytes)
            .field("tier_evictions",
                   static_cast<std::int64_t>(stats.tier_evictions))
            .field("tier_fetches",
                   static_cast<std::int64_t>(stats.tier_fetches))
            .field("tier_bytes_out", stats.tier_bytes_out)
            .field("tier_bytes_in", stats.tier_bytes_in)
            .field("tier_write_seconds",
                   static_cast<double>(stats.tier_write_ns) / 1e9)
            .field("tier_read_seconds",
                   static_cast<double>(stats.tier_read_ns) / 1e9)
            .field("lr", static_cast<double>(lr_));
        writeMetrics(rec);
    }
    if (cfg_.after_step)
        cfg_.after_step(steps_, trainer_.exec);
    if (cfg_.max_steps > 0 && steps_ >= cfg_.max_steps)
        done_ = true; // interrupted mid-epoch: no (partial) epoch record
}

bool
TrainLoop::step()
{
    if (done_)
        return false;
    while (start_ + cfg_.batch_size > data_.numTrain()) {
        closeEpoch();
        ++epoch_;
        if (epoch_ >= cfg_.epochs) {
            done_ = true;
            return false;
        }
        enterEpoch();
    }
    executeStep();
    return true;
}

void
TrainLoop::checkpointNow()
{
    GIST_ASSERT(has_ckpt_,
                "TrainLoop::checkpointNow() needs a checkpoint_path");
    trainer_.saveCheckpointNow(cfg_, data_, cur_epoch_, steps_,
                               cur_offset_, lr_);
}

std::vector<EpochRecord>
TrainLoop::finish()
{
    if (!finished_) {
        finished_ = true;
        if (has_ckpt_)
            trainer_.saveCheckpointNow(cfg_, data_, cur_epoch_, steps_,
                                       cur_offset_, lr_);
        if (run_steps_ > 0) {
            trainer_.seconds_per_minibatch =
                total_seconds_ / static_cast<double>(run_steps_);
            trainer_.codec_seconds =
                total_codec_ / static_cast<double>(run_steps_);
        }
    }
    return records_;
}

} // namespace gist
