#include "train/trainer.hpp"

#include <chrono>
#include <cmath>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "train/checkpoint.hpp"

#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

namespace {

std::vector<Tensor *>
allParams(Graph &graph)
{
    std::vector<Tensor *> out;
    for (auto &node : graph.nodes())
        if (node.layer)
            for (Tensor *p : node.layer->params())
                out.push_back(p);
    return out;
}

std::vector<Tensor *>
allParamGrads(Graph &graph)
{
    std::vector<Tensor *> out;
    for (auto &node : graph.nodes())
        if (node.layer)
            for (Tensor *g : node.layer->paramGrads())
                out.push_back(g);
    return out;
}

} // namespace

std::vector<std::int32_t>
argmaxRows(const Tensor &logits)
{
    const std::int64_t rows = logits.shape().dim(0);
    const std::int64_t cols = logits.numel() / rows;
    std::vector<std::int32_t> out(static_cast<size_t>(rows));
    for (std::int64_t r = 0; r < rows; ++r) {
        const float *row = logits.data() + r * cols;
        std::int64_t best = 0;
        for (std::int64_t c = 1; c < cols; ++c)
            if (row[c] > row[best])
                best = c;
        out[static_cast<size_t>(r)] = static_cast<std::int32_t>(best);
    }
    return out;
}

Trainer::Trainer(Executor &executor)
    : exec(executor)
{
    for (Tensor *p : allParams(exec.graph())) {
        GIST_ASSERT(!p->empty(),
                    "initialize parameters before constructing a Trainer");
        velocity.emplace_back(static_cast<size_t>(p->numel()), 0.0f);
    }
}

void
Trainer::clipGradients(float max_norm)
{
    double norm_sq = 0.0;
    auto grads = allParamGrads(exec.graph());
    for (Tensor *g : grads)
        for (std::int64_t i = 0; i < g->numel(); ++i)
            norm_sq += double(g->at(i)) * double(g->at(i));
    const double norm = std::sqrt(norm_sq);
    if (norm <= max_norm || norm == 0.0)
        return;
    const float factor = static_cast<float>(max_norm / norm);
    for (Tensor *g : grads)
        scale(g->span(), factor);
}

void
Trainer::sgdStep(float lr, float momentum, float weight_decay)
{
    auto params = allParams(exec.graph());
    auto grads = allParamGrads(exec.graph());
    GIST_ASSERT(params.size() == grads.size() &&
                    params.size() == velocity.size(),
                "parameter bookkeeping mismatch");
    for (size_t i = 0; i < params.size(); ++i) {
        float *w = params[i]->data();
        const float *g = grads[i]->data();
        float *v = velocity[i].data();
        const auto n = static_cast<size_t>(params[i]->numel());
        for (size_t j = 0; j < n; ++j) {
            const float grad = g[j] + weight_decay * w[j];
            v[j] = momentum * v[j] - lr * grad;
            w[j] += v[j];
        }
    }
}

double
Trainer::evaluate(const SyntheticDataset &data, std::int64_t batch_size)
{
    GIST_TRACE_SCOPE("train", "evaluate");
    Graph &graph = exec.graph();
    const NodeId loss_node = static_cast<NodeId>(graph.numNodes() - 1);
    const NodeId logits_node = graph.node(loss_node).inputs[0];

    Tensor batch(graph.node(0).out_shape);
    GIST_ASSERT(batch.shape().n() == batch_size,
                "graph batch dim != eval batch size");
    std::vector<std::int32_t> labels;
    std::int64_t correct = 0;
    std::int64_t total = 0;
    for (std::int64_t start = 0; start + batch_size <= data.numEval();
         start += batch_size) {
        data.evalBatch(start, batch, labels);
        exec.forwardOnly(batch);
        const auto preds = argmaxRows(exec.value(logits_node));
        for (size_t i = 0; i < labels.size(); ++i)
            correct += (preds[i] == labels[i]);
        total += batch_size;
    }
    return total ? static_cast<double>(correct) /
                       static_cast<double>(total)
                 : 0.0;
}

void
Trainer::saveCheckpointNow(const TrainConfig &config,
                           const SyntheticDataset &data, std::int64_t epoch,
                           std::int64_t step, std::int64_t epoch_offset,
                           float lr)
{
    TrainState state;
    state.epoch = epoch;
    state.step = step;
    state.epoch_offset = epoch_offset;
    state.dataset_seed = data.spec().seed;
    state.lr = lr;
    state.velocity = velocity;
    saveCheckpoint(exec.graph(), state, config.checkpoint_path);
}

bool
Trainer::restoreCheckpoint(const TrainConfig &config,
                           const SyntheticDataset &data, float &lr,
                           int &first_epoch, std::int64_t &steps,
                           std::int64_t &resume_offset)
{
    TrainState state;
    if (!loadCheckpoint(exec.graph(), state, config.checkpoint_path)) {
        GIST_WARN("checkpoint ", config.checkpoint_path,
                  " is weights-only; resuming with fresh optimizer state");
        return true;
    }
    GIST_ASSERT(state.velocity.size() == velocity.size(),
                "parameter bookkeeping mismatch on resume");
    for (size_t i = 0; i < velocity.size(); ++i)
        GIST_ASSERT(state.velocity[i].size() == velocity[i].size(),
                    "velocity size mismatch on resume");
    velocity = std::move(state.velocity);
    if (state.dataset_seed != data.spec().seed)
        GIST_WARN("checkpoint ", config.checkpoint_path,
                  " was written against dataset seed ", state.dataset_seed,
                  ", resuming on seed ", data.spec().seed);
    lr = state.lr;
    first_epoch = static_cast<int>(state.epoch);
    steps = state.step;
    resume_offset = state.epoch_offset;
    GIST_INFORM("resumed from ", config.checkpoint_path, " at epoch ",
                state.epoch, ", step ", state.step);
    return true;
}

std::vector<EpochRecord>
Trainer::run(const SyntheticDataset &data, const TrainConfig &config)
{
    if (config.num_threads > 0)
        setNumThreads(config.num_threads);
    Graph &graph = exec.graph();
    Tensor batch(graph.node(0).out_shape);
    GIST_ASSERT(batch.shape().n() == config.batch_size,
                "graph batch dim != train batch size");
    std::vector<std::int32_t> labels;

    std::vector<EpochRecord> records;
    std::int64_t steps = 0;     ///< global step (continues on resume)
    std::int64_t run_steps = 0; ///< steps executed by this call
    double total_seconds = 0.0;
    double total_codec = 0.0;

    float lr = config.learning_rate;
    int first_epoch = 0;
    std::int64_t resume_offset = 0;
    bool resumed = false;
    const bool has_ckpt = !config.checkpoint_path.empty();
    if (has_ckpt && config.resume &&
        std::ifstream(config.checkpoint_path).good()) {
        resumed = restoreCheckpoint(config, data, lr, first_epoch, steps,
                                    resume_offset);
    }
    if (!config.metrics_path.empty())
        obs::metricsOpen(config.metrics_path, /*append=*/resumed);

    // Where the run currently stands, for the end-of-run snapshot.
    std::int64_t cur_epoch = first_epoch;
    std::int64_t cur_offset = resume_offset;
    bool stop = config.max_steps > 0 && steps >= config.max_steps;
    for (int epoch = first_epoch; epoch < config.epochs && !stop;
         ++epoch) {
        // The restored LR already includes the decay for the epoch the
        // checkpoint was taken in; re-applying it would diverge from
        // the uninterrupted run.
        const bool resumed_epoch = resumed && epoch == first_epoch;
        if (!resumed_epoch && epoch > 0 && config.lr_decay != 1.0f &&
            config.lr_decay_epochs > 0 &&
            epoch % config.lr_decay_epochs == 0) {
            lr *= config.lr_decay;
        }
        GIST_TRACE_SCOPE_F("train", "epoch %d", epoch);
        double loss_sum = 0.0;
        std::int64_t batches = 0;
        for (std::int64_t start = resumed_epoch ? resume_offset : 0;
             start + config.batch_size <= data.numTrain();
             start += config.batch_size) {
            data.trainBatch(start, batch, labels);
            const auto t0 = std::chrono::steady_clock::now();
            float step_loss;
            {
                GIST_TRACE_SCOPE_F("train", "step %lld",
                                   static_cast<long long>(steps + 1));
                step_loss = exec.runMinibatch(batch, labels);
                if (config.clip_grad_norm > 0.0f)
                    clipGradients(config.clip_grad_norm);
                sgdStep(lr, config.momentum, config.weight_decay);
            }
            const double step_seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            loss_sum += step_loss;
            total_seconds += step_seconds;
            total_codec += exec.stats().encode_seconds +
                           exec.stats().decode_seconds;
            ++batches;
            ++steps;
            ++run_steps;
            cur_epoch = epoch;
            cur_offset = start + config.batch_size;
            if (has_ckpt && config.checkpoint_every_steps > 0 &&
                steps % config.checkpoint_every_steps == 0)
                saveCheckpointNow(config, data, cur_epoch, steps,
                                  cur_offset, lr);
            if (obs::metricsEnabled()) {
                const ExecStats &stats = exec.stats();
                obs::JsonLine rec;
                rec.field("type", "step")
                    .field("step", static_cast<std::int64_t>(steps))
                    .field("epoch", epoch)
                    .field("loss", static_cast<double>(step_loss))
                    .field("examples_per_sec",
                           step_seconds > 0.0
                               ? static_cast<double>(config.batch_size) /
                                     step_seconds
                               : 0.0)
                    .field("step_seconds", step_seconds)
                    .field("encode_seconds", stats.encode_seconds)
                    .field("decode_seconds", stats.decode_seconds)
                    .field("encoded_bytes", stats.encoded_bytes)
                    .field("dense_bytes_replaced",
                           stats.dense_bytes_replaced)
                    .field("peak_pool_bytes", stats.peak_pool_bytes)
                    .field("codec_stall_seconds",
                           static_cast<double>(stats.codec_stall_ns) /
                               1e9)
                    .field("codec_stalls",
                           static_cast<std::int64_t>(stats.codec_stalls))
                    .field("codec_queue_wait_seconds",
                           static_cast<double>(
                               stats.codec_queue_wait_ns) /
                               1e9)
                    .field("codec_queue_peak_depth",
                           static_cast<std::int64_t>(
                               stats.codec_queue_peak_depth))
                    .field("overlap_efficiency",
                           stats.overlap_efficiency)
                    .field("recompute_seconds", stats.recompute_seconds)
                    .field("recompute_segments",
                           static_cast<std::int64_t>(
                               stats.recompute_segments))
                    .field("recompute_dropped_bytes",
                           stats.recompute_dropped_bytes)
                    .field("tier_evictions",
                           static_cast<std::int64_t>(
                               stats.tier_evictions))
                    .field("tier_fetches",
                           static_cast<std::int64_t>(stats.tier_fetches))
                    .field("tier_bytes_out", stats.tier_bytes_out)
                    .field("tier_bytes_in", stats.tier_bytes_in)
                    .field("tier_write_seconds",
                           static_cast<double>(stats.tier_write_ns) /
                               1e9)
                    .field("tier_read_seconds",
                           static_cast<double>(stats.tier_read_ns) / 1e9)
                    .field("lr", static_cast<double>(lr));
                obs::metricsWrite(rec);
            }
            if (config.after_step)
                config.after_step(steps, exec);
            if (config.max_steps > 0 && steps >= config.max_steps) {
                stop = true;
                break;
            }
        }
        if (stop)
            break; // interrupted mid-epoch: no (partial) epoch record
        if (batches == 0)
            continue; // resumed exactly at this epoch's end
        EpochRecord rec;
        rec.epoch = epoch;
        rec.mean_loss =
            batches > 0 ? static_cast<float>(
                              loss_sum / static_cast<double>(batches))
                        : 0.0f;
        rec.eval_accuracy = evaluate(data, config.batch_size);
        records.push_back(rec);
        if (obs::metricsEnabled()) {
            obs::JsonLine line;
            line.field("type", "epoch")
                .field("epoch", epoch)
                .field("mean_loss", static_cast<double>(rec.mean_loss))
                .field("eval_accuracy", rec.eval_accuracy)
                .field("steps", static_cast<std::int64_t>(steps));
            obs::metricsWrite(line);
        }
    }
    if (has_ckpt)
        saveCheckpointNow(config, data, cur_epoch, steps, cur_offset, lr);
    if (run_steps > 0) {
        seconds_per_minibatch =
            total_seconds / static_cast<double>(run_steps);
        codec_seconds = total_codec / static_cast<double>(run_steps);
    }
    return records;
}

} // namespace gist
