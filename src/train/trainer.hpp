/**
 * @file
 * Minibatch SGD trainer over an Executor, with hooks used by the
 * accuracy (Fig 12), sensitivity (Fig 14) and overhead (Fig 9) studies.
 */

#pragma once

#include <functional>
#include <vector>

#include "graph/executor.hpp"
#include "obs/metrics.hpp"
#include "train/dataset.hpp"

namespace gist {

/** Trainer hyperparameters. */
struct TrainConfig
{
    std::int64_t batch_size = 32;
    int epochs = 5;
    float learning_rate = 0.05f;
    float momentum = 0.9f;
    /** Multiply the LR by this factor every lr_decay_epochs epochs. */
    float lr_decay = 1.0f;
    int lr_decay_epochs = 1;
    /** Clip the global gradient norm to this value (0 = off). */
    float clip_grad_norm = 0.0f;
    /** L2 weight decay coefficient (0 = off). */
    float weight_decay = 0.0f;
    /**
     * Thread-pool size for the run (>= 1 forces it; 0 keeps the global
     * setting, auto-resolved from GIST_THREADS / hardware concurrency).
     */
    int num_threads = 0;
    /**
     * JSONL step-metrics file: one record per training step (loss,
     * examples/sec, encoded bytes, peak pool bytes, codec seconds) and
     * one per epoch (mean loss, eval accuracy). Empty keeps the current
     * sink, so a sink opened via GIST_METRICS (or GistConfig) is used
     * as-is. A resumed run (see @c resume) opens the sink in append
     * mode so the history from before the interruption is kept.
     */
    std::string metrics_path;
    /**
     * Checkpoint file. Non-empty makes run() write a full v2 snapshot
     * (weights, batchnorm state, RNG streams, momentum, cursor, LR)
     * every checkpoint_every_steps steps and once at the end of the
     * run. Writes are atomic: a crash mid-save keeps the previous file.
     */
    std::string checkpoint_path;
    /** Snapshot period in steps (0 = only the end-of-run snapshot). */
    std::int64_t checkpoint_every_steps = 0;
    /**
     * Restore checkpoint_path before training and continue from the
     * recorded epoch/step/cursor. Resume is bitwise deterministic:
     * interrupt at step k, resume, and the final weights equal the
     * uninterrupted run's. A missing file starts from scratch; a
     * weights-only (v1) file warm-starts with fresh optimizer state.
     */
    bool resume = false;
    /**
     * Stop after this many global minibatches (0 = no cap). With
     * checkpoint_path set, the final snapshot makes this a clean
     * interruption point that resume continues from.
     */
    std::int64_t max_steps = 0;
    /** Called after every minibatch (step index, executor). */
    std::function<void(std::int64_t, Executor &)> after_step;
    /**
     * Per-job metrics sink. nullptr (the default) routes step/epoch
     * records through the process-global sink; a multi-job service
     * passes each job's own sink so concurrent runs never interleave
     * lines in one file. When metrics_path is also set, the path is
     * opened on this sink instead of the global one.
     */
    obs::MetricsSink *sink = nullptr;
    /**
     * Job id stamped into every step/epoch metrics record as a "job"
     * field. Empty (the default) omits the field, keeping single-run
     * JSONL output unchanged.
     */
    std::string job_id;
};

/** One epoch's outcome. */
struct EpochRecord
{
    int epoch = 0;
    float mean_loss = 0.0f;
    double eval_accuracy = 0.0;
    /** 1 - eval_accuracy, the paper's Figure 12 y-axis. */
    double accuracyLoss() const { return 1.0 - eval_accuracy; }
};

/** SGD-with-momentum trainer. */
class Trainer
{
  public:
    /**
     * @param exec executor whose graph's params were initialized and
     *        whose schedule/stash plans are already configured.
     */
    explicit Trainer(Executor &exec);

    /** Train for config.epochs epochs, evaluating after each. */
    std::vector<EpochRecord> run(const SyntheticDataset &data,
                                 const TrainConfig &config);

    /** Top-1 accuracy on the evaluation split. */
    double evaluate(const SyntheticDataset &data, std::int64_t batch_size);

    /** Mean seconds per training minibatch over the last run(). */
    double secondsPerMinibatch() const { return seconds_per_minibatch; }
    /** Mean encode+decode seconds per minibatch over the last run(). */
    double codecSecondsPerMinibatch() const { return codec_seconds; }

  private:
    void sgdStep(float lr, float momentum, float weight_decay);
    /** Scale all weight gradients so their global L2 norm <= max_norm. */
    void clipGradients(float max_norm);
    /** Write a full v2 snapshot of the current training position. */
    void saveCheckpointNow(const TrainConfig &config,
                           const SyntheticDataset &data, std::int64_t epoch,
                           std::int64_t step, std::int64_t epoch_offset,
                           float lr);
    /**
     * Restore config.checkpoint_path. Returns true when anything was
     * loaded; full state rewinds @p lr / @p first_epoch / @p steps /
     * @p resume_offset to the recorded position.
     */
    bool restoreCheckpoint(const TrainConfig &config,
                           const SyntheticDataset &data, float &lr,
                           int &first_epoch, std::int64_t &steps,
                           std::int64_t &resume_offset);

    Executor &exec;
    std::vector<std::vector<float>> velocity; ///< per-param momentum
    double seconds_per_minibatch = 0.0;
    double codec_seconds = 0.0;

    friend class TrainLoop;
};

/**
 * The trainer's epoch/minibatch loop unrolled into a stepwise state
 * machine, so a scheduler can interleave many training runs one
 * minibatch at a time. Trainer::run() is exactly
 *
 *     TrainLoop loop(trainer, data, config);
 *     while (loop.step()) {}
 *     return loop.finish();
 *
 * so a run driven by step() is bitwise identical to run() — same LR
 * decay points, same checkpoint cadence, same metrics records, same
 * stop semantics. The constructor performs the run prologue (thread
 * count, checkpoint restore, metrics-sink open).
 */
class TrainLoop
{
  public:
    TrainLoop(Trainer &trainer, const SyntheticDataset &data,
              const TrainConfig &config);

    /**
     * Execute one training minibatch (crossing epoch boundaries as
     * needed: epoch records and eval run inside). Returns false when
     * the run is complete — epochs exhausted or max_steps reached —
     * and the call executed nothing.
     */
    bool step();

    /** True once the run is complete; step() will execute nothing. */
    bool done() const { return done_; }

    /** Global step count (continues across a resumed run). */
    std::int64_t globalStep() const { return steps_; }

    /** Epoch the loop is currently positioned in. */
    int epoch() const { return epoch_; }

    /** Epoch records completed so far. */
    const std::vector<EpochRecord> &records() const { return records_; }

    /**
     * Write a full v2 snapshot of the current training position to
     * config.checkpoint_path (which must be set). The lifecycle API's
     * pause path: a run resumed from this snapshot continues bitwise
     * identically.
     */
    void checkpointNow();

    /**
     * Run epilogue: the end-of-run snapshot (when checkpoint_path is
     * set) and the trainer's per-minibatch timing averages. Idempotent;
     * returns the epoch records. Safe to call before done() — that is
     * the pause/cancel path, snapshotting wherever the loop stands.
     */
    std::vector<EpochRecord> finish();

  private:
    void enterEpoch();
    void closeEpoch();
    void executeStep();
    bool metricsOn() const;
    void writeMetrics(const obs::JsonLine &rec);

    Trainer &trainer_;
    const SyntheticDataset &data_;
    TrainConfig cfg_;
    Tensor batch_;
    std::vector<std::int32_t> labels_;
    std::vector<EpochRecord> records_;
    std::int64_t steps_ = 0;     ///< global step (continues on resume)
    std::int64_t run_steps_ = 0; ///< steps executed by this loop
    double total_seconds_ = 0.0;
    double total_codec_ = 0.0;
    float lr_;
    int first_epoch_ = 0;
    std::int64_t resume_offset_ = 0;
    bool resumed_ = false;
    bool has_ckpt_ = false;
    int epoch_ = 0;
    std::int64_t start_ = 0; ///< dataset cursor within the epoch
    double loss_sum_ = 0.0;
    std::int64_t batches_ = 0;
    std::int64_t cur_epoch_ = 0;  ///< last position, for snapshots
    std::int64_t cur_offset_ = 0; ///< last position, for snapshots
    bool done_ = false;
    bool finished_ = false;
};

/** Argmax of each row of a (rows x cols) logits tensor. */
std::vector<std::int32_t> argmaxRows(const Tensor &logits);

} // namespace gist
