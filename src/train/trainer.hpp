/**
 * @file
 * Minibatch SGD trainer over an Executor, with hooks used by the
 * accuracy (Fig 12), sensitivity (Fig 14) and overhead (Fig 9) studies.
 */

#pragma once

#include <functional>
#include <vector>

#include "graph/executor.hpp"
#include "train/dataset.hpp"

namespace gist {

/** Trainer hyperparameters. */
struct TrainConfig
{
    std::int64_t batch_size = 32;
    int epochs = 5;
    float learning_rate = 0.05f;
    float momentum = 0.9f;
    /** Multiply the LR by this factor every lr_decay_epochs epochs. */
    float lr_decay = 1.0f;
    int lr_decay_epochs = 1;
    /** Clip the global gradient norm to this value (0 = off). */
    float clip_grad_norm = 0.0f;
    /** L2 weight decay coefficient (0 = off). */
    float weight_decay = 0.0f;
    /**
     * Thread-pool size for the run (>= 1 forces it; 0 keeps the global
     * setting, auto-resolved from GIST_THREADS / hardware concurrency).
     */
    int num_threads = 0;
    /**
     * JSONL step-metrics file: one record per training step (loss,
     * examples/sec, encoded bytes, peak pool bytes, codec seconds) and
     * one per epoch (mean loss, eval accuracy). Empty keeps the current
     * sink, so a sink opened via GIST_METRICS (or GistConfig) is used
     * as-is. A resumed run (see @c resume) opens the sink in append
     * mode so the history from before the interruption is kept.
     */
    std::string metrics_path;
    /**
     * Checkpoint file. Non-empty makes run() write a full v2 snapshot
     * (weights, batchnorm state, RNG streams, momentum, cursor, LR)
     * every checkpoint_every_steps steps and once at the end of the
     * run. Writes are atomic: a crash mid-save keeps the previous file.
     */
    std::string checkpoint_path;
    /** Snapshot period in steps (0 = only the end-of-run snapshot). */
    std::int64_t checkpoint_every_steps = 0;
    /**
     * Restore checkpoint_path before training and continue from the
     * recorded epoch/step/cursor. Resume is bitwise deterministic:
     * interrupt at step k, resume, and the final weights equal the
     * uninterrupted run's. A missing file starts from scratch; a
     * weights-only (v1) file warm-starts with fresh optimizer state.
     */
    bool resume = false;
    /**
     * Stop after this many global minibatches (0 = no cap). With
     * checkpoint_path set, the final snapshot makes this a clean
     * interruption point that resume continues from.
     */
    std::int64_t max_steps = 0;
    /** Called after every minibatch (step index, executor). */
    std::function<void(std::int64_t, Executor &)> after_step;
};

/** One epoch's outcome. */
struct EpochRecord
{
    int epoch = 0;
    float mean_loss = 0.0f;
    double eval_accuracy = 0.0;
    /** 1 - eval_accuracy, the paper's Figure 12 y-axis. */
    double accuracyLoss() const { return 1.0 - eval_accuracy; }
};

/** SGD-with-momentum trainer. */
class Trainer
{
  public:
    /**
     * @param exec executor whose graph's params were initialized and
     *        whose schedule/stash plans are already configured.
     */
    explicit Trainer(Executor &exec);

    /** Train for config.epochs epochs, evaluating after each. */
    std::vector<EpochRecord> run(const SyntheticDataset &data,
                                 const TrainConfig &config);

    /** Top-1 accuracy on the evaluation split. */
    double evaluate(const SyntheticDataset &data, std::int64_t batch_size);

    /** Mean seconds per training minibatch over the last run(). */
    double secondsPerMinibatch() const { return seconds_per_minibatch; }
    /** Mean encode+decode seconds per minibatch over the last run(). */
    double codecSecondsPerMinibatch() const { return codec_seconds; }

  private:
    void sgdStep(float lr, float momentum, float weight_decay);
    /** Scale all weight gradients so their global L2 norm <= max_norm. */
    void clipGradients(float max_norm);
    /** Write a full v2 snapshot of the current training position. */
    void saveCheckpointNow(const TrainConfig &config,
                           const SyntheticDataset &data, std::int64_t epoch,
                           std::int64_t step, std::int64_t epoch_offset,
                           float lr);
    /**
     * Restore config.checkpoint_path. Returns true when anything was
     * loaded; full state rewinds @p lr / @p first_epoch / @p steps /
     * @p resume_offset to the recorded position.
     */
    bool restoreCheckpoint(const TrainConfig &config,
                           const SyntheticDataset &data, float &lr,
                           int &first_epoch, std::int64_t &steps,
                           std::int64_t &resume_offset);

    Executor &exec;
    std::vector<std::vector<float>> velocity; ///< per-param momentum
    double seconds_per_minibatch = 0.0;
    double codec_seconds = 0.0;
};

/** Argmax of each row of a (rows x cols) logits tensor. */
std::vector<std::int32_t> argmaxRows(const Tensor &logits);

} // namespace gist
