/**
 * @file
 * Deterministic synthetic image-classification dataset.
 *
 * Stand-in for ImageNet (unavailable offline): each class is a smooth
 * random prototype image; examples are the prototype under a random
 * circular shift plus pixel noise, clamped to [0, 1]. Shift-invariance
 * makes convolutional features genuinely useful while keeping the task
 * learnable by the tiny model variants within seconds.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace gist {

/** A fully materialized, deterministic labelled image set. */
class SyntheticDataset
{
  public:
    /** Geometry and generation parameters. */
    struct Spec
    {
        std::int64_t num_train = 512;
        std::int64_t num_eval = 128;
        std::int64_t classes = 8;
        std::int64_t channels = 3;
        std::int64_t image = 16; ///< square side
        float noise = 0.15f;
        std::uint64_t seed = 42;
    };

    explicit SyntheticDataset(const Spec &spec);

    const Spec &spec() const { return spec_; }
    std::int64_t numTrain() const { return spec_.num_train; }
    std::int64_t numEval() const { return spec_.num_eval; }

    /**
     * Fill @p batch (NCHW) and @p labels with training examples starting
     * at @p start (wraps around the training set).
     */
    void trainBatch(std::int64_t start, Tensor &batch,
                    std::vector<std::int32_t> &labels) const;

    /** Same for the held-out evaluation split. */
    void evalBatch(std::int64_t start, Tensor &batch,
                   std::vector<std::int32_t> &labels) const;

  private:
    void makeExample(Rng &rng, std::int32_t label, float *out) const;
    void fill(const std::vector<float> &images,
              const std::vector<std::int32_t> &labels_in,
              std::int64_t count, std::int64_t start, Tensor &batch,
              std::vector<std::int32_t> &labels_out) const;

    Spec spec_;
    std::int64_t example_elems;
    std::vector<float> prototypes; ///< classes x C x H x W
    std::vector<float> train_images;
    std::vector<std::int32_t> train_labels;
    std::vector<float> eval_images;
    std::vector<std::int32_t> eval_labels;
};

} // namespace gist
