/**
 * @file
 * Single-precision GEMM. This is the "dense compute" substrate that conv
 * (via im2col) and fully-connected layers run on — the CPU stand-in for
 * cuDNN/cuBLAS dense kernels in the paper.
 */

#pragma once

#include <cstdint>

namespace gist {

/**
 * C = alpha * op(A) * op(B) + beta * C.
 *
 * All matrices are dense row-major. op(A) is A (m x k) or A^T when
 * @p trans_a (A stored k x m); likewise for B.
 *
 * @param m rows of op(A) and C
 * @param n cols of op(B) and C
 * @param k cols of op(A) / rows of op(B)
 */
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float *a, const float *b,
          float beta, float *c);

} // namespace gist
