/**
 * @file
 * Single-precision GEMM. This is the "dense compute" substrate that conv
 * (via im2col) and fully-connected layers run on — the CPU stand-in for
 * cuDNN/cuBLAS dense kernels in the paper.
 */

#pragma once

#include <cstdint>

#include "encodings/csr.hpp"
#include "tensor/pack.hpp"

namespace gist {

/**
 * C = alpha * op(A) * op(B) + beta * C.
 *
 * All matrices are dense row-major. op(A) is A (m x k) or A^T when
 * @p trans_a (A stored k x m); likewise for B.
 *
 * @param m rows of op(A) and C
 * @param n cols of op(B) and C
 * @param k cols of op(A) / rows of op(B)
 */
void gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float *a, const float *b,
          float beta, float *c);

/**
 * gemm() with op(B) = B (k x n row-major) supplied by a pack callback
 * instead of a dense pointer: each KC-row reduction slice of B is
 * decoded once into step-arena scratch and every C row panel consumes
 * it from there, so the resident B footprint is KC * n floats instead
 * of the full k * n decode buffer. The slice/panel loop structure, the
 * zero-initialization point and the per-element accumulation order all
 * match gemm(trans_a, false, ...) exactly — the result is
 * bitwise-identical to decoding B densely first.
 */
void gemmPackedB(bool trans_a, std::int64_t m, std::int64_t n,
                 std::int64_t k, float alpha, const float *a,
                 const PackFn &b_pack, float beta, float *c);

/**
 * gemm() with op(A) = A (m x k row-major, no transpose) supplied in
 * flat-CSR form: walks row_ptr/col_idx directly and issues one axpy per
 * stored nonzero, so compute scales with (1 - sparsity) and the A
 * operand is never decoded to dense. Per C row the nonzeros are visited
 * in ascending flat order with the same column tiling and axpy widths
 * as the dense path, so the result is bitwise-identical to decoding A
 * and calling gemm(false, false, ...). @p a must hold exactly m * k
 * encoded values.
 */
void gemmCsrA(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
              const CsrConstView &a, const float *b, float beta, float *c);

} // namespace gist
