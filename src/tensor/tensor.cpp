#include "tensor/tensor.hpp"

#include <cmath>
#include <cstring>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gist {

Tensor::Tensor(Shape shape_in)
    : shape_(std::move(shape_in)),
      data_(static_cast<size_t>(shape_.numel()), 0.0f)
{
}

Tensor
Tensor::zeros(Shape shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::placeholder(Shape shape)
{
    Tensor t;
    t.shape_ = std::move(shape);
    return t;
}

Tensor
Tensor::full(Shape shape, float value)
{
    Tensor t(std::move(shape));
    for (auto &x : t.data_)
        x = value;
    return t;
}

Tensor
Tensor::randn(Shape shape, Rng &rng, float stddev)
{
    Tensor t(std::move(shape));
    for (auto &x : t.data_)
        x = rng.normal(0.0f, stddev);
    return t;
}

Tensor
Tensor::uniform(Shape shape, Rng &rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (auto &x : t.data_)
        x = rng.uniform(lo, hi);
    return t;
}

float &
Tensor::at(std::int64_t i)
{
    GIST_ASSERT(i >= 0 && i < numel(), "index ", i, " out of range");
    return data_[static_cast<size_t>(i)];
}

float
Tensor::at(std::int64_t i) const
{
    GIST_ASSERT(i >= 0 && i < numel(), "index ", i, " out of range");
    return data_[static_cast<size_t>(i)];
}

float &
Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w)
{
    const auto &s = shape_;
    return data_[static_cast<size_t>(
        ((n * s.c() + c) * s.h() + h) * s.w() + w)];
}

float
Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
            std::int64_t w) const
{
    const auto &s = shape_;
    return data_[static_cast<size_t>(
        ((n * s.c() + c) * s.h() + h) * s.w() + w)];
}

void
Tensor::setZero()
{
    std::memset(data_.data(), 0, data_.size() * sizeof(float));
}

void
Tensor::releaseStorage()
{
    data_.clear();
    data_.shrink_to_fit();
}

void
Tensor::reallocate()
{
    data_.assign(static_cast<size_t>(shape_.numel()), 0.0f);
}

void
Tensor::reshape(const Shape &new_shape)
{
    GIST_ASSERT(new_shape.numel() == shape_.numel(), "reshape ",
                shape_.toString(), " -> ", new_shape.toString(),
                " changes element count");
    shape_ = new_shape;
}

double
Tensor::sparsity() const
{
    if (data_.empty())
        return 0.0;
    std::int64_t zeros = 0;
    for (float x : data_)
        zeros += (x == 0.0f);
    return static_cast<double>(zeros) / static_cast<double>(data_.size());
}

bool
Tensor::bitIdentical(const Tensor &other) const
{
    if (shape_ != other.shape_ || data_.size() != other.data_.size())
        return false;
    return std::memcmp(data_.data(), other.data_.data(),
                       data_.size() * sizeof(float)) == 0;
}

float
Tensor::maxAbsDiff(const Tensor &a, const Tensor &b)
{
    GIST_ASSERT(a.shape() == b.shape(), "shape mismatch ",
                a.shape().toString(), " vs ", b.shape().toString());
    float max_diff = 0.0f;
    for (std::int64_t i = 0; i < a.numel(); ++i)
        max_diff = std::max(max_diff, std::fabs(a.at(i) - b.at(i)));
    return max_diff;
}

} // namespace gist
