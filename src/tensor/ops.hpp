/**
 * @file
 * Elementwise and reduction kernels shared by the layer implementations.
 */

#pragma once

#include <cstdint>
#include <span>

namespace gist {

class Tensor;

/** y = max(x, 0). */
void reluForward(std::span<const float> x, std::span<float> y);

/**
 * dx = dy where y > 0, else 0 — ReLU backward needs only the *sign* of its
 * stashed output (the observation behind the Binarize encoding).
 */
void reluBackward(std::span<const float> y, std::span<const float> dy,
                  std::span<float> dx);

/** Same as reluBackward, but driven by a precomputed sign mask. */
void reluBackwardFromMask(std::span<const std::uint8_t> mask_bits,
                          std::span<const float> dy, std::span<float> dx);

/** out += in (element count must match). */
void accumulate(std::span<const float> in, std::span<float> out);

/** out = a + b. */
void add(std::span<const float> a, std::span<const float> b,
         std::span<float> out);

/** x *= s. */
void scale(std::span<float> x, float s);

/** Row-wise softmax over a (rows x cols) matrix. */
void softmaxRows(const float *logits, float *probs, std::int64_t rows,
                 std::int64_t cols);

/**
 * Mean cross-entropy loss of row-wise probabilities against integer labels,
 * plus the gradient w.r.t. the logits ((p - onehot) / rows).
 */
float crossEntropyWithGrad(const float *probs, const std::int32_t *labels,
                           std::int64_t rows, std::int64_t cols,
                           float *dlogits);

} // namespace gist
