/**
 * @file
 * im2col / col2im lowering for convolution. Matches the dataflow of
 * GEMM-based cuDNN convolution algorithms; the "column" buffer is the
 * analogue of the cuDNN workspace the paper accounts for.
 */

#pragma once

#include <cstdint>

namespace gist {

/** Static geometry of a 2-D convolution / pooling window. */
struct ConvGeometry
{
    std::int64_t in_c = 0;     ///< input channels
    std::int64_t in_h = 0;     ///< input height
    std::int64_t in_w = 0;     ///< input width
    std::int64_t kernel_h = 0; ///< filter height
    std::int64_t kernel_w = 0; ///< filter width
    std::int64_t stride_h = 1;
    std::int64_t stride_w = 1;
    std::int64_t pad_h = 0;
    std::int64_t pad_w = 0;

    std::int64_t outH() const
    {
        return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
    }
    std::int64_t outW() const
    {
        return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
    }
    /** Rows of the column matrix: C * kh * kw. */
    std::int64_t colRows() const { return in_c * kernel_h * kernel_w; }
    /** Columns of the column matrix: outH * outW. */
    std::int64_t colCols() const { return outH() * outW(); }
};

/**
 * Expand a single image (C x H x W, contiguous) into a column matrix of
 * shape colRows() x colCols(); out-of-bounds taps read as zero.
 */
void im2col(const ConvGeometry &geom, const float *image, float *columns);

/**
 * Reverse of im2col: scatter-accumulate a column matrix back into an image
 * buffer (which must be pre-zeroed by the caller).
 */
void col2im(const ConvGeometry &geom, const float *columns, float *image);

} // namespace gist
