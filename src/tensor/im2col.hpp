/**
 * @file
 * im2col / col2im lowering for convolution. Matches the dataflow of
 * GEMM-based cuDNN convolution algorithms; the "column" buffer is the
 * analogue of the cuDNN workspace the paper accounts for.
 */

#pragma once

#include <cstdint>

#include "encodings/csr.hpp"
#include "tensor/pack.hpp"

namespace gist {

/** Static geometry of a 2-D convolution / pooling window. */
struct ConvGeometry
{
    std::int64_t in_c = 0;     ///< input channels
    std::int64_t in_h = 0;     ///< input height
    std::int64_t in_w = 0;     ///< input width
    std::int64_t kernel_h = 0; ///< filter height
    std::int64_t kernel_w = 0; ///< filter width
    std::int64_t stride_h = 1;
    std::int64_t stride_w = 1;
    std::int64_t pad_h = 0;
    std::int64_t pad_w = 0;

    std::int64_t outH() const
    {
        return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
    }
    std::int64_t outW() const
    {
        return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
    }
    /** Rows of the column matrix: C * kh * kw. */
    std::int64_t colRows() const { return in_c * kernel_h * kernel_w; }
    /** Columns of the column matrix: outH * outW. */
    std::int64_t colCols() const { return outH() * outW(); }
};

/**
 * Expand a single image (C x H x W, contiguous) into a column matrix of
 * shape colRows() x colCols(); out-of-bounds taps read as zero.
 */
void im2col(const ConvGeometry &geom, const float *image, float *columns);

/**
 * Reverse of im2col: scatter-accumulate a column matrix back into an image
 * buffer (which must be pre-zeroed by the caller).
 */
void col2im(const ConvGeometry &geom, const float *columns, float *image);

/**
 * im2col() reading one image directly from a CSR-encoded stash: the
 * columns of image number @p image_offset are zero-filled and every
 * stored nonzero is scattered to its (c, kh, kw) taps, so work scales
 * with nnz and the image is never decoded to a dense buffer. All stored
 * values are written — including lossy values that decode to +/-0.0 —
 * so the result is bitwise-identical to decodeRange + im2col().
 */
void im2colFromCsr(const ConvGeometry &geom, const CsrConstView &stash,
                   std::int64_t image_offset, float *columns);

/**
 * im2col() with the image supplied by a pack callback (one image =
 * values [image_offset, image_offset + C*H*W) of the flat stash): each
 * input row is decoded once into a W-element strip and fanned out to
 * every (kh, kw) tap that reads it, replacing the dense per-image decode
 * buffer with an H*W-bytes-smaller strip. Bitwise-identical to
 * decodeRange + im2col().
 */
void im2colPacked(const ConvGeometry &geom, const PackFn &pack,
                  std::int64_t image_offset, float *columns);

} // namespace gist
