#include "tensor/im2col.hpp"

#include <cstring>

#include "memory/arena.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

void
im2col(const ConvGeometry &geom, const float *image, float *columns)
{
    GIST_TRACE_SCOPE("compute", "im2col");
    const std::int64_t out_h = geom.outH();
    const std::int64_t out_w = geom.outW();
    const std::int64_t kernel = geom.kernel_h * geom.kernel_w;
    const std::int64_t rows = geom.in_c * kernel;
    // Each (c, kh, kw) triple owns one disjoint output row of `columns`,
    // so the row range parallelizes with no synchronization.
    parallelFor(0, rows, chooseGrain(rows, 1),
                [&, out_h, out_w](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
            const std::int64_t c = row / kernel;
            const std::int64_t kh = (row / geom.kernel_w) % geom.kernel_h;
            const std::int64_t kw = row % geom.kernel_w;
            float *out_row = columns + row * (out_h * out_w);
            const float *img_plane = image + c * geom.in_h * geom.in_w;
            for (std::int64_t oh = 0; oh < out_h; ++oh) {
                const std::int64_t ih =
                    oh * geom.stride_h - geom.pad_h + kh;
                if (ih < 0 || ih >= geom.in_h) {
                    for (std::int64_t ow = 0; ow < out_w; ++ow)
                        out_row[oh * out_w + ow] = 0.0f;
                    continue;
                }
                const float *img_row = img_plane + ih * geom.in_w;
                for (std::int64_t ow = 0; ow < out_w; ++ow) {
                    const std::int64_t iw =
                        ow * geom.stride_w - geom.pad_w + kw;
                    out_row[oh * out_w + ow] =
                        (iw < 0 || iw >= geom.in_w) ? 0.0f : img_row[iw];
                }
            }
        }
    });
}

void
im2colFromCsr(const ConvGeometry &geom, const CsrConstView &stash,
              std::int64_t image_offset, float *columns)
{
    GIST_TRACE_SCOPE("compute", "im2col csr");
    const std::int64_t out_h = geom.outH();
    const std::int64_t out_w = geom.outW();
    const std::int64_t p = out_h * out_w;
    const std::int64_t kernel = geom.kernel_h * geom.kernel_w;
    const std::int64_t plane = geom.in_h * geom.in_w;
    GIST_ASSERT(image_offset >= 0 &&
                    image_offset + geom.in_c * plane <= stash.numel,
                "im2colFromCsr: image range outside stash");
    // Channels own disjoint column-row bands, so the channel axis
    // parallelizes race-free just like dense im2col's row axis. Two
    // channels may share a boundary CSR row; each decodes it
    // independently and keeps only its own flat range.
    parallelFor(0, geom.in_c, 1,
                [&, out_h, out_w, p](std::int64_t c0, std::int64_t c1) {
        ArenaScope scope;
        float *vals =
            scope.alloc<float>(static_cast<size_t>(stash.row_width));
        for (std::int64_t c = c0; c < c1; ++c) {
            float *band = columns + c * kernel * p;
            std::memset(band, 0,
                        static_cast<size_t>(kernel * p) * sizeof(float));
            const std::int64_t flat0 = image_offset + c * plane;
            const std::int64_t r0 = flat0 / stash.row_width;
            const std::int64_t r1 =
                (flat0 + plane - 1) / stash.row_width;
            for (std::int64_t r = r0; r <= r1; ++r) {
                const auto k0 = static_cast<std::int64_t>(
                    stash.row_ptr[static_cast<size_t>(r)]);
                const auto k1 = static_cast<std::int64_t>(
                    stash.row_ptr[static_cast<size_t>(r + 1)]);
                if (k0 == k1)
                    continue;
                csrValues(stash, k0, k1, vals);
                const std::int64_t row_base = r * stash.row_width;
                for (std::int64_t kk = k0; kk < k1; ++kk) {
                    const std::int64_t flat =
                        row_base +
                        static_cast<std::int64_t>(csrColAt(stash, kk));
                    if (flat < flat0 || flat >= flat0 + plane)
                        continue;
                    const std::int64_t local = flat - flat0;
                    const std::int64_t ih = local / geom.in_w;
                    const std::int64_t iw = local % geom.in_w;
                    // Write every stored value, even ones that decode
                    // to +/-0.0 (DPR underflow keeps the sign bit), so
                    // the column matrix is bitwise-identical to
                    // decode-then-im2col.
                    const float v = vals[kk - k0];
                    for (std::int64_t kh = 0; kh < geom.kernel_h;
                         ++kh) {
                        const std::int64_t oh_num =
                            ih + geom.pad_h - kh;
                        if (oh_num < 0)
                            break; // decreases with kh
                        if (oh_num % geom.stride_h != 0)
                            continue;
                        const std::int64_t oh = oh_num / geom.stride_h;
                        if (oh >= out_h)
                            continue;
                        for (std::int64_t kw = 0; kw < geom.kernel_w;
                             ++kw) {
                            const std::int64_t ow_num =
                                iw + geom.pad_w - kw;
                            if (ow_num < 0)
                                break;
                            if (ow_num % geom.stride_w != 0)
                                continue;
                            const std::int64_t ow =
                                ow_num / geom.stride_w;
                            if (ow >= out_w)
                                continue;
                            band[(kh * geom.kernel_w + kw) * p +
                                 oh * out_w + ow] = v;
                        }
                    }
                }
            }
        }
    });
}

void
im2colPacked(const ConvGeometry &geom, const PackFn &pack,
             std::int64_t image_offset, float *columns)
{
    GIST_TRACE_SCOPE("compute", "im2col packed");
    const std::int64_t out_h = geom.outH();
    const std::int64_t out_w = geom.outW();
    const std::int64_t p = out_h * out_w;
    const std::int64_t kernel = geom.kernel_h * geom.kernel_w;
    parallelFor(0, geom.in_c, 1,
                [&, out_h, out_w, p](std::int64_t c0, std::int64_t c1) {
        ArenaScope scope;
        float *strip =
            scope.alloc<float>(static_cast<size_t>(geom.in_w));
        for (std::int64_t c = c0; c < c1; ++c) {
            float *band = columns + c * kernel * p;
            // Zero first: (kh, oh) pairs whose input row falls outside
            // the image are never visited by the strip loop below.
            std::memset(band, 0,
                        static_cast<size_t>(kernel * p) * sizeof(float));
            for (std::int64_t ih = 0; ih < geom.in_h; ++ih) {
                // One decode per input row, fanned out to every tap
                // that reads it (dense im2col re-reads the row up to
                // kernel_h * kernel_w times).
                pack(image_offset + (c * geom.in_h + ih) * geom.in_w,
                     strip, geom.in_w);
                for (std::int64_t kh = 0; kh < geom.kernel_h; ++kh) {
                    const std::int64_t oh_num = ih + geom.pad_h - kh;
                    if (oh_num < 0)
                        break; // decreases with kh
                    if (oh_num % geom.stride_h != 0)
                        continue;
                    const std::int64_t oh = oh_num / geom.stride_h;
                    if (oh >= out_h)
                        continue;
                    for (std::int64_t kw = 0; kw < geom.kernel_w;
                         ++kw) {
                        float *out_row =
                            band + (kh * geom.kernel_w + kw) * p +
                            oh * out_w;
                        for (std::int64_t ow = 0; ow < out_w; ++ow) {
                            const std::int64_t iw =
                                ow * geom.stride_w - geom.pad_w + kw;
                            out_row[ow] = (iw < 0 || iw >= geom.in_w)
                                              ? 0.0f
                                              : strip[iw];
                        }
                    }
                }
            }
        }
    });
}

void
col2im(const ConvGeometry &geom, const float *columns, float *image)
{
    GIST_TRACE_SCOPE("compute", "col2im");
    const std::int64_t out_h = geom.outH();
    const std::int64_t out_w = geom.outW();
    // col2im scatters with += : different (kh, kw) rows of the same
    // channel overlap in the image, but different *channels* never do,
    // so the channel axis is the widest race-free parallel unit. The
    // per-channel (kh, kw, oh, ow) accumulation order matches the serial
    // code exactly, keeping results bitwise-identical at any thread
    // count.
    parallelFor(0, geom.in_c, 1,
                [&, out_h, out_w](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
            float *img_plane = image + c * geom.in_h * geom.in_w;
            std::int64_t row = c * geom.kernel_h * geom.kernel_w;
            for (std::int64_t kh = 0; kh < geom.kernel_h; ++kh) {
                for (std::int64_t kw = 0; kw < geom.kernel_w;
                     ++kw, ++row) {
                    const float *in_row = columns + row * (out_h * out_w);
                    for (std::int64_t oh = 0; oh < out_h; ++oh) {
                        const std::int64_t ih =
                            oh * geom.stride_h - geom.pad_h + kh;
                        if (ih < 0 || ih >= geom.in_h)
                            continue;
                        float *img_row = img_plane + ih * geom.in_w;
                        for (std::int64_t ow = 0; ow < out_w; ++ow) {
                            const std::int64_t iw =
                                ow * geom.stride_w - geom.pad_w + kw;
                            if (iw >= 0 && iw < geom.in_w)
                                img_row[iw] += in_row[oh * out_w + ow];
                        }
                    }
                }
            }
        }
    });
}

} // namespace gist
