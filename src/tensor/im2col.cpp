#include "tensor/im2col.hpp"

namespace gist {

void
im2col(const ConvGeometry &geom, const float *image, float *columns)
{
    const std::int64_t out_h = geom.outH();
    const std::int64_t out_w = geom.outW();
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < geom.in_c; ++c) {
        for (std::int64_t kh = 0; kh < geom.kernel_h; ++kh) {
            for (std::int64_t kw = 0; kw < geom.kernel_w; ++kw, ++row) {
                float *out_row = columns + row * (out_h * out_w);
                const float *img_plane = image + c * geom.in_h * geom.in_w;
                for (std::int64_t oh = 0; oh < out_h; ++oh) {
                    const std::int64_t ih =
                        oh * geom.stride_h - geom.pad_h + kh;
                    if (ih < 0 || ih >= geom.in_h) {
                        for (std::int64_t ow = 0; ow < out_w; ++ow)
                            out_row[oh * out_w + ow] = 0.0f;
                        continue;
                    }
                    const float *img_row = img_plane + ih * geom.in_w;
                    for (std::int64_t ow = 0; ow < out_w; ++ow) {
                        const std::int64_t iw =
                            ow * geom.stride_w - geom.pad_w + kw;
                        out_row[oh * out_w + ow] =
                            (iw < 0 || iw >= geom.in_w) ? 0.0f : img_row[iw];
                    }
                }
            }
        }
    }
}

void
col2im(const ConvGeometry &geom, const float *columns, float *image)
{
    const std::int64_t out_h = geom.outH();
    const std::int64_t out_w = geom.outW();
    std::int64_t row = 0;
    for (std::int64_t c = 0; c < geom.in_c; ++c) {
        for (std::int64_t kh = 0; kh < geom.kernel_h; ++kh) {
            for (std::int64_t kw = 0; kw < geom.kernel_w; ++kw, ++row) {
                const float *in_row = columns + row * (out_h * out_w);
                float *img_plane = image + c * geom.in_h * geom.in_w;
                for (std::int64_t oh = 0; oh < out_h; ++oh) {
                    const std::int64_t ih =
                        oh * geom.stride_h - geom.pad_h + kh;
                    if (ih < 0 || ih >= geom.in_h)
                        continue;
                    float *img_row = img_plane + ih * geom.in_w;
                    for (std::int64_t ow = 0; ow < out_w; ++ow) {
                        const std::int64_t iw =
                            ow * geom.stride_w - geom.pad_w + kw;
                        if (iw >= 0 && iw < geom.in_w)
                            img_row[iw] += in_row[oh * out_w + ow];
                    }
                }
            }
        }
    }
}

} // namespace gist
