#include "tensor/im2col.hpp"

#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace gist {

void
im2col(const ConvGeometry &geom, const float *image, float *columns)
{
    GIST_TRACE_SCOPE("compute", "im2col");
    const std::int64_t out_h = geom.outH();
    const std::int64_t out_w = geom.outW();
    const std::int64_t kernel = geom.kernel_h * geom.kernel_w;
    const std::int64_t rows = geom.in_c * kernel;
    // Each (c, kh, kw) triple owns one disjoint output row of `columns`,
    // so the row range parallelizes with no synchronization.
    parallelFor(0, rows, chooseGrain(rows, 1),
                [&, out_h, out_w](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t row = r0; row < r1; ++row) {
            const std::int64_t c = row / kernel;
            const std::int64_t kh = (row / geom.kernel_w) % geom.kernel_h;
            const std::int64_t kw = row % geom.kernel_w;
            float *out_row = columns + row * (out_h * out_w);
            const float *img_plane = image + c * geom.in_h * geom.in_w;
            for (std::int64_t oh = 0; oh < out_h; ++oh) {
                const std::int64_t ih =
                    oh * geom.stride_h - geom.pad_h + kh;
                if (ih < 0 || ih >= geom.in_h) {
                    for (std::int64_t ow = 0; ow < out_w; ++ow)
                        out_row[oh * out_w + ow] = 0.0f;
                    continue;
                }
                const float *img_row = img_plane + ih * geom.in_w;
                for (std::int64_t ow = 0; ow < out_w; ++ow) {
                    const std::int64_t iw =
                        ow * geom.stride_w - geom.pad_w + kw;
                    out_row[oh * out_w + ow] =
                        (iw < 0 || iw >= geom.in_w) ? 0.0f : img_row[iw];
                }
            }
        }
    });
}

void
col2im(const ConvGeometry &geom, const float *columns, float *image)
{
    GIST_TRACE_SCOPE("compute", "col2im");
    const std::int64_t out_h = geom.outH();
    const std::int64_t out_w = geom.outW();
    // col2im scatters with += : different (kh, kw) rows of the same
    // channel overlap in the image, but different *channels* never do,
    // so the channel axis is the widest race-free parallel unit. The
    // per-channel (kh, kw, oh, ow) accumulation order matches the serial
    // code exactly, keeping results bitwise-identical at any thread
    // count.
    parallelFor(0, geom.in_c, 1,
                [&, out_h, out_w](std::int64_t c0, std::int64_t c1) {
        for (std::int64_t c = c0; c < c1; ++c) {
            float *img_plane = image + c * geom.in_h * geom.in_w;
            std::int64_t row = c * geom.kernel_h * geom.kernel_w;
            for (std::int64_t kh = 0; kh < geom.kernel_h; ++kh) {
                for (std::int64_t kw = 0; kw < geom.kernel_w;
                     ++kw, ++row) {
                    const float *in_row = columns + row * (out_h * out_w);
                    for (std::int64_t oh = 0; oh < out_h; ++oh) {
                        const std::int64_t ih =
                            oh * geom.stride_h - geom.pad_h + kh;
                        if (ih < 0 || ih >= geom.in_h)
                            continue;
                        float *img_row = img_plane + ih * geom.in_w;
                        for (std::int64_t ow = 0; ow < out_w; ++ow) {
                            const std::int64_t iw =
                                ow * geom.stride_w - geom.pad_w + kw;
                            if (iw >= 0 && iw < geom.in_w)
                                img_row[iw] += in_row[oh * out_w + ow];
                        }
                    }
                }
            }
        }
    });
}

} // namespace gist
