/**
 * @file
 * Dense FP32 tensor. This is the substrate datatype for the training
 * engine; the Gist encodings replace a Tensor's payload with a compact
 * representation between its forward and backward uses.
 */

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/shape.hpp"

namespace gist {

class Rng;

/** A dense, row-major FP32 tensor with value semantics. */
class Tensor
{
  public:
    Tensor() = default;
    explicit Tensor(Shape shape_in);

    /** Allocate a zero-filled tensor of the given shape. */
    static Tensor zeros(Shape shape);
    /**
     * A tensor that knows its shape but owns no storage yet (used so that
     * planning-only graphs never allocate full-scale parameters); call
     * reallocate() before use.
     */
    static Tensor placeholder(Shape shape);
    /** Allocate a tensor with all elements set to @p value. */
    static Tensor full(Shape shape, float value);
    /** Allocate with i.i.d. N(0, stddev) entries drawn from @p rng. */
    static Tensor randn(Shape shape, Rng &rng, float stddev = 1.0f);
    /** Allocate with i.i.d. U[lo, hi) entries drawn from @p rng. */
    static Tensor uniform(Shape shape, Rng &rng, float lo, float hi);

    const Shape &shape() const { return shape_; }
    std::int64_t numel() const { return shape_.numel(); }
    /** Payload size in bytes (4 bytes per element). */
    std::uint64_t bytes() const { return std::uint64_t(numel()) * 4; }
    bool empty() const { return data_.empty(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    std::span<float> span() { return { data_.data(), data_.size() }; }
    std::span<const float> span() const { return { data_.data(),
                                                   data_.size() }; }

    float &at(std::int64_t i);
    float at(std::int64_t i) const;

    /** NCHW element access; tensor must be rank 4. */
    float &at4(std::int64_t n, std::int64_t c, std::int64_t h,
               std::int64_t w);
    float at4(std::int64_t n, std::int64_t c, std::int64_t h,
              std::int64_t w) const;

    /** Set every element to zero. */
    void setZero();

    /** Release the payload, keeping the shape (Gist drops FP32 copies). */
    void releaseStorage();
    /** Re-allocate a zeroed payload after releaseStorage(). */
    void reallocate();

    /** Change the logical shape; element count must match. */
    void reshape(const Shape &new_shape);

    /** Fraction of elements equal to 0.0f. */
    double sparsity() const;

    /** Exact element-wise equality (for losslessness tests). */
    bool bitIdentical(const Tensor &other) const;

    /** Max |a - b| over all elements; shapes must match. */
    static float maxAbsDiff(const Tensor &a, const Tensor &b);

  private:
    Shape shape_;
    std::vector<float> data_;
};

} // namespace gist
