#include "tensor/shape.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace gist {

Shape::Shape(std::initializer_list<std::int64_t> dims_list)
    : dims(dims_list)
{
    GIST_ASSERT(dims.size() <= 4, "shapes support up to 4 dims");
    for (auto d : dims)
        GIST_ASSERT(d >= 0, "negative dimension in shape");
}

Shape::Shape(std::vector<std::int64_t> dims_vec)
    : dims(std::move(dims_vec))
{
    GIST_ASSERT(dims.size() <= 4, "shapes support up to 4 dims");
    for (auto d : dims)
        GIST_ASSERT(d >= 0, "negative dimension in shape");
}

Shape
Shape::nchw(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w)
{
    return Shape{ n, c, h, w };
}

std::int64_t
Shape::dim(std::int64_t i) const
{
    GIST_ASSERT(i >= 0 && i < rank(), "dim index ", i, " out of range for ",
                toString());
    return dims[static_cast<size_t>(i)];
}

std::int64_t
Shape::dim4(std::int64_t i) const
{
    GIST_ASSERT(rank() == 4, "NCHW accessor on rank-", rank(), " shape");
    return dims[static_cast<size_t>(i)];
}

std::int64_t
Shape::numel() const
{
    std::int64_t n = 1;
    for (auto d : dims)
        n *= d;
    return dims.empty() ? 0 : n;
}

std::string
Shape::toString() const
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < dims.size(); ++i) {
        if (i)
            oss << ", ";
        oss << dims[i];
    }
    oss << "]";
    return oss.str();
}

} // namespace gist
