#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

namespace {

/** Elementwise loops parallelize below this size at a loss. */
constexpr std::int64_t kEwGrain = 4096;

} // namespace

void
reluForward(std::span<const float> x, std::span<float> y)
{
    GIST_ASSERT(x.size() == y.size(), "relu size mismatch");
    const auto n = static_cast<std::int64_t>(x.size());
    parallelFor(0, n, chooseGrain(n, kEwGrain),
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        y[static_cast<size_t>(i)] =
                            x[static_cast<size_t>(i)] > 0.0f
                                ? x[static_cast<size_t>(i)]
                                : 0.0f;
                });
}

void
reluBackward(std::span<const float> y, std::span<const float> dy,
             std::span<float> dx)
{
    GIST_ASSERT(y.size() == dy.size() && y.size() == dx.size(),
                "relu backward size mismatch");
    const auto n = static_cast<std::int64_t>(y.size());
    parallelFor(0, n, chooseGrain(n, kEwGrain),
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i) {
                        const auto s = static_cast<size_t>(i);
                        dx[s] = y[s] > 0.0f ? dy[s] : 0.0f;
                    }
                });
}

void
reluBackwardFromMask(std::span<const std::uint8_t> mask_bits,
                     std::span<const float> dy, std::span<float> dx)
{
    GIST_ASSERT(dy.size() == dx.size(), "relu backward size mismatch");
    GIST_ASSERT(mask_bits.size() * 8 >= dy.size(), "mask too small");
    const auto n = static_cast<std::int64_t>(dy.size());
    parallelFor(0, n, chooseGrain(n, kEwGrain),
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i) {
                        const auto s = static_cast<size_t>(i);
                        const bool positive =
                            (mask_bits[s >> 3] >> (s & 7)) & 1;
                        dx[s] = positive ? dy[s] : 0.0f;
                    }
                });
}

void
accumulate(std::span<const float> in, std::span<float> out)
{
    GIST_ASSERT(in.size() == out.size(), "accumulate size mismatch");
    const auto n = static_cast<std::int64_t>(in.size());
    parallelFor(0, n, chooseGrain(n, kEwGrain),
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        out[static_cast<size_t>(i)] +=
                            in[static_cast<size_t>(i)];
                });
}

void
add(std::span<const float> a, std::span<const float> b, std::span<float> out)
{
    GIST_ASSERT(a.size() == b.size() && a.size() == out.size(),
                "add size mismatch");
    const auto n = static_cast<std::int64_t>(a.size());
    parallelFor(0, n, chooseGrain(n, kEwGrain),
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        out[static_cast<size_t>(i)] =
                            a[static_cast<size_t>(i)] +
                            b[static_cast<size_t>(i)];
                });
}

void
scale(std::span<float> x, float s)
{
    const auto n = static_cast<std::int64_t>(x.size());
    parallelFor(0, n, chooseGrain(n, kEwGrain),
                [&](std::int64_t lo, std::int64_t hi) {
                    for (std::int64_t i = lo; i < hi; ++i)
                        x[static_cast<size_t>(i)] *= s;
                });
}

void
softmaxRows(const float *logits, float *probs, std::int64_t rows,
            std::int64_t cols)
{
    // Rows are independent; each chunk owns a disjoint slice of probs.
    parallelFor(0, rows, chooseGrain(rows, 16),
                [=](std::int64_t r0, std::int64_t r1) {
        for (std::int64_t r = r0; r < r1; ++r) {
            const float *in = logits + r * cols;
            float *out = probs + r * cols;
            float max_val = in[0];
            for (std::int64_t c = 1; c < cols; ++c)
                max_val = std::max(max_val, in[c]);
            float sum = 0.0f;
            for (std::int64_t c = 0; c < cols; ++c) {
                out[c] = std::exp(in[c] - max_val);
                sum += out[c];
            }
            const float inv = 1.0f / sum;
            for (std::int64_t c = 0; c < cols; ++c)
                out[c] *= inv;
        }
    });
}

float
crossEntropyWithGrad(const float *probs, const std::int32_t *labels,
                     std::int64_t rows, std::int64_t cols, float *dlogits)
{
    // The loss reduction stays serial (row order defines the float sum);
    // rows are few and the per-row work is tiny.
    float loss = 0.0f;
    const float inv_rows = 1.0f / static_cast<float>(rows);
    for (std::int64_t r = 0; r < rows; ++r) {
        const std::int32_t label = labels[r];
        GIST_ASSERT(label >= 0 && label < cols, "label ", label,
                    " out of range for ", cols, " classes");
        const float *p = probs + r * cols;
        float *d = dlogits + r * cols;
        loss -= std::log(std::max(p[label], 1e-12f));
        for (std::int64_t c = 0; c < cols; ++c)
            d[c] = (p[c] - (c == label ? 1.0f : 0.0f)) * inv_rows;
    }
    return loss * inv_rows;
}

} // namespace gist
