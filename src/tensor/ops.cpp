#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace gist {

void
reluForward(std::span<const float> x, std::span<float> y)
{
    GIST_ASSERT(x.size() == y.size(), "relu size mismatch");
    for (size_t i = 0; i < x.size(); ++i)
        y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void
reluBackward(std::span<const float> y, std::span<const float> dy,
             std::span<float> dx)
{
    GIST_ASSERT(y.size() == dy.size() && y.size() == dx.size(),
                "relu backward size mismatch");
    for (size_t i = 0; i < y.size(); ++i)
        dx[i] = y[i] > 0.0f ? dy[i] : 0.0f;
}

void
reluBackwardFromMask(std::span<const std::uint8_t> mask_bits,
                     std::span<const float> dy, std::span<float> dx)
{
    GIST_ASSERT(dy.size() == dx.size(), "relu backward size mismatch");
    GIST_ASSERT(mask_bits.size() * 8 >= dy.size(), "mask too small");
    for (size_t i = 0; i < dy.size(); ++i) {
        const bool positive = (mask_bits[i >> 3] >> (i & 7)) & 1;
        dx[i] = positive ? dy[i] : 0.0f;
    }
}

void
accumulate(std::span<const float> in, std::span<float> out)
{
    GIST_ASSERT(in.size() == out.size(), "accumulate size mismatch");
    for (size_t i = 0; i < in.size(); ++i)
        out[i] += in[i];
}

void
add(std::span<const float> a, std::span<const float> b, std::span<float> out)
{
    GIST_ASSERT(a.size() == b.size() && a.size() == out.size(),
                "add size mismatch");
    for (size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
}

void
scale(std::span<float> x, float s)
{
    for (auto &v : x)
        v *= s;
}

void
softmaxRows(const float *logits, float *probs, std::int64_t rows,
            std::int64_t cols)
{
    for (std::int64_t r = 0; r < rows; ++r) {
        const float *in = logits + r * cols;
        float *out = probs + r * cols;
        float max_val = in[0];
        for (std::int64_t c = 1; c < cols; ++c)
            max_val = std::max(max_val, in[c]);
        float sum = 0.0f;
        for (std::int64_t c = 0; c < cols; ++c) {
            out[c] = std::exp(in[c] - max_val);
            sum += out[c];
        }
        const float inv = 1.0f / sum;
        for (std::int64_t c = 0; c < cols; ++c)
            out[c] *= inv;
    }
}

float
crossEntropyWithGrad(const float *probs, const std::int32_t *labels,
                     std::int64_t rows, std::int64_t cols, float *dlogits)
{
    float loss = 0.0f;
    const float inv_rows = 1.0f / static_cast<float>(rows);
    for (std::int64_t r = 0; r < rows; ++r) {
        const std::int32_t label = labels[r];
        GIST_ASSERT(label >= 0 && label < cols, "label ", label,
                    " out of range for ", cols, " classes");
        const float *p = probs + r * cols;
        float *d = dlogits + r * cols;
        loss -= std::log(std::max(p[label], 1e-12f));
        for (std::int64_t c = 0; c < cols; ++c)
            d[c] = (p[c] - (c == label ? 1.0f : 0.0f)) * inv_rows;
    }
    return loss * inv_rows;
}

} // namespace gist
