/**
 * @file
 * Tensor shapes. Feature maps are NCHW; weights and 2-D matrices reuse the
 * same type with fewer dimensions.
 */

#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace gist {

/** A dense row-major shape of up to 4 dimensions. */
class Shape
{
  public:
    Shape() = default;
    Shape(std::initializer_list<std::int64_t> dims_list);
    explicit Shape(std::vector<std::int64_t> dims_vec);

    /** NCHW convenience constructor. */
    static Shape nchw(std::int64_t n, std::int64_t c, std::int64_t h,
                      std::int64_t w);

    std::int64_t rank() const { return static_cast<std::int64_t>(dims.size()); }
    std::int64_t dim(std::int64_t i) const;
    std::int64_t numel() const;

    /** NCHW accessors; valid only for rank-4 shapes. */
    std::int64_t n() const { return dim4(0); }
    std::int64_t c() const { return dim4(1); }
    std::int64_t h() const { return dim4(2); }
    std::int64_t w() const { return dim4(3); }

    bool operator==(const Shape &other) const { return dims == other.dims; }
    bool operator!=(const Shape &other) const { return !(*this == other); }

    /** "[64, 3, 224, 224]" */
    std::string toString() const;

    const std::vector<std::int64_t> &asVector() const { return dims; }

  private:
    std::int64_t dim4(std::int64_t i) const;

    std::vector<std::int64_t> dims;
};

} // namespace gist
