#include "tensor/gemm.hpp"

#include "util/logging.hpp"

namespace gist {

namespace {

/** Scale C by beta (handles beta == 0 without reading C). */
void
scaleC(std::int64_t m, std::int64_t n, float beta, float *c)
{
    const std::int64_t total = m * n;
    if (beta == 0.0f) {
        for (std::int64_t i = 0; i < total; ++i)
            c[i] = 0.0f;
    } else if (beta != 1.0f) {
        for (std::int64_t i = 0; i < total; ++i)
            c[i] *= beta;
    }
}

} // namespace

void
gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
     std::int64_t k, float alpha, const float *a, const float *b, float beta,
     float *c)
{
    GIST_ASSERT(m >= 0 && n >= 0 && k >= 0, "bad gemm dims");
    scaleC(m, n, beta, c);
    if (alpha == 0.0f || m == 0 || n == 0 || k == 0)
        return;

    if (!trans_b) {
        // op(B) rows are contiguous: use the (i, p, j) ordering so the
        // inner loop streams both B and C.
        for (std::int64_t i = 0; i < m; ++i) {
            float *c_row = c + i * n;
            for (std::int64_t p = 0; p < k; ++p) {
                const float a_val =
                    alpha * (trans_a ? a[p * m + i] : a[i * k + p]);
                if (a_val == 0.0f)
                    continue;
                const float *b_row = b + p * n;
                for (std::int64_t j = 0; j < n; ++j)
                    c_row[j] += a_val * b_row[j];
            }
        }
    } else {
        // B is stored n x k: rows of B are the reduction axis, so use a
        // dot-product per output element.
        for (std::int64_t i = 0; i < m; ++i) {
            float *c_row = c + i * n;
            for (std::int64_t j = 0; j < n; ++j) {
                const float *b_row = b + j * k;
                float acc = 0.0f;
                if (!trans_a) {
                    const float *a_row = a + i * k;
                    for (std::int64_t p = 0; p < k; ++p)
                        acc += a_row[p] * b_row[p];
                } else {
                    for (std::int64_t p = 0; p < k; ++p)
                        acc += a[p * m + i] * b_row[p];
                }
                c_row[j] += alpha * acc;
            }
        }
    }
}

} // namespace gist
