#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "memory/arena.hpp"
#include "obs/trace.hpp"
#include "simd/dispatch.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace gist {

namespace {

// Cache blocking: C row panels of MC rows are the parallel unit; the
// reduction is tiled into KC slices and C columns into NC slices so the
// active B tile (KC x NC floats = 128 KB) stays L2-resident while a
// panel streams over it. Every C row is computed entirely inside one
// chunk with a thread-count-independent loop order (KC slices ascending,
// p ascending within a slice), so results are bitwise-identical at any
// thread count.
constexpr std::int64_t kMC = 32;
constexpr std::int64_t kKC = 128;
constexpr std::int64_t kNC = 256;

// Minimum estimated axpy traffic (elements) before gemmCsrA fans out to
// the pool: below this the per-chunk dispatch plus the cold per-worker
// arena scratch cost more than the nonzero work itself, so the whole
// range runs as one inline chunk (bitwise-identical by the static
// chunking contract).
constexpr std::int64_t kMinCsrParallelWork = 1 << 20;

// B slab one CSR column block may touch (block_k rows x n floats):
// 512 KB keeps the slab L2-resident while every row of a kMC panel
// streams over it, instead of each row sweeping the whole of B.
constexpr std::int64_t kCsrBSlabBytes = 512 << 10;

// Gathered entries to run ahead of the axpy loop with a software
// prefetch: the B rows a CSR row touches are scattered, so the hardware
// stride prefetcher cannot see them coming.
constexpr std::int64_t kCsrPrefetchDist = 8;

inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
}

/** C *= beta over m*n elements (beta == 0 is folded into the compute
 *  loops instead — no separate zero-fill pass over C). */
void
scaleC(std::int64_t total, float beta, float *c)
{
    if (beta == 1.0f)
        return;
    parallelFor(0, total, chooseGrain(total, 4096),
                [=](std::int64_t lo, std::int64_t hi) {
                    if (beta == 0.0f)
                        std::memset(c + lo, 0,
                                    static_cast<size_t>(hi - lo) *
                                        sizeof(float));
                    else
                        for (std::int64_t i = lo; i < hi; ++i)
                            c[i] *= beta;
                });
}

/**
 * Row panel [i0, i1) of C for op(B) = B (row-major k x n): axpy form,
 * the inner j loop streams B and C rows and auto-vectorizes. When
 * beta == 0 each C segment is zero-initialized on first touch (kc slice
 * 0) while it is already cache-hot, replacing the old whole-matrix
 * zero-fill pass.
 */
void
panelNoTransB(std::int64_t i0, std::int64_t i1, std::int64_t n,
              std::int64_t k, bool trans_a, std::int64_t m, float alpha,
              const float *a, const float *b, float beta, float *c)
{
    // Panels run on pool workers; the arena frame bumps this worker's
    // own region, so the A-pack costs no heap allocation once the
    // region is warm.
    ArenaScope scope;
    float *a_pack = nullptr;
    if (trans_a)
        a_pack = scope.alloc<float>(static_cast<size_t>((i1 - i0) * kKC));
    const auto axpy = simd::ops().axpy;

    for (std::int64_t pc = 0; pc < k; pc += kKC) {
        const std::int64_t kc = std::min(kKC, k - pc);
        if (trans_a) {
            // Gather the strided A^T slice once per (panel, kc slice) so
            // the compute loop reads it contiguously.
            for (std::int64_t i = i0; i < i1; ++i)
                for (std::int64_t p = 0; p < kc; ++p)
                    a_pack[static_cast<size_t>((i - i0) * kc + p)] =
                        a[(pc + p) * m + i];
        }
        for (std::int64_t jc = 0; jc < n; jc += kNC) {
            const std::int64_t nc = std::min(kNC, n - jc);
            for (std::int64_t i = i0; i < i1; ++i) {
                float *c_row = c + i * n + jc;
                if (beta == 0.0f && pc == 0)
                    std::memset(c_row, 0,
                                static_cast<size_t>(nc) * sizeof(float));
                const float *a_row = trans_a ? a_pack + (i - i0) * kc
                                             : a + i * k + pc;
                for (std::int64_t p = 0; p < kc; ++p) {
                    const float a_val = alpha * a_row[p];
                    if (a_val == 0.0f)
                        continue;
                    axpy(nc, a_val, b + (pc + p) * n + jc, c_row);
                }
            }
        }
    }
}

/**
 * Row panel [i0, i1) of C for op(B) = B^T (B stored n x k): dot-product
 * form — both operand rows are contiguous, so the reduction is split
 * over four accumulators to expose vector lanes.
 */
void
panelTransB(std::int64_t i0, std::int64_t i1, std::int64_t n,
            std::int64_t k, bool trans_a, std::int64_t m, float alpha,
            const float *a, const float *b, float beta, float *c)
{
    ArenaScope scope;
    float *a_pack = nullptr;
    if (trans_a) {
        a_pack = scope.alloc<float>(static_cast<size_t>((i1 - i0) * k));
        for (std::int64_t i = i0; i < i1; ++i)
            for (std::int64_t p = 0; p < k; ++p)
                a_pack[(i - i0) * k + p] = a[p * m + i];
    }
    const auto dot = simd::ops().dot;

    for (std::int64_t jc = 0; jc < n; jc += kNC) {
        const std::int64_t nc = std::min(kNC, n - jc);
        for (std::int64_t i = i0; i < i1; ++i) {
            const float *a_row = trans_a ? a_pack + (i - i0) * k
                                         : a + i * k;
            float *c_row = c + i * n + jc;
            for (std::int64_t j = 0; j < nc; ++j) {
                const float acc = dot(k, a_row, b + (jc + j) * k);
                if (beta == 0.0f)
                    c_row[j] = alpha * acc;
                else
                    c_row[j] += alpha * acc;
            }
        }
    }
}

} // namespace

void
gemm(bool trans_a, bool trans_b, std::int64_t m, std::int64_t n,
     std::int64_t k, float alpha, const float *a, const float *b, float beta,
     float *c)
{
    GIST_TRACE_SCOPE_F("compute", "gemm %lldx%lldx%lld",
                       static_cast<long long>(m),
                       static_cast<long long>(n),
                       static_cast<long long>(k));
    GIST_ASSERT(m >= 0 && n >= 0 && k >= 0, "bad gemm dims");
    if (m == 0 || n == 0)
        return;
    GIST_ASSERT(c != nullptr, "gemm: null C with m, n > 0");
    if (alpha != 0.0f && k > 0) {
        GIST_ASSERT(a != nullptr, "gemm: null A with m, k > 0");
        GIST_ASSERT(b != nullptr, "gemm: null B with k, n > 0");
    }

    if (alpha == 0.0f || k == 0) {
        // No A*B contribution: C = beta * C (beta == 0 zero-fills, as
        // BLAS semantics require even for garbage/NaN input C).
        scaleC(m * n, beta, c);
        return;
    }

    // beta == 0 skips the separate zero/scale pass entirely; the panel
    // kernels write-initialize C instead.
    if (beta != 0.0f)
        scaleC(m * n, beta, c);

    parallelFor(0, m, kMC, [=](std::int64_t i0, std::int64_t i1) {
        if (!trans_b)
            panelNoTransB(i0, i1, n, k, trans_a, m, alpha, a, b, beta, c);
        else
            panelTransB(i0, i1, n, k, trans_a, m, alpha, a, b, beta, c);
    });
}

void
gemmPackedB(bool trans_a, std::int64_t m, std::int64_t n, std::int64_t k,
            float alpha, const float *a, const PackFn &b_pack, float beta,
            float *c)
{
    GIST_TRACE_SCOPE_F("compute", "gemm packed-b %lldx%lldx%lld",
                       static_cast<long long>(m),
                       static_cast<long long>(n),
                       static_cast<long long>(k));
    GIST_ASSERT(m >= 0 && n >= 0 && k >= 0, "bad gemm dims");
    if (m == 0 || n == 0)
        return;
    GIST_ASSERT(c != nullptr, "gemm: null C with m, n > 0");
    if (alpha == 0.0f || k == 0) {
        scaleC(m * n, beta, c);
        return;
    }
    GIST_ASSERT(a != nullptr, "gemm: null A with m, k > 0");
    if (beta != 0.0f)
        scaleC(m * n, beta, c);

    // The kc-slice loop sits OUTSIDE the row-panel parallelFor (the
    // inverse of panelNoTransB's nesting) so each B slice is decoded
    // exactly once per call, not once per panel. Per C element the
    // contribution order is still kc slices ascending, p ascending —
    // identical to the dense nesting.
    ArenaScope scope;
    float *b_tile =
        scope.alloc<float>(static_cast<size_t>(kKC) *
                           static_cast<size_t>(n));
    for (std::int64_t pc = 0; pc < k; pc += kKC) {
        const std::int64_t kc = std::min(kKC, k - pc);
        b_pack(pc * n, b_tile, kc * n);
        parallelFor(0, m, kMC,
                    [&, pc, kc](std::int64_t i0, std::int64_t i1) {
            ArenaScope panel_scope;
            float *a_pack = nullptr;
            if (trans_a) {
                a_pack = panel_scope.alloc<float>(
                    static_cast<size_t>((i1 - i0) * kc));
                for (std::int64_t i = i0; i < i1; ++i)
                    for (std::int64_t p = 0; p < kc; ++p)
                        a_pack[static_cast<size_t>((i - i0) * kc + p)] =
                            a[(pc + p) * m + i];
            }
            const auto axpy = simd::ops().axpy;
            for (std::int64_t jc = 0; jc < n; jc += kNC) {
                const std::int64_t nc = std::min(kNC, n - jc);
                for (std::int64_t i = i0; i < i1; ++i) {
                    float *c_row = c + i * n + jc;
                    if (beta == 0.0f && pc == 0)
                        std::memset(c_row, 0,
                                    static_cast<size_t>(nc) *
                                        sizeof(float));
                    const float *a_row = trans_a
                                             ? a_pack + (i - i0) * kc
                                             : a + i * k + pc;
                    for (std::int64_t p = 0; p < kc; ++p) {
                        const float a_val = alpha * a_row[p];
                        if (a_val == 0.0f)
                            continue;
                        axpy(nc, a_val, b_tile + p * n + jc, c_row);
                    }
                }
            }
        });
    }
}

void
gemmCsrA(std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
         const CsrConstView &a, const float *b, float beta, float *c)
{
    GIST_TRACE_SCOPE_F("compute", "gemm csr-a %lldx%lldx%lld",
                       static_cast<long long>(m),
                       static_cast<long long>(n),
                       static_cast<long long>(k));
    GIST_ASSERT(m >= 0 && n >= 0 && k >= 0, "bad gemm dims");
    if (m == 0 || n == 0)
        return;
    GIST_ASSERT(c != nullptr, "gemm: null C with m, n > 0");
    if (alpha == 0.0f || k == 0) {
        scaleC(m * n, beta, c);
        return;
    }
    GIST_ASSERT(a.numel == m * k, "csr A holds ", a.numel,
                " values, expected ", m * k);
    GIST_ASSERT(b != nullptr, "gemm: null B with k, n > 0");
    if (beta != 0.0f)
        scaleC(m * n, beta, c);

    const std::int64_t est_work = a.nnz * n;
    const std::int64_t grain =
        est_work < kMinCsrParallelWork ? m : kMC;
    // A-column block: the B rows a block can reach form an L2-resident
    // slab that all rows of a panel reuse, instead of each row sweeping
    // the whole of B (the dense path's KC slicing, adapted to the
    // gathered entry lists).
    const std::int64_t block_k = std::max<std::int64_t>(
        64, kCsrBSlabBytes /
                (static_cast<std::int64_t>(sizeof(float)) * n));
    parallelFor(0, m, grain, [&](std::int64_t i0, std::int64_t i1) {
        const auto axpy = simd::ops().axpy;
        for (std::int64_t ip = i0; ip < i1; ip += kMC) {
            const std::int64_t ie = std::min(ip + kMC, i1);
            const std::int64_t rows = ie - ip;
            ArenaScope scope;
            // Exact per-panel entry bound straight from row_ptr (the
            // CSR chunk rows overlapping the panel's flat range).
            const std::int64_t rp0 = (ip * k) / a.row_width;
            const std::int64_t rp1 = (ie * k - 1) / a.row_width;
            const std::int64_t bound =
                static_cast<std::int64_t>(
                    a.row_ptr[static_cast<size_t>(rp1 + 1)]) -
                static_cast<std::int64_t>(
                    a.row_ptr[static_cast<size_t>(rp0)]);
            auto *p_idx = scope.alloc<std::int32_t>(
                static_cast<size_t>(std::max<std::int64_t>(bound, 1)));
            float *p_val = scope.alloc<float>(
                static_cast<size_t>(std::max<std::int64_t>(bound, 1)));
            auto *start =
                scope.alloc<std::int64_t>(static_cast<size_t>(rows) + 1);
            auto *cur =
                scope.alloc<std::int64_t>(static_cast<size_t>(rows));
            float *vals =
                scope.alloc<float>(static_cast<size_t>(a.row_width));
            // Stage 1 — per-row value prefetch: decode each row's
            // surviving (p, alpha * value) pairs once, in ascending
            // flat order (the order the dense path visits and skips
            // them), packed panel-contiguously.
            std::int64_t cnt = 0;
            for (std::int64_t i = ip; i < ie; ++i) {
                start[i - ip] = cnt;
                if (beta == 0.0f)
                    std::memset(c + i * n, 0,
                                static_cast<size_t>(n) * sizeof(float));
                const std::int64_t flat0 = i * k;
                const std::int64_t r0 = flat0 / a.row_width;
                const std::int64_t r1 = (flat0 + k - 1) / a.row_width;
                for (std::int64_t r = r0; r <= r1; ++r) {
                    const auto k0 = static_cast<std::int64_t>(
                        a.row_ptr[static_cast<size_t>(r)]);
                    const auto k1 = static_cast<std::int64_t>(
                        a.row_ptr[static_cast<size_t>(r + 1)]);
                    if (k0 == k1)
                        continue;
                    csrValues(a, k0, k1, vals);
                    const std::int64_t row_base = r * a.row_width;
                    for (std::int64_t kk = k0; kk < k1; ++kk) {
                        const std::int64_t flat =
                            row_base +
                            static_cast<std::int64_t>(csrColAt(a, kk));
                        if (flat < flat0 || flat >= flat0 + k)
                            continue;
                        // Lossy-valued entries can decode to zero; the
                        // dense path's a_val == 0 skip drops those, so
                        // drop them here too.
                        const float a_val = alpha * vals[kk - k0];
                        if (a_val == 0.0f)
                            continue;
                        p_idx[cnt] =
                            static_cast<std::int32_t>(flat - flat0);
                        p_val[cnt] = a_val;
                        ++cnt;
                    }
                }
            }
            start[rows] = cnt;
            // Stage 2 — blocked accumulation: A-column blocks ascending,
            // each row's entries within a block ascending, the dense
            // path's NC tiling inside. Per C element the contribution
            // order is still p ascending with axpy arguments identical
            // to the dense reference, so results stay bitwise-identical
            // at any thread count.
            for (std::int64_t r = 0; r < rows; ++r)
                cur[r] = start[r];
            for (std::int64_t pc = 0; pc < k; pc += block_k) {
                const std::int64_t pend = std::min(pc + block_k, k);
                for (std::int64_t r = 0; r < rows; ++r) {
                    const std::int64_t t0 = cur[r];
                    const std::int64_t stop = start[r + 1];
                    std::int64_t t1 = t0;
                    while (t1 < stop && p_idx[t1] < pend)
                        ++t1;
                    cur[r] = t1;
                    if (t0 == t1)
                        continue;
                    float *c_row = c + (ip + r) * n;
                    for (std::int64_t jc = 0; jc < n; jc += kNC) {
                        const std::int64_t nc = std::min(kNC, n - jc);
                        for (std::int64_t t = t0; t < t1; ++t) {
                            if (t + kCsrPrefetchDist < t1)
                                prefetchRead(
                                    b +
                                    p_idx[t + kCsrPrefetchDist] * n +
                                    jc);
                            axpy(nc, p_val[t], b + p_idx[t] * n + jc,
                                 c_row + jc);
                        }
                    }
                }
            }
        }
    });
}

} // namespace gist
