/**
 * @file
 * Non-owning pack-source callable for fused operand consumption: the
 * hook gemmPackedB / im2colPacked use to pull an encoded stash's values
 * tile-by-tile straight into their pack buffers, so no dense FP32 copy
 * of the operand is ever materialized.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>

namespace gist {

/**
 * Callable filling dst[0..n) with an operand's flat values
 * [offset, offset + n). Mirrors util/parallel.hpp's RangeFn: a
 * non-owning reference (two pointer stores, never a heap allocation) —
 * the consumers are fully synchronous, so the callee always outlives
 * the call expression.
 */
class PackFn
{
  public:
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, PackFn> &&
                  std::is_invocable_v<F &, std::int64_t, float *,
                                      std::int64_t>>>
    PackFn(F &&f) // NOLINT: implicit by design, mirrors RangeFn
        : obj_(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          call_([](void *obj, std::int64_t offset, float *dst,
                   std::int64_t n) {
              (*static_cast<std::remove_reference_t<F> *>(obj))(offset,
                                                                dst, n);
          })
    {
    }

    void
    operator()(std::int64_t offset, float *dst, std::int64_t n) const
    {
        call_(obj_, offset, dst, n);
    }

  private:
    void *obj_;
    void (*call_)(void *, std::int64_t, float *, std::int64_t);
};

} // namespace gist
