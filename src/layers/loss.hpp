/**
 * @file
 * Softmax + cross-entropy loss head. Stashes the row-wise probabilities
 * as aux (its backward is (p - onehot)/N, needing neither X nor Y).
 */

#pragma once

#include <vector>

#include "graph/executor.hpp"

namespace gist {

/** Fused softmax + mean cross-entropy against integer labels. */
class SoftmaxCrossEntropyLayer : public LossLayer
{
  public:
    explicit SoftmaxCrossEntropyLayer(std::int64_t num_classes);

    LayerKind kind() const override { return LayerKind::SoftmaxLoss; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { false, false }; }
    std::uint64_t auxStashBytes(std::span<const Shape> in) const override;
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
    void releaseAuxStash() override;

    void setLabels(std::span<const std::int32_t> labels_in) override;
    float lastLoss() const override { return loss; }

    /** Row-wise probabilities of the last forward pass. */
    const std::vector<float> &probabilities() const { return probs; }

  private:
    std::int64_t num_classes;
    std::vector<std::int32_t> labels;
    std::vector<float> probs; ///< aux stash
    std::int64_t rows = 0;
    float loss = 0.0f;
};

} // namespace gist
