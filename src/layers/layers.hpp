/**
 * @file
 * Umbrella header for all concrete layer types.
 */

#pragma once

#include "layers/activation.hpp"
#include "layers/batchnorm.hpp"
#include "layers/conv.hpp"
#include "layers/fc.hpp"
#include "layers/loss.hpp"
#include "layers/lrn.hpp"
#include "layers/pool.hpp"
#include "layers/relu.hpp"
#include "layers/structural.hpp"
