/**
 * @file
 * Local Response Normalization across channels (AlexNet-style):
 *   y_i = x_i / (k + (alpha/n) * sum_{j in window(i)} x_j^2)^beta
 *
 * Backward needs both the stashed input X and output Y, so LRN feature
 * maps land in the "Others" stash category (DPR targets).
 */

#pragma once

#include "graph/layer.hpp"

namespace gist {

/** Across-channel LRN layer. */
class LrnLayer : public Layer
{
  public:
    explicit LrnLayer(std::int64_t window = 5, float alpha = 1e-4f,
                      float beta = 0.75f, float k = 2.0f);

    LayerKind kind() const override { return LayerKind::Lrn; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { true, true }; }
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;

  private:
    /** k + (alpha/n) * windowed sum of squares at (channel c). */
    float scaleAt(const float *x_pix, std::int64_t channels,
                  std::int64_t plane, std::int64_t c) const;

    std::int64_t window;
    float alpha;
    float beta;
    float k;
};

} // namespace gist
