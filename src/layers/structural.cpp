#include "layers/structural.hpp"

#include <cstring>

#include "tensor/ops.hpp"
#include "util/bits.hpp"
#include "util/logging.hpp"

namespace gist {

// ---------------------------------------------------------------- Concat

Shape
ConcatLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() >= 2, "concat takes at least two inputs");
    std::int64_t channels = 0;
    for (const auto &s : in) {
        GIST_ASSERT(s.rank() == 4, "concat expects NCHW inputs");
        GIST_ASSERT(s.n() == in[0].n() && s.h() == in[0].h() &&
                        s.w() == in[0].w(),
                    "concat inputs disagree: ", in[0].toString(), " vs ",
                    s.toString());
        channels += s.c();
    }
    return Shape::nchw(in[0].n(), channels, in[0].h(), in[0].w());
}

void
ConcatLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() >= 2 && ctx.output, "concat fwd args");
    Tensor &y = *ctx.output;
    const auto &out_shape = y.shape();
    const std::int64_t plane = out_shape.h() * out_shape.w();
    for (std::int64_t n = 0; n < out_shape.n(); ++n) {
        std::int64_t c_off = 0;
        for (const Tensor *x : ctx.inputs) {
            const std::int64_t c_in = x->shape().c();
            std::memcpy(y.data() + (n * out_shape.c() + c_off) * plane,
                        x->data() + n * c_in * plane,
                        static_cast<size_t>(c_in * plane) * sizeof(float));
            c_off += c_in;
        }
    }
}

void
ConcatLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.d_output, "concat backward needs dY");
    const Tensor &dy = *ctx.d_output;
    const auto &out_shape = dy.shape();
    const std::int64_t plane = out_shape.h() * out_shape.w();
    for (std::int64_t n = 0; n < out_shape.n(); ++n) {
        std::int64_t c_off = 0;
        for (Tensor *dx : ctx.d_inputs) {
            // Channel count comes from the gradient tensor's own shape.
            GIST_ASSERT(dx, "concat inputs always need gradients");
            const std::int64_t c_in = dx->shape().c();
            const float *src =
                dy.data() + (n * out_shape.c() + c_off) * plane;
            float *dst = dx->data() + n * c_in * plane;
            for (std::int64_t i = 0; i < c_in * plane; ++i)
                dst[i] += src[i];
            c_off += c_in;
        }
    }
}

// ------------------------------------------------------------------- Add

Shape
AddLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 2, "add takes two inputs");
    GIST_ASSERT(in[0] == in[1], "add inputs disagree: ", in[0].toString(),
                " vs ", in[1].toString());
    return in[0];
}

void
AddLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 2 && ctx.output, "add fwd args");
    add(ctx.inputs[0]->span(), ctx.inputs[1]->span(), ctx.output->span());
}

void
AddLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.d_output, "add backward needs dY");
    for (Tensor *dx : ctx.d_inputs)
        if (dx)
            accumulate(ctx.d_output->span(), dx->span());
}

// --------------------------------------------------------------- Dropout

DropoutLayer::DropoutLayer(float drop_prob_n, std::uint64_t seed)
    : drop_prob(drop_prob_n), inv_keep(1.0f / (1.0f - drop_prob_n)),
      rng(seed)
{
    GIST_ASSERT(drop_prob >= 0.0f && drop_prob < 1.0f, "bad dropout prob ",
                drop_prob);
}

Shape
DropoutLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "dropout takes one input");
    return in[0];
}

std::uint64_t
DropoutLayer::auxStashBytes(std::span<const Shape> in) const
{
    return binarizeBytes(in[0].numel());
}

void
DropoutLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "dropout fwd args");
    const auto x = ctx.inputs[0]->span();
    const auto y = ctx.output->span();
    if (!ctx.training) {
        std::memcpy(y.data(), x.data(), x.size() * sizeof(float));
        return;
    }
    if (ctx.replay) {
        // Re-apply the captured mask: advancing the RNG here would both
        // change this output and desync every later minibatch's draws.
        GIST_ASSERT(keep_mask.numel() ==
                        static_cast<std::int64_t>(x.size()),
                    "dropout replay without a captured mask");
        for (size_t i = 0; i < x.size(); ++i)
            y[i] = keep_mask.positive(static_cast<std::int64_t>(i))
                       ? x[i] * inv_keep
                       : 0.0f;
        return;
    }
    keep_mask.resize(static_cast<std::int64_t>(x.size()));
    for (size_t i = 0; i < x.size(); ++i) {
        const bool keep = rng.uniform() >= drop_prob;
        keep_mask.set(static_cast<std::int64_t>(i), keep);
        y[i] = keep ? x[i] * inv_keep : 0.0f;
    }
}

void
DropoutLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.d_output, "dropout backward needs dY");
    Tensor *dx = ctx.d_inputs[0];
    if (!dx)
        return;
    GIST_ASSERT(keep_mask.numel() == dx->numel(),
                "dropout mask not captured for this minibatch");
    const auto dy = ctx.d_output->span();
    const auto dxs = dx->span();
    for (size_t i = 0; i < dy.size(); ++i)
        if (keep_mask.positive(static_cast<std::int64_t>(i)))
            dxs[i] += dy[i] * inv_keep;
}

void
DropoutLayer::releaseAuxStash()
{
    keep_mask.clear();
}

// --------------------------------------------------------------- Flatten

Shape
FlattenLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "flatten takes one input");
    const std::int64_t batch = in[0].dim(0);
    return Shape{ batch, in[0].numel() / batch };
}

void
FlattenLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "flatten fwd args");
    std::memcpy(ctx.output->data(), ctx.inputs[0]->data(),
                static_cast<size_t>(ctx.inputs[0]->numel()) *
                    sizeof(float));
}

void
FlattenLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.d_output, "flatten backward needs dY");
    if (Tensor *dx = ctx.d_inputs[0])
        accumulate(ctx.d_output->span(), dx->span());
}

} // namespace gist
