/**
 * @file
 * Fully-connected layer (flattens any NCHW input to N x features).
 * Backward needs its stashed input X for the weight gradient, so FC
 * inputs land in the "Others" stash category (DPR territory).
 */

#pragma once

#include "graph/layer.hpp"

namespace gist {

/** Fully-connected (inner product) layer. */
class FcLayer : public Layer
{
  public:
    FcLayer(std::int64_t in_features, std::int64_t out_features,
            bool bias = true);

    LayerKind kind() const override { return LayerKind::Fc; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { true, false }; }
    void initParams(Rng &rng) override;
    std::vector<Tensor *> params() override;
    std::vector<Tensor *> paramGrads() override;
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;

  private:
    /** Row-sparse dW from a CSR-encoded X stash (compute ~ nnz). */
    void sparseFcDw(const CsrConstView &stash, std::int64_t batch,
                    const float *dy);

    std::int64_t in_features;
    std::int64_t out_features;
    bool has_bias;
    Tensor weight; ///< (out, in)
    Tensor bias_;  ///< (out)
    Tensor d_weight;
    Tensor d_bias;
};

} // namespace gist
