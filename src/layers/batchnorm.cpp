#include "layers/batchnorm.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gist {

BatchNormLayer::BatchNormLayer(std::int64_t channels_n, float eps_n,
                               float momentum_n)
    : channels(channels_n), eps(eps_n), momentum(momentum_n)
{
    GIST_ASSERT(channels > 0, "bad batchnorm channel count");
    gamma = Tensor::placeholder(Shape{ channels });
    beta = Tensor::placeholder(Shape{ channels });
    d_gamma = Tensor::placeholder(Shape{ channels });
    d_beta = Tensor::placeholder(Shape{ channels });
    running_mean = Tensor::placeholder(Shape{ channels });
    running_var = Tensor::placeholder(Shape{ channels });
}

Shape
BatchNormLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "batchnorm takes one input");
    GIST_ASSERT(in[0].rank() == 4 && in[0].c() == channels,
                "batchnorm expects NCHW with ", channels, " channels");
    return in[0];
}

void
BatchNormLayer::initParams(Rng &rng)
{
    (void)rng;
    gamma.reallocate();
    for (std::int64_t i = 0; i < channels; ++i)
        gamma.at(i) = 1.0f;
    beta.reallocate();
    d_gamma.reallocate();
    d_beta.reallocate();
    running_mean.reallocate();
    running_var.reallocate();
    for (std::int64_t i = 0; i < channels; ++i)
        running_var.at(i) = 1.0f;
}

std::vector<Tensor *>
BatchNormLayer::params()
{
    return { &gamma, &beta };
}

std::vector<Tensor *>
BatchNormLayer::paramGrads()
{
    return { &d_gamma, &d_beta };
}

std::vector<Tensor *>
BatchNormLayer::stateTensors()
{
    return { &running_mean, &running_var };
}

std::uint64_t
BatchNormLayer::auxStashBytes(std::span<const Shape> in) const
{
    (void)in;
    return static_cast<std::uint64_t>(channels) * 2 * 4;
}

void
BatchNormLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "bn forward args");
    const Tensor &x = *ctx.inputs[0];
    Tensor &y = *ctx.output;
    const auto &s = x.shape();
    const std::int64_t plane = s.h() * s.w();
    const std::int64_t m = s.n() * plane;

    saved_mean.assign(static_cast<size_t>(channels), 0.0f);
    saved_invstd.assign(static_cast<size_t>(channels), 0.0f);

    for (std::int64_t c = 0; c < channels; ++c) {
        float mean_c;
        float invstd_c;
        if (ctx.training) {
            double sum = 0.0;
            for (std::int64_t n = 0; n < s.n(); ++n) {
                const float *p = x.data() + (n * channels + c) * plane;
                for (std::int64_t i = 0; i < plane; ++i)
                    sum += p[i];
            }
            mean_c = static_cast<float>(sum / static_cast<double>(m));
            double var_sum = 0.0;
            for (std::int64_t n = 0; n < s.n(); ++n) {
                const float *p = x.data() + (n * channels + c) * plane;
                for (std::int64_t i = 0; i < plane; ++i) {
                    const double d = p[i] - mean_c;
                    var_sum += d * d;
                }
            }
            const float var_c =
                static_cast<float>(var_sum / static_cast<double>(m));
            invstd_c = 1.0f / std::sqrt(var_c + eps);
            // A recompute replay re-derives the minibatch statistics
            // (bitwise, same deterministic accumulation) but must not
            // fold them into the running averages a second time.
            if (!ctx.replay) {
                running_mean.at(c) = momentum * running_mean.at(c) +
                                     (1 - momentum) * mean_c;
                running_var.at(c) =
                    momentum * running_var.at(c) + (1 - momentum) * var_c;
            }
            saved_mean[static_cast<size_t>(c)] = mean_c;
            saved_invstd[static_cast<size_t>(c)] = invstd_c;
        } else {
            mean_c = running_mean.at(c);
            invstd_c = 1.0f / std::sqrt(running_var.at(c) + eps);
        }
        const float g = gamma.at(c);
        const float b = beta.at(c);
        for (std::int64_t n = 0; n < s.n(); ++n) {
            const float *xp = x.data() + (n * channels + c) * plane;
            float *yp = y.data() + (n * channels + c) * plane;
            for (std::int64_t i = 0; i < plane; ++i)
                yp[i] = g * (xp[i] - mean_c) * invstd_c + b;
        }
    }
}

void
BatchNormLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.inputs[0] && ctx.d_output,
                "bn backward needs stashed X and dY");
    GIST_ASSERT(!saved_mean.empty(),
                "bn statistics not captured for this minibatch");
    const Tensor &x = *ctx.inputs[0];
    const Tensor &dy = *ctx.d_output;
    Tensor *dx = ctx.d_inputs[0];
    const auto &s = x.shape();
    const std::int64_t plane = s.h() * s.w();
    const std::int64_t m = s.n() * plane;
    const float inv_m = 1.0f / static_cast<float>(m);

    for (std::int64_t c = 0; c < channels; ++c) {
        const float mean_c = saved_mean[static_cast<size_t>(c)];
        const float invstd_c = saved_invstd[static_cast<size_t>(c)];
        double dg = 0.0;
        double db = 0.0;
        for (std::int64_t n = 0; n < s.n(); ++n) {
            const float *xp = x.data() + (n * channels + c) * plane;
            const float *dyp = dy.data() + (n * channels + c) * plane;
            for (std::int64_t i = 0; i < plane; ++i) {
                const float xhat = (xp[i] - mean_c) * invstd_c;
                dg += static_cast<double>(dyp[i]) * xhat;
                db += dyp[i];
            }
        }
        d_gamma.at(c) = static_cast<float>(dg);
        d_beta.at(c) = static_cast<float>(db);
        if (!dx)
            continue;
        const float g = gamma.at(c);
        const float dgf = static_cast<float>(dg);
        const float dbf = static_cast<float>(db);
        for (std::int64_t n = 0; n < s.n(); ++n) {
            const float *xp = x.data() + (n * channels + c) * plane;
            const float *dyp = dy.data() + (n * channels + c) * plane;
            float *dxp = dx->data() + (n * channels + c) * plane;
            for (std::int64_t i = 0; i < plane; ++i) {
                const float xhat = (xp[i] - mean_c) * invstd_c;
                dxp[i] += g * invstd_c * inv_m *
                          (static_cast<float>(m) * dyp[i] - dbf -
                           xhat * dgf);
            }
        }
    }
}

void
BatchNormLayer::releaseAuxStash()
{
    saved_mean.clear();
    saved_invstd.clear();
}

} // namespace gist
