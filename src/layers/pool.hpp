/**
 * @file
 * Max and average pooling.
 *
 * MaxPool has two stash modes (paper Section IV-A):
 *  - Dense (baseline CNTK): stashes both its input X and output Y and
 *    recovers the max locations in the backward pass by scanning.
 *  - IndexMap (Gist/Binarize): records a Y->X argmax map (4 bits per
 *    output element) during forward, removing the backward dependence on
 *    X and Y entirely.
 *
 * AvgPool's backward needs only dY and geometry, so nothing is stashed.
 */

#pragma once

#include "encodings/pool_index_map.hpp"
#include "graph/layer.hpp"
#include "tensor/im2col.hpp"

namespace gist {

/** Pooling window hyperparameters. */
struct PoolSpec
{
    std::int64_t kernel_h = 0;
    std::int64_t kernel_w = 0;
    std::int64_t stride_h = 1;
    std::int64_t stride_w = 1;
    std::int64_t pad_h = 0;
    std::int64_t pad_w = 0;

    static PoolSpec
    square(std::int64_t k, std::int64_t stride, std::int64_t pad = 0)
    {
        return PoolSpec{ k, k, stride, stride, pad, pad };
    }
};

/** Max pooling layer. */
class MaxPoolLayer : public Layer
{
  public:
    enum class StashMode { Dense, IndexMap };

    explicit MaxPoolLayer(PoolSpec spec) : spec_(spec) {}

    void setStashMode(StashMode mode) { stash_mode = mode; }
    StashMode stashMode() const { return stash_mode; }

    LayerKind kind() const override { return LayerKind::MaxPool; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override
    {
        const bool dense = stash_mode == StashMode::Dense;
        return { dense, dense };
    }
    std::uint64_t auxStashBytes(std::span<const Shape> in) const override;
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
    void releaseAuxStash() override;

    const PoolSpec &spec() const { return spec_; }

  private:
    ConvGeometry geometry(const Shape &in) const;

    PoolSpec spec_;
    StashMode stash_mode = StashMode::Dense;
    PoolIndexMap index_map;
};

/** Average pooling layer (use kernel == spatial dims for global pooling). */
class AvgPoolLayer : public Layer
{
  public:
    explicit AvgPoolLayer(PoolSpec spec) : spec_(spec) {}

    LayerKind kind() const override { return LayerKind::AvgPool; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { false, false }; }
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;

    const PoolSpec &spec() const { return spec_; }

  private:
    ConvGeometry geometry(const Shape &in) const;

    PoolSpec spec_;
    Shape last_in_shape; ///< remembered for backward (shapes only)
};

} // namespace gist
