#include "layers/fc.hpp"

#include <cmath>
#include <cstring>

#include "memory/arena.hpp"
#include "simd/dispatch.hpp"
#include "tensor/gemm.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gist {

FcLayer::FcLayer(std::int64_t in_features_n, std::int64_t out_features_n,
                 bool bias)
    : in_features(in_features_n), out_features(out_features_n),
      has_bias(bias)
{
    GIST_ASSERT(in_features > 0 && out_features > 0, "bad fc dims");
    weight = Tensor::placeholder(Shape{ out_features, in_features });
    bias_ = Tensor::placeholder(Shape{ out_features });
    d_weight = Tensor::placeholder(weight.shape());
    d_bias = Tensor::placeholder(bias_.shape());
}

Shape
FcLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "fc takes one input");
    const std::int64_t batch = in[0].dim(0);
    const std::int64_t features = in[0].numel() / batch;
    GIST_ASSERT(features == in_features, "fc expects ", in_features,
                " features, got ", features, " from ", in[0].toString());
    return Shape{ batch, out_features };
}

void
FcLayer::initParams(Rng &rng)
{
    const float stddev = static_cast<float>(
        std::sqrt(2.0 / static_cast<double>(in_features)));
    weight.reallocate();
    for (std::int64_t i = 0; i < weight.numel(); ++i)
        weight.at(i) = rng.normal(0.0f, stddev);
    bias_.reallocate();
    d_weight.reallocate();
    d_bias.reallocate();
}

std::vector<Tensor *>
FcLayer::params()
{
    if (has_bias)
        return { &weight, &bias_ };
    return { &weight };
}

std::vector<Tensor *>
FcLayer::paramGrads()
{
    if (has_bias)
        return { &d_weight, &d_bias };
    return { &d_weight };
}

void
FcLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "fc forward args");
    const Tensor &x = *ctx.inputs[0];
    Tensor &y = *ctx.output;
    const std::int64_t batch = x.shape().dim(0);
    // Y (batch x out) = X (batch x in) * W^T (in x out)
    gemm(false, true, batch, out_features, in_features, 1.0f, x.data(),
         weight.data(), 0.0f, y.data());
    if (has_bias) {
        for (std::int64_t r = 0; r < batch; ++r) {
            float *row = y.data() + r * out_features;
            for (std::int64_t c = 0; c < out_features; ++c)
                row[c] += bias_.at(c);
        }
    }
}

void
FcLayer::sparseFcDw(const CsrConstView &stash, std::int64_t batch,
                    const float *dy)
{
    GIST_ASSERT(stash.numel == batch * in_features,
                "fc stash holds ", stash.numel, " values, expected ",
                batch * in_features);
    const std::int64_t out = out_features;
    const std::int64_t in = in_features;
    ArenaScope scope;
    // Accumulate dW^T (in x out) so each nonzero contributes one
    // contiguous axpy over output features: dW^T[i] += v * dY[b] for a
    // stored X[b][i] = v. Output-feature slices are race-free parallel
    // units; every slice walks the nonzeros in the same ascending flat
    // order, so results are thread-count independent.
    float *dw_t = scope.alloc<float>(static_cast<size_t>(in * out));
    std::memset(dw_t, 0, static_cast<size_t>(in * out) * sizeof(float));
    parallelFor(0, out, chooseGrain(out, 64),
                [&](std::int64_t jc0, std::int64_t jc1) {
        ArenaScope inner;
        float *vals =
            inner.alloc<float>(static_cast<size_t>(stash.row_width));
        const auto axpy = simd::ops().axpy;
        const std::int64_t nc = jc1 - jc0;
        for (std::int64_t r = 0; r < stash.rows; ++r) {
            const auto k0 = static_cast<std::int64_t>(
                stash.row_ptr[static_cast<size_t>(r)]);
            const auto k1 = static_cast<std::int64_t>(
                stash.row_ptr[static_cast<size_t>(r + 1)]);
            if (k0 == k1)
                continue;
            csrValues(stash, k0, k1, vals);
            const std::int64_t row_base = r * stash.row_width;
            for (std::int64_t kk = k0; kk < k1; ++kk) {
                const float v = vals[kk - k0];
                if (v == 0.0f)
                    continue;
                const std::int64_t flat =
                    row_base +
                    static_cast<std::int64_t>(csrColAt(stash, kk));
                const std::int64_t b = flat / in;
                const std::int64_t i = flat % in;
                axpy(nc, v, dy + b * out + jc0, dw_t + i * out + jc0);
            }
        }
    });
    float *dw = d_weight.data();
    for (std::int64_t oc = 0; oc < out; ++oc)
        for (std::int64_t i = 0; i < in; ++i)
            dw[oc * in + i] = dw_t[i * out + oc];
}

void
FcLayer::backward(const BwdCtx &ctx)
{
    const Tensor *x = ctx.inputs.empty() ? nullptr : ctx.inputs[0];
    const EncodedStash x_enc =
        ctx.encoded_inputs.empty() ? EncodedStash{} : ctx.encoded_inputs[0];
    GIST_ASSERT(ctx.inputs.size() == 1 && (x || x_enc.valid()) &&
                    ctx.d_output,
                "fc backward needs stashed X (dense or encoded) and dY");
    const Tensor &dy = *ctx.d_output;
    const std::int64_t batch = dy.shape().dim(0);

    if (x) {
        // dW = dY^T (out x batch) * X (batch x in)
        gemm(true, false, out_features, in_features, batch, 1.0f,
             dy.data(), x->data(), 0.0f, d_weight.data());
    } else if (x_enc.fused && x_enc.sparse_compute && x_enc.csr) {
        sparseFcDw(x_enc.csr->view(), batch, dy.data());
    } else if (x_enc.fused) {
        // X stays encoded: each KC-row slice of it is decoded once into
        // arena scratch inside the GEMM — bitwise-identical to decoding
        // X fully, without the batch * in_features FP32 buffer.
        const auto pack = [&](std::int64_t offset, float *dst,
                              std::int64_t n) {
            x_enc.decodeRange(offset,
                              { dst, static_cast<size_t>(n) });
        };
        gemmPackedB(true, out_features, in_features, batch, 1.0f,
                    dy.data(), pack, 0.0f, d_weight.data());
    } else {
        ArenaScope scope;
        const std::int64_t n = batch * in_features;
        float *x_scratch = scope.alloc<float>(static_cast<size_t>(n));
        x_enc.decodeRange(0, { x_scratch, static_cast<size_t>(n) });
        gemm(true, false, out_features, in_features, batch, 1.0f,
             dy.data(), x_scratch, 0.0f, d_weight.data());
    }
    if (has_bias) {
        d_bias.setZero();
        for (std::int64_t r = 0; r < batch; ++r) {
            const float *row = dy.data() + r * out_features;
            for (std::int64_t c = 0; c < out_features; ++c)
                d_bias.at(c) += row[c];
        }
    }
    if (Tensor *dx = ctx.d_inputs[0]) {
        // dX += dY (batch x out) * W (out x in)
        gemm(false, false, batch, in_features, out_features, 1.0f,
             dy.data(), weight.data(), 1.0f, dx->data());
    }
}

} // namespace gist
