#include "layers/fc.hpp"

#include <cmath>

#include "tensor/gemm.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace gist {

FcLayer::FcLayer(std::int64_t in_features_n, std::int64_t out_features_n,
                 bool bias)
    : in_features(in_features_n), out_features(out_features_n),
      has_bias(bias)
{
    GIST_ASSERT(in_features > 0 && out_features > 0, "bad fc dims");
    weight = Tensor::placeholder(Shape{ out_features, in_features });
    bias_ = Tensor::placeholder(Shape{ out_features });
    d_weight = Tensor::placeholder(weight.shape());
    d_bias = Tensor::placeholder(bias_.shape());
}

Shape
FcLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "fc takes one input");
    const std::int64_t batch = in[0].dim(0);
    const std::int64_t features = in[0].numel() / batch;
    GIST_ASSERT(features == in_features, "fc expects ", in_features,
                " features, got ", features, " from ", in[0].toString());
    return Shape{ batch, out_features };
}

void
FcLayer::initParams(Rng &rng)
{
    const float stddev = static_cast<float>(
        std::sqrt(2.0 / static_cast<double>(in_features)));
    weight.reallocate();
    for (std::int64_t i = 0; i < weight.numel(); ++i)
        weight.at(i) = rng.normal(0.0f, stddev);
    bias_.reallocate();
    d_weight.reallocate();
    d_bias.reallocate();
}

std::vector<Tensor *>
FcLayer::params()
{
    if (has_bias)
        return { &weight, &bias_ };
    return { &weight };
}

std::vector<Tensor *>
FcLayer::paramGrads()
{
    if (has_bias)
        return { &d_weight, &d_bias };
    return { &d_weight };
}

void
FcLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "fc forward args");
    const Tensor &x = *ctx.inputs[0];
    Tensor &y = *ctx.output;
    const std::int64_t batch = x.shape().dim(0);
    // Y (batch x out) = X (batch x in) * W^T (in x out)
    gemm(false, true, batch, out_features, in_features, 1.0f, x.data(),
         weight.data(), 0.0f, y.data());
    if (has_bias) {
        for (std::int64_t r = 0; r < batch; ++r) {
            float *row = y.data() + r * out_features;
            for (std::int64_t c = 0; c < out_features; ++c)
                row[c] += bias_.at(c);
        }
    }
}

void
FcLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.inputs[0] && ctx.d_output,
                "fc backward needs stashed X and dY");
    const Tensor &x = *ctx.inputs[0];
    const Tensor &dy = *ctx.d_output;
    const std::int64_t batch = x.shape().dim(0);

    // dW = dY^T (out x batch) * X (batch x in)
    gemm(true, false, out_features, in_features, batch, 1.0f, dy.data(),
         x.data(), 0.0f, d_weight.data());
    if (has_bias) {
        d_bias.setZero();
        for (std::int64_t r = 0; r < batch; ++r) {
            const float *row = dy.data() + r * out_features;
            for (std::int64_t c = 0; c < out_features; ++c)
                d_bias.at(c) += row[c];
        }
    }
    if (Tensor *dx = ctx.d_inputs[0]) {
        // dX += dY (batch x out) * W (out x in)
        gemm(false, false, batch, in_features, out_features, 1.0f,
             dy.data(), weight.data(), 1.0f, dx->data());
    }
}

} // namespace gist
