#include "layers/loss.hpp"

#include <cmath>

#include "tensor/ops.hpp"
#include "util/logging.hpp"

namespace gist {

SoftmaxCrossEntropyLayer::SoftmaxCrossEntropyLayer(std::int64_t classes)
    : num_classes(classes)
{
    GIST_ASSERT(num_classes > 1, "need at least two classes");
}

Shape
SoftmaxCrossEntropyLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "loss takes one input (logits)");
    const std::int64_t batch = in[0].dim(0);
    GIST_ASSERT(in[0].numel() / batch == num_classes,
                "logits features != classes: ", in[0].toString());
    return Shape{ 1 };
}

std::uint64_t
SoftmaxCrossEntropyLayer::auxStashBytes(std::span<const Shape> in) const
{
    return static_cast<std::uint64_t>(in[0].numel()) * 4;
}

void
SoftmaxCrossEntropyLayer::setLabels(std::span<const std::int32_t> labels_in)
{
    labels.assign(labels_in.begin(), labels_in.end());
}

void
SoftmaxCrossEntropyLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "loss fwd args");
    const Tensor &logits = *ctx.inputs[0];
    rows = logits.shape().dim(0);
    probs.resize(static_cast<size_t>(rows * num_classes));
    softmaxRows(logits.data(), probs.data(), rows, num_classes);

    loss = 0.0f;
    if (!labels.empty()) {
        GIST_ASSERT(static_cast<std::int64_t>(labels.size()) == rows,
                    "label count mismatch");
        for (std::int64_t r = 0; r < rows; ++r) {
            const float p =
                probs[static_cast<size_t>(r * num_classes + labels[r])];
            loss -= std::log(std::max(p, 1e-12f));
        }
        loss /= static_cast<float>(rows);
    }
    ctx.output->at(0) = loss;
}

void
SoftmaxCrossEntropyLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(!labels.empty(), "loss backward needs labels");
    GIST_ASSERT(!probs.empty(), "loss backward needs the forward probs");
    Tensor *dlogits = ctx.d_inputs[0];
    GIST_ASSERT(dlogits, "loss backward writes dlogits");
    const float inv_rows = 1.0f / static_cast<float>(rows);
    for (std::int64_t r = 0; r < rows; ++r) {
        const std::int32_t label = labels[static_cast<size_t>(r)];
        float *d = dlogits->data() + r * num_classes;
        const float *p = probs.data() + r * num_classes;
        for (std::int64_t c = 0; c < num_classes; ++c)
            d[c] += (p[c] - (c == label ? 1.0f : 0.0f)) * inv_rows;
    }
}

void
SoftmaxCrossEntropyLayer::releaseAuxStash()
{
    // The probabilities stay available for accuracy metrics; they are
    // tiny (N x classes) and overwritten next forward pass.
}

} // namespace gist
