/**
 * @file
 * Structural layers: channel Concat (Inception), elementwise Add (ResNet
 * shortcuts), Dropout, and Flatten. None of them needs a stashed feature
 * map in the backward pass; Dropout keeps a 1-bit keep-mask as aux stash.
 */

#pragma once

#include "encodings/binarize.hpp"
#include "graph/layer.hpp"
#include "util/rng.hpp"

namespace gist {

/** Concatenate inputs along the channel axis. */
class ConcatLayer : public Layer
{
  public:
    LayerKind kind() const override { return LayerKind::Concat; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { false, false }; }
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
};

/** Elementwise sum of two same-shape inputs (residual connection). */
class AddLayer : public Layer
{
  public:
    LayerKind kind() const override { return LayerKind::Add; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { false, false }; }
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
};

/** Inverted dropout with a 1-bit keep mask stashed for backward. */
class DropoutLayer : public Layer
{
  public:
    explicit DropoutLayer(float drop_prob, std::uint64_t seed = 1);

    LayerKind kind() const override { return LayerKind::Dropout; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { false, false }; }
    std::vector<Rng *> rngStreams() override { return { &rng }; }
    std::uint64_t auxStashBytes(std::span<const Shape> in) const override;
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
    void releaseAuxStash() override;

  private:
    float drop_prob;
    float inv_keep;
    Rng rng;
    BinarizedMask keep_mask;
};

/** Flatten NCHW to (N, C*H*W); a pure view change. */
class FlattenLayer : public Layer
{
  public:
    LayerKind kind() const override { return LayerKind::Flatten; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { false, false }; }
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
};

} // namespace gist
