/**
 * @file
 * 2-D convolution via im2col + GEMM (the dataflow of GEMM-based cuDNN
 * algorithms). The im2col column buffer is the cuDNN-workspace analogue
 * accounted for in paper Figure 1.
 *
 * Backward needs: the stashed *input* feature map X (for the weight
 * gradient) and dY — paper Figure 4(d). This is why Binarize cannot apply
 * to ReLU->Conv pairs and SSDC is used instead.
 */

#pragma once

#include <vector>

#include "graph/layer.hpp"
#include "tensor/im2col.hpp"

namespace gist {

/** Convolution hyperparameters. */
struct ConvSpec
{
    std::int64_t out_channels = 0;
    std::int64_t kernel_h = 0;
    std::int64_t kernel_w = 0;
    std::int64_t stride_h = 1;
    std::int64_t stride_w = 1;
    std::int64_t pad_h = 0;
    std::int64_t pad_w = 0;
    bool bias = true;

    static ConvSpec
    square(std::int64_t out_c, std::int64_t k, std::int64_t stride = 1,
           std::int64_t pad = 0, bool with_bias = true)
    {
        return ConvSpec{ out_c, k, k, stride, stride, pad, pad, with_bias };
    }
};

/** Conv2D layer. */
class ConvLayer : public Layer
{
  public:
    /** @param in_channels input channel count (fixes the weight shape). */
    ConvLayer(std::int64_t in_channels, ConvSpec spec);

    LayerKind kind() const override { return LayerKind::Conv; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { true, false }; }
    void initParams(Rng &rng) override;
    std::vector<Tensor *> params() override;
    std::vector<Tensor *> paramGrads() override;
    std::uint64_t workspaceBytes(std::span<const Shape> in) const override;
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;

    const ConvSpec &spec() const { return spec_; }
    std::int64_t inChannels() const { return in_c; }

  private:
    ConvGeometry geometry(const Shape &in) const;

    std::int64_t in_c;
    Shape last_in_shape; ///< remembered by forward for chunked backward
    ConvSpec spec_;
    Tensor weight;  ///< (out_c, in_c, kh, kw)
    Tensor bias_;   ///< (out_c)
    Tensor d_weight;
    Tensor d_bias;
};

} // namespace gist
