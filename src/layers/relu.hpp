/**
 * @file
 * ReLU activation with the Gist sign-mask mode.
 *
 * Paper Figure 4(b): ReLU backward computes dX = dY where Y > 0, so it
 * needs only the *sign* of its stashed output. In Dense mode (baseline)
 * the layer declares it needs Y; in Mask mode (Binarize, applied by the
 * Schedule Builder to ReLU->Pool pairs) it instead captures a 1-bit
 * positivity mask during forward and stops needing Y at all — the output
 * feature map becomes immediately-consumed.
 */

#pragma once

#include "encodings/binarize.hpp"
#include "graph/layer.hpp"

namespace gist {

/** ReLU layer. */
class ReluLayer : public Layer
{
  public:
    /** How the backward pass obtains the sign information. */
    enum class StashMode { Dense, Mask };

    ReluLayer() = default;

    void setStashMode(StashMode mode) { stash_mode = mode; }
    StashMode stashMode() const { return stash_mode; }

    LayerKind kind() const override { return LayerKind::Relu; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override
    {
        return { false, stash_mode == StashMode::Dense };
    }
    std::uint64_t auxStashBytes(std::span<const Shape> in) const override;
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
    void releaseAuxStash() override;

  private:
    StashMode stash_mode = StashMode::Dense;
    BinarizedMask mask; ///< populated in Mask mode during forward
};

} // namespace gist
