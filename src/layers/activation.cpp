#include "layers/activation.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace gist {

Shape
SigmoidLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "sigmoid takes one input");
    return in[0];
}

void
SigmoidLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "sigmoid fwd args");
    const auto x = ctx.inputs[0]->span();
    const auto y = ctx.output->span();
    for (size_t i = 0; i < x.size(); ++i)
        y[i] = 1.0f / (1.0f + std::exp(-x[i]));
}

void
SigmoidLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.output && ctx.d_output,
                "sigmoid backward needs stashed Y and dY");
    Tensor *dx = ctx.d_inputs[0];
    if (!dx)
        return;
    const auto y = ctx.output->span();
    const auto dy = ctx.d_output->span();
    const auto dxs = dx->span();
    for (size_t i = 0; i < y.size(); ++i)
        dxs[i] += dy[i] * y[i] * (1.0f - y[i]);
}

Shape
TanhLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "tanh takes one input");
    return in[0];
}

void
TanhLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "tanh fwd args");
    const auto x = ctx.inputs[0]->span();
    const auto y = ctx.output->span();
    for (size_t i = 0; i < x.size(); ++i)
        y[i] = std::tanh(x[i]);
}

void
TanhLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.output && ctx.d_output,
                "tanh backward needs stashed Y and dY");
    Tensor *dx = ctx.d_inputs[0];
    if (!dx)
        return;
    const auto y = ctx.output->span();
    const auto dy = ctx.d_output->span();
    const auto dxs = dx->span();
    for (size_t i = 0; i < y.size(); ++i)
        dxs[i] += dy[i] * (1.0f - y[i] * y[i]);
}

} // namespace gist
