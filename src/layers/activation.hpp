/**
 * @file
 * Non-ReLU activations (sigmoid, tanh). Their backward passes need the
 * actual stashed output values (dx = dy * f'(y)), and their outputs are
 * dense, so neither Binarize nor SSDC applies — the Schedule Builder
 * classifies them as "Other" and DPR is the only Gist encoding that
 * helps. Including them demonstrates (and tests) Gist's graceful
 * degradation outside the ReLU-CNN regime the paper targets.
 */

#pragma once

#include "graph/layer.hpp"

namespace gist {

/** Logistic sigmoid activation. */
class SigmoidLayer : public Layer
{
  public:
    LayerKind kind() const override { return LayerKind::Sigmoid; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { false, true }; }
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
};

/** Hyperbolic tangent activation. */
class TanhLayer : public Layer
{
  public:
    LayerKind kind() const override { return LayerKind::Tanh; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { false, true }; }
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
};

} // namespace gist
