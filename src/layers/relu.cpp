#include "layers/relu.hpp"

#include "tensor/ops.hpp"
#include "util/logging.hpp"

namespace gist {

Shape
ReluLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "relu takes one input");
    return in[0];
}

std::uint64_t
ReluLayer::auxStashBytes(std::span<const Shape> in) const
{
    if (stash_mode == StashMode::Dense)
        return 0;
    return binarizeBytes(in[0].numel());
}

void
ReluLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "relu forward args");
    reluForward(ctx.inputs[0]->span(), ctx.output->span());
    if (ctx.training && stash_mode == StashMode::Mask)
        mask.encode(ctx.output->span());
}

void
ReluLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.d_output, "relu backward needs dY");
    Tensor *dx = ctx.d_inputs[0];
    if (!dx)
        return;
    const auto dy = ctx.d_output->span();
    const auto dxs = dx->span();
    if (stash_mode == StashMode::Dense) {
        GIST_ASSERT(ctx.output, "relu (dense mode) needs its stashed Y");
        const auto y = ctx.output->span();
        for (size_t i = 0; i < dy.size(); ++i)
            dxs[i] += y[i] > 0.0f ? dy[i] : 0.0f;
    } else {
        GIST_ASSERT(mask.numel() ==
                        static_cast<std::int64_t>(dy.size()),
                    "relu mask not captured for this minibatch");
        for (size_t i = 0; i < dy.size(); ++i)
            dxs[i] += mask.positive(static_cast<std::int64_t>(i))
                          ? dy[i]
                          : 0.0f;
    }
}

void
ReluLayer::releaseAuxStash()
{
    mask.clear();
}

} // namespace gist
