/**
 * @file
 * Spatial batch normalization (per-channel over N, H, W).
 *
 * Backward needs the stashed input X plus the saved per-channel batch
 * statistics (a tiny aux stash). BN outputs therefore fall into the
 * paper's "Others" stash category and are DPR targets; the paper also
 * notes BN is the layer where *recomputation* is a viable alternative.
 */

#pragma once

#include "graph/layer.hpp"

namespace gist {

/** Batch normalization layer. */
class BatchNormLayer : public Layer
{
  public:
    explicit BatchNormLayer(std::int64_t channels, float eps = 1e-5f,
                            float momentum = 0.9f);

    LayerKind kind() const override { return LayerKind::BatchNorm; }
    Shape outputShape(std::span<const Shape> in) const override;
    BackwardNeeds backwardNeeds() const override { return { true, false }; }
    void initParams(Rng &rng) override;
    std::vector<Tensor *> params() override;
    std::vector<Tensor *> paramGrads() override;
    std::vector<Tensor *> stateTensors() override;
    std::uint64_t auxStashBytes(std::span<const Shape> in) const override;
    void forward(const FwdCtx &ctx) override;
    void backward(const BwdCtx &ctx) override;
    void releaseAuxStash() override;

  private:
    std::int64_t channels;
    float eps;
    float momentum;
    Tensor gamma;
    Tensor beta;
    Tensor d_gamma;
    Tensor d_beta;
    Tensor running_mean;
    Tensor running_var;
    std::vector<float> saved_mean;   ///< aux stash (per channel)
    std::vector<float> saved_invstd; ///< aux stash (per channel)
};

} // namespace gist
