#include "layers/pool.hpp"

#include <limits>

#include "util/logging.hpp"

namespace gist {

namespace {

ConvGeometry
poolGeometry(const PoolSpec &spec, const Shape &in)
{
    GIST_ASSERT(in.rank() == 4, "pool expects NCHW, got ", in.toString());
    ConvGeometry g;
    g.in_c = in.c();
    g.in_h = in.h();
    g.in_w = in.w();
    g.kernel_h = spec.kernel_h;
    g.kernel_w = spec.kernel_w;
    g.stride_h = spec.stride_h;
    g.stride_w = spec.stride_w;
    g.pad_h = spec.pad_h;
    g.pad_w = spec.pad_w;
    return g;
}

Shape
poolOutputShape(const PoolSpec &spec, std::span<const Shape> in)
{
    GIST_ASSERT(in.size() == 1, "pool takes one input");
    const ConvGeometry g = poolGeometry(spec, in[0]);
    GIST_ASSERT(g.outH() > 0 && g.outW() > 0, "pool output collapses: ",
                in[0].toString());
    return Shape::nchw(in[0].n(), in[0].c(), g.outH(), g.outW());
}

} // namespace

ConvGeometry
MaxPoolLayer::geometry(const Shape &in) const
{
    return poolGeometry(spec_, in);
}

Shape
MaxPoolLayer::outputShape(std::span<const Shape> in) const
{
    return poolOutputShape(spec_, in);
}

std::uint64_t
MaxPoolLayer::auxStashBytes(std::span<const Shape> in) const
{
    if (stash_mode == StashMode::Dense)
        return 0;
    const Shape out = poolOutputShape(spec_, in);
    return poolIndexMapBytes(out.numel(), spec_.kernel_h, spec_.kernel_w);
}

void
MaxPoolLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "maxpool fwd args");
    const Tensor &x = *ctx.inputs[0];
    Tensor &y = *ctx.output;
    const ConvGeometry g = geometry(x.shape());
    const std::int64_t batch = x.shape().n();
    const std::int64_t channels = x.shape().c();
    const std::int64_t out_h = g.outH();
    const std::int64_t out_w = g.outW();

    const bool record = ctx.training && stash_mode == StashMode::IndexMap;
    if (record)
        index_map.configure(batch * channels * out_h * out_w,
                            spec_.kernel_h, spec_.kernel_w);

    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            const float *plane =
                x.data() + (n * channels + c) * g.in_h * g.in_w;
            for (std::int64_t oh = 0; oh < out_h; ++oh) {
                for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::int64_t best_pos = 0;
                    for (std::int64_t kh = 0; kh < spec_.kernel_h; ++kh) {
                        const std::int64_t ih =
                            oh * g.stride_h - g.pad_h + kh;
                        if (ih < 0 || ih >= g.in_h)
                            continue;
                        for (std::int64_t kw = 0; kw < spec_.kernel_w;
                             ++kw) {
                            const std::int64_t iw =
                                ow * g.stride_w - g.pad_w + kw;
                            if (iw < 0 || iw >= g.in_w)
                                continue;
                            const float v = plane[ih * g.in_w + iw];
                            if (v > best) {
                                best = v;
                                best_pos = kh * spec_.kernel_w + kw;
                            }
                        }
                    }
                    y.at(out_idx) = best;
                    if (record)
                        index_map.set(out_idx, best_pos);
                }
            }
        }
    }
}

void
MaxPoolLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.d_output, "maxpool backward needs dY");
    Tensor *dx = ctx.d_inputs[0];
    if (!dx)
        return;
    const Tensor &dy = *ctx.d_output;
    const ConvGeometry g = geometry(dx->shape());
    const std::int64_t batch = dx->shape().n();
    const std::int64_t channels = dx->shape().c();
    const std::int64_t out_h = g.outH();
    const std::int64_t out_w = g.outW();

    const bool dense = stash_mode == StashMode::Dense;
    const Tensor *x = ctx.inputs[0];
    const Tensor *y = ctx.output;
    if (dense) {
        GIST_ASSERT(x && y,
                    "maxpool (dense mode) needs stashed X and Y");
    } else {
        GIST_ASSERT(index_map.numel() == dy.numel(),
                    "maxpool index map not captured for this minibatch");
    }

    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            float *dplane =
                dx->data() + (n * channels + c) * g.in_h * g.in_w;
            const float *xplane =
                dense ? x->data() + (n * channels + c) * g.in_h * g.in_w
                      : nullptr;
            for (std::int64_t oh = 0; oh < out_h; ++oh) {
                for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
                    std::int64_t pos = -1;
                    if (dense) {
                        // Scan for the first window tap equal to Y: the
                        // forward pass tracked the maximum with a strict
                        // '>' so this finds the identical location.
                        const float target = y->at(out_idx);
                        for (std::int64_t kh = 0;
                             kh < spec_.kernel_h && pos < 0; ++kh) {
                            const std::int64_t ih =
                                oh * g.stride_h - g.pad_h + kh;
                            if (ih < 0 || ih >= g.in_h)
                                continue;
                            for (std::int64_t kw = 0; kw < spec_.kernel_w;
                                 ++kw) {
                                const std::int64_t iw =
                                    ow * g.stride_w - g.pad_w + kw;
                                if (iw < 0 || iw >= g.in_w)
                                    continue;
                                if (xplane[ih * g.in_w + iw] == target) {
                                    pos = kh * spec_.kernel_w + kw;
                                    break;
                                }
                            }
                        }
                    } else {
                        pos = index_map.get(out_idx);
                    }
                    GIST_ASSERT(pos >= 0, "maxpool argmax not found");
                    const std::int64_t kh = pos / spec_.kernel_w;
                    const std::int64_t kw = pos % spec_.kernel_w;
                    const std::int64_t ih = oh * g.stride_h - g.pad_h + kh;
                    const std::int64_t iw = ow * g.stride_w - g.pad_w + kw;
                    dplane[ih * g.in_w + iw] += dy.at(out_idx);
                }
            }
        }
    }
}

void
MaxPoolLayer::releaseAuxStash()
{
    index_map.clear();
}

ConvGeometry
AvgPoolLayer::geometry(const Shape &in) const
{
    return poolGeometry(spec_, in);
}

Shape
AvgPoolLayer::outputShape(std::span<const Shape> in) const
{
    return poolOutputShape(spec_, in);
}

void
AvgPoolLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "avgpool fwd args");
    const Tensor &x = *ctx.inputs[0];
    Tensor &y = *ctx.output;
    last_in_shape = x.shape();
    const ConvGeometry g = geometry(x.shape());
    const std::int64_t batch = x.shape().n();
    const std::int64_t channels = x.shape().c();
    const std::int64_t out_h = g.outH();
    const std::int64_t out_w = g.outW();

    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            const float *plane =
                x.data() + (n * channels + c) * g.in_h * g.in_w;
            for (std::int64_t oh = 0; oh < out_h; ++oh) {
                for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
                    float sum = 0.0f;
                    std::int64_t count = 0;
                    for (std::int64_t kh = 0; kh < spec_.kernel_h; ++kh) {
                        const std::int64_t ih =
                            oh * g.stride_h - g.pad_h + kh;
                        if (ih < 0 || ih >= g.in_h)
                            continue;
                        for (std::int64_t kw = 0; kw < spec_.kernel_w;
                             ++kw) {
                            const std::int64_t iw =
                                ow * g.stride_w - g.pad_w + kw;
                            if (iw < 0 || iw >= g.in_w)
                                continue;
                            sum += plane[ih * g.in_w + iw];
                            ++count;
                        }
                    }
                    y.at(out_idx) =
                        count ? sum / static_cast<float>(count) : 0.0f;
                }
            }
        }
    }
}

void
AvgPoolLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.d_output, "avgpool backward needs dY");
    Tensor *dx = ctx.d_inputs[0];
    if (!dx)
        return;
    const Tensor &dy = *ctx.d_output;
    const ConvGeometry g = geometry(dx->shape());
    const std::int64_t batch = dx->shape().n();
    const std::int64_t channels = dx->shape().c();
    const std::int64_t out_h = g.outH();
    const std::int64_t out_w = g.outW();

    std::int64_t out_idx = 0;
    for (std::int64_t n = 0; n < batch; ++n) {
        for (std::int64_t c = 0; c < channels; ++c) {
            float *dplane =
                dx->data() + (n * channels + c) * g.in_h * g.in_w;
            for (std::int64_t oh = 0; oh < out_h; ++oh) {
                for (std::int64_t ow = 0; ow < out_w; ++ow, ++out_idx) {
                    // Count in-bounds taps (matches forward's divisor).
                    std::int64_t count = 0;
                    for (std::int64_t kh = 0; kh < spec_.kernel_h; ++kh) {
                        const std::int64_t ih =
                            oh * g.stride_h - g.pad_h + kh;
                        if (ih < 0 || ih >= g.in_h)
                            continue;
                        for (std::int64_t kw = 0; kw < spec_.kernel_w;
                             ++kw) {
                            const std::int64_t iw =
                                ow * g.stride_w - g.pad_w + kw;
                            if (iw >= 0 && iw < g.in_w)
                                ++count;
                        }
                    }
                    if (!count)
                        continue;
                    const float share =
                        dy.at(out_idx) / static_cast<float>(count);
                    for (std::int64_t kh = 0; kh < spec_.kernel_h; ++kh) {
                        const std::int64_t ih =
                            oh * g.stride_h - g.pad_h + kh;
                        if (ih < 0 || ih >= g.in_h)
                            continue;
                        for (std::int64_t kw = 0; kw < spec_.kernel_w;
                             ++kw) {
                            const std::int64_t iw =
                                ow * g.stride_w - g.pad_w + kw;
                            if (iw >= 0 && iw < g.in_w)
                                dplane[ih * g.in_w + iw] += share;
                        }
                    }
                }
            }
        }
    }
}

} // namespace gist
