#include "layers/lrn.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace gist {

LrnLayer::LrnLayer(std::int64_t window_n, float alpha_n, float beta_n,
                   float k_n)
    : window(window_n), alpha(alpha_n), beta(beta_n), k(k_n)
{
    GIST_ASSERT(window > 0 && window % 2 == 1, "LRN window must be odd");
}

Shape
LrnLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1 && in[0].rank() == 4, "lrn expects NCHW");
    return in[0];
}

float
LrnLayer::scaleAt(const float *x_pix, std::int64_t channels,
                  std::int64_t plane, std::int64_t c) const
{
    const std::int64_t half = window / 2;
    const std::int64_t lo = std::max<std::int64_t>(0, c - half);
    const std::int64_t hi = std::min(channels - 1, c + half);
    float sum_sq = 0.0f;
    for (std::int64_t j = lo; j <= hi; ++j) {
        const float v = x_pix[j * plane];
        sum_sq += v * v;
    }
    return k + alpha / static_cast<float>(window) * sum_sq;
}

void
LrnLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "lrn forward args");
    const Tensor &x = *ctx.inputs[0];
    Tensor &y = *ctx.output;
    const auto &s = x.shape();
    const std::int64_t plane = s.h() * s.w();

    for (std::int64_t n = 0; n < s.n(); ++n) {
        const float *x_img = x.data() + n * s.c() * plane;
        float *y_img = y.data() + n * s.c() * plane;
        for (std::int64_t pix = 0; pix < plane; ++pix) {
            const float *x_pix = x_img + pix;
            float *y_pix = y_img + pix;
            for (std::int64_t c = 0; c < s.c(); ++c) {
                const float scale = scaleAt(x_pix, s.c(), plane, c);
                y_pix[c * plane] =
                    x_pix[c * plane] * std::pow(scale, -beta);
            }
        }
    }
}

void
LrnLayer::backward(const BwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.inputs[0] && ctx.output &&
                    ctx.d_output,
                "lrn backward needs stashed X, Y and dY");
    Tensor *dx = ctx.d_inputs[0];
    if (!dx)
        return;
    const Tensor &x = *ctx.inputs[0];
    const Tensor &y = *ctx.output;
    const Tensor &dy = *ctx.d_output;
    const auto &s = x.shape();
    const std::int64_t plane = s.h() * s.w();
    const std::int64_t half = window / 2;
    const float cross = 2.0f * beta * alpha / static_cast<float>(window);

    for (std::int64_t n = 0; n < s.n(); ++n) {
        const std::int64_t base = n * s.c() * plane;
        for (std::int64_t pix = 0; pix < plane; ++pix) {
            const float *x_pix = x.data() + base + pix;
            const float *y_pix = y.data() + base + pix;
            const float *dy_pix = dy.data() + base + pix;
            float *dx_pix = dx->data() + base + pix;
            for (std::int64_t c = 0; c < s.c(); ++c) {
                const float scale = scaleAt(x_pix, s.c(), plane, c);
                const float dyc = dy_pix[c * plane];
                dx_pix[c * plane] += dyc * std::pow(scale, -beta);
                const float shared =
                    cross * dyc * y_pix[c * plane] / scale;
                const std::int64_t lo = std::max<std::int64_t>(0, c - half);
                const std::int64_t hi = std::min(s.c() - 1, c + half);
                for (std::int64_t j = lo; j <= hi; ++j)
                    dx_pix[j * plane] -= shared * x_pix[j * plane];
            }
        }
    }
}

} // namespace gist
