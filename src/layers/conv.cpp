#include "layers/conv.hpp"

#include <cmath>
#include <cstring>

#include "memory/arena.hpp"
#include "simd/dispatch.hpp"
#include "tensor/gemm.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace gist {

namespace {

/**
 * Row-sparse weight-gradient accumulation for one image: for every
 * stored nonzero v at (c, ih, iw) and every (kh, kw) tap reading it,
 * dW^T[row(c,kh,kw)] += v * dY^T[pos(oh,ow)] — one contiguous axpy over
 * output channels per (nonzero, tap). Channels own disjoint dw_t row
 * bands, so the channel axis parallelizes race-free with a
 * thread-count-independent accumulation order.
 */
void
sparseConvDw(const ConvGeometry &g, const CsrConstView &stash,
             std::int64_t image_offset, std::int64_t out_c,
             const float *dy_img, float *dy_t, float *dw_t)
{
    const std::int64_t out_h = g.outH();
    const std::int64_t out_w = g.outW();
    const std::int64_t p = out_h * out_w;
    const std::int64_t kernel = g.kernel_h * g.kernel_w;
    const std::int64_t plane = g.in_h * g.in_w;
    // dy_t holds dY^T (p x out_c) so the inner accumulation streams a
    // contiguous out_c-wide row per tap.
    parallelFor(0, p, chooseGrain(p, 64),
                [&](std::int64_t j0, std::int64_t j1) {
        for (std::int64_t j = j0; j < j1; ++j)
            for (std::int64_t oc = 0; oc < out_c; ++oc)
                dy_t[j * out_c + oc] = dy_img[oc * p + j];
    });
    parallelFor(0, g.in_c, 1, [&](std::int64_t c0, std::int64_t c1) {
        ArenaScope scope;
        float *vals =
            scope.alloc<float>(static_cast<size_t>(stash.row_width));
        const auto axpy = simd::ops().axpy;
        for (std::int64_t c = c0; c < c1; ++c) {
            float *dw_band = dw_t + c * kernel * out_c;
            const std::int64_t flat0 = image_offset + c * plane;
            const std::int64_t r0 = flat0 / stash.row_width;
            const std::int64_t r1 =
                (flat0 + plane - 1) / stash.row_width;
            for (std::int64_t r = r0; r <= r1; ++r) {
                const auto k0 = static_cast<std::int64_t>(
                    stash.row_ptr[static_cast<size_t>(r)]);
                const auto k1 = static_cast<std::int64_t>(
                    stash.row_ptr[static_cast<size_t>(r + 1)]);
                if (k0 == k1)
                    continue;
                csrValues(stash, k0, k1, vals);
                const std::int64_t row_base = r * stash.row_width;
                for (std::int64_t kk = k0; kk < k1; ++kk) {
                    const std::int64_t flat =
                        row_base +
                        static_cast<std::int64_t>(csrColAt(stash, kk));
                    if (flat < flat0 || flat >= flat0 + plane)
                        continue;
                    const float v = vals[kk - k0];
                    if (v == 0.0f)
                        continue;
                    const std::int64_t local = flat - flat0;
                    const std::int64_t ih = local / g.in_w;
                    const std::int64_t iw = local % g.in_w;
                    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
                        const std::int64_t oh_num = ih + g.pad_h - kh;
                        if (oh_num < 0)
                            break; // decreases with kh
                        if (oh_num % g.stride_h != 0)
                            continue;
                        const std::int64_t oh = oh_num / g.stride_h;
                        if (oh >= out_h)
                            continue;
                        for (std::int64_t kw = 0; kw < g.kernel_w;
                             ++kw) {
                            const std::int64_t ow_num =
                                iw + g.pad_w - kw;
                            if (ow_num < 0)
                                break;
                            if (ow_num % g.stride_w != 0)
                                continue;
                            const std::int64_t ow =
                                ow_num / g.stride_w;
                            if (ow >= out_w)
                                continue;
                            axpy(out_c, v,
                                 dy_t + (oh * out_w + ow) * out_c,
                                 dw_band +
                                     (kh * g.kernel_w + kw) * out_c);
                        }
                    }
                }
            }
        }
    });
}

} // namespace

ConvLayer::ConvLayer(std::int64_t in_channels, ConvSpec spec)
    : in_c(in_channels), spec_(spec)
{
    GIST_ASSERT(in_c > 0 && spec_.out_channels > 0 && spec_.kernel_h > 0 &&
                    spec_.kernel_w > 0,
                "bad conv spec");
    weight = Tensor::placeholder(
        Shape{ spec_.out_channels, in_c, spec_.kernel_h, spec_.kernel_w });
    bias_ = Tensor::placeholder(Shape{ spec_.out_channels });
    d_weight = Tensor::placeholder(weight.shape());
    d_bias = Tensor::placeholder(bias_.shape());
}

ConvGeometry
ConvLayer::geometry(const Shape &in) const
{
    GIST_ASSERT(in.rank() == 4 && in.c() == in_c, "conv expects NCHW with ",
                in_c, " channels, got ", in.toString());
    ConvGeometry g;
    g.in_c = in_c;
    g.in_h = in.h();
    g.in_w = in.w();
    g.kernel_h = spec_.kernel_h;
    g.kernel_w = spec_.kernel_w;
    g.stride_h = spec_.stride_h;
    g.stride_w = spec_.stride_w;
    g.pad_h = spec_.pad_h;
    g.pad_w = spec_.pad_w;
    return g;
}

Shape
ConvLayer::outputShape(std::span<const Shape> in) const
{
    GIST_ASSERT(in.size() == 1, "conv takes one input");
    const ConvGeometry g = geometry(in[0]);
    GIST_ASSERT(g.outH() > 0 && g.outW() > 0, "conv output collapses: ",
                in[0].toString());
    return Shape::nchw(in[0].n(), spec_.out_channels, g.outH(), g.outW());
}

void
ConvLayer::initParams(Rng &rng)
{
    // He initialization: N(0, sqrt(2 / fan_in)).
    const double fan_in =
        static_cast<double>(in_c * spec_.kernel_h * spec_.kernel_w);
    const float stddev = static_cast<float>(std::sqrt(2.0 / fan_in));
    weight.reallocate();
    for (std::int64_t i = 0; i < weight.numel(); ++i)
        weight.at(i) = rng.normal(0.0f, stddev);
    bias_.reallocate();
    d_weight.reallocate();
    d_bias.reallocate();
}

std::vector<Tensor *>
ConvLayer::params()
{
    if (spec_.bias)
        return { &weight, &bias_ };
    return { &weight };
}

std::vector<Tensor *>
ConvLayer::paramGrads()
{
    if (spec_.bias)
        return { &d_weight, &d_bias };
    return { &d_weight };
}

std::uint64_t
ConvLayer::workspaceBytes(std::span<const Shape> in) const
{
    const ConvGeometry g = geometry(in[0]);
    return static_cast<std::uint64_t>(g.colRows()) *
           static_cast<std::uint64_t>(g.colCols()) * 4;
}

void
ConvLayer::forward(const FwdCtx &ctx)
{
    GIST_ASSERT(ctx.inputs.size() == 1 && ctx.output, "conv forward args");
    const Tensor &x = *ctx.inputs[0];
    Tensor &y = *ctx.output;
    last_in_shape = x.shape();
    const ConvGeometry g = geometry(x.shape());
    const std::int64_t batch = x.shape().n();
    const std::int64_t k = g.colRows();
    const std::int64_t p = g.colCols();
    const std::int64_t out_c = spec_.out_channels;
    // Step-scoped workspace: the im2col panel is rebuilt per image, so
    // it lives in the arena frame instead of a persistent member.
    ArenaScope scope;
    float *col_scratch = scope.alloc<float>(static_cast<size_t>(k * p));

    for (std::int64_t img = 0; img < batch; ++img) {
        const float *x_img = x.data() + img * in_c * g.in_h * g.in_w;
        float *y_img = y.data() + img * out_c * p;
        im2col(g, x_img, col_scratch);
        // Y (out_c x p) = W (out_c x k) * col (k x p)
        gemm(false, false, out_c, p, k, 1.0f, weight.data(), col_scratch,
             0.0f, y_img);
        if (spec_.bias) {
            for (std::int64_t oc = 0; oc < out_c; ++oc) {
                const float b = bias_.at(oc);
                float *row = y_img + oc * p;
                for (std::int64_t j = 0; j < p; ++j)
                    row[j] += b;
            }
        }
    }
}

void
ConvLayer::backward(const BwdCtx &ctx)
{
    const Tensor *x = ctx.inputs[0];
    const EncodedStash x_enc =
        ctx.encoded_inputs.empty() ? EncodedStash{} : ctx.encoded_inputs[0];
    GIST_ASSERT((x || x_enc.valid()) && ctx.d_output,
                "conv backward needs stashed X (dense or encoded) and dY");
    const Tensor &dy = *ctx.d_output;
    Tensor *dx = ctx.d_inputs[0];
    const Shape &in_shape = x ? x->shape() : last_in_shape;
    GIST_ASSERT(in_shape.rank() == 4,
                "conv backward before any forward pass");
    const ConvGeometry g = geometry(in_shape);
    const std::int64_t batch = in_shape.n();
    const std::int64_t image_elems = in_c * g.in_h * g.in_w;
    const std::int64_t k = g.colRows();
    const std::int64_t p = g.colCols();
    const std::int64_t out_c = spec_.out_channels;
    ArenaScope scope;
    float *col_scratch = scope.alloc<float>(static_cast<size_t>(k * p));
    // "Optimized software": decode one image's stash at a time instead
    // of a full FP32 buffer (paper Section V-H). With fused consumption
    // the stash feeds the im2col tile loops directly and even this
    // per-image scratch disappears from the arena frame.
    const bool sparse_dw =
        !x && x_enc.fused && x_enc.sparse_compute && x_enc.csr;
    float *image_scratch = nullptr;
    if (!x && !x_enc.fused)
        image_scratch =
            scope.alloc<float>(static_cast<size_t>(image_elems));
    float *dw_t = nullptr;
    float *dy_t = nullptr;
    if (sparse_dw) {
        dw_t = scope.alloc<float>(static_cast<size_t>(k * out_c));
        dy_t = scope.alloc<float>(static_cast<size_t>(p * out_c));
        std::memset(dw_t, 0,
                    static_cast<size_t>(k * out_c) * sizeof(float));
    }

    d_weight.setZero();
    if (spec_.bias)
        d_bias.setZero();

    for (std::int64_t img = 0; img < batch; ++img) {
        const float *dy_img = dy.data() + img * out_c * p;

        if (sparse_dw) {
            // Row-sparse dW: dW^T[r] += v * dY^T[col] for every stored
            // nonzero's (r = c*kh*kw tap row, col = oh*ow position)
            // pair — compute scales with nnz instead of k * p.
            sparseConvDw(g, x_enc.csr->view(), img * image_elems, out_c,
                         dy_img, dy_t, dw_t);
        } else {
            const float *x_img;
            if (x) {
                x_img = x->data() + img * image_elems;
                im2col(g, x_img, col_scratch);
            } else if (x_enc.fused && x_enc.csr) {
                im2colFromCsr(g, x_enc.csr->view(), img * image_elems,
                              col_scratch);
            } else if (x_enc.fused && x_enc.dpr) {
                im2colPacked(g, x_enc.dpr->packView(), img * image_elems,
                             col_scratch);
            } else {
                x_enc.decodeRange(img * image_elems,
                                  { image_scratch,
                                    static_cast<size_t>(image_elems) });
                im2col(g, image_scratch, col_scratch);
            }
            // dW += dY (out_c x p) * col^T (p x k)
            gemm(false, true, out_c, k, p, 1.0f, dy_img, col_scratch,
                 1.0f, d_weight.data());
        }

        if (spec_.bias) {
            for (std::int64_t oc = 0; oc < out_c; ++oc) {
                const float *row = dy_img + oc * p;
                float acc = 0.0f;
                for (std::int64_t j = 0; j < p; ++j)
                    acc += row[j];
                d_bias.at(oc) += acc;
            }
        }

        if (dx) {
            // dcol (k x p) = W^T (k x out_c) * dY (out_c x p)
            gemm(true, false, k, p, out_c, 1.0f, weight.data(), dy_img,
                 0.0f, col_scratch);
            float *dx_img = dx->data() + img * image_elems;
            col2im(g, col_scratch, dx_img); // accumulates
        }
    }

    if (sparse_dw) {
        // Fold the transposed accumulator back into d_weight's layout.
        float *dw = d_weight.data();
        for (std::int64_t r = 0; r < k; ++r)
            for (std::int64_t oc = 0; oc < out_c; ++oc)
                dw[oc * k + r] += dw_t[r * out_c + oc];
    }
}

} // namespace gist
