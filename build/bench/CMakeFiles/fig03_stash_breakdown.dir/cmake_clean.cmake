file(REMOVE_RECURSE
  "CMakeFiles/fig03_stash_breakdown.dir/fig03_stash_breakdown.cpp.o"
  "CMakeFiles/fig03_stash_breakdown.dir/fig03_stash_breakdown.cpp.o.d"
  "fig03_stash_breakdown"
  "fig03_stash_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_stash_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
