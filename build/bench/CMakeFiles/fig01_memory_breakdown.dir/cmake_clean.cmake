file(REMOVE_RECURSE
  "CMakeFiles/fig01_memory_breakdown.dir/fig01_memory_breakdown.cpp.o"
  "CMakeFiles/fig01_memory_breakdown.dir/fig01_memory_breakdown.cpp.o.d"
  "fig01_memory_breakdown"
  "fig01_memory_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_memory_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
