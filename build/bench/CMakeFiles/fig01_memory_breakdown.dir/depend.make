# Empty dependencies file for fig01_memory_breakdown.
# This may be replaced when dependencies are built.
