file(REMOVE_RECURSE
  "CMakeFiles/ablation_csr.dir/ablation_csr.cpp.o"
  "CMakeFiles/ablation_csr.dir/ablation_csr.cpp.o.d"
  "ablation_csr"
  "ablation_csr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
