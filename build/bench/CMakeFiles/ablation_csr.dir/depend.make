# Empty dependencies file for ablation_csr.
# This may be replaced when dependencies are built.
