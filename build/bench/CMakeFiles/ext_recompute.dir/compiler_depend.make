# Empty compiler generated dependencies file for ext_recompute.
# This may be replaced when dependencies are built.
