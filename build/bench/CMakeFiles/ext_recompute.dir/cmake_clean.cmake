file(REMOVE_RECURSE
  "CMakeFiles/ext_recompute.dir/ext_recompute.cpp.o"
  "CMakeFiles/ext_recompute.dir/ext_recompute.cpp.o.d"
  "ext_recompute"
  "ext_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
