file(REMOVE_RECURSE
  "CMakeFiles/fig17_dynamic_alloc.dir/fig17_dynamic_alloc.cpp.o"
  "CMakeFiles/fig17_dynamic_alloc.dir/fig17_dynamic_alloc.cpp.o.d"
  "fig17_dynamic_alloc"
  "fig17_dynamic_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_dynamic_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
