# Empty dependencies file for fig17_dynamic_alloc.
# This may be replaced when dependencies are built.
