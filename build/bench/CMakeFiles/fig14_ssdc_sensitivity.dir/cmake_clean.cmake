file(REMOVE_RECURSE
  "CMakeFiles/fig14_ssdc_sensitivity.dir/fig14_ssdc_sensitivity.cpp.o"
  "CMakeFiles/fig14_ssdc_sensitivity.dir/fig14_ssdc_sensitivity.cpp.o.d"
  "fig14_ssdc_sensitivity"
  "fig14_ssdc_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ssdc_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
