file(REMOVE_RECURSE
  "CMakeFiles/fig10_lossless_isolation.dir/fig10_lossless_isolation.cpp.o"
  "CMakeFiles/fig10_lossless_isolation.dir/fig10_lossless_isolation.cpp.o.d"
  "fig10_lossless_isolation"
  "fig10_lossless_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lossless_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
