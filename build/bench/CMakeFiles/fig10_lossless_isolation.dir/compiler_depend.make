# Empty compiler generated dependencies file for fig10_lossless_isolation.
# This may be replaced when dependencies are built.
