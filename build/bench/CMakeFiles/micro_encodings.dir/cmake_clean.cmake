file(REMOVE_RECURSE
  "CMakeFiles/micro_encodings.dir/micro_encodings.cpp.o"
  "CMakeFiles/micro_encodings.dir/micro_encodings.cpp.o.d"
  "micro_encodings"
  "micro_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
