# Empty compiler generated dependencies file for micro_encodings.
# This may be replaced when dependencies are built.
