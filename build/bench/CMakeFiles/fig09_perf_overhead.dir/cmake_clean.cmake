file(REMOVE_RECURSE
  "CMakeFiles/fig09_perf_overhead.dir/fig09_perf_overhead.cpp.o"
  "CMakeFiles/fig09_perf_overhead.dir/fig09_perf_overhead.cpp.o.d"
  "fig09_perf_overhead"
  "fig09_perf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_perf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
