# Empty dependencies file for fig09_perf_overhead.
# This may be replaced when dependencies are built.
