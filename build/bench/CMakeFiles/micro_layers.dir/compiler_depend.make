# Empty compiler generated dependencies file for micro_layers.
# This may be replaced when dependencies are built.
