# Empty dependencies file for fig16_resnet_depth.
# This may be replaced when dependencies are built.
