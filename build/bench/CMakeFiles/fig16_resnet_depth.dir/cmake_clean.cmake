file(REMOVE_RECURSE
  "CMakeFiles/fig16_resnet_depth.dir/fig16_resnet_depth.cpp.o"
  "CMakeFiles/fig16_resnet_depth.dir/fig16_resnet_depth.cpp.o.d"
  "fig16_resnet_depth"
  "fig16_resnet_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_resnet_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
