file(REMOVE_RECURSE
  "CMakeFiles/fig13_dpr_footprint.dir/fig13_dpr_footprint.cpp.o"
  "CMakeFiles/fig13_dpr_footprint.dir/fig13_dpr_footprint.cpp.o.d"
  "fig13_dpr_footprint"
  "fig13_dpr_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dpr_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
