# Empty compiler generated dependencies file for fig13_dpr_footprint.
# This may be replaced when dependencies are built.
