file(REMOVE_RECURSE
  "CMakeFiles/fig08_end_to_end_mfr.dir/fig08_end_to_end_mfr.cpp.o"
  "CMakeFiles/fig08_end_to_end_mfr.dir/fig08_end_to_end_mfr.cpp.o.d"
  "fig08_end_to_end_mfr"
  "fig08_end_to_end_mfr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_end_to_end_mfr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
