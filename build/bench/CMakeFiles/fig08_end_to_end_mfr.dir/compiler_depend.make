# Empty compiler generated dependencies file for fig08_end_to_end_mfr.
# This may be replaced when dependencies are built.
