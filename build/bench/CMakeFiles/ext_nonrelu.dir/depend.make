# Empty dependencies file for ext_nonrelu.
# This may be replaced when dependencies are built.
