file(REMOVE_RECURSE
  "CMakeFiles/ext_nonrelu.dir/ext_nonrelu.cpp.o"
  "CMakeFiles/ext_nonrelu.dir/ext_nonrelu.cpp.o.d"
  "ext_nonrelu"
  "ext_nonrelu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_nonrelu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
