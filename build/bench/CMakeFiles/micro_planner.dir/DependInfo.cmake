
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_planner.cpp" "bench/CMakeFiles/micro_planner.dir/micro_planner.cpp.o" "gcc" "bench/CMakeFiles/micro_planner.dir/micro_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/gist_train.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gist_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/gist_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/gist_models.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gist_core.dir/DependInfo.cmake"
  "/root/repo/build/src/layers/CMakeFiles/gist_layers.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gist_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/gist_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/encodings/CMakeFiles/gist_encodings.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gist_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
