# Empty compiler generated dependencies file for table1_techniques.
# This may be replaced when dependencies are built.
