file(REMOVE_RECURSE
  "CMakeFiles/table1_techniques.dir/table1_techniques.cpp.o"
  "CMakeFiles/table1_techniques.dir/table1_techniques.cpp.o.d"
  "table1_techniques"
  "table1_techniques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_techniques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
