file(REMOVE_RECURSE
  "CMakeFiles/ext_cdma.dir/ext_cdma.cpp.o"
  "CMakeFiles/ext_cdma.dir/ext_cdma.cpp.o.d"
  "ext_cdma"
  "ext_cdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
