# Empty dependencies file for ext_cdma.
# This may be replaced when dependencies are built.
