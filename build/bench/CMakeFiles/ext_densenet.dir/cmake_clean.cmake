file(REMOVE_RECURSE
  "CMakeFiles/ext_densenet.dir/ext_densenet.cpp.o"
  "CMakeFiles/ext_densenet.dir/ext_densenet.cpp.o.d"
  "ext_densenet"
  "ext_densenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_densenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
