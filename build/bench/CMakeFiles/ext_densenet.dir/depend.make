# Empty dependencies file for ext_densenet.
# This may be replaced when dependencies are built.
