file(REMOVE_RECURSE
  "libgist_tensor.a"
)
