file(REMOVE_RECURSE
  "CMakeFiles/gist_tensor.dir/gemm.cpp.o"
  "CMakeFiles/gist_tensor.dir/gemm.cpp.o.d"
  "CMakeFiles/gist_tensor.dir/im2col.cpp.o"
  "CMakeFiles/gist_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/gist_tensor.dir/ops.cpp.o"
  "CMakeFiles/gist_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/gist_tensor.dir/shape.cpp.o"
  "CMakeFiles/gist_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/gist_tensor.dir/tensor.cpp.o"
  "CMakeFiles/gist_tensor.dir/tensor.cpp.o.d"
  "libgist_tensor.a"
  "libgist_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
