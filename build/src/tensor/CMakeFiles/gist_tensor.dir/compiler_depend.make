# Empty compiler generated dependencies file for gist_tensor.
# This may be replaced when dependencies are built.
