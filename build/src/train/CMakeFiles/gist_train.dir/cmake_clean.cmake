file(REMOVE_RECURSE
  "CMakeFiles/gist_train.dir/checkpoint.cpp.o"
  "CMakeFiles/gist_train.dir/checkpoint.cpp.o.d"
  "CMakeFiles/gist_train.dir/dataset.cpp.o"
  "CMakeFiles/gist_train.dir/dataset.cpp.o.d"
  "CMakeFiles/gist_train.dir/sparsity_probe.cpp.o"
  "CMakeFiles/gist_train.dir/sparsity_probe.cpp.o.d"
  "CMakeFiles/gist_train.dir/trainer.cpp.o"
  "CMakeFiles/gist_train.dir/trainer.cpp.o.d"
  "libgist_train.a"
  "libgist_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
