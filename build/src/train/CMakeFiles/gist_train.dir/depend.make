# Empty dependencies file for gist_train.
# This may be replaced when dependencies are built.
