file(REMOVE_RECURSE
  "libgist_train.a"
)
