file(REMOVE_RECURSE
  "CMakeFiles/gist_util.dir/logging.cpp.o"
  "CMakeFiles/gist_util.dir/logging.cpp.o.d"
  "CMakeFiles/gist_util.dir/stats.cpp.o"
  "CMakeFiles/gist_util.dir/stats.cpp.o.d"
  "CMakeFiles/gist_util.dir/table.cpp.o"
  "CMakeFiles/gist_util.dir/table.cpp.o.d"
  "libgist_util.a"
  "libgist_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
