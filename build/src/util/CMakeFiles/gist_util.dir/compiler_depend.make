# Empty compiler generated dependencies file for gist_util.
# This may be replaced when dependencies are built.
