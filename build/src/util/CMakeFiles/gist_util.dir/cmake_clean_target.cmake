file(REMOVE_RECURSE
  "libgist_util.a"
)
