file(REMOVE_RECURSE
  "libgist_models.a"
)
