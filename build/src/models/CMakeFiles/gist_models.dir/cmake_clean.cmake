file(REMOVE_RECURSE
  "CMakeFiles/gist_models.dir/builder.cpp.o"
  "CMakeFiles/gist_models.dir/builder.cpp.o.d"
  "CMakeFiles/gist_models.dir/tiny.cpp.o"
  "CMakeFiles/gist_models.dir/tiny.cpp.o.d"
  "CMakeFiles/gist_models.dir/zoo.cpp.o"
  "CMakeFiles/gist_models.dir/zoo.cpp.o.d"
  "libgist_models.a"
  "libgist_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
