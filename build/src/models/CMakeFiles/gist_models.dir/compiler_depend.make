# Empty compiler generated dependencies file for gist_models.
# This may be replaced when dependencies are built.
