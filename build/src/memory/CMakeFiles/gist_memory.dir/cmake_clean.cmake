file(REMOVE_RECURSE
  "CMakeFiles/gist_memory.dir/allocator.cpp.o"
  "CMakeFiles/gist_memory.dir/allocator.cpp.o.d"
  "CMakeFiles/gist_memory.dir/report.cpp.o"
  "CMakeFiles/gist_memory.dir/report.cpp.o.d"
  "libgist_memory.a"
  "libgist_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
