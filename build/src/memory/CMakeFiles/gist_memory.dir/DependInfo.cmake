
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/allocator.cpp" "src/memory/CMakeFiles/gist_memory.dir/allocator.cpp.o" "gcc" "src/memory/CMakeFiles/gist_memory.dir/allocator.cpp.o.d"
  "/root/repo/src/memory/report.cpp" "src/memory/CMakeFiles/gist_memory.dir/report.cpp.o" "gcc" "src/memory/CMakeFiles/gist_memory.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
