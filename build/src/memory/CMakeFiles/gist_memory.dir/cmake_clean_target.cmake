file(REMOVE_RECURSE
  "libgist_memory.a"
)
