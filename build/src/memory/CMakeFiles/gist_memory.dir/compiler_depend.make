# Empty compiler generated dependencies file for gist_memory.
# This may be replaced when dependencies are built.
