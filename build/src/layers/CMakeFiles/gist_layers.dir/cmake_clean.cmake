file(REMOVE_RECURSE
  "CMakeFiles/gist_layers.dir/activation.cpp.o"
  "CMakeFiles/gist_layers.dir/activation.cpp.o.d"
  "CMakeFiles/gist_layers.dir/batchnorm.cpp.o"
  "CMakeFiles/gist_layers.dir/batchnorm.cpp.o.d"
  "CMakeFiles/gist_layers.dir/conv.cpp.o"
  "CMakeFiles/gist_layers.dir/conv.cpp.o.d"
  "CMakeFiles/gist_layers.dir/fc.cpp.o"
  "CMakeFiles/gist_layers.dir/fc.cpp.o.d"
  "CMakeFiles/gist_layers.dir/loss.cpp.o"
  "CMakeFiles/gist_layers.dir/loss.cpp.o.d"
  "CMakeFiles/gist_layers.dir/lrn.cpp.o"
  "CMakeFiles/gist_layers.dir/lrn.cpp.o.d"
  "CMakeFiles/gist_layers.dir/pool.cpp.o"
  "CMakeFiles/gist_layers.dir/pool.cpp.o.d"
  "CMakeFiles/gist_layers.dir/relu.cpp.o"
  "CMakeFiles/gist_layers.dir/relu.cpp.o.d"
  "CMakeFiles/gist_layers.dir/structural.cpp.o"
  "CMakeFiles/gist_layers.dir/structural.cpp.o.d"
  "libgist_layers.a"
  "libgist_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
