file(REMOVE_RECURSE
  "libgist_layers.a"
)
