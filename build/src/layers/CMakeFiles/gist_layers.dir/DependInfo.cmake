
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layers/activation.cpp" "src/layers/CMakeFiles/gist_layers.dir/activation.cpp.o" "gcc" "src/layers/CMakeFiles/gist_layers.dir/activation.cpp.o.d"
  "/root/repo/src/layers/batchnorm.cpp" "src/layers/CMakeFiles/gist_layers.dir/batchnorm.cpp.o" "gcc" "src/layers/CMakeFiles/gist_layers.dir/batchnorm.cpp.o.d"
  "/root/repo/src/layers/conv.cpp" "src/layers/CMakeFiles/gist_layers.dir/conv.cpp.o" "gcc" "src/layers/CMakeFiles/gist_layers.dir/conv.cpp.o.d"
  "/root/repo/src/layers/fc.cpp" "src/layers/CMakeFiles/gist_layers.dir/fc.cpp.o" "gcc" "src/layers/CMakeFiles/gist_layers.dir/fc.cpp.o.d"
  "/root/repo/src/layers/loss.cpp" "src/layers/CMakeFiles/gist_layers.dir/loss.cpp.o" "gcc" "src/layers/CMakeFiles/gist_layers.dir/loss.cpp.o.d"
  "/root/repo/src/layers/lrn.cpp" "src/layers/CMakeFiles/gist_layers.dir/lrn.cpp.o" "gcc" "src/layers/CMakeFiles/gist_layers.dir/lrn.cpp.o.d"
  "/root/repo/src/layers/pool.cpp" "src/layers/CMakeFiles/gist_layers.dir/pool.cpp.o" "gcc" "src/layers/CMakeFiles/gist_layers.dir/pool.cpp.o.d"
  "/root/repo/src/layers/relu.cpp" "src/layers/CMakeFiles/gist_layers.dir/relu.cpp.o" "gcc" "src/layers/CMakeFiles/gist_layers.dir/relu.cpp.o.d"
  "/root/repo/src/layers/structural.cpp" "src/layers/CMakeFiles/gist_layers.dir/structural.cpp.o" "gcc" "src/layers/CMakeFiles/gist_layers.dir/structural.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gist_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gist_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/encodings/CMakeFiles/gist_encodings.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
