# Empty compiler generated dependencies file for gist_layers.
# This may be replaced when dependencies are built.
