file(REMOVE_RECURSE
  "libgist_graph.a"
)
