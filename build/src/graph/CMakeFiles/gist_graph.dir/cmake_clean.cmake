file(REMOVE_RECURSE
  "CMakeFiles/gist_graph.dir/executor.cpp.o"
  "CMakeFiles/gist_graph.dir/executor.cpp.o.d"
  "CMakeFiles/gist_graph.dir/graph.cpp.o"
  "CMakeFiles/gist_graph.dir/graph.cpp.o.d"
  "CMakeFiles/gist_graph.dir/layer.cpp.o"
  "CMakeFiles/gist_graph.dir/layer.cpp.o.d"
  "CMakeFiles/gist_graph.dir/printer.cpp.o"
  "CMakeFiles/gist_graph.dir/printer.cpp.o.d"
  "libgist_graph.a"
  "libgist_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
