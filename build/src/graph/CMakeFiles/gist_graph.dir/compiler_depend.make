# Empty compiler generated dependencies file for gist_graph.
# This may be replaced when dependencies are built.
