
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encodings/binarize.cpp" "src/encodings/CMakeFiles/gist_encodings.dir/binarize.cpp.o" "gcc" "src/encodings/CMakeFiles/gist_encodings.dir/binarize.cpp.o.d"
  "/root/repo/src/encodings/csr.cpp" "src/encodings/CMakeFiles/gist_encodings.dir/csr.cpp.o" "gcc" "src/encodings/CMakeFiles/gist_encodings.dir/csr.cpp.o.d"
  "/root/repo/src/encodings/dpr.cpp" "src/encodings/CMakeFiles/gist_encodings.dir/dpr.cpp.o" "gcc" "src/encodings/CMakeFiles/gist_encodings.dir/dpr.cpp.o.d"
  "/root/repo/src/encodings/pool_index_map.cpp" "src/encodings/CMakeFiles/gist_encodings.dir/pool_index_map.cpp.o" "gcc" "src/encodings/CMakeFiles/gist_encodings.dir/pool_index_map.cpp.o.d"
  "/root/repo/src/encodings/small_float.cpp" "src/encodings/CMakeFiles/gist_encodings.dir/small_float.cpp.o" "gcc" "src/encodings/CMakeFiles/gist_encodings.dir/small_float.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gist_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
