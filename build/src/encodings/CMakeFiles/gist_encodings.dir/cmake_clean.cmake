file(REMOVE_RECURSE
  "CMakeFiles/gist_encodings.dir/binarize.cpp.o"
  "CMakeFiles/gist_encodings.dir/binarize.cpp.o.d"
  "CMakeFiles/gist_encodings.dir/csr.cpp.o"
  "CMakeFiles/gist_encodings.dir/csr.cpp.o.d"
  "CMakeFiles/gist_encodings.dir/dpr.cpp.o"
  "CMakeFiles/gist_encodings.dir/dpr.cpp.o.d"
  "CMakeFiles/gist_encodings.dir/pool_index_map.cpp.o"
  "CMakeFiles/gist_encodings.dir/pool_index_map.cpp.o.d"
  "CMakeFiles/gist_encodings.dir/small_float.cpp.o"
  "CMakeFiles/gist_encodings.dir/small_float.cpp.o.d"
  "libgist_encodings.a"
  "libgist_encodings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_encodings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
