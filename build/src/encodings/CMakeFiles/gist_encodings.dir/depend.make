# Empty dependencies file for gist_encodings.
# This may be replaced when dependencies are built.
