file(REMOVE_RECURSE
  "libgist_encodings.a"
)
