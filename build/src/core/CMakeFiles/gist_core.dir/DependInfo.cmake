
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/classify.cpp" "src/core/CMakeFiles/gist_core.dir/classify.cpp.o" "gcc" "src/core/CMakeFiles/gist_core.dir/classify.cpp.o.d"
  "/root/repo/src/core/dot_export.cpp" "src/core/CMakeFiles/gist_core.dir/dot_export.cpp.o" "gcc" "src/core/CMakeFiles/gist_core.dir/dot_export.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/gist_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/gist_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/schedule_builder.cpp" "src/core/CMakeFiles/gist_core.dir/schedule_builder.cpp.o" "gcc" "src/core/CMakeFiles/gist_core.dir/schedule_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gist_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/layers/CMakeFiles/gist_layers.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/gist_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/encodings/CMakeFiles/gist_encodings.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gist_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/gist_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
