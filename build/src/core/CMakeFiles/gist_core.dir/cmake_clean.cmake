file(REMOVE_RECURSE
  "CMakeFiles/gist_core.dir/classify.cpp.o"
  "CMakeFiles/gist_core.dir/classify.cpp.o.d"
  "CMakeFiles/gist_core.dir/dot_export.cpp.o"
  "CMakeFiles/gist_core.dir/dot_export.cpp.o.d"
  "CMakeFiles/gist_core.dir/planner.cpp.o"
  "CMakeFiles/gist_core.dir/planner.cpp.o.d"
  "CMakeFiles/gist_core.dir/schedule_builder.cpp.o"
  "CMakeFiles/gist_core.dir/schedule_builder.cpp.o.d"
  "libgist_core.a"
  "libgist_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
