# Empty dependencies file for gist_baselines.
# This may be replaced when dependencies are built.
