file(REMOVE_RECURSE
  "CMakeFiles/gist_baselines.dir/recompute.cpp.o"
  "CMakeFiles/gist_baselines.dir/recompute.cpp.o.d"
  "CMakeFiles/gist_baselines.dir/swap_sim.cpp.o"
  "CMakeFiles/gist_baselines.dir/swap_sim.cpp.o.d"
  "libgist_baselines.a"
  "libgist_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
