file(REMOVE_RECURSE
  "libgist_baselines.a"
)
