file(REMOVE_RECURSE
  "libgist_perf.a"
)
