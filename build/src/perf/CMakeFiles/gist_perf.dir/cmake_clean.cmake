file(REMOVE_RECURSE
  "CMakeFiles/gist_perf.dir/batch_fit.cpp.o"
  "CMakeFiles/gist_perf.dir/batch_fit.cpp.o.d"
  "CMakeFiles/gist_perf.dir/gpu_model.cpp.o"
  "CMakeFiles/gist_perf.dir/gpu_model.cpp.o.d"
  "libgist_perf.a"
  "libgist_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gist_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
