# Empty dependencies file for gist_perf.
# This may be replaced when dependencies are built.
