file(REMOVE_RECURSE
  "CMakeFiles/profile_training.dir/profile_training.cpp.o"
  "CMakeFiles/profile_training.dir/profile_training.cpp.o.d"
  "profile_training"
  "profile_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
