# Empty dependencies file for profile_training.
# This may be replaced when dependencies are built.
