# Empty dependencies file for memory_planner_tool.
# This may be replaced when dependencies are built.
