file(REMOVE_RECURSE
  "CMakeFiles/memory_planner_tool.dir/memory_planner_tool.cpp.o"
  "CMakeFiles/memory_planner_tool.dir/memory_planner_tool.cpp.o.d"
  "memory_planner_tool"
  "memory_planner_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_planner_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
