file(REMOVE_RECURSE
  "CMakeFiles/fit_deeper_network.dir/fit_deeper_network.cpp.o"
  "CMakeFiles/fit_deeper_network.dir/fit_deeper_network.cpp.o.d"
  "fit_deeper_network"
  "fit_deeper_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_deeper_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
