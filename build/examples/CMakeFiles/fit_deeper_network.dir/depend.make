# Empty dependencies file for fit_deeper_network.
# This may be replaced when dependencies are built.
