file(REMOVE_RECURSE
  "CMakeFiles/test_planner_vs_executor.dir/test_planner_vs_executor.cpp.o"
  "CMakeFiles/test_planner_vs_executor.dir/test_planner_vs_executor.cpp.o.d"
  "test_planner_vs_executor"
  "test_planner_vs_executor.pdb"
  "test_planner_vs_executor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planner_vs_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
