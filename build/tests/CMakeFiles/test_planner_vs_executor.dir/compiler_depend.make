# Empty compiler generated dependencies file for test_planner_vs_executor.
# This may be replaced when dependencies are built.
