# Empty dependencies file for test_pool_index_map.
# This may be replaced when dependencies are built.
