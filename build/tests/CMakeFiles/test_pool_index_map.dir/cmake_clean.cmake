file(REMOVE_RECURSE
  "CMakeFiles/test_pool_index_map.dir/test_pool_index_map.cpp.o"
  "CMakeFiles/test_pool_index_map.dir/test_pool_index_map.cpp.o.d"
  "test_pool_index_map"
  "test_pool_index_map.pdb"
  "test_pool_index_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pool_index_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
