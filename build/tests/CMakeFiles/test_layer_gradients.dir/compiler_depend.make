# Empty compiler generated dependencies file for test_layer_gradients.
# This may be replaced when dependencies are built.
