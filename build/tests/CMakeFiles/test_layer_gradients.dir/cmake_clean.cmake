file(REMOVE_RECURSE
  "CMakeFiles/test_layer_gradients.dir/test_layer_gradients.cpp.o"
  "CMakeFiles/test_layer_gradients.dir/test_layer_gradients.cpp.o.d"
  "test_layer_gradients"
  "test_layer_gradients.pdb"
  "test_layer_gradients[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
