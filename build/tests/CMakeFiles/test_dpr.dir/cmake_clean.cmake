file(REMOVE_RECURSE
  "CMakeFiles/test_dpr.dir/test_dpr.cpp.o"
  "CMakeFiles/test_dpr.dir/test_dpr.cpp.o.d"
  "test_dpr"
  "test_dpr.pdb"
  "test_dpr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
