# Empty compiler generated dependencies file for test_dpr.
# This may be replaced when dependencies are built.
