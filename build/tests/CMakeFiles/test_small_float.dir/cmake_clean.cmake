file(REMOVE_RECURSE
  "CMakeFiles/test_small_float.dir/test_small_float.cpp.o"
  "CMakeFiles/test_small_float.dir/test_small_float.cpp.o.d"
  "test_small_float"
  "test_small_float.pdb"
  "test_small_float[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_small_float.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
