file(REMOVE_RECURSE
  "CMakeFiles/test_executor_memory.dir/test_executor_memory.cpp.o"
  "CMakeFiles/test_executor_memory.dir/test_executor_memory.cpp.o.d"
  "test_executor_memory"
  "test_executor_memory.pdb"
  "test_executor_memory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executor_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
