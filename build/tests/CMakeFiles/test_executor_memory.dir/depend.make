# Empty dependencies file for test_executor_memory.
# This may be replaced when dependencies are built.
