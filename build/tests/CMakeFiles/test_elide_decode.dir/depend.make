# Empty dependencies file for test_elide_decode.
# This may be replaced when dependencies are built.
