file(REMOVE_RECURSE
  "CMakeFiles/test_elide_decode.dir/test_elide_decode.cpp.o"
  "CMakeFiles/test_elide_decode.dir/test_elide_decode.cpp.o.d"
  "test_elide_decode"
  "test_elide_decode.pdb"
  "test_elide_decode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elide_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
