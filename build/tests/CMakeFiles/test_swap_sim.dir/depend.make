# Empty dependencies file for test_swap_sim.
# This may be replaced when dependencies are built.
