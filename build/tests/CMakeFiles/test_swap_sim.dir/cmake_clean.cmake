file(REMOVE_RECURSE
  "CMakeFiles/test_swap_sim.dir/test_swap_sim.cpp.o"
  "CMakeFiles/test_swap_sim.dir/test_swap_sim.cpp.o.d"
  "test_swap_sim"
  "test_swap_sim.pdb"
  "test_swap_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_swap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
