/**
 * @file
 * Figure 16: deeper ResNets — training speedup from the larger
 * minibatch Gist fits into the 12 GB card (paper: positive speedups
 * growing with depth, 22% at ResNet-1202).
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/zoo.hpp"
#include "perf/batch_fit.hpp"

using namespace gist;

int
main()
{
    bench::banner("Figure 16",
                  "speedup from larger minibatches on deep ResNets",
                  "speedup grows with depth; 22% at ResNet-1202");

    // 12 GB card minus weights/workspace/framework overhead.
    const std::uint64_t budget = 11ull * 1024 * 1024 * 1024;
    const SparsityModel sparsity;
    GpuModelParams params;
    // CIFAR-scale layers saturate a Titan X slowly: a 32x32x16 map is
    // only ~16K threads per image, so utilization keeps climbing well
    // past batch 64 (calibration note in EXPERIMENTS.md).
    params.batch_half_point = 48.0;

    Table table({ "network", "baseline batch", "gist batch",
                  "batch growth", "speedup" });
    for (int depth : { 509, 851, 1202 }) {
        auto build = [depth](std::int64_t b) {
            return models::resnetCifar(depth, b);
        };
        const auto base = largestFittingBatch(
            build, GistConfig::baseline(), sparsity, budget, 2048);
        const auto gist = largestFittingBatch(
            build, GistConfig::lossy(DprFormat::Fp10), sparsity, budget,
            2048);
        const double speedup =
            speedupFromBatches(base.max_batch, gist.max_batch, params);
        table.addRow(
            { "ResNet-" + std::to_string(depth),
              std::to_string(base.max_batch),
              std::to_string(gist.max_batch),
              formatRatio(double(gist.max_batch) /
                          double(base.max_batch)),
              formatPercent(speedup - 1.0) });
    }
    table.print();
    bench::note("CIFAR-style ResNets (basic blocks, 32x32 inputs) as in "
                "the ResNet paper's depth study; Gist config is "
                "lossless+DPR-FP10 (Inception-class width). Speedup = "
                "utilization(batch_gist)/utilization(batch_base) with a "
                "saturating-utilization GPU model.");
    return 0;
}
