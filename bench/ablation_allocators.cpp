/**
 * @file
 * Ablation: allocator policy. The paper builds on CNTK's sharing-group
 * allocator; this table compares it against a stronger offset-packing
 * (first-fit address assignment) policy and the dynamic-allocation lower
 * bound, for the baseline and the full Gist configuration.
 *
 * Expected: groups <= raw sum, offsets <= groups, dynamic <= offsets;
 * Gist's MFR survives under every policy (its win is from shorter
 * lifetimes, not from one allocator's quirks).
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/zoo.hpp"

using namespace gist;

namespace {

struct PolicyRow
{
    std::uint64_t raw = 0;
    std::uint64_t groups = 0;
    std::uint64_t offsets = 0;
    std::uint64_t dynamic = 0;
};

PolicyRow
policiesOf(Graph &g, const GistConfig &cfg)
{
    const auto schedule = buildSchedule(g, cfg);
    const auto bufs = planBuffers(g, schedule, SparsityModel{});
    std::vector<PlannedBuffer> pool;
    PolicyRow row;
    for (const auto &b : bufs) {
        if (!inMfrPool(b.cls))
            continue;
        pool.push_back(b);
        row.raw += b.bytes;
    }
    row.groups = allocateCntkStyle(pool).total_bytes;
    row.offsets = allocateOffsetBestFit(pool);
    row.dynamic = dynamicPeak(pool);
    return row;
}

} // namespace

int
main()
{
    bench::banner("Ablation", "allocator policies (fmap pool footprint)",
                  "design-choice study: CNTK sharing groups vs offset "
                  "packing vs the dynamic lower bound");

    const std::int64_t batch = 64;
    Table table({ "network", "config", "raw sum", "CNTK groups",
                  "offset pack", "dynamic peak", "MFR(groups)" });
    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const PolicyRow base = policiesOf(g, GistConfig::baseline());
        const PolicyRow gist =
            policiesOf(g, GistConfig::lossy(DprFormat::Fp16));
        table.addRow({ entry.name, "baseline", bench::mb(base.raw),
                       bench::mb(base.groups), bench::mb(base.offsets),
                       bench::mb(base.dynamic), "1.00x" });
        table.addRow({ "", "gist-fp16", bench::mb(gist.raw),
                       bench::mb(gist.groups), bench::mb(gist.offsets),
                       bench::mb(gist.dynamic),
                       formatRatio(double(base.groups) /
                                   double(gist.groups)) });
    }
    table.print();
    bench::note("all policies run over identical planned buffers; "
                "offset packing bounds how much of the CNTK grouping "
                "policy's footprint is policy slack vs true lifetime "
                "pressure (the dynamic peak).");
    return 0;
}
