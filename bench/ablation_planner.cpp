/**
 * @file
 * Budget ablation for the hybrid planner: the measured time-vs-footprint
 * frontier of the budget-driven hybrid plan against the two pure
 * policies it generalizes — pure Gist (lossless encodings, no budget)
 * and pure recompute (gradient checkpointing at the cheapest interval
 * that fits the budget). All three run the *real* executor on the
 * fig09-style workload (tiny ResNet, batch 32, synthetic minibatches), so
 * every row is a measured seconds-per-minibatch plus a measured
 * ExecStats peak — not a model.
 *
 * Usage: ablation_planner [--mem-budget <size>] [--json <path>]
 *                         [--steps <n>] [--model <name>]
 *   --mem-budget  run one absolute budget instead of the default sweep
 *                 over fractions of the measured pure-Gist peak
 *   --json        write a {"bench":"ablation_planner",...} record for
 *                 the BENCH_parallel.json trajectory (regression gate)
 *   --steps       timed minibatches per policy (default 6)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/recompute.hpp"
#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/tiny.hpp"
#include "util/rng.hpp"

using namespace gist;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct Measured
{
    double s_per_mb = 0.0;        ///< best-of timed minibatches
    std::uint64_t peak_bytes = 0; ///< max ExecStats::peak_pool_bytes
};

/**
 * Run @p steps identical synthetic minibatches under @p schedule and
 * return the best (min) seconds per minibatch plus the measured pool
 * peak. The first minibatch is a warm-up (pool growth, first-touch)
 * and is excluded from the timing but not from the peak.
 */
Measured
measure(Graph &g, const BuiltSchedule &schedule, int steps)
{
    Rng rng(7);
    g.initParams(rng);
    Executor exec(g);
    applyToExecutor(schedule, exec);

    Rng drng(8);
    const std::int64_t batch = g.node(0).out_shape.dim(0);
    std::vector<std::int32_t> labels(static_cast<size_t>(batch));
    for (std::int64_t i = 0; i < batch; ++i)
        labels[static_cast<size_t>(i)] =
            static_cast<std::int32_t>(i % models::kTinyClasses);
    const Tensor input =
        Tensor::uniform(g.node(0).out_shape, drng, 0.0f, 1.0f);

    Measured m;
    m.s_per_mb = 1e30;
    for (int s = 0; s < steps + 1; ++s) {
        const double t0 = now();
        exec.runMinibatch(input, labels);
        const double dt = now() - t0;
        if (s > 0)
            m.s_per_mb = std::min(m.s_per_mb, dt);
        m.peak_bytes =
            std::max(m.peak_bytes, exec.stats().peak_pool_bytes);
    }
    return m;
}

struct Row
{
    std::string name;
    std::uint64_t budget = 0; ///< 0 = unconstrained
    bool feasible = true;
    std::uint64_t planned_peak = 0; ///< 0 = policy has no model
    Measured meas;
    std::string detail;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::applyObsFlags(argc, argv);
    const std::uint64_t fixed_budget = bench::memBudgetFlag(argc, argv);
    int steps = 6;
    std::string json_path;
    std::string model_name = "ResNet";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--steps") == 0)
            steps = std::max(1, std::atoi(argv[i + 1]));
        else if (std::strcmp(argv[i], "--model") == 0)
            model_name = argv[i + 1];
    }

    bench::banner("Planner ablation",
                  "hybrid plan vs pure Gist vs pure recompute",
                  "ROADMAP item 3: one planner owning the "
                  "encode-vs-recompute-vs-keep trade under a budget");

    const models::ModelEntry *entry = nullptr;
    for (const auto &e : models::tinyModels())
        if (model_name == e.name)
            entry = &e;
    if (!entry) {
        std::fprintf(stderr, "unknown --model '%s'\n",
                     model_name.c_str());
        return 2;
    }
    const std::int64_t batch = 32;

    // --- the two unconstrained anchors ---
    Graph gb = entry->build(batch);
    const Measured base =
        measure(gb, buildSchedule(gb, GistConfig::baseline()), steps);
    Graph gg = entry->build(batch);
    const Measured gist =
        measure(gg, buildSchedule(gg, GistConfig::lossless()), steps);
    std::printf("%s batch %lld: baseline peak %s (%.4f s/mb), "
                "pure-Gist peak %s (%.4f s/mb)\n\n",
                entry->name.c_str(), static_cast<long long>(batch),
                bench::mb(base.peak_bytes).c_str(), base.s_per_mb,
                bench::mb(gist.peak_bytes).c_str(), gist.s_per_mb);

    // --- pure recompute, one measured point per interval ---
    struct RecPoint
    {
        int interval;
        Measured meas;
    };
    std::vector<RecPoint> rec_points;
    for (const int k : { 2, 3, 4, 6, 8, 12 }) {
        Graph g = entry->build(batch);
        rec_points.push_back(
            { k, measure(g, recomputeSchedule(g, k), steps) });
    }

    // Cheapest (in time) recompute point whose measured peak fits.
    auto best_recompute = [&](std::uint64_t budget) -> const RecPoint * {
        const RecPoint *best = nullptr;
        for (const auto &p : rec_points) {
            if (p.meas.peak_bytes > budget)
                continue;
            if (!best || p.meas.s_per_mb < best->meas.s_per_mb)
                best = &p;
        }
        return best;
    };

    std::vector<std::uint64_t> budgets;
    if (fixed_budget > 0) {
        budgets.push_back(fixed_budget);
    } else {
        // Sweep fractions of the measured pure-Gist peak; 0.70 is the
        // acceptance point (30% below pure Gist).
        for (const double f : { 0.95, 0.85, 0.70, 0.55, 0.40 })
            budgets.push_back(static_cast<std::uint64_t>(
                static_cast<double>(gist.peak_bytes) * f));
    }

    std::vector<Row> rows;
    rows.push_back({ "baseline", 0, true, 0, base, "keep everything" });
    rows.push_back({ "gist-lossless", 0, true, 0, gist, "no budget" });

    std::string plan_json; // deepest feasible hybrid plan, for --json
    for (const std::uint64_t budget : budgets) {
        Graph g = entry->build(batch);
        GistConfig cfg = GistConfig::lossless();
        cfg.mem_budget_bytes = budget;
        const BuiltSchedule schedule = buildSchedule(g, cfg);
        Row hy;
        hy.name = "hybrid";
        hy.budget = budget;
        hy.feasible = schedule.hybrid.feasible;
        hy.planned_peak = schedule.hybrid.planned_peak_bytes;
        hy.meas = measure(g, schedule, steps);
        char d[96];
        std::snprintf(d, sizeof(d), "planned peak %s%s",
                      bench::mb(hy.planned_peak).c_str(),
                      hy.feasible ? "" : " (infeasible)");
        hy.detail = d;
        rows.push_back(hy);
        if (hy.feasible)
            plan_json = hybridPlanJson(schedule);

        Row rc;
        rc.name = "recompute";
        rc.budget = budget;
        if (const RecPoint *p = best_recompute(budget)) {
            rc.meas = p->meas;
            rc.detail = "k=" + std::to_string(p->interval);
        } else {
            rc.feasible = false;
            rc.meas.s_per_mb = 0.0;
            rc.detail = "no interval fits";
        }
        rows.push_back(rc);
    }

    Table table({ "policy", "budget", "measured peak", "fits", "s/mb",
                  "overhead", "detail" });
    for (const Row &r : rows) {
        const bool fits =
            r.budget == 0 ||
            (r.feasible && r.meas.peak_bytes <= r.budget);
        char t[32];
        std::snprintf(t, sizeof(t), "%.4f", r.meas.s_per_mb);
        table.addRow(
            { r.name, r.budget ? bench::mb(r.budget) : "-",
              r.feasible ? bench::mb(r.meas.peak_bytes) : "-",
              r.budget == 0 ? "-" : (fits ? "yes" : "NO"),
              r.feasible ? t : "-",
              r.feasible && base.s_per_mb > 0.0
                  ? formatPercent(r.meas.s_per_mb / base.s_per_mb - 1.0)
                  : "-",
              r.detail });
    }
    table.print();
    bench::note("hybrid rows run the budget-driven planner (keep / CSR "
                "/ recompute per stash slot); recompute rows pick the "
                "fastest checkpoint interval whose measured peak fits "
                "the same budget. All rows are measured executor runs "
                "on identical minibatches.");

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"bench\": \"ablation_planner\",\n"
                     "  \"model\": \"%s\",\n  \"batch\": %lld,\n"
                     "  \"gist_peak_bytes\": %llu,\n  \"rows\": [\n",
                     entry->name.c_str(), static_cast<long long>(batch),
                     static_cast<unsigned long long>(gist.peak_bytes));
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            const double frac =
                gist.peak_bytes > 0
                    ? static_cast<double>(r.budget) /
                          static_cast<double>(gist.peak_bytes)
                    : 0.0;
            char name[64];
            if (r.budget > 0)
                std::snprintf(name, sizeof(name), "%s@%.2f",
                              r.name.c_str(), frac);
            else
                std::snprintf(name, sizeof(name), "%s", r.name.c_str());
            std::fprintf(
                f,
                "    {\"name\": \"%s\", \"budget_bytes\": %llu, "
                "\"feasible\": %s, \"peak_bytes\": %llu, "
                "\"s_per_mb\": %.6f, \"mb_per_s\": %.4f}%s\n",
                name, static_cast<unsigned long long>(r.budget),
                r.feasible ? "true" : "false",
                static_cast<unsigned long long>(r.meas.peak_bytes),
                r.meas.s_per_mb,
                r.meas.s_per_mb > 0.0 ? 1.0 / r.meas.s_per_mb : 0.0,
                i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(f, "  ],\n  \"plan\": %s\n}\n",
                     plan_json.empty() ? "null" : plan_json.c_str());
        std::fclose(f);
        std::printf("json written to %s\n", json_path.c_str());
    }
    return 0;
}
