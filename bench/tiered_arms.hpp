/**
 * @file
 * Shared machinery for the measured tiered-memory comparisons
 * (ext_cdma, fig15's measured section): run a tiny model with every
 * stash slot swapped through the DevicePool's slow tier and report
 * timing plus transfer/stall accounting.
 *
 * The arms map onto the swap strategies the paper compares:
 *  - naive swap: sync codec path — every eviction/fetch/transfer runs
 *    inline on the main thread (compute blocks on the tier).
 *  - vDNN: async codec path — transfers run on codec workers and the
 *    backward-order prefetcher fetches ahead, so only uncovered
 *    transfer time stalls compute.
 *  - compressed DMA (cDMA): vDNN whose evictions are CSR/DPR-encoded
 *    before they cross the slow link, shrinking transfer volume.
 */

#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "core/gist.hpp"
#include "models/tiny.hpp"
#include "util/rng.hpp"

namespace gist::bench {

/** One measured swap-strategy arm. */
struct TieredArm
{
    double s_per_mb = 0.0;          ///< best-of timed minibatches
    std::uint64_t peak_bytes = 0;   ///< max measured pool peak
    std::uint64_t bytes_out = 0;    ///< device -> tier, summed
    std::uint64_t bytes_in = 0;     ///< tier -> device, summed
    double tier_seconds = 0.0;      ///< transfer wall time, summed
    double stall_seconds = 0.0;     ///< main-thread codec-join blocks
    std::uint64_t evictions = 0;
    float last_loss = 0.0f;
};

/**
 * Build @p entry at @p batch under @p cfg, optionally force every
 * stash slot to Repr::Swap (@p swap_all — the transfer codec follows
 * cfg per swapCodecFor), and run @p steps + 1 identical minibatches
 * (first is warm-up). Counters are summed over the timed steps.
 */
inline TieredArm
runTieredArm(const models::ModelEntry &entry, std::int64_t batch,
             GistConfig cfg, bool swap_all, bool async, int steps)
{
    cfg.async_codec = async;
    Graph g = entry.build(batch);
    Rng rng(7);
    g.initParams(rng);
    BuiltSchedule schedule = buildSchedule(g, cfg);
    if (swap_all) {
        const ScheduleInfo sched(g);
        for (auto &node : g.nodes())
            if (sched.stashed(node.id) &&
                !schedule.of(node.id).binarized)
                schedule.decisions[static_cast<size_t>(node.id)].repr =
                    StashPlan::Repr::Swap;
    }
    Executor exec(g);
    applyToExecutor(schedule, exec);

    Rng drng(8);
    std::vector<std::int32_t> labels(static_cast<size_t>(batch));
    for (std::int64_t i = 0; i < batch; ++i)
        labels[static_cast<size_t>(i)] =
            static_cast<std::int32_t>(i % models::kTinyClasses);
    const Tensor input =
        Tensor::uniform(g.node(0).out_shape, drng, 0.0f, 1.0f);

    const auto now = [] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    };
    TieredArm arm;
    arm.s_per_mb = 1e30;
    for (int s = 0; s < steps + 1; ++s) {
        const double t0 = now();
        arm.last_loss = exec.runMinibatch(input, labels);
        const double dt = now() - t0;
        const ExecStats &st = exec.stats();
        arm.peak_bytes = std::max(arm.peak_bytes, st.peak_pool_bytes);
        if (s == 0)
            continue; // warm-up
        arm.s_per_mb = std::min(arm.s_per_mb, dt);
        arm.bytes_out += st.tier_bytes_out;
        arm.bytes_in += st.tier_bytes_in;
        arm.tier_seconds +=
            static_cast<double>(st.tier_write_ns + st.tier_read_ns) /
            1e9;
        arm.stall_seconds +=
            static_cast<double>(st.codec_stall_ns) / 1e9;
        arm.evictions += st.tier_evictions;
    }
    return arm;
}

} // namespace gist::bench
