/**
 * @file
 * Figure 15: performance overhead of CPU<->GPU swapping strategies vs
 * Gist, per network (paper: naive ~30% average; vDNN ~15% average with
 * 27% worst-case on Inception; Gist ~4% average, max 7%).
 */

#include "baselines/swap_sim.hpp"
#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace gist;

int
main()
{
    bench::banner("Figure 15",
                  "swap-based baselines vs Gist (modeled overhead)",
                  "naive ~30% avg; vDNN ~15% avg / 27% max "
                  "(Inception); Gist ~4% avg / 7% max");

    const std::int64_t batch = 64;
    const GpuModelParams params;
    const SparsityModel sparsity;

    Table table({ "network", "swap volume", "naive swap", "vDNN",
                  "Gist (lossless)", "Gist (lossy)" });
    std::vector<double> naive_all;
    std::vector<double> vdnn_all;
    std::vector<double> gist_all;
    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const auto naive = simulateNaiveSwap(g, params);
        const auto vdnn = simulateVdnn(g, params);
        const double gist_lossless = gistOverheadModel(
            g, GistConfig::lossless(), sparsity, params);
        const double gist_lossy = gistOverheadModel(
            g, GistConfig::lossy(DprFormat::Fp16), sparsity, params);
        naive_all.push_back(naive.overheadFraction());
        vdnn_all.push_back(vdnn.overheadFraction());
        gist_all.push_back(gist_lossy);
        table.addRow({ entry.name,
                       bench::mb(naive.transferred_bytes),
                       formatPercent(naive.overheadFraction()),
                       formatPercent(vdnn.overheadFraction()),
                       formatPercent(gist_lossless),
                       formatPercent(gist_lossy) });
    }
    table.addSeparator();
    table.addRow({ "average", "", formatPercent(mean(naive_all)),
                   formatPercent(mean(vdnn_all)), "",
                   formatPercent(mean(gist_all)) });
    table.print();
    bench::note("event simulation over the layer schedule: offloads/"
                "prefetches on a PCIe stream (12 GB/s) against roofline "
                "layer times (Titan-X parameters); vDNN uses the "
                "vDNN_conv policy with a bounded prefetch window. Order "
                "and magnitudes match the paper; our vDNN hides "
                "slightly more than the real system, which also paid "
                "cudaMalloc/sync costs we do not model.");
    return 0;
}
