/**
 * @file
 * Figure 15: performance overhead of CPU<->GPU swapping strategies vs
 * Gist, per network (paper: naive ~30% average; vDNN ~15% average with
 * 27% worst-case on Inception; Gist ~4% average, max 7%).
 *
 * Two views:
 *  1. modeled: the analytic event simulation on the full-scale
 *     networks with Titan-X parameters (the original figure).
 *  2. measured micro: the same strategy ordering reproduced by the
 *     real tiered-memory engine on a tiny model — naive synchronous
 *     swap vs vDNN-style overlapped swap through a throttled slow
 *     tier vs Gist's on-device encodings (no tier at all).
 */

#include <cstring>
#include <string>

#include "baselines/swap_sim.hpp"
#include "bench_common.hpp"
#include "models/zoo.hpp"
#include "tiered_arms.hpp"

using namespace gist;

int
main(int argc, char **argv)
{
    bench::applyObsFlags(argc, argv);
    int steps = 5;
    std::string model_name = "ResNet";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--steps") == 0)
            steps = std::max(1, std::atoi(argv[i + 1]));
        else if (std::strcmp(argv[i], "--model") == 0)
            model_name = argv[i + 1];
    }
    const double tier_gbps = bench::tierGbpsFlag(argc, argv, 1.5);

    bench::banner("Figure 15",
                  "swap-based baselines vs Gist (modeled overhead)",
                  "naive ~30% avg; vDNN ~15% avg / 27% max "
                  "(Inception); Gist ~4% avg / 7% max");

    const std::int64_t batch = 64;
    const GpuModelParams params;
    const SparsityModel sparsity;

    std::printf("\n(a) modeled on Titan-X parameters, full-scale "
                "networks:\n");
    Table table({ "network", "swap volume", "naive swap", "vDNN",
                  "Gist (lossless)", "Gist (lossy)" });
    std::vector<double> naive_all;
    std::vector<double> vdnn_all;
    std::vector<double> gist_all;
    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const auto naive = simulateNaiveSwap(g, params);
        const auto vdnn = simulateVdnn(g, params);
        const double gist_lossless = gistOverheadModel(
            g, GistConfig::lossless(), sparsity, params);
        const double gist_lossy = gistOverheadModel(
            g, GistConfig::lossy(DprFormat::Fp16), sparsity, params);
        naive_all.push_back(naive.overheadFraction());
        vdnn_all.push_back(vdnn.overheadFraction());
        gist_all.push_back(gist_lossy);
        table.addRow({ entry.name,
                       bench::mb(naive.transferred_bytes),
                       bench::percentOrNa(naive.overheadFraction()),
                       bench::percentOrNa(vdnn.overheadFraction()),
                       formatPercent(gist_lossless),
                       formatPercent(gist_lossy) });
    }
    table.addSeparator();
    table.addRow({ "average", "", bench::percentOrNa(mean(naive_all)),
                   bench::percentOrNa(mean(vdnn_all)), "",
                   formatPercent(mean(gist_all)) });
    table.print();
    bench::note("event simulation over the layer schedule: offloads/"
                "prefetches on a PCIe stream (12 GB/s) against roofline "
                "layer times (Titan-X parameters); vDNN uses the "
                "vDNN_conv policy with a bounded prefetch window. Order "
                "and magnitudes match the paper; our vDNN hides "
                "slightly more than the real system, which also paid "
                "cudaMalloc/sync costs we do not model.");

    const models::ModelEntry *micro = nullptr;
    for (const auto &e : models::tinyModels())
        if (model_name == e.name)
            micro = &e;
    if (!micro) {
        std::fprintf(stderr, "unknown --model '%s'\n",
                     model_name.c_str());
        return 2;
    }
    const std::int64_t micro_batch = 32;
    std::printf("\n(b) measured micro on this CPU (%s batch %lld, "
                "slow tier throttled to %.1f GB/s):\n",
                micro->name.c_str(),
                static_cast<long long>(micro_batch), tier_gbps);

    GistConfig raw = GistConfig::baseline();
    raw.tier_bandwidth_bytes_per_s = tier_gbps * 1e9;
    const auto base =
        bench::runTieredArm(*micro, micro_batch, raw, false, false,
                            steps);
    const auto naive =
        bench::runTieredArm(*micro, micro_batch, raw, true, false,
                            steps);
    const auto vdnn =
        bench::runTieredArm(*micro, micro_batch, raw, true, true,
                            steps);
    const auto gist_arm =
        bench::runTieredArm(*micro, micro_batch,
                            GistConfig::lossless(), false, true, steps);

    Table measured({ "strategy", "s/mb", "overhead", "bytes out/step",
                     "peak pool" });
    const struct
    {
        const char *name;
        const bench::TieredArm *arm;
    } rows[] = { { "unbounded", &base },
                 { "naive-swap", &naive },
                 { "vdnn-overlap", &vdnn },
                 { "gist-lossless", &gist_arm } };
    for (const auto &r : rows) {
        char t[32];
        std::snprintf(t, sizeof t, "%.4f", r.arm->s_per_mb);
        measured.addRow(
            { r.name, t,
              base.s_per_mb > 0.0
                  ? bench::percentOrNa(r.arm->s_per_mb /
                                           base.s_per_mb -
                                       1.0)
                  : "n/a",
              bench::mb(r.arm->bytes_out /
                        static_cast<std::uint64_t>(
                            std::max(1, steps))),
              bench::mb(r.arm->peak_bytes) });
    }
    measured.print();
    bench::note("swap arms move every stash slot through the real "
                "DevicePool slow tier; the gist arm keeps encoded "
                "stashes on the device and never touches the tier — "
                "the figure's ordering reproduced with measured runs.");
    return 0;
}
