/**
 * @file
 * Figure 13: footprint impact of DPR alone (no Binarize/SSDC), against
 * the investigation baseline, split into stashed vs immediately
 * consumed. FP16 halves the stash; the smallest accuracy-preserving
 * width (FP8/FP10) cuts it ~4x (paper: 1.18x total MFR for AlexNet at
 * FP16, 1.48x at FP8).
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/zoo.hpp"

using namespace gist;

namespace {

DprFormat
smallestAccurateFormat(const std::string &name)
{
    if (name == "AlexNet" || name == "Overfeat")
        return DprFormat::Fp8;
    if (name == "VGG16")
        return DprFormat::Fp16;
    return DprFormat::Fp10;
}

struct Split
{
    std::uint64_t stashed = 0;
    std::uint64_t immediate = 0;
    std::uint64_t total = 0;
};

Split
splitOf(Graph &g, const GistConfig &cfg)
{
    const auto schedule = buildSchedule(g, cfg);
    const auto bufs = planBuffers(g, schedule, SparsityModel{});
    const auto summary = summarize(bufs, /*investigation=*/true);
    Split s;
    s.total = summary.pool_static;
    for (const auto &b : bufs)
        if (b.cls == DataClass::StashedFmap ||
            b.cls == DataClass::EncodedFmap)
            s.stashed += b.bytes;
    s.immediate = s.total - s.stashed;
    return s;
}

} // namespace

int
main()
{
    bench::banner("Figure 13",
                  "DPR-only footprint vs investigation baseline",
                  "FP16: stash 2x smaller (AlexNet total 1.18x); "
                  "FP8: stash 4x smaller (AlexNet total 1.48x)");

    const std::int64_t batch = 64;
    for (const auto &entry : models::allModels()) {
        std::printf("\n%s:\n", entry.name.c_str());
        Graph g = entry.build(batch);
        Table table({ "config", "stashed", "immediate", "total",
                      "MFR", "stash MFR" });

        const Split base = splitOf(g, GistConfig::baseline());
        table.addRow({ "investigation baseline", bench::mb(base.stashed),
                       bench::mb(base.immediate), bench::mb(base.total),
                       "1.00x", "1.00x" });

        auto dpr_arm = [&](const char *label, DprFormat fmt) {
            GistConfig cfg;
            cfg.dpr = true;
            cfg.dpr_format = fmt;
            const Split s = splitOf(g, cfg);
            table.addRow(
                { label, bench::mb(s.stashed), bench::mb(s.immediate),
                  bench::mb(s.total),
                  formatRatio(double(base.total) / double(s.total)),
                  formatRatio(double(base.stashed) /
                              double(s.stashed)) });
        };
        dpr_arm("DPR FP16", DprFormat::Fp16);
        const DprFormat best = smallestAccurateFormat(entry.name);
        if (best != DprFormat::Fp16) {
            dpr_arm(best == DprFormat::Fp8 ? "DPR FP8" : "DPR FP10",
                    best);
        } else {
            table.addRow({ "DPR FP8", "-", "-", "-", "-",
                           "(accuracy-unsafe for VGG16)" });
        }
        table.print();
    }
    bench::note("DPR applied to every stashed fmap; the FP32 forward "
                "copy and decode buffer move into the immediate region "
                "(paper Section V-D2). Widths below FP16 are only shown "
                "where Fig 12 finds them accuracy-safe.");
    return 0;
}
