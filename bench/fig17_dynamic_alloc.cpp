/**
 * @file
 * Figure 17: hardware/software headroom — dynamic memory allocation,
 * Gist under dynamic allocation, and "optimized software" that computes
 * directly on encoded data (eliding the FP32 decode buffer).
 *
 * Paper: dynamic alone ~1.2x average (>1.5x Overfeat); Gist lossless /
 * lossy under dynamic allocation 1.7x / 2.6x; with optimized software
 * up to 4.1x (AlexNet), 2.9x average — all vs the static CNTK baseline.
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/zoo.hpp"

using namespace gist;

namespace {

DprFormat
bestFormatFor(const std::string &name)
{
    if (name == "AlexNet" || name == "Overfeat")
        return DprFormat::Fp8;
    if (name == "VGG16")
        return DprFormat::Fp16;
    return DprFormat::Fp10;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 17", "dynamic allocation and optimized software",
        "dynamic ~1.2x avg; Gist lossless/lossy + dynamic 1.7x/2.6x; "
        "+optimized software up to 4.1x (2.9x avg)");

    const std::int64_t batch = 64;
    const SparsityModel sparsity;
    Table table({ "network", "dynamic", "gist lossless+dyn",
                  "gist lossy+dyn", "+opt software" });

    std::vector<double> col[4];
    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const auto base =
            planModel(g, GistConfig::baseline(), sparsity);
        const double static_base =
            static_cast<double>(base.pool_static);

        const double dyn = static_base / base.pool_dynamic;

        const auto lossless =
            planModel(g, GistConfig::lossless(), sparsity);
        const double gist_ll = static_base / lossless.pool_dynamic;

        const DprFormat fmt = bestFormatFor(entry.name);
        const auto lossy = planModel(g, GistConfig::lossy(fmt), sparsity);
        const double gist_lo = static_base / lossy.pool_dynamic;

        GistConfig opt = GistConfig::lossy(fmt);
        opt.elide_decode_buffer = true;
        const auto optimized = planModel(g, opt, sparsity);
        const double gist_opt = static_base / optimized.pool_dynamic;

        col[0].push_back(dyn);
        col[1].push_back(gist_ll);
        col[2].push_back(gist_lo);
        col[3].push_back(gist_opt);
        table.addRow({ entry.name, formatRatio(dyn),
                       formatRatio(gist_ll), formatRatio(gist_lo),
                       formatRatio(gist_opt) });
    }
    table.addSeparator();
    table.addRow({ "average", formatRatio(mean(col[0])),
                   formatRatio(mean(col[1])), formatRatio(mean(col[2])),
                   formatRatio(mean(col[3])) });
    table.print();
    bench::note("dynamic allocation = peak of simultaneously-live bytes "
                "(Section V-H simulation); optimized software removes "
                "the decode buffer because backward kernels would read "
                "encoded data directly. All MFRs are against the "
                "*static* CNTK baseline like the paper's figure.");
    return 0;
}
