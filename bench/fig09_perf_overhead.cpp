/**
 * @file
 * Figure 9: performance overhead of the Gist encodings.
 *
 * Two views, since the paper's substrate is a GPU and ours is a CPU:
 *  1. measured: seconds per training minibatch of the tiny model suite
 *     on this machine, baseline vs lossless vs lossless+DPR (the real
 *     encode/decode kernels run in the loop);
 *  2. modeled: the bandwidth-cost model of the encode/decode kernels on
 *     the full-scale networks with Titan-X parameters.
 */

#include "baselines/swap_sim.hpp"
#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/tiny.hpp"
#include "models/zoo.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

using namespace gist;

namespace {

std::uint64_t g_mem_budget = 0; ///< --mem-budget: hybrid-planner smoke

double
measureSecondsPerMinibatch(const models::ModelEntry &entry,
                           const GistConfig &cfg_in)
{
    GistConfig cfg = cfg_in;
    cfg.mem_budget_bytes = g_mem_budget;
    Graph g = entry.build(32);
    Rng rng(7);
    g.initParams(rng);
    Executor exec(g);
    applyToExecutor(buildSchedule(g, cfg), exec);
    Trainer trainer(exec);

    SyntheticDataset::Spec spec;
    spec.num_train = 128;
    spec.num_eval = 32;
    spec.classes = models::kTinyClasses;
    spec.image = models::kTinyImage;
    SyntheticDataset data(spec);

    TrainConfig tc;
    tc.epochs = 2;
    trainer.run(data, tc);
    return trainer.secondsPerMinibatch();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::applyObsFlags(argc, argv);
    bench::banner("Figure 9", "performance overhead of Gist encodings",
                  "~3% lossless, ~4% lossless+lossy on average; "
                  "max 7% (VGG16)");
    g_mem_budget = bench::memBudgetFlag(argc, argv);
    if (g_mem_budget > 0)
        std::printf("mem budget: %s (hybrid planner active on every "
                    "measured config)\n",
                    bench::mb(g_mem_budget).c_str());

    std::printf("\n(a) measured on this CPU, tiny model suite:\n");
    Table measured({ "network", "baseline s/mb", "lossless", "overhead",
                     "lossy(FP16)", "overhead " });
    std::vector<double> over_ll;
    std::vector<double> over_lo;
    for (const auto &entry : models::tinyModels()) {
        const double base =
            measureSecondsPerMinibatch(entry, GistConfig::baseline());
        const double lossless =
            measureSecondsPerMinibatch(entry, GistConfig::lossless());
        const double lossy = measureSecondsPerMinibatch(
            entry, GistConfig::lossy(DprFormat::Fp16));
        over_ll.push_back(lossless / base - 1.0);
        over_lo.push_back(lossy / base - 1.0);
        char b[32];
        std::snprintf(b, sizeof(b), "%.4f", base);
        char l[32];
        std::snprintf(l, sizeof(l), "%.4f", lossless);
        char o[32];
        std::snprintf(o, sizeof(o), "%.4f", lossy);
        measured.addRow({ entry.name, b, l,
                          formatPercent(lossless / base - 1.0), o,
                          formatPercent(lossy / base - 1.0) });
    }
    measured.addSeparator();
    measured.addRow({ "average", "", "", formatPercent(mean(over_ll)),
                      "", formatPercent(mean(over_lo)) });
    measured.print();

    std::printf("\n(b) modeled on Titan-X parameters, full-scale "
                "networks (encode/decode kernel traffic):\n");
    Table modeled({ "network", "lossless overhead", "lossy overhead" });
    const SparsityModel sparsity;
    const GpuModelParams params;
    std::vector<double> model_ll;
    std::vector<double> model_lo;
    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(64);
        const double lossless = gistOverheadModel(
            g, GistConfig::lossless(), sparsity, params);
        const double lossy = gistOverheadModel(
            g, GistConfig::lossy(DprFormat::Fp16), sparsity, params);
        model_ll.push_back(lossless);
        model_lo.push_back(lossy);
        modeled.addRow({ entry.name, formatPercent(lossless),
                         formatPercent(lossy) });
    }
    modeled.addSeparator();
    modeled.addRow({ "average", formatPercent(mean(model_ll)),
                     formatPercent(mean(model_lo)) });
    modeled.print();
    bench::note("CPU measurements include real encode/decode in the "
                "training loop; CPU conv/GEMM are relatively slower "
                "than GPU kernels, so CPU overhead percentages "
                "understate what matters less and the modeled view "
                "covers the GPU regime. Both stay in the single digits "
                "as the paper reports.");
    return 0;
}
