/**
 * @file
 * SIMD backend microbenchmark: times each dispatched kernel once with
 * the scalar reference backend and once with the best ISA this machine
 * offers, reports GB/s for both plus the speedup, and memcmp-verifies
 * that the integer codec kernels produced byte-identical output (the
 * cross-backend bitwise contract; axpy/dot are float kernels and are
 * exempt). Runs single-threaded so the ratio isolates the ISA effect
 * from thread scaling (micro_parallel covers the latter).
 *
 * Usage: micro_simd [--json <path>]
 *   --json    write one JSON object with per-kernel rows, consumed by
 *             scripts/run_micro_parallel.sh for the BENCH trajectory.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "encodings/csr.hpp"
#include "simd/dispatch.hpp"
#include "simd/sf_codes.hpp"
#include "tensor/gemm.hpp"
#include "util/rng.hpp"

namespace {

using gist::Rng;
using namespace gist::simd;

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Time fn over enough repetitions to exceed ~60 ms; returns s/call. */
double
timeIt(const std::function<void()> &fn)
{
    fn(); // warm-up
    int reps = 1;
    for (;;) {
        const double t0 = now();
        for (int r = 0; r < reps; ++r)
            fn();
        const double dt = now() - t0;
        if (dt > 0.06 || reps >= 1 << 14)
            return dt / reps;
        reps *= 4;
    }
}

struct KernelResult
{
    std::string name;
    double scalar_gbps = 0.0;
    double simd_gbps = 0.0;
    bool bitwise_identical = true; ///< always true for float kernels

    double speedup() const { return simd_gbps / scalar_gbps; }
};

std::vector<KernelResult> g_results;

/**
 * Benchmark one kernel on both backends. run(ops, out) executes the
 * kernel through the given table writing its result into out;
 * out_bytes > 0 requests a byte-compare between the two backends.
 */
void
runKernel(const std::string &name, double bytes_moved, size_t out_bytes,
          const std::function<void(const SimdOps &, void *)> &run)
{
    const SimdOps &scalar = opsFor(Backend::Scalar);
    const SimdOps &best = opsFor(bestBackend());

    std::vector<unsigned char> out_scalar(out_bytes);
    std::vector<unsigned char> out_simd(out_bytes);

    KernelResult res;
    res.name = name;
    const double s_scalar =
        timeIt([&] { run(scalar, out_scalar.data()); });
    const double s_simd = timeIt([&] { run(best, out_simd.data()); });
    res.scalar_gbps = bytes_moved / s_scalar / 1e9;
    res.simd_gbps = bytes_moved / s_simd / 1e9;
    res.bitwise_identical =
        out_bytes == 0 ||
        std::memcmp(out_scalar.data(), out_simd.data(), out_bytes) == 0;

    std::printf("%-20s %8.2f GB/s  %8.2f GB/s   %5.2fx   %s\n",
                name.c_str(), res.scalar_gbps, res.simd_gbps,
                res.speedup(),
                out_bytes == 0 ? "float"
                : res.bitwise_identical ? "bitwise-ok"
                                        : "MISMATCH");
    g_results.push_back(res);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "usage: micro_simd [--json <path>]\n");
            return 2;
        }
    }

    const char *best = backendName(bestBackend());
    std::printf("micro_simd: scalar vs %s (single-threaded)\n", best);
    std::printf("%-20s %13s %14s  %6s\n", "kernel", "scalar", best,
                "spdup");

    const std::int64_t n = 1 << 23; // 8M values = 32 MB input
    Rng rng(42);
    std::vector<float> src(static_cast<size_t>(n));
    for (auto &x : src)
        x = rng.normal();

    // --- DPR small-float encode (all three formats) + fp16 decode ---
    const char *sf_names[] = { "dpr_fp16", "dpr_fp10", "dpr_fp8" };
    for (int f = 0; f < kSfFormatCount; ++f) {
        const auto per_word =
            static_cast<std::int64_t>(kSfLayouts[f].per_word);
        const size_t nwords =
            static_cast<size_t>((n + per_word - 1) / per_word);
        runKernel(std::string(sf_names[f]) + "_encode",
                  static_cast<double>(n) * sizeof(float), nwords * 4,
                  [&, f](const SimdOps &o, void *out) {
                      o.sfEncode[f](src.data(), n,
                                    static_cast<std::uint32_t *>(out));
                  });
    }
    {
        const size_t nwords = static_cast<size_t>((n + 1) / 2);
        std::vector<std::uint32_t> words(nwords);
        opsFor(Backend::Scalar).sfEncode[kSfFp16](src.data(), n,
                                                  words.data());
        runKernel("dpr_fp16_decode",
                  static_cast<double>(n) * sizeof(float),
                  static_cast<size_t>(n) * sizeof(float),
                  [&](const SimdOps &o, void *out) {
                      o.sfDecode[kSfFp16](words.data(), n,
                                          static_cast<float *>(out));
                  });
    }

    // --- binarize pack + mask-expand backward ---
    {
        const size_t nbytes = static_cast<size_t>((n + 7) / 8);
        runKernel("binarize_encode",
                  static_cast<double>(n) * sizeof(float), nbytes,
                  [&](const SimdOps &o, void *out) {
                      o.binarizeEncode(src.data(), n,
                                       static_cast<std::uint8_t *>(out));
                  });

        std::vector<std::uint8_t> bits(nbytes);
        opsFor(Backend::Scalar).binarizeEncode(src.data(), n,
                                               bits.data());
        runKernel("binarize_backward",
                  static_cast<double>(n) * sizeof(float) * 2,
                  static_cast<size_t>(n) * sizeof(float),
                  [&](const SimdOps &o, void *out) {
                      o.binarizeBackward(bits.data(), src.data(), n,
                                         static_cast<float *>(out));
                  });
    }

    // --- CSR nonzero count (50% ReLU-style sparsity) ---
    {
        std::vector<float> sparse(src);
        Rng srng(7);
        for (auto &x : sparse)
            if (srng.uniform() < 0.5)
                x = 0.0f;
        runKernel("csr_count_50",
                  static_cast<double>(n) * sizeof(float),
                  sizeof(std::int64_t),
                  [&](const SimdOps &o, void *out) {
                      const std::int64_t c =
                          o.countNonzero(sparse.data(), n);
                      std::memcpy(out, &c, sizeof(c));
                  });

        // --- CSR encode fill (compress-store values + 1-byte indices,
        //     256-element narrow rows). Output layout: [values][idx];
        //     the pad scribble past each row's nnz is overwritten by
        //     the next row's compact fill, and the tail past the final
        //     nnz is zeroed so the cross-backend memcmp sees only
        //     contract-covered bytes. ---
        runKernel("csr_fill_50",
                  static_cast<double>(n) * sizeof(float),
                  static_cast<size_t>(n) * (sizeof(float) + 1),
                  [&](const SimdOps &o, void *out) {
                      auto *vals = static_cast<float *>(out);
                      auto *idx = reinterpret_cast<std::uint8_t *>(
                          vals + n);
                      std::int64_t k = 0;
                      for (std::int64_t i = 0; i < n; i += 256)
                          k += o.csrFill(sparse.data() + i,
                                         std::min<std::int64_t>(256,
                                                                n - i),
                                         idx + k, vals + k, true);
                      std::memset(vals + k, 0,
                                  static_cast<size_t>(n - k) *
                                      sizeof(float));
                      std::memset(idx + k, 0,
                                  static_cast<size_t>(n - k));
                  });

        // --- Fused CSR-of-DPR encode: compress-store fill straight
        //     into FP16 code quantization (no dense intermediate).
        //     Output layout: [codes][idx], tail-zeroed as above. ---
        runKernel("csr_encode_dpr",
                  static_cast<double>(n) * sizeof(float),
                  static_cast<size_t>(n) * (sizeof(std::uint32_t) + 1),
                  [&](const SimdOps &o, void *out) {
                      auto *codes = static_cast<std::uint32_t *>(out);
                      auto *idx = reinterpret_cast<std::uint8_t *>(
                          codes + n);
                      alignas(32) float staged[256 + 8];
                      std::int64_t k = 0;
                      for (std::int64_t i = 0; i < n; i += 256) {
                          const std::int64_t cnt = o.csrFill(
                              sparse.data() + i,
                              std::min<std::int64_t>(256, n - i),
                              idx + k, staged, true);
                          o.sfEncodeCodes[kSfFp16](staged, cnt,
                                                   codes + k);
                          k += cnt;
                      }
                      std::memset(codes + k, 0,
                                  static_cast<size_t>(n - k) *
                                      sizeof(std::uint32_t));
                      std::memset(idx + k, 0,
                                  static_cast<size_t>(n - k));
                  });

        // --- Fused row-sparse GEMM: CSR A operand consumed without a
        //     dense decode (float accumulate: no bitwise contract). ---
        {
            const std::int64_t gm = 128;
            const std::int64_t gk = 1 << 12;
            const std::int64_t gn = 128;
            gist::CsrBuffer a_enc{ gist::CsrConfig{} };
            a_enc.encode({ sparse.data(),
                           static_cast<size_t>(gm * gk) });
            std::vector<float> bmat(
                src.begin(), src.begin() + static_cast<size_t>(gk * gn));
            std::vector<float> cmat(static_cast<size_t>(gm * gn));
            runKernel("fused_csr_gemm",
                      static_cast<double>(gm) * gk * sizeof(float), 0,
                      [&](const SimdOps &o, void *) {
                          setBackend(o.backend);
                          gist::gemmCsrA(gm, gn, gk, 1.0f, a_enc.view(),
                                         bmat.data(), 0.0f,
                                         cmat.data());
                      });
            initFromEnv();
        }
    }

    // --- GEMM micro-kernels (float: no bitwise contract) ---
    {
        const std::int64_t kv = 1 << 12; // L1-resident vectors
        std::vector<float> x(src.begin(), src.begin() + kv);
        std::vector<float> y(src.begin() + kv, src.begin() + 2 * kv);
        runKernel("gemm_axpy",
                  static_cast<double>(kv) * sizeof(float) * 3, 0,
                  [&](const SimdOps &o, void *) {
                      o.axpy(kv, 1.0001f, x.data(), y.data());
                  });
        runKernel("gemm_dot",
                  static_cast<double>(kv) * sizeof(float) * 2, 0,
                  [&](const SimdOps &o, void *) {
                      volatile float sink =
                          o.dot(kv, x.data(), y.data());
                      (void)sink;
                  });
    }

    bool all_ok = true;
    for (const auto &r : g_results)
        all_ok = all_ok && r.bitwise_identical;
    std::printf("\ncodec bitwise parity: %s\n", all_ok ? "PASS" : "FAIL");

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"bench\": \"micro_simd\",\n"
                     "  \"best_backend\": \"%s\",\n  \"kernels\": [\n",
                     best);
        for (size_t i = 0; i < g_results.size(); ++i) {
            const auto &r = g_results[i];
            std::fprintf(
                f,
                "    {\"name\": \"%s\", \"scalar_gbps\": %.3f, "
                "\"simd_gbps\": %.3f, \"speedup\": %.3f, "
                "\"bitwise_identical\": %s}%s\n",
                r.name.c_str(), r.scalar_gbps, r.simd_gbps, r.speedup(),
                r.bitwise_identical ? "true" : "false",
                i + 1 < g_results.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("json written to %s\n", json_path.c_str());
    }
    return all_ok ? 0 : 1;
}
