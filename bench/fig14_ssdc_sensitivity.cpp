/**
 * @file
 * Figure 14: SSDC sensitivity — the CSR compression ratio achieved on
 * each applicable layer over the course of training.
 *
 * Paper shape: compression starts near (or below) 1x in the very first
 * minibatches, because randomly-initialized weights give little ReLU
 * sparsity, and rises well above 1x as training sparsifies activations;
 * it varies across layers and over time.
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/tiny.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

using namespace gist;

int
main()
{
    bench::banner(
        "Figure 14",
        "SSDC compression ratio per layer over training (tiny VGG)",
        "ratio ~1x only in the first minibatches, then >>1, varying by "
        "layer and time");

    Graph g = models::tinyVgg(32);
    Rng rng(13);
    g.initParams(rng);
    Executor exec(g);
    GistConfig cfg;
    cfg.ssdc = true;
    const auto schedule = buildSchedule(g, cfg);
    applyToExecutor(schedule, exec);
    Trainer trainer(exec);

    // The SSDC-encoded layers (ReLU/Pool -> Conv).
    std::vector<NodeId> csr_nodes;
    for (const auto &node : g.nodes())
        if (schedule.of(node.id).repr == StashPlan::Repr::Csr)
            csr_nodes.push_back(node.id);

    SyntheticDataset::Spec spec;
    spec.num_train = 512;
    spec.num_eval = 64;
    spec.classes = models::kTinyClasses;
    spec.image = models::kTinyImage;
    SyntheticDataset data(spec);

    const std::int64_t sample_every = 4;
    std::vector<std::vector<double>> samples; // [time][layer]
    std::vector<std::int64_t> sample_steps;

    TrainConfig tc;
    tc.epochs = 8;
    tc.after_step = [&](std::int64_t step, Executor &e) {
        if (step % sample_every != 1)
            return;
        std::vector<double> row;
        for (NodeId id : csr_nodes)
            row.push_back(e.lastCsrRatio(id));
        samples.push_back(std::move(row));
        sample_steps.push_back(step);
    };
    trainer.run(data, tc);

    std::vector<std::string> header = { "minibatch" };
    for (NodeId id : csr_nodes)
        header.push_back(g.node(id).name);
    Table table(header);
    for (size_t t = 0; t < samples.size(); ++t) {
        std::vector<std::string> row = { std::to_string(
            sample_steps[t]) };
        for (double ratio : samples[t])
            row.push_back(formatRatio(ratio));
        table.addRow(row);
    }
    table.print();
    bench::note("each column is one SSDC layer of the tiny VGG; "
                "compression is nnz-dependent (narrow 1-byte CSR "
                "indices), sampled during real training. Early ratios "
                "are low exactly as the paper observes for the first "
                "~200 ImageNet minibatches.");
    return 0;
}
