/**
 * @file
 * Scaling microbenchmark for the parallel hot paths: gemm, im2col,
 * binarize, CSR encode/decode, DPR encode/decode. For each path it
 * measures throughput at 1 thread and at the requested pool size,
 * reports GB/s and the speedup, and verifies that the multi-threaded
 * output is bitwise-identical to the single-threaded one (the
 * determinism contract of util/parallel.hpp).
 *
 * Usage: micro_parallel [threads] [--json <path>]
 *   threads   pool size for the "parallel" arm (default: auto — the
 *             GIST_THREADS env, then hardware concurrency)
 *   --json    append one JSON object per path to <path> so scripts/
 *             can track the scaling trajectory across PRs.
 */

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "encodings/binarize.hpp"
#include "encodings/csr.hpp"
#include "encodings/dpr.hpp"
#include "simd/dispatch.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/rng.hpp"

namespace {

using gist::Rng;

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Time fn: repetitions are grown until one pass exceeds ~80 ms, then
 * two more passes at that count take the best (min) seconds/call. A
 * single pass is one scheduler hiccup away from recording a phantom
 * regression on big kernels where one pass = one call (the
 * fused_csr_gemm speedup-0.886 artifact); the min across passes is
 * the standard noise filter.
 */
double
timeIt(const std::function<void()> &fn)
{
    fn(); // warm-up (and first-touch of output pages)
    int reps = 1;
    double dt = 0.0;
    for (;;) {
        const double t0 = now();
        for (int r = 0; r < reps; ++r)
            fn();
        dt = now() - t0;
        if (dt > 0.08 || reps >= 1 << 14)
            break;
        reps *= 4;
    }
    double best = dt / reps;
    for (int pass = 0; pass < 2; ++pass) {
        const double t0 = now();
        for (int r = 0; r < reps; ++r)
            fn();
        best = std::min(best, (now() - t0) / reps);
    }
    return best;
}

struct PathResult
{
    std::string name;
    double bytes_moved;  ///< per call, for GB/s
    double serial_s = 0.0;
    double parallel_s = 0.0;
    bool bitwise_identical = true;

    double speedup() const { return serial_s / parallel_s; }
    double gbps(double s) const { return bytes_moved / s / 1e9; }
};

std::vector<PathResult> g_results;

/**
 * Run one path in both arms. run(out) must fully (re)compute the
 * path's output into `out`; outputs from the two arms are memcmp'd.
 */
void
runPath(const std::string &name, int par_threads, double bytes_moved,
        size_t out_bytes, const std::function<void(void *)> &run)
{
    PathResult res;
    res.name = name;
    res.bytes_moved = bytes_moved;

    std::vector<unsigned char> out_serial(out_bytes);
    std::vector<unsigned char> out_parallel(out_bytes);

    gist::setNumThreads(1);
    res.serial_s = timeIt([&] { run(out_serial.data()); });

    gist::setNumThreads(par_threads);
    res.parallel_s = timeIt([&] { run(out_parallel.data()); });

    res.bitwise_identical =
        out_bytes == 0 ||
        std::memcmp(out_serial.data(), out_parallel.data(), out_bytes) ==
            0;

    std::printf("%-24s %8.2f ms -> %8.2f ms   %5.2fx   %6.2f GB/s   %s\n",
                name.c_str(), res.serial_s * 1e3, res.parallel_s * 1e3,
                res.speedup(), res.gbps(res.parallel_s),
                res.bitwise_identical ? "bitwise-ok" : "MISMATCH");
    g_results.push_back(res);
}

std::vector<float>
randomDense(std::int64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> v(static_cast<size_t>(n));
    for (auto &x : v)
        x = rng.normal();
    return v;
}

/** Zero out a fraction of the values (ReLU-like sparsity). */
void
sparsify(std::vector<float> &v, double sparsity, std::uint64_t seed)
{
    Rng rng(seed);
    for (auto &x : v)
        if (rng.uniform() < sparsity)
            x = 0.0f;
}

} // namespace

int
main(int argc, char **argv)
{
    int threads = 0;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: --json requires a path\n");
                return 2;
            }
            json_path = argv[++i];
        } else if (std::isdigit(static_cast<unsigned char>(argv[i][0]))) {
            threads = std::atoi(argv[i]);
        } else {
            std::fprintf(stderr,
                         "usage: micro_parallel [threads] [--json <path>]\n");
            return 2;
        }
    }
    const int par = gist::resolveThreadCount(threads);

    std::printf("micro_parallel: 1 thread vs %d threads\n", par);
    std::printf("%-24s %11s    %11s   %6s   %10s\n", "path", "1-thread",
                "N-thread", "spdup", "parallel");

    // --- gemm (m = n = k = 512, the acceptance-criteria shape) ---
    {
        const std::int64_t m = 512, n = 512, k = 512;
        const auto a = randomDense(m * k, 1);
        const auto b = randomDense(k * n, 2);
        const double flops_bytes =
            2.0 * static_cast<double>(m) * n * k / 4.0 * sizeof(float);
        runPath("gemm_512", par, flops_bytes,
                static_cast<size_t>(m * n) * sizeof(float),
                [&](void *out) {
                    gist::gemm(false, false, m, n, k, 1.0f, a.data(),
                               b.data(), 0.0f,
                               static_cast<float *>(out));
                });
    }

    // --- im2col (VGG-ish 3x3 conv geometry) ---
    {
        gist::ConvGeometry geom;
        geom.in_c = 64;
        geom.in_h = 112;
        geom.in_w = 112;
        geom.kernel_h = 3;
        geom.kernel_w = 3;
        geom.pad_h = 1;
        geom.pad_w = 1;
        const auto image = randomDense(
            geom.in_c * geom.in_h * geom.in_w, 3);
        const std::int64_t cols = geom.in_c * geom.kernel_h *
                                  geom.kernel_w * geom.outH() *
                                  geom.outW();
        runPath("im2col_3x3", par,
                static_cast<double>(cols) * sizeof(float) * 2,
                static_cast<size_t>(cols) * sizeof(float),
                [&](void *out) {
                    gist::im2col(geom, image.data(),
                                 static_cast<float *>(out));
                });
    }

    // --- binarize pack + mask backward ---
    {
        const std::int64_t n = 1 << 24; // 16M values
        auto v = randomDense(n, 4);
        runPath("binarize_encode", par,
                static_cast<double>(n) * sizeof(float),
                static_cast<size_t>(gist::binarizeBytes(n)),
                [&](void *out) {
                    gist::BinarizedMask mask;
                    mask.encode(v);
                    std::memcpy(out, mask.raw().data(),
                                mask.raw().size());
                });

        gist::BinarizedMask mask;
        mask.encode(v);
        const auto dy = randomDense(n, 5);
        runPath("binarize_backward", par,
                static_cast<double>(n) * sizeof(float) * 2,
                static_cast<size_t>(n) * sizeof(float),
                [&](void *out) {
                    mask.reluBackward(
                        dy, { static_cast<float *>(out),
                              static_cast<size_t>(n) });
                });
    }

    // --- CSR encode/decode at 50% sparsity (acceptance shape) ---
    {
        const std::int64_t n = 1 << 23; // 8M values
        auto v = randomDense(n, 6);
        sparsify(v, 0.5, 7);
        gist::CsrConfig cfg; // narrow 1-byte indices, FP32 values
        runPath("csr_encode_50", par,
                static_cast<double>(n) * sizeof(float),
                sizeof(std::int64_t),
                [&](void *out) {
                    gist::CsrBuffer csr(cfg);
                    csr.encode(v);
                    const std::int64_t nnz = csr.nnz();
                    std::memcpy(out, &nnz, sizeof(nnz));
                });

        gist::CsrBuffer csr(cfg);
        csr.encode(v);
        runPath("csr_decode_50", par,
                static_cast<double>(n) * sizeof(float),
                static_cast<size_t>(n) * sizeof(float),
                [&](void *out) {
                    csr.decode({ static_cast<float *>(out),
                                 static_cast<size_t>(n) });
                });

        // --- vectorized encode fill in isolation (pass 2 of encode:
        //     compress-store values + 1-byte column indices into
        //     precomputed row offsets, with the same chunk-edge pad
        //     guard the encoder uses) ---
        {
            const std::int64_t nrows = (n + 255) / 256;
            std::vector<std::uint32_t> row_ptr(
                static_cast<size_t>(nrows) + 1, 0);
            for (std::int64_t r = 0; r < nrows; ++r) {
                const std::int64_t len =
                    std::min<std::int64_t>(256, n - r * 256);
                row_ptr[static_cast<size_t>(r) + 1] =
                    row_ptr[static_cast<size_t>(r)] +
                    static_cast<std::uint32_t>(gist::simd::ops().countNonzero(
                        v.data() + r * 256, len));
            }
            const std::int64_t nnz = row_ptr[static_cast<size_t>(nrows)];
            runPath("csr_fill_50", par,
                    static_cast<double>(n) * sizeof(float),
                    static_cast<size_t>(nnz) * (sizeof(float) + 1),
                    [&](void *out) {
                        auto *vals = static_cast<float *>(out);
                        auto *idx = reinterpret_cast<std::uint8_t *>(
                            vals + nnz);
                        gist::parallelFor(
                            0, nrows, gist::chooseGrain(nrows, 16),
                            [&](std::int64_t r0, std::int64_t r1) {
                                const std::uint32_t chunk_end =
                                    row_ptr[static_cast<size_t>(r1)];
                                const auto fill =
                                    gist::simd::ops().csrFill;
                                for (std::int64_t r = r0; r < r1; ++r) {
                                    const std::int64_t len =
                                        std::min<std::int64_t>(
                                            256, n - r * 256);
                                    const auto k =
                                        row_ptr[static_cast<size_t>(r)];
                                    const bool pad_ok =
                                        row_ptr[static_cast<size_t>(r) +
                                                1] +
                                            7 <=
                                        chunk_end;
                                    fill(v.data() + r * 256, len,
                                         idx + k, vals + k, pad_ok);
                                }
                            });
                    });
        }

        // --- fused CSR-of-DPR encode (quantize during compaction) ---
        {
            gist::CsrConfig dcfg;
            dcfg.value_format = gist::DprFormat::Fp16;
            runPath("csr_encode_dpr", par,
                    static_cast<double>(n) * sizeof(float),
                    static_cast<size_t>(n) * sizeof(float),
                    [&](void *out) {
                        gist::CsrBuffer enc(dcfg);
                        enc.encode(v);
                        enc.decode({ static_cast<float *>(out),
                                     static_cast<size_t>(n) });
                    });
        }

        // --- fused row-sparse GEMM over the CSR stash (deterministic
        //     at any thread count like the dense path) ---
        {
            const std::int64_t gm = 256;
            const std::int64_t gk = n / gm;
            const std::int64_t gn = 128;
            const auto bmat = randomDense(gk * gn, 9);
            runPath("fused_csr_gemm", par,
                    static_cast<double>(gm) * gk * sizeof(float),
                    static_cast<size_t>(gm * gn) * sizeof(float),
                    [&](void *out) {
                        gist::gemmCsrA(gm, gn, gk, 1.0f, csr.view(),
                                       bmat.data(), 0.0f,
                                       static_cast<float *>(out));
                    });
        }
    }

    // --- DPR FP16 encode/decode ---
    {
        const std::int64_t n = 1 << 23;
        const auto v = randomDense(n, 8);
        runPath("dpr_fp16_encode", par,
                static_cast<double>(n) * sizeof(float),
                static_cast<size_t>(n) * sizeof(float),
                [&](void *out) {
                    gist::DprBuffer buf;
                    buf.encode(gist::DprFormat::Fp16, v);
                    // Decoding back exposes the packed words bit-exactly.
                    buf.decode({ static_cast<float *>(out),
                                 static_cast<size_t>(n) });
                });

        gist::DprBuffer buf;
        buf.encode(gist::DprFormat::Fp16, v);
        runPath("dpr_fp16_decode", par,
                static_cast<double>(n) * sizeof(float),
                static_cast<size_t>(n) * sizeof(float),
                [&](void *out) {
                    buf.decode({ static_cast<float *>(out),
                                 static_cast<size_t>(n) });
                });
    }

    std::printf("\n");
    bool all_ok = true;
    double worst = 1e9;
    for (const auto &r : g_results) {
        all_ok = all_ok && r.bitwise_identical;
        worst = std::min(worst, r.speedup());
    }
    std::printf("bitwise determinism: %s\n", all_ok ? "PASS" : "FAIL");
    std::printf("min speedup: %s at %d threads\n",
                gist::formatRatio(worst).c_str(), par);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f) {
            std::fprintf(f, "{\n  \"threads\": %d,\n  \"paths\": [\n",
                         par);
            for (size_t i = 0; i < g_results.size(); ++i) {
                const auto &r = g_results[i];
                std::fprintf(
                    f,
                    "    {\"name\": \"%s\", \"serial_ms\": %.4f, "
                    "\"parallel_ms\": %.4f, \"speedup\": %.3f, "
                    "\"gbps\": %.3f, \"bitwise_identical\": %s}%s\n",
                    r.name.c_str(), r.serial_s * 1e3, r.parallel_s * 1e3,
                    r.speedup(), r.gbps(r.parallel_s),
                    r.bitwise_identical ? "true" : "false",
                    i + 1 < g_results.size() ? "," : "");
            }
            std::fprintf(f, "  ]\n}\n");
            std::fclose(f);
            std::printf("json written to %s\n", json_path.c_str());
        } else {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
    }
    return all_ok ? 0 : 1;
}
