/**
 * @file
 * Extension study: Gist vs recompute (gradient checkpointing), the
 * paper's Section II-B alternative. Memory and overhead on one axis —
 * the paper's argument is that recompute's footprint wins come with a
 * real time cost because big layers are slow to recompute, while Gist's
 * encodings are bandwidth-cheap.
 */

#include "baselines/recompute.hpp"
#include "baselines/swap_sim.hpp"
#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace gist;

int
main()
{
    bench::banner("Extension", "Gist vs recompute (checkpointing)",
                  "paper II-B: recompute saves memory but the largest "
                  "layers take the longest to recompute; Gist is "
                  "cheaper per byte saved");

    const std::int64_t batch = 64;
    const GpuModelParams params;
    const SparsityModel sparsity;

    Table table({ "network", "strategy", "footprint", "MFR",
                  "time overhead" });
    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const auto base = planModel(g, GistConfig::baseline(), sparsity);
        const double base_mb = static_cast<double>(base.pool_static);

        auto add = [&](const char *label, std::uint64_t footprint,
                       double overhead) {
            table.addRow({ entry.name, label, bench::mb(footprint),
                           formatRatio(base_mb / double(footprint)),
                           formatPercent(overhead) });
        };

        add("baseline", base.pool_static, 0.0);

        const auto lossless =
            planModel(g, GistConfig::lossless(), sparsity);
        add("gist lossless", lossless.pool_static,
            gistOverheadModel(g, GistConfig::lossless(), sparsity,
                              params));
        const auto lossy =
            planModel(g, GistConfig::lossy(DprFormat::Fp16), sparsity);
        add("gist fp16", lossy.pool_static,
            gistOverheadModel(g, GistConfig::lossy(DprFormat::Fp16),
                              sparsity, params));

        const int sqrt_k = sqrtCheckpointInterval(g);
        const auto sqrt_r = simulateRecompute(g, sqrt_k, params);
        add(("recompute sqrtN (k=" + std::to_string(sqrt_k) + ")")
                .c_str(),
            sqrt_r.footprint, sqrt_r.overhead_fraction);
        const auto k4 = simulateRecompute(g, 4, params);
        add("recompute k=4", k4.footprint, k4.overhead_fraction);
        table.addSeparator();
    }
    table.print();
    bench::note("recompute modeled with per-segment rematerialization "
                "and one extra forward per dropped stash; both "
                "strategies planned over identical graphs. The paper "
                "notes the two are composable (recompute works for e.g. "
                "batch-norm while Gist covers ReLU maps).");
    return 0;
}
