/**
 * @file
 * Extension study: Gist vs recompute (gradient checkpointing), the
 * paper's Section II-B alternative. Memory and overhead on one axis —
 * the paper's argument is that recompute's footprint wins come with a
 * real time cost because big layers are slow to recompute, while Gist's
 * encodings are bandwidth-cheap.
 */

#include <algorithm>
#include <chrono>

#include "baselines/recompute.hpp"
#include "baselines/swap_sim.hpp"
#include "bench_common.hpp"
#include "models/tiny.hpp"
#include "models/zoo.hpp"
#include "util/rng.hpp"

using namespace gist;

namespace {

/**
 * Measured arm: run the tiny variant with the executor's real replay
 * machinery and report seconds/minibatch plus the measured pool peak.
 */
struct MeasuredRun
{
    double s_per_mb = 0.0;
    std::uint64_t peak_bytes = 0;
};

MeasuredRun
measureSchedule(Graph &g, const BuiltSchedule &schedule, int steps = 4)
{
    Rng rng(7);
    g.initParams(rng);
    Executor exec(g);
    applyToExecutor(schedule, exec);
    Rng drng(8);
    const std::int64_t batch = g.node(0).out_shape.dim(0);
    std::vector<std::int32_t> labels(static_cast<size_t>(batch));
    for (std::int64_t i = 0; i < batch; ++i)
        labels[static_cast<size_t>(i)] =
            static_cast<std::int32_t>(i % models::kTinyClasses);
    const Tensor input =
        Tensor::uniform(g.node(0).out_shape, drng, 0.0f, 1.0f);
    MeasuredRun m;
    m.s_per_mb = 1e30;
    for (int s = 0; s < steps + 1; ++s) {
        const auto t0 = std::chrono::steady_clock::now();
        exec.runMinibatch(input, labels);
        const double dt = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        if (s > 0) // first step is pool/first-touch warm-up
            m.s_per_mb = std::min(m.s_per_mb, dt);
        m.peak_bytes =
            std::max(m.peak_bytes, exec.stats().peak_pool_bytes);
    }
    return m;
}

} // namespace

int
main()
{
    bench::banner("Extension", "Gist vs recompute (checkpointing)",
                  "paper II-B: recompute saves memory but the largest "
                  "layers take the longest to recompute; Gist is "
                  "cheaper per byte saved");

    const std::int64_t batch = 64;
    const GpuModelParams params;
    const SparsityModel sparsity;

    Table table({ "network", "strategy", "footprint", "MFR",
                  "time overhead" });
    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const auto base = planModel(g, GistConfig::baseline(), sparsity);
        const double base_mb = static_cast<double>(base.pool_static);

        auto add = [&](const char *label, std::uint64_t footprint,
                       double overhead) {
            table.addRow({ entry.name, label, bench::mb(footprint),
                           formatRatio(base_mb / double(footprint)),
                           formatPercent(overhead) });
        };

        add("baseline", base.pool_static, 0.0);

        const auto lossless =
            planModel(g, GistConfig::lossless(), sparsity);
        add("gist lossless", lossless.pool_static,
            gistOverheadModel(g, GistConfig::lossless(), sparsity,
                              params));
        const auto lossy =
            planModel(g, GistConfig::lossy(DprFormat::Fp16), sparsity);
        add("gist fp16", lossy.pool_static,
            gistOverheadModel(g, GistConfig::lossy(DprFormat::Fp16),
                              sparsity, params));

        const int sqrt_k = sqrtCheckpointInterval(g);
        const auto sqrt_r = simulateRecompute(g, sqrt_k, params);
        add(("recompute sqrtN (k=" + std::to_string(sqrt_k) + ")")
                .c_str(),
            sqrt_r.footprint, sqrt_r.overhead_fraction);
        const auto k4 = simulateRecompute(g, 4, params);
        add("recompute k=4", k4.footprint, k4.overhead_fraction);
        table.addSeparator();
    }
    table.print();
    bench::note("recompute modeled with per-segment rematerialization "
                "and one extra forward per dropped stash; both "
                "strategies planned over identical graphs. The paper "
                "notes the two are composable (recompute works for e.g. "
                "batch-norm while Gist covers ReLU maps).");

    // --- measured arm: the executor's real on-demand replays on the
    //     tiny suite (bitwise-identical to keeping, asserted in tests).
    std::printf("\nmeasured on this CPU (tiny suite, batch 32, real "
                "replays):\n");
    Table measured({ "network", "strategy", "measured peak", "s/mb",
                     "time overhead" });
    for (const auto &entry : models::tinyModels()) {
        Graph gb = entry.build(32);
        const MeasuredRun base_run =
            measureSchedule(gb, buildSchedule(gb, GistConfig::baseline()));
        char bt[32];
        std::snprintf(bt, sizeof(bt), "%.4f", base_run.s_per_mb);
        measured.addRow({ entry.name, "baseline",
                          bench::mb(base_run.peak_bytes), bt, "-" });
        std::vector<int> intervals = { 4 };
        if (sqrtCheckpointInterval(gb) != 4)
            intervals.push_back(sqrtCheckpointInterval(gb));
        for (const int k : intervals) {
            Graph g = entry.build(32);
            const MeasuredRun run =
                measureSchedule(g, recomputeSchedule(g, k));
            char t[32];
            std::snprintf(t, sizeof(t), "%.4f", run.s_per_mb);
            measured.addRow(
                { entry.name, "recompute k=" + std::to_string(k),
                  bench::mb(run.peak_bytes), t,
                  formatPercent(run.s_per_mb / base_run.s_per_mb -
                                1.0) });
        }
        measured.addSeparator();
    }
    measured.print();
    bench::note("measured rows drop every non-checkpoint stash and "
                "re-run the producer segment on demand during backward "
                "(baselines/recompute.hpp recomputeSchedule); the "
                "modeled table above prices the same policy on Titan-X "
                "parameters.");
    return 0;
}
