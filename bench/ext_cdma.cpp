/**
 * @file
 * Extension study: CDMA (the paper's reference [42]) — vDNN whose DMA
 * path compresses sparse feature maps before they cross PCIe.
 *
 * Two views:
 *  1. measured: the real tiered-memory engine on this CPU. Every stash
 *     slot of a tiny model is swapped through the DevicePool's slow
 *     tier (throttled in-memory tier = deterministic link speed) under
 *     three strategies: naive synchronous swap, vDNN-style overlapped
 *     swap with backward-order prefetch, and overlapped swap with
 *     CSR/DPR-compressed transfers (the cDMA idea). An unbounded
 *     no-swap run anchors the overheads.
 *  2. modeled: the original analytic comparison on full-scale networks
 *     with Titan-X parameters.
 *
 * Usage: ext_cdma [--steps <n>] [--tier-gbps <f>] [--model <name>]
 *                 [--json <path>]
 *   --tier-gbps  slow-link throttle for the measured arms (default 1.5)
 *   --json       write a {"bench":"ext_cdma","rows":[...]} record for
 *                the BENCH_parallel.json trajectory (regression gate)
 */

#include <cstring>
#include <string>

#include "baselines/swap_sim.hpp"
#include "bench_common.hpp"
#include "models/zoo.hpp"
#include "tiered_arms.hpp"

using namespace gist;

int
main(int argc, char **argv)
{
    bench::applyObsFlags(argc, argv);
    int steps = 5;
    double tier_gbps = 1.5;
    std::string json_path;
    std::string model_name = "ResNet";
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--steps") == 0)
            steps = std::max(1, std::atoi(argv[i + 1]));
        else if (std::strcmp(argv[i], "--json") == 0)
            json_path = argv[i + 1];
        else if (std::strcmp(argv[i], "--model") == 0)
            model_name = argv[i + 1];
    }
    tier_gbps = bench::tierGbpsFlag(argc, argv, tier_gbps);

    bench::banner("Extension", "vDNN + compressed DMA (CDMA)",
                  "CDMA shrinks vDNN's transfer volume using activation "
                  "sparsity; Gist avoids PCIe entirely");

    const models::ModelEntry *entry = nullptr;
    for (const auto &e : models::tinyModels())
        if (model_name == e.name)
            entry = &e;
    if (!entry) {
        std::fprintf(stderr, "unknown --model '%s'\n",
                     model_name.c_str());
        return 2;
    }
    const std::int64_t batch = 32;

    std::printf("\n(a) measured on this CPU (%s batch %lld, slow tier "
                "throttled to %.1f GB/s):\n",
                entry->name.c_str(), static_cast<long long>(batch),
                tier_gbps);

    GistConfig raw = GistConfig::baseline();
    raw.tier_bandwidth_bytes_per_s = tier_gbps * 1e9;
    // Compressed transfers: same stash set as the raw arms (no
    // Binarize rewriting), CSR for ReluConv slots, DPR for the rest.
    GistConfig comp = raw;
    comp.ssdc = true;
    comp.dpr = true;
    comp.dpr_format = DprFormat::Fp16;

    struct ArmRow
    {
        const char *name;
        bench::TieredArm arm;
    };
    const ArmRow rows[] = {
        { "unbounded",
          bench::runTieredArm(*entry, batch, raw, false, false, steps) },
        { "naive-swap",
          bench::runTieredArm(*entry, batch, raw, true, false, steps) },
        { "vdnn-overlap",
          bench::runTieredArm(*entry, batch, raw, true, true, steps) },
        { "vdnn-cdma",
          bench::runTieredArm(*entry, batch, comp, true, true, steps) },
    };
    const double base_s = rows[0].arm.s_per_mb;

    Table measured({ "strategy", "s/mb", "overhead", "bytes out/step",
                     "transfer s", "stall s", "peak pool" });
    for (const ArmRow &r : rows) {
        char t[32];
        std::snprintf(t, sizeof t, "%.4f", r.arm.s_per_mb);
        char xs[32];
        std::snprintf(xs, sizeof xs, "%.4f", r.arm.tier_seconds);
        char ss[32];
        std::snprintf(ss, sizeof ss, "%.4f", r.arm.stall_seconds);
        measured.addRow(
            { r.name, t,
              base_s > 0.0
                  ? bench::percentOrNa(r.arm.s_per_mb / base_s - 1.0)
                  : "n/a",
              bench::mb(r.arm.bytes_out / std::max(1, steps)), xs, ss,
              bench::mb(r.arm.peak_bytes) });
    }
    measured.print();
    bench::note("naive-swap transfers inline on the main thread (its "
                "stall is the whole transfer time; codec-join stalls "
                "read zero in sync mode). vdnn arms overlap transfers "
                "on codec workers with backward-order prefetch; cdma "
                "additionally CSR/DPR-compresses each eviction, so "
                "fewer bytes cross the throttled link.");

    std::printf("\n(b) modeled on Titan-X parameters, full-scale "
                "networks:\n");
    const GpuModelParams params;
    const SparsityModel sparsity;
    Table table({ "network", "vDNN", "vDNN+CDMA", "Gist (lossy)" });
    std::vector<double> v_all;
    std::vector<double> c_all;
    std::vector<double> g_all;
    for (const auto &e : models::allModels()) {
        Graph g = e.build(64);
        const auto vdnn = simulateVdnn(g, params);
        const auto cdma = simulateVdnnCompressed(g, params, sparsity);
        const double gist = gistOverheadModel(
            g, GistConfig::lossy(DprFormat::Fp16), sparsity, params);
        v_all.push_back(vdnn.overheadFraction());
        c_all.push_back(cdma.overheadFraction());
        g_all.push_back(gist);
        table.addRow({ e.name,
                       bench::percentOrNa(vdnn.overheadFraction()),
                       bench::percentOrNa(cdma.overheadFraction()),
                       formatPercent(gist) });
    }
    table.addSeparator();
    table.addRow({ "average", bench::percentOrNa(mean(v_all)),
                   bench::percentOrNa(mean(c_all)),
                   formatPercent(mean(g_all)) });
    table.print();
    bench::note("CDMA modeled as CSR (narrow-index) compression of each "
                "swapped map at the planner's sparsity assumptions; "
                "compression never expands a transfer (dense fallback).");

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(f,
                     "{\n  \"bench\": \"ext_cdma\",\n"
                     "  \"model\": \"%s\",\n  \"batch\": %lld,\n"
                     "  \"tier_gbps\": %.3f,\n  \"rows\": [\n",
                     entry->name.c_str(), static_cast<long long>(batch),
                     tier_gbps);
        for (size_t i = 0; i < 4; ++i) {
            const ArmRow &r = rows[i];
            std::fprintf(
                f,
                "    {\"arm\": \"%s\", \"s_per_mb\": %.6f, "
                "\"mb_per_s\": %.4f, \"stall_seconds\": %.6f, "
                "\"tier_seconds\": %.6f, \"bytes_out\": %llu, "
                "\"bytes_in\": %llu, \"evictions\": %llu, "
                "\"peak_pool_bytes\": %llu}%s\n",
                r.name, r.arm.s_per_mb,
                r.arm.s_per_mb > 0.0 ? 1.0 / r.arm.s_per_mb : 0.0,
                r.arm.stall_seconds, r.arm.tier_seconds,
                static_cast<unsigned long long>(r.arm.bytes_out),
                static_cast<unsigned long long>(r.arm.bytes_in),
                static_cast<unsigned long long>(r.arm.evictions),
                static_cast<unsigned long long>(r.arm.peak_bytes),
                i + 1 < 4 ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("json written to %s\n", json_path.c_str());
    }
    return 0;
}
