/**
 * @file
 * Extension study: CDMA (the paper's reference [42]) — vDNN whose DMA
 * path compresses sparse feature maps before they cross PCIe. Shows how
 * much of vDNN's residual stall a compressing DMA engine removes, and
 * that Gist still wins by never leaving the GPU.
 */

#include "baselines/swap_sim.hpp"
#include "bench_common.hpp"
#include "models/zoo.hpp"

using namespace gist;

int
main()
{
    bench::banner("Extension", "vDNN + compressed DMA (CDMA)",
                  "CDMA shrinks vDNN's transfer volume using activation "
                  "sparsity; Gist avoids PCIe entirely");

    const std::int64_t batch = 64;
    const GpuModelParams params;
    const SparsityModel sparsity;

    Table table({ "network", "vDNN", "vDNN+CDMA", "Gist (lossy)" });
    std::vector<double> v_all;
    std::vector<double> c_all;
    std::vector<double> g_all;
    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const auto vdnn = simulateVdnn(g, params);
        const auto cdma = simulateVdnnCompressed(g, params, sparsity);
        const double gist = gistOverheadModel(
            g, GistConfig::lossy(DprFormat::Fp16), sparsity, params);
        v_all.push_back(vdnn.overheadFraction());
        c_all.push_back(cdma.overheadFraction());
        g_all.push_back(gist);
        table.addRow({ entry.name,
                       formatPercent(vdnn.overheadFraction()),
                       formatPercent(cdma.overheadFraction()),
                       formatPercent(gist) });
    }
    table.addSeparator();
    table.addRow({ "average", formatPercent(mean(v_all)),
                   formatPercent(mean(c_all)),
                   formatPercent(mean(g_all)) });
    table.print();
    bench::note("CDMA modeled as CSR (narrow-index) compression of each "
                "swapped map at the planner's sparsity assumptions; "
                "compression never expands a transfer (dense fallback).");
    return 0;
}
