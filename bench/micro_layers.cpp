/**
 * @file
 * Microbenchmarks of the compute substrate: GEMM, im2col, and the
 * forward/backward of the heavy layers. These bound how fast the CPU
 * training loop (Fig 9's measured arm, Fig 12/14's training runs) can
 * go, and give the roofline model's CPU-side counterpart.
 */

#include <benchmark/benchmark.h>

#include "layers/layers.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace {

using namespace gist;

void
BM_Gemm(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    Rng rng(1);
    std::vector<float> a(static_cast<size_t>(n * n));
    std::vector<float> b(static_cast<size_t>(n * n));
    std::vector<float> c(static_cast<size_t>(n * n));
    for (auto &x : a)
        x = rng.normal();
    for (auto &x : b)
        x = rng.normal();
    for (auto _ : state) {
        gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
             c.data());
        benchmark::DoNotOptimize(c.data());
    }
    state.counters["GFLOP/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * 2.0 * n * n * n * 1e-9,
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_Im2col(benchmark::State &state)
{
    ConvGeometry g{ 64, 56, 56, 3, 3, 1, 1, 1, 1 };
    Rng rng(2);
    std::vector<float> img(static_cast<size_t>(64 * 56 * 56));
    for (auto &x : img)
        x = rng.normal();
    std::vector<float> col(
        static_cast<size_t>(g.colRows() * g.colCols()));
    for (auto _ : state) {
        im2col(g, img.data(), col.data());
        benchmark::DoNotOptimize(col.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(col.size()) * 4);
}
BENCHMARK(BM_Im2col);

void
BM_ConvForward(benchmark::State &state)
{
    const std::int64_t channels = state.range(0);
    Rng rng(3);
    ConvLayer conv(channels, ConvSpec::square(channels, 3, 1, 1));
    conv.initParams(rng);
    Tensor x = Tensor::randn(Shape::nchw(4, channels, 16, 16), rng);
    Tensor y(conv.outputShape({ &x.shape(), 1 }));
    FwdCtx ctx;
    ctx.inputs = { &x };
    ctx.output = &y;
    for (auto _ : state) {
        conv.forward(ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * y.numel());
}
BENCHMARK(BM_ConvForward)->Arg(16)->Arg(64);

void
BM_ConvBackward(benchmark::State &state)
{
    const std::int64_t channels = state.range(0);
    Rng rng(4);
    ConvLayer conv(channels, ConvSpec::square(channels, 3, 1, 1));
    conv.initParams(rng);
    Tensor x = Tensor::randn(Shape::nchw(4, channels, 16, 16), rng);
    Tensor y(conv.outputShape({ &x.shape(), 1 }));
    FwdCtx fctx;
    fctx.inputs = { &x };
    fctx.output = &y;
    conv.forward(fctx);

    Tensor dy = Tensor::randn(y.shape(), rng);
    Tensor dx(x.shape());
    BwdCtx bctx;
    bctx.inputs = { &x };
    bctx.output = &y;
    bctx.d_output = &dy;
    bctx.d_inputs = { &dx };
    for (auto _ : state) {
        dx.setZero();
        conv.backward(bctx);
        benchmark::DoNotOptimize(dx.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * y.numel());
}
BENCHMARK(BM_ConvBackward)->Arg(16)->Arg(64);

void
BM_MaxPoolForward(benchmark::State &state)
{
    const bool index_map = state.range(0) != 0;
    Rng rng(5);
    MaxPoolLayer pool(PoolSpec::square(2, 2));
    if (index_map)
        pool.setStashMode(MaxPoolLayer::StashMode::IndexMap);
    Tensor x = Tensor::randn(Shape::nchw(8, 32, 32, 32), rng);
    Tensor y(pool.outputShape({ &x.shape(), 1 }));
    FwdCtx ctx;
    ctx.inputs = { &x };
    ctx.output = &y;
    ctx.training = true;
    for (auto _ : state) {
        pool.forward(ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * x.numel());
}
BENCHMARK(BM_MaxPoolForward)->Arg(0)->Arg(1);

void
BM_BatchNormForward(benchmark::State &state)
{
    Rng rng(6);
    BatchNormLayer bn(32);
    bn.initParams(rng);
    Tensor x = Tensor::randn(Shape::nchw(8, 32, 16, 16), rng);
    Tensor y(x.shape());
    FwdCtx ctx;
    ctx.inputs = { &x };
    ctx.output = &y;
    ctx.training = true;
    for (auto _ : state) {
        bn.forward(ctx);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * x.numel());
}
BENCHMARK(BM_BatchNormForward);

} // namespace
