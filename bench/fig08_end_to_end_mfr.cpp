/**
 * @file
 * Figure 8: end-to-end Memory Footprint Ratio vs the CNTK baseline, for
 * the lossless configuration (Binarize + SSDC + inplace) and for
 * lossless + DPR at the smallest accuracy-preserving width per network
 * (paper Section V-D1: AlexNet/Overfeat FP8, NiN/Inception FP10,
 * VGG16 FP16).
 */

#include <map>

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/tiny.hpp"
#include "models/zoo.hpp"
#include "train/sparsity_probe.hpp"

using namespace gist;

namespace {

DprFormat
bestFormatFor(const std::string &name)
{
    if (name == "AlexNet" || name == "Overfeat")
        return DprFormat::Fp8;
    if (name == "VGG16")
        return DprFormat::Fp16;
    return DprFormat::Fp10; // NiN, Inception, ResNet
}

} // namespace

int
main()
{
    bench::banner("Figure 8", "end-to-end MFR vs CNTK baseline",
                  "lossless: >1.5x on AlexNet/VGG16 (1.4x average); "
                  "lossless+DPR: up to 2x, 1.8x average");

    const std::int64_t batch = 64;
    Table table({ "network", "baseline", "lossless", "MFR lossless",
                  "+DPR fmt", "lossy", "MFR lossy", "MFR lossy*" });

    // Measure real activation sparsity on each network's tiny twin
    // (brief training); "MFR lossy*" uses it in place of the defaults.
    std::map<std::string, MeasuredSparsity> measured;
    for (const auto &tiny : models::tinyModels()) {
        Graph t = tiny.build(32);
        measured[tiny.name] = measureSparsity(t, 3);
    }

    std::vector<double> mfr_lossless;
    std::vector<double> mfr_lossy;
    std::vector<double> mfr_lossy_measured;
    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const SparsityModel sparsity; // paper-motivated defaults
        const auto base =
            planModel(g, GistConfig::baseline(), sparsity);
        const auto lossless =
            planModel(g, GistConfig::lossless(), sparsity);
        const DprFormat fmt = bestFormatFor(entry.name);
        const auto lossy =
            planModel(g, GistConfig::lossy(fmt), sparsity);

        // Measured-sparsity variant (twin of the same family if
        // available, otherwise the suite-wide ResNet twin).
        const auto twin = measured.count(entry.name)
                              ? measured[entry.name]
                              : measured["ResNet"];
        const SparsityModel measured_model(twin.relu, twin.pool);
        const auto lossy_measured =
            planModel(g, GistConfig::lossy(fmt), measured_model);

        const double m_ll = static_cast<double>(base.pool_static) /
                            static_cast<double>(lossless.pool_static);
        const double m_lo = static_cast<double>(base.pool_static) /
                            static_cast<double>(lossy.pool_static);
        const double m_lm =
            static_cast<double>(base.pool_static) /
            static_cast<double>(lossy_measured.pool_static);
        mfr_lossless.push_back(m_ll);
        mfr_lossy.push_back(m_lo);
        mfr_lossy_measured.push_back(m_lm);
        table.addRow({ entry.name, bench::mb(base.pool_static),
                       bench::mb(lossless.pool_static),
                       formatRatio(m_ll), dprFormatName(fmt),
                       bench::mb(lossy.pool_static),
                       formatRatio(m_lo), formatRatio(m_lm) });
    }
    table.addSeparator();
    table.addRow({ "average", "", "", formatRatio(mean(mfr_lossless)),
                   "", "", formatRatio(mean(mfr_lossy)),
                   formatRatio(mean(mfr_lossy_measured)) });
    table.print();
    bench::note("MFR lossy uses the default sparsity assumptions (ReLU "
                "70%, pooled 40%); MFR lossy* uses sparsity measured by "
                "briefly training each network's tiny twin. DPR widths "
                "per network follow the paper's accuracy study "
                "(Fig 12).");
    return 0;
}
