/**
 * @file
 * Extension study: DenseNet (the paper's related work [39] is a
 * memory-efficient DenseNet implementation). Dense connectivity makes
 * every layer's output live until the end of its block, so stashes pile
 * up quadratically — the worst case for training memory. How much does
 * Gist recover, and how does that compare to recompute (which [39] and
 * the shared-memory DenseNet work rely on)?
 */

#include "baselines/recompute.hpp"
#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/zoo.hpp"

using namespace gist;

int
main()
{
    bench::banner("Extension", "Gist on DenseNet-BC",
                  "dense connectivity maximizes stash pressure (related "
                  "work [39]); Gist's encodings apply to every "
                  "BN-ReLU-Conv bundle");

    const std::int64_t batch = 64;
    const SparsityModel sparsity;
    const GpuModelParams params;

    Table table({ "network", "baseline", "MFR lossless", "MFR fp16",
                  "MFR fp16+opt-sw", "recompute sqrtN (overhead)" });
    for (int layers : { 12, 16, 24 }) {
        Graph g = models::densenetBc(batch, layers);
        const auto base = planModel(g, GistConfig::baseline(), sparsity);
        const double s = static_cast<double>(base.pool_static);
        const auto lossless =
            planModel(g, GistConfig::lossless(), sparsity);
        const auto fp16 =
            planModel(g, GistConfig::lossy(DprFormat::Fp16), sparsity);
        GistConfig opt = GistConfig::lossy(DprFormat::Fp16);
        opt.elide_decode_buffer = true;
        const auto optimized = planModel(g, opt, sparsity);
        const auto rec =
            simulateRecompute(g, sqrtCheckpointInterval(g), params);
        const std::string rec_text =
            formatRatio(s / static_cast<double>(rec.footprint)) + " (" +
            formatPercent(rec.overhead_fraction) + ")";
        table.addRow({ "DenseNet-BC L=" + std::to_string(layers * 3),
                       bench::mb(base.pool_static),
                       formatRatio(s / lossless.pool_static),
                       formatRatio(s / fp16.pool_static),
                       formatRatio(s / optimized.pool_static),
                       rec_text });
    }
    table.print();
    bench::note("DenseNet-BC, growth 12, 32x32 inputs, minibatch 64; "
                "L = total conv layers across the three dense blocks. "
                "The concatenated trunks are 'Other'-category stashes "
                "(BN needs its real input), so DPR and the optimized-"
                "software decode dominate Gist's win here, while "
                "recompute pays its extra forward.");
    return 0;
}
