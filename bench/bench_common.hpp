/**
 * @file
 * Shared helpers for the figure-reproduction binaries: a uniform header
 * block and paper-vs-measured framing.
 */

#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/config.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace gist::bench {

/**
 * Apply the benchmark's thread-count policy (explicit request, else the
 * GIST_THREADS env / hardware default) and return the resolved count, so
 * every bench binary reports the pool size it measured with.
 */
inline int
initThreads(int requested = 0)
{
    if (requested > 0)
        setNumThreads(requested);
    return numThreads();
}

/** Print the exhibit banner. */
inline void
banner(const std::string &exhibit, const std::string &what,
       const std::string &paper_claim)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", exhibit.c_str(), what.c_str());
    std::printf("Paper reference: %s\n", paper_claim.c_str());
    std::printf("threads: %d\n", initThreads());
    std::printf("==============================================================\n");
}

/** Print a trailing note (e.g. substitutions that affect this figure). */
inline void
note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

/** Render a byte count for a table cell (delegates to formatBytes). */
inline std::string
mb(std::uint64_t bytes)
{
    return formatBytes(bytes);
}

/**
 * Scan argv for `--trace <path>` / `--metrics <path>` and enable the
 * corresponding observability sink. Complements the GIST_TRACE /
 * GIST_METRICS env vars for binaries that take no other arguments.
 */
inline void
applyObsFlags(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0)
            obs::traceStart(argv[++i]);
        else if (std::strcmp(argv[i], "--metrics") == 0)
            obs::metricsOpen(argv[++i]);
    }
}

/**
 * Scan argv for `--mem-budget <size>` and return the parsed byte count
 * (k/m/g suffixes per parseByteSize), 0 when the flag is absent. The
 * training benches feed this into GistConfig::mem_budget_bytes so the
 * hybrid planner runs in the measured loop.
 */
inline std::uint64_t
memBudgetFlag(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--mem-budget") == 0)
            return parseByteSize(argv[i + 1]);
    return 0;
}

/**
 * Scan argv for `--device-pool <size>`: the simulated device's byte
 * cap for the tiered-memory benches (0 = unbounded). Feeds
 * GistConfig::device_pool_bytes, same as the GIST_DEVICE_POOL env.
 */
inline std::uint64_t
devicePoolFlag(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--device-pool") == 0)
            return parseByteSize(argv[i + 1]);
    return 0;
}

/**
 * Scan argv for `--tier-gbps <float>`: the slow tier's throttle in
 * GB/s for the in-memory tier (deterministic transfer cost), @p def
 * when absent. 0 disables the throttle.
 */
inline double
tierGbpsFlag(int argc, char **argv, double def)
{
    for (int i = 1; i + 1 < argc; ++i)
        if (std::strcmp(argv[i], "--tier-gbps") == 0)
            return std::strtod(argv[i + 1], nullptr);
    return def;
}

/** formatPercent, but NaN renders as "n/a" (degenerate zero base). */
inline std::string
percentOrNa(double fraction)
{
    return std::isnan(fraction) ? "n/a" : formatPercent(fraction);
}

} // namespace gist::bench
