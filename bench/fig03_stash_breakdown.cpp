/**
 * @file
 * Figure 3: breakdown of the stashed feature maps into the three Gist
 * categories — ReLU->Pool (Binarize targets), ReLU/Pool->Conv (SSDC
 * targets), and Others (DPR targets).
 *
 * Paper reference point: VGG16 spends 40% of its stash on ReLU-Pool and
 * 49% on ReLU-Conv (89% on ReLU outputs overall).
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/zoo.hpp"

using namespace gist;

int
main()
{
    bench::banner("Figure 3",
                  "stashed-fmap breakdown by Gist category",
                  "VGG16: 40% ReLU-Pool / 49% ReLU-Conv / 11% others");

    const std::int64_t batch = 64;
    Table table({ "network", "stashed total", "ReluPool", "ReluConv",
                  "Other", "%ReluPool", "%ReluConv", "%Other" });

    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const auto cats = classifyStashes(g);
        const auto schedule = buildSchedule(g, GistConfig::baseline());
        const auto bufs = planBuffers(g, schedule, SparsityModel{});

        std::uint64_t by_cat[4] = { 0, 0, 0, 0 };
        const ScheduleInfo sched(g);
        for (const auto &node : g.nodes()) {
            if (!sched.stashed(node.id))
                continue;
            const auto bytes =
                static_cast<std::uint64_t>(node.out_shape.numel()) * 4;
            by_cat[static_cast<int>(
                cats[static_cast<size_t>(node.id)])] += bytes;
        }
        (void)bufs;
        const std::uint64_t relu_pool =
            by_cat[static_cast<int>(StashCategory::ReluPool)];
        const std::uint64_t relu_conv =
            by_cat[static_cast<int>(StashCategory::ReluConv)];
        const std::uint64_t other =
            by_cat[static_cast<int>(StashCategory::Other)];
        const double total =
            static_cast<double>(relu_pool + relu_conv + other);

        table.addRow(
            { entry.name,
              bench::mb(relu_pool + relu_conv + other),
              bench::mb(relu_pool), bench::mb(relu_conv),
              bench::mb(other),
              formatPercent(static_cast<double>(relu_pool) / total),
              formatPercent(static_cast<double>(relu_conv) / total),
              formatPercent(static_cast<double>(other) / total) });
    }
    table.print();
    bench::note("categories from the Schedule Builder's pattern matcher "
                "on the baseline graphs (minibatch 64). ReLU outputs "
                "should dominate the stash on every ConvNet.");
    return 0;
}
