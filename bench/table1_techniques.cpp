/**
 * @file
 * Table I: the technique <-> target-data-structure mapping, as actually
 * discovered by the Schedule Builder on each network (how many feature
 * maps each encoding claims, and how many FP32 bytes they cover).
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/zoo.hpp"

using namespace gist;

int
main()
{
    bench::banner(
        "Table I",
        "Gist techniques and their target data structures",
        "ReLU-Pool -> Binarize (lossless); ReLU-Conv -> SSDC (lossless); "
        "other stashes -> DPR (lossy); immediately consumed -> inplace");

    std::printf("technique -> target mapping (static):\n");
    std::printf("  Binarize  : ReLU->Pool stashed fmaps (1-bit sign + "
                "4-bit pool argmax map)\n");
    std::printf("  SSDC      : ReLU/Pool->Conv stashed fmaps (CSR, "
                "1-byte narrow indices)\n");
    std::printf("  DPR       : remaining stashed fmaps (FP16/FP10/FP8 "
                "backward copy)\n");
    std::printf("  Inplace   : immediately-consumed producer buffers "
                "overwritten by ReLU\n\n");

    const std::int64_t batch = 64;
    Table table({ "network", "binarized fmaps", "SSDC fmaps",
                  "DPR fmaps", "inplace ReLUs", "bytes binarize",
                  "bytes SSDC", "bytes DPR" });

    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const auto schedule =
            buildSchedule(g, GistConfig::lossy(DprFormat::Fp16));
        int n_bin = 0;
        int n_csr = 0;
        int n_dpr = 0;
        int n_inplace = 0;
        std::uint64_t b_bin = 0;
        std::uint64_t b_csr = 0;
        std::uint64_t b_dpr = 0;
        for (const auto &node : g.nodes()) {
            const auto &d = schedule.of(node.id);
            const auto bytes =
                static_cast<std::uint64_t>(node.out_shape.numel()) * 4;
            if (d.binarized && node.kind() == LayerKind::Relu) {
                ++n_bin;
                b_bin += bytes;
            }
            if (d.repr == StashPlan::Repr::Csr) {
                ++n_csr;
                b_csr += bytes;
            }
            if (d.repr == StashPlan::Repr::Dpr) {
                ++n_dpr;
                b_dpr += bytes;
            }
            n_inplace += d.inplace;
        }
        table.addRow({ entry.name, std::to_string(n_bin),
                       std::to_string(n_csr), std::to_string(n_dpr),
                       std::to_string(n_inplace), bench::mb(b_bin),
                       bench::mb(b_csr), bench::mb(b_dpr) });
    }
    table.print();
    bench::note("byte columns are the FP32 footprints the technique "
                "replaces (minibatch 64).");
    return 0;
}
