/**
 * @file
 * Figure 1: breakdown of training memory footprint across data-structure
 * classes for the five paper CNNs at minibatch 64.
 *
 * Paper conclusion to reproduce: stashed feature maps dominate, followed
 * by immediately-consumed data; weights are a small fraction (the
 * opposite of inference).
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/zoo.hpp"

using namespace gist;

int
main()
{
    bench::banner(
        "Figure 1", "memory footprint breakdown by data-structure class",
        "stashed fmaps + immediately consumed dominate (83% for VGG16, "
        "97% for Inception); weights are minor");

    const std::int64_t batch = 64;
    Table table({ "network", "weights", "wgrads", "stashed fmaps",
                  "immediate", "gradient maps", "workspace",
                  "fmap+imm share" });

    for (const auto &entry : models::allModels()) {
        Graph g = entry.build(batch);
        const auto schedule = buildSchedule(g, GistConfig::baseline());
        const auto bufs = planBuffers(g, schedule, SparsityModel{});
        auto raw = bytesByClass(bufs);

        // Workspace buffers share one arena (disjoint lifetimes): report
        // the max like the allocator would reserve.
        std::uint64_t ws_max = 0;
        for (const auto &b : bufs)
            if (b.cls == DataClass::Workspace)
                ws_max = std::max(ws_max, b.bytes);

        const std::uint64_t stashed = raw[DataClass::StashedFmap];
        const std::uint64_t immediate = raw[DataClass::ImmediateFmap];
        const std::uint64_t grads = raw[DataClass::GradientMap];
        const std::uint64_t total = raw[DataClass::Weight] +
                                    raw[DataClass::WeightGrad] + stashed +
                                    immediate + grads + ws_max;
        const double fmap_share =
            static_cast<double>(stashed + immediate + grads) /
            static_cast<double>(total);

        table.addRow({ entry.name, bench::mb(raw[DataClass::Weight]),
                       bench::mb(raw[DataClass::WeightGrad]),
                       bench::mb(stashed), bench::mb(immediate),
                       bench::mb(grads), bench::mb(ws_max),
                       formatPercent(fmap_share) });
    }
    table.print();
    bench::note("minibatch 64, ImageNet input shapes; raw (pre-sharing) "
                "sizes per class, workspace reported as the shared-arena "
                "max. Feature-map classes dominate every network, "
                "matching the paper's Figure 1 conclusion.");
    return 0;
}
