/**
 * @file
 * Figure 12: training accuracy loss under precision reduction.
 *
 * Arms per network (tiny suite, synthetic dataset substituting for
 * ImageNet):
 *   Baseline-FP32 : everything full precision
 *   All-FP16      : every feature map / gradient map quantized right
 *                   after it is produced (prior-work style)
 *   Gist-FP16/10/8: Delayed Precision Reduction — only the stashed
 *                   backward copy is quantized
 *
 * Paper shape to reproduce: All-FP16 hurts accuracy; Gist DPR tracks
 * FP32 down to small widths, with the minimum width network-dependent.
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/tiny.hpp"
#include "train/trainer.hpp"
#include "util/rng.hpp"

using namespace gist;

namespace {

std::vector<EpochRecord>
trainArm(const models::ModelEntry &entry, const GistConfig &cfg,
         DprFormat forward_quantize, int epochs)
{
    Graph g = entry.build(32);
    Rng rng(11);
    g.initParams(rng);
    Executor exec(g);
    applyToExecutor(buildSchedule(g, cfg), exec);
    exec.setForwardQuantize(forward_quantize);
    Trainer trainer(exec);

    SyntheticDataset::Spec spec;
    spec.num_train = 512;
    spec.num_eval = 128;
    spec.classes = models::kTinyClasses;
    spec.image = models::kTinyImage;
    SyntheticDataset data(spec);

    TrainConfig tc;
    tc.epochs = epochs;
    // Tuned so the FP32 baseline converges cleanly on every model
    // (LR sweep recorded in EXPERIMENTS.md): differences between arms
    // then reflect quantization error, not optimizer noise.
    tc.learning_rate = 0.04f;
    tc.lr_decay = 0.6f;
    tc.lr_decay_epochs = 3;
    tc.clip_grad_norm = 5.0f;
    return trainer.run(data, tc);
}

std::string
curve(const std::vector<EpochRecord> &records)
{
    std::string out;
    for (const auto &r : records) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%5.1f%%",
                      r.accuracyLoss() * 100.0);
        out += buf;
    }
    return out;
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 12", "training accuracy loss vs epoch, per arm",
        "All-FP16 degrades accuracy; Gist-DPR matches FP32 down to "
        "8-10 bits (minimum width is network-dependent)");

    const int epochs = 10;
    std::printf("each row: accuracy LOSS (1 - eval accuracy) after "
                "epochs 1..%d (lower = better)\n",
                epochs);

    for (const auto &entry : models::tinyModels()) {
        std::printf("\n%s:\n", entry.name.c_str());
        Table table({ "arm", "accuracy-loss curve", "final" });

        struct Arm
        {
            const char *name;
            GistConfig cfg;
            DprFormat forward;
        };
        const std::vector<Arm> arms = {
            { "Baseline-FP32", GistConfig::baseline(),
              DprFormat::Fp32 },
            { "All-FP16", GistConfig::baseline(), DprFormat::Fp16 },
            { "All-FP8", GistConfig::baseline(), DprFormat::Fp8 },
            { "Gist-FP16", GistConfig::lossy(DprFormat::Fp16),
              DprFormat::Fp32 },
            { "Gist-FP10", GistConfig::lossy(DprFormat::Fp10),
              DprFormat::Fp32 },
            { "Gist-FP8", GistConfig::lossy(DprFormat::Fp8),
              DprFormat::Fp32 },
        };
        for (const auto &arm : arms) {
            const auto records =
                trainArm(entry, arm.cfg, arm.forward, epochs);
            table.addRow(
                { arm.name, curve(records),
                  formatPercent(records.back().accuracyLoss()) });
        }
        table.print();
    }
    bench::note("tiny model variants + synthetic dataset substitute for "
                "the paper's ImageNet runs (see DESIGN.md); the arms "
                "differ only in where quantization error is injected, "
                "which is the property the figure demonstrates. All-FP8 "
                "added as a harsher prior-work arm since the easy task "
                "partially masks All-FP16 damage.");
    return 0;
}
