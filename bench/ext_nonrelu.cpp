/**
 * @file
 * Extension study: what happens outside the ReLU-CNN regime the paper
 * targets? A sigmoid/tanh CNN has no Binarize or SSDC targets (backward
 * needs real values; activations are dense), so DPR is the only Gist
 * encoding that applies — the MFR degrades gracefully toward the pure-
 * DPR bound rather than collapsing.
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/builder.hpp"
#include "models/zoo.hpp"

using namespace gist;

namespace {

/** VGG16 with every ReLU replaced by the given activation. */
Graph
vggVariant(std::int64_t batch, const char *activation)
{
    NetBuilder net(batch, 3, 224, 224);
    auto act = [&]() {
        if (std::string(activation) == "sigmoid")
            net.sigmoid();
        else if (std::string(activation) == "tanh")
            net.tanh();
        else
            net.relu();
    };
    const int stages[5] = { 2, 2, 3, 3, 3 };
    const std::int64_t channels[5] = { 64, 128, 256, 512, 512 };
    for (int s = 0; s < 5; ++s) {
        for (int i = 0; i < stages[s]; ++i) {
            net.conv(channels[s], 3, 1, 1);
            act();
        }
        net.maxpool(2, 2);
    }
    net.fc(4096);
    act();
    net.dropout(0.5f);
    net.fc(4096);
    act();
    net.dropout(0.5f);
    net.fc(1000);
    net.loss(1000);
    return net.take();
}

} // namespace

int
main()
{
    bench::banner("Extension", "Gist on non-ReLU activations",
                  "sigmoid/tanh nets lose Binarize+SSDC eligibility; "
                  "DPR alone still compresses the (dense) stash");

    const std::int64_t batch = 64;
    const SparsityModel sparsity;
    Table table({ "activation", "binarize fmaps", "SSDC fmaps",
                  "DPR fmaps", "MFR lossless", "MFR lossy-fp16" });
    for (const char *activation : { "relu", "sigmoid", "tanh" }) {
        Graph g = vggVariant(batch, activation);
        const auto schedule =
            buildSchedule(g, GistConfig::lossy(DprFormat::Fp16));
        int n_bin = 0;
        int n_csr = 0;
        int n_dpr = 0;
        for (const auto &d : schedule.decisions) {
            n_bin += d.binarized;
            n_csr += (d.repr == StashPlan::Repr::Csr);
            n_dpr += (d.repr == StashPlan::Repr::Dpr);
        }
        const auto base = planModel(g, GistConfig::baseline(), sparsity);
        const auto lossless =
            planModel(g, GistConfig::lossless(), sparsity);
        const auto lossy =
            planModel(g, GistConfig::lossy(DprFormat::Fp16), sparsity);
        table.addRow(
            { activation, std::to_string(n_bin), std::to_string(n_csr),
              std::to_string(n_dpr),
              formatRatio(double(base.pool_static) /
                          double(lossless.pool_static)),
              formatRatio(double(base.pool_static) /
                          double(lossy.pool_static)) });
    }
    table.print();
    bench::note("VGG16 body with the activation swapped; binarized "
                "count includes the flipped pool layers. The paper's "
                "layer-specific encodings are ReLU-specific by design; "
                "DPR (any layer combination) is the general fallback.");
    return 0;
}
