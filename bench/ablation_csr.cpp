/**
 * @file
 * Ablation: CSR layout (the Narrow Value Optimization, Section IV-A).
 * Sweeps index width x logical row width x sparsity and reports the
 * achieved compression plus each layout's break-even sparsity.
 *
 * Paper claim: 1-byte indices (256-column reshape) move the break-even
 * from 50% to 20% sparsity and raise compression everywhere.
 */

#include <vector>

#include "bench_common.hpp"
#include "encodings/csr.hpp"
#include "util/rng.hpp"

using namespace gist;

int
main()
{
    bench::banner("Ablation", "CSR layout (narrow value optimization)",
                  "1-byte indices: break-even 20% sparsity (vs 50% with "
                  "4-byte cuSPARSE indices)");

    struct Layout
    {
        const char *name;
        CsrConfig cfg;
    };
    const std::vector<Layout> layouts = {
        { "narrow-64", { 64, 1, DprFormat::Fp32 } },
        { "narrow-256 (paper)", { 256, 1, DprFormat::Fp32 } },
        { "2-byte-4096", { 4096, 2, DprFormat::Fp32 } },
        { "cuSPARSE-4B", { 4096, 4, DprFormat::Fp32 } },
        { "narrow-256 + FP16 vals", { 256, 1, DprFormat::Fp16 } },
        { "narrow-256 + FP8 vals", { 256, 1, DprFormat::Fp8 } },
    };
    const std::vector<double> sparsities = { 0.2, 0.5, 0.7, 0.9 };

    std::vector<std::string> header = { "layout", "break-even" };
    for (double s : sparsities)
        header.push_back("ratio @" + formatPercent(s));
    Table table(header);

    Rng rng(3);
    const std::int64_t n = 1 << 18;
    for (const auto &layout : layouts) {
        const double break_even = csrBreakEvenSparsity(layout.cfg);
        std::vector<std::string> row = {
            layout.name,
            break_even <= 0.0 ? "always" : formatPercent(break_even)
        };
        for (double sparsity : sparsities) {
            std::vector<float> values(static_cast<size_t>(n));
            for (auto &v : values)
                v = rng.uniform() < sparsity ? 0.0f : rng.normal();
            CsrBuffer buf(layout.cfg);
            buf.encode(values);
            row.push_back(formatRatio(buf.compressionRatio()));
        }
        table.addRow(row);
    }
    table.print();
    bench::note("measured on random data at the stated sparsity; the "
                "FP16/FP8 rows show DPR-over-SSDC composition (indices "
                "stay lossless because they carry control).");
    return 0;
}
