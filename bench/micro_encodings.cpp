/**
 * @file
 * Microbenchmarks for the encoding kernels (google-benchmark): DPR
 * pack/unpack at each width, Binarize, the pool argmax map, and CSR
 * encode/decode across sparsities including the narrow-vs-wide index
 * ablation. Throughput (bytes/s) is the number to watch — these kernels
 * are the entirety of Gist's runtime overhead.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "encodings/binarize.hpp"
#include "encodings/csr.hpp"
#include "encodings/dpr.hpp"
#include "encodings/pool_index_map.hpp"
#include "util/rng.hpp"

namespace {

using namespace gist;

std::vector<float>
randomSparse(std::int64_t n, double sparsity, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> values(static_cast<size_t>(n));
    for (auto &v : values)
        v = rng.uniform() < sparsity ? 0.0f : rng.normal();
    return values;
}

void
BM_DprEncode(benchmark::State &state)
{
    const auto fmt = static_cast<DprFormat>(state.range(0));
    const std::int64_t n = state.range(1);
    const auto values = randomSparse(n, 0.0, 1);
    DprBuffer buf;
    for (auto _ : state) {
        buf.encode(fmt, values);
        benchmark::DoNotOptimize(buf.bytes());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n * 4);
}
BENCHMARK(BM_DprEncode)
    ->Args({ static_cast<int>(DprFormat::Fp16), 1 << 20 })
    ->Args({ static_cast<int>(DprFormat::Fp10), 1 << 20 })
    ->Args({ static_cast<int>(DprFormat::Fp8), 1 << 20 });

void
BM_DprDecode(benchmark::State &state)
{
    const auto fmt = static_cast<DprFormat>(state.range(0));
    const std::int64_t n = state.range(1);
    const auto values = randomSparse(n, 0.0, 2);
    DprBuffer buf;
    buf.encode(fmt, values);
    std::vector<float> out(static_cast<size_t>(n));
    for (auto _ : state) {
        buf.decode(out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n * 4);
}
BENCHMARK(BM_DprDecode)
    ->Args({ static_cast<int>(DprFormat::Fp16), 1 << 20 })
    ->Args({ static_cast<int>(DprFormat::Fp10), 1 << 20 })
    ->Args({ static_cast<int>(DprFormat::Fp8), 1 << 20 });

void
BM_BinarizeEncode(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    const auto values = randomSparse(n, 0.5, 3);
    BinarizedMask mask;
    for (auto _ : state) {
        mask.encode(values);
        benchmark::DoNotOptimize(mask.bytes());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n * 4);
}
BENCHMARK(BM_BinarizeEncode)->Arg(1 << 20);

void
BM_BinarizeReluBackward(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    const auto y = randomSparse(n, 0.5, 4);
    const auto dy = randomSparse(n, 0.0, 5);
    std::vector<float> dx(static_cast<size_t>(n));
    BinarizedMask mask;
    mask.encode(y);
    for (auto _ : state) {
        mask.reluBackward(dy, dx);
        benchmark::DoNotOptimize(dx.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n * 4);
}
BENCHMARK(BM_BinarizeReluBackward)->Arg(1 << 20);

void
BM_PoolIndexMapRoundTrip(benchmark::State &state)
{
    const std::int64_t n = state.range(0);
    PoolIndexMap map;
    map.configure(n, 3, 3);
    for (auto _ : state) {
        for (std::int64_t i = 0; i < n; ++i)
            map.set(i, i % 9);
        std::int64_t sum = 0;
        for (std::int64_t i = 0; i < n; ++i)
            sum += map.get(i);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PoolIndexMapRoundTrip)->Arg(1 << 18);

void
BM_CsrEncode(benchmark::State &state)
{
    const double sparsity = static_cast<double>(state.range(0)) / 100.0;
    const int index_bytes = static_cast<int>(state.range(1));
    const std::int64_t n = 1 << 20;
    const auto values = randomSparse(n, sparsity, 6);
    CsrConfig cfg;
    cfg.index_bytes = index_bytes;
    cfg.row_width = index_bytes == 1 ? 256 : 4096;
    CsrBuffer buf(cfg);
    for (auto _ : state) {
        buf.encode(values);
        benchmark::DoNotOptimize(buf.bytes());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n * 4);
    state.counters["compression"] = buf.compressionRatio();
}
BENCHMARK(BM_CsrEncode)
    ->Args({ 30, 1 })
    ->Args({ 70, 1 })
    ->Args({ 90, 1 })
    ->Args({ 70, 4 }) // cuSPARSE-style wide indices (ablation)
    ->Args({ 90, 4 });

void
BM_CsrDecode(benchmark::State &state)
{
    const double sparsity = static_cast<double>(state.range(0)) / 100.0;
    const std::int64_t n = 1 << 20;
    const auto values = randomSparse(n, sparsity, 7);
    CsrBuffer buf{ CsrConfig{} };
    buf.encode(values);
    std::vector<float> out(static_cast<size_t>(n));
    for (auto _ : state) {
        buf.decode(out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * n * 4);
}
BENCHMARK(BM_CsrDecode)->Arg(30)->Arg(70)->Arg(90);

void
BM_SmallFloatQuantize(benchmark::State &state)
{
    const auto fmt = static_cast<DprFormat>(state.range(0));
    const SmallFloatFormat &sf = dprSmallFloat(fmt);
    auto values = randomSparse(1 << 16, 0.0, 8);
    for (auto _ : state) {
        for (auto &v : values)
            v = quantizeSmallFloat(sf, v);
        benchmark::DoNotOptimize(values.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_SmallFloatQuantize)
    ->Arg(static_cast<int>(DprFormat::Fp16))
    ->Arg(static_cast<int>(DprFormat::Fp8));

} // namespace
