/**
 * @file
 * Microbenchmarks for the static-analysis machinery: graph
 * construction, classification, schedule building, liveness, and the
 * three allocator policies, at VGG16 and deep-ResNet scale.
 */

#include <benchmark/benchmark.h>

#include "core/gist.hpp"
#include "models/zoo.hpp"

namespace {

using namespace gist;

void
BM_BuildVgg16(benchmark::State &state)
{
    for (auto _ : state) {
        Graph g = models::vgg16(64);
        benchmark::DoNotOptimize(g.numNodes());
    }
}
BENCHMARK(BM_BuildVgg16);

void
BM_ClassifyStashes(benchmark::State &state)
{
    Graph g = models::inceptionV1(64);
    for (auto _ : state) {
        auto cats = classifyStashes(g);
        benchmark::DoNotOptimize(cats.size());
    }
}
BENCHMARK(BM_ClassifyStashes);

void
BM_BuildSchedule(benchmark::State &state)
{
    Graph g = models::vgg16(64);
    const auto cfg = GistConfig::lossy(DprFormat::Fp16);
    for (auto _ : state) {
        auto schedule = buildSchedule(g, cfg);
        benchmark::DoNotOptimize(schedule.decisions.size());
    }
}
BENCHMARK(BM_BuildSchedule);

void
BM_PlanBuffers(benchmark::State &state)
{
    Graph g = models::vgg16(64);
    const auto schedule = buildSchedule(g, GistConfig::lossless());
    const SparsityModel sparsity;
    for (auto _ : state) {
        auto bufs = planBuffers(g, schedule, sparsity);
        benchmark::DoNotOptimize(bufs.size());
    }
}
BENCHMARK(BM_PlanBuffers);

void
BM_AllocatorCntk(benchmark::State &state)
{
    Graph g = models::resnetCifar(static_cast<int>(state.range(0)), 16);
    const auto schedule = buildSchedule(g, GistConfig::baseline());
    const auto bufs = planBuffers(g, schedule, SparsityModel{});
    for (auto _ : state) {
        auto result = allocateCntkStyle(bufs);
        benchmark::DoNotOptimize(result.total_bytes);
    }
    state.counters["buffers"] = static_cast<double>(bufs.size());
}
BENCHMARK(BM_AllocatorCntk)->Arg(110)->Arg(509)->Arg(1202);

void
BM_AllocatorOffset(benchmark::State &state)
{
    Graph g = models::resnetCifar(110, 16);
    const auto schedule = buildSchedule(g, GistConfig::baseline());
    const auto bufs = planBuffers(g, schedule, SparsityModel{});
    for (auto _ : state) {
        auto bytes = allocateOffsetBestFit(bufs);
        benchmark::DoNotOptimize(bytes);
    }
}
BENCHMARK(BM_AllocatorOffset);

void
BM_DynamicPeak(benchmark::State &state)
{
    Graph g = models::resnetCifar(1202, 16);
    const auto schedule = buildSchedule(g, GistConfig::baseline());
    const auto bufs = planBuffers(g, schedule, SparsityModel{});
    for (auto _ : state) {
        auto bytes = dynamicPeak(bufs);
        benchmark::DoNotOptimize(bytes);
    }
}
BENCHMARK(BM_DynamicPeak);

void
BM_PlanModelEndToEnd(benchmark::State &state)
{
    Graph g = models::vgg16(64);
    const SparsityModel sparsity;
    const auto cfg = GistConfig::lossy(DprFormat::Fp16);
    for (auto _ : state) {
        auto summary = planModel(g, cfg, sparsity);
        benchmark::DoNotOptimize(summary.pool_static);
    }
}
BENCHMARK(BM_PlanModelEndToEnd);

} // namespace
