/**
 * @file
 * Figure 10: the lossless encodings in isolation against the
 * *investigation baseline* (no memory sharing for stashed fmaps), with
 * the footprint broken into the paper's four regions: ReLU/Pool->Conv
 * (SSDC territory), ReLU->Pool (Binarize territory), other stashed
 * fmaps (left for DPR), and immediately consumed.
 */

#include "bench_common.hpp"
#include "core/gist.hpp"
#include "models/zoo.hpp"

using namespace gist;

namespace {

struct Regions
{
    std::uint64_t relu_conv = 0;
    std::uint64_t relu_pool = 0;
    std::uint64_t other = 0;
    std::uint64_t immediate = 0;
    std::uint64_t immediate_raw = 0; ///< pre-sharing sum (inplace view)
    std::uint64_t total = 0;
};

Regions
regionsOf(Graph &g, const GistConfig &cfg)
{
    const auto schedule = buildSchedule(g, cfg);
    const auto cats = classifyStashes(g);
    const auto bufs = planBuffers(g, schedule, SparsityModel{});

    // Investigation-baseline total: stashes unshared, the rest shared.
    const auto summary = summarize(bufs, /*investigation=*/true);

    Regions r;
    r.total = summary.pool_static;
    // Stash-side regions (unshared, so they sum exactly); everything
    // else in the pool is the immediate region.
    std::uint64_t stash_sum = 0;
    for (const auto &b : bufs) {
        if (!inMfrPool(b.cls))
            continue;
        if (b.cls != DataClass::StashedFmap &&
            b.cls != DataClass::EncodedFmap)
            continue;
        stash_sum += b.bytes;
        const auto cat = b.origin_node >= 0
                             ? cats[static_cast<size_t>(b.origin_node)]
                             : StashCategory::Other;
        switch (cat) {
          case StashCategory::ReluConv:
            r.relu_conv += b.bytes;
            break;
          case StashCategory::ReluPool:
            r.relu_pool += b.bytes;
            break;
          default:
            // Aux stash of a binarized pool belongs to the ReluPool
            // region; everything else is "other".
            if (schedule.of(b.origin_node).binarized)
                r.relu_pool += b.bytes;
            else
                r.other += b.bytes;
        }
    }
    r.immediate = r.total - stash_sum;
    r.immediate_raw = bytesOfClasses(
        bufs, { DataClass::ImmediateFmap, DataClass::GradientMap,
                DataClass::DecodeScratch });
    return r;
}

void
addRow(Table &table, const std::string &config, const Regions &r,
       const Regions &base)
{
    table.addRow({ config, bench::mb(r.relu_conv),
                   bench::mb(r.relu_pool), bench::mb(r.other),
                   bench::mb(r.immediate), bench::mb(r.immediate_raw),
                   bench::mb(r.total),
                   formatRatio(static_cast<double>(base.total) /
                               static_cast<double>(r.total)) });
}

} // namespace

int
main()
{
    bench::banner(
        "Figure 10",
        "lossless encodings in isolation (vs investigation baseline)",
        "each encoding shrinks its region and slightly grows the "
        "immediate region; SSDC+Binarize+inplace compound");

    const std::int64_t batch = 64;
    for (const auto &entry : models::allModels()) {
        std::printf("\n%s:\n", entry.name.c_str());
        Graph g = entry.build(batch);

        Table table({ "config", "ReluConv", "ReluPool", "Other",
                      "immediate", "imm raw sum", "total", "MFR" });
        const Regions base = regionsOf(g, GistConfig::baseline());
        addRow(table, "investigation baseline", base, base);

        GistConfig ssdc_only;
        ssdc_only.ssdc = true;
        addRow(table, "SSDC", regionsOf(g, ssdc_only), base);

        GistConfig bin_only;
        bin_only.binarize = true;
        addRow(table, "Binarize", regionsOf(g, bin_only), base);

        GistConfig both;
        both.ssdc = true;
        both.binarize = true;
        addRow(table, "SSDC+Binarize", regionsOf(g, both), base);

        addRow(table, "SSDC+Binarize+inplace",
               regionsOf(g, GistConfig::lossless()), base);
        table.print();
    }
    bench::note("regions attributed by the Schedule Builder's "
                "classifier; stashes are unshared in this baseline so "
                "region sizes sum exactly (paper Section V-C1). Inplace "
                "halves the raw immediate volume ('imm raw sum'); its "
                "effect on the shared total is small here because our "
                "lean baseline's peak is set by backward-pass gradient "
                "maps (see EXPERIMENTS.md).");
    return 0;
}
