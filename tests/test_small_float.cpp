/**
 * @file
 * SmallFloat codec tests: exhaustive bit-pattern round trips (the 8/10/16
 * bit spaces are tiny), IEEE-half cross-checks, round-to-nearest-even,
 * clamping, denormal flushing, and monotonicity.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "encodings/small_float.hpp"
#include "util/rng.hpp"

namespace gist {
namespace {

class SmallFloatFormats
    : public ::testing::TestWithParam<SmallFloatFormat>
{
};

TEST_P(SmallFloatFormats, ExhaustiveEncodeDecodeRoundTrip)
{
    const auto fmt = GetParam();
    const std::uint32_t count = 1u << fmt.totalBits();
    const std::uint32_t exp_mask = (1u << fmt.exp_bits) - 1;
    for (std::uint32_t bits = 0; bits < count; ++bits) {
        const std::uint32_t e_field = (bits >> fmt.man_bits) & exp_mask;
        const std::uint32_t man = bits & ((1u << fmt.man_bits) - 1);
        if (e_field == exp_mask)
            continue; // reserved (inf/nan space), never produced
        if (e_field == 0 && man != 0)
            continue; // denormal patterns, never produced
        const float value = decodeSmallFloat(fmt, bits);
        EXPECT_EQ(encodeSmallFloat(fmt, value), bits)
            << "pattern " << bits << " value " << value;
    }
}

TEST_P(SmallFloatFormats, QuantizationErrorWithinHalfUlp)
{
    const auto fmt = GetParam();
    Rng rng(fmt.exp_bits * 100 + fmt.man_bits);
    const float max_fin = fmt.maxFinite();
    const float min_norm = fmt.minNormal();
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform magnitudes across the normal range.
        const float mag = min_norm *
                          std::pow(max_fin / min_norm,
                                   static_cast<float>(rng.uniform()));
        const float x = (rng.uniform() < 0.5 ? -1.0f : 1.0f) * mag;
        const float q = quantizeSmallFloat(fmt, x);
        const float rel_err = std::fabs(q - x) / std::fabs(x);
        // Half ULP: 2^-(man_bits+1).
        EXPECT_LE(rel_err, std::ldexp(1.0f, -(int)fmt.man_bits - 1) *
                               1.0001f)
            << "x=" << x;
    }
}

TEST_P(SmallFloatFormats, ClampsToMaxFinite)
{
    const auto fmt = GetParam();
    const float max_fin = fmt.maxFinite();
    EXPECT_EQ(quantizeSmallFloat(fmt, max_fin * 4.0f), max_fin);
    EXPECT_EQ(quantizeSmallFloat(fmt, -max_fin * 4.0f), -max_fin);
    EXPECT_EQ(quantizeSmallFloat(fmt,
                                 std::numeric_limits<float>::infinity()),
              max_fin);
    EXPECT_EQ(quantizeSmallFloat(
                  fmt, -std::numeric_limits<float>::infinity()),
              -max_fin);
}

TEST_P(SmallFloatFormats, FlushesDenormalsToZero)
{
    const auto fmt = GetParam();
    const float min_norm = fmt.minNormal();
    EXPECT_EQ(quantizeSmallFloat(fmt, min_norm), min_norm);
    EXPECT_EQ(quantizeSmallFloat(fmt, min_norm * 0.49f), 0.0f);
    EXPECT_EQ(quantizeSmallFloat(fmt, -min_norm * 0.3f), -0.0f);
    EXPECT_EQ(quantizeSmallFloat(fmt, 0.0f), 0.0f);
    // Just below minNormal rounds up into the normal range (carry).
    EXPECT_EQ(quantizeSmallFloat(fmt, min_norm * 0.9999f), min_norm);
}

TEST_P(SmallFloatFormats, QuantizationIsMonotonic)
{
    const auto fmt = GetParam();
    Rng rng(99);
    std::vector<float> xs;
    for (int i = 0; i < 4000; ++i)
        xs.push_back(rng.normal(0.0f, 10.0f));
    std::sort(xs.begin(), xs.end());
    float prev = quantizeSmallFloat(fmt, xs.front());
    for (float x : xs) {
        const float q = quantizeSmallFloat(fmt, x);
        EXPECT_LE(prev, q);
        prev = q;
    }
}

TEST_P(SmallFloatFormats, PreservesSign)
{
    const auto fmt = GetParam();
    EXPECT_GE(quantizeSmallFloat(fmt, 3.14f), 0.0f);
    EXPECT_LE(quantizeSmallFloat(fmt, -3.14f), 0.0f);
    EXPECT_TRUE(std::signbit(quantizeSmallFloat(fmt, -0.0f)));
}

TEST_P(SmallFloatFormats, PowersOfTwoAreExactInRange)
{
    const auto fmt = GetParam();
    for (int e = -4; e <= 4; ++e) {
        const float x = std::ldexp(1.0f, e);
        EXPECT_EQ(quantizeSmallFloat(fmt, x), x) << "2^" << e;
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, SmallFloatFormats,
                         ::testing::Values(kFp16, kFp10, kFp8));

// ---- FP16-specific: must agree with IEEE half precision ----

TEST(Fp16, KnownIeeeHalfPatterns)
{
    EXPECT_EQ(encodeSmallFloat(kFp16, 1.0f), 0x3c00u);
    EXPECT_EQ(encodeSmallFloat(kFp16, -2.0f), 0xc000u);
    EXPECT_EQ(encodeSmallFloat(kFp16, 0.5f), 0x3800u);
    EXPECT_EQ(encodeSmallFloat(kFp16, 65504.0f), 0x7bffu);
    EXPECT_EQ(decodeSmallFloat(kFp16, 0x3c00u), 1.0f);
    EXPECT_EQ(decodeSmallFloat(kFp16, 0x7bffu), 65504.0f);
}

TEST(Fp16, RangeConstants)
{
    EXPECT_FLOAT_EQ(kFp16.maxFinite(), 65504.0f);
    EXPECT_FLOAT_EQ(kFp16.minNormal(), std::ldexp(1.0f, -14));
}

TEST(Fp10, RangeConstants)
{
    // 1 sign, 5 exp, 4 mantissa: bias 15, max exp field 30.
    EXPECT_FLOAT_EQ(kFp10.maxFinite(), (2.0f - 1.0f / 16) * 32768.0f);
    EXPECT_FLOAT_EQ(kFp10.minNormal(), std::ldexp(1.0f, -14));
}

TEST(Fp8, RangeConstants)
{
    // 1 sign, 4 exp, 3 mantissa: bias 7, max exp field 14.
    EXPECT_FLOAT_EQ(kFp8.maxFinite(), 240.0f);
    EXPECT_FLOAT_EQ(kFp8.minNormal(), std::ldexp(1.0f, -6));
}

TEST(SmallFloat, RoundToNearestEvenAtTies)
{
    // FP8 has 3 mantissa bits: representable values around 1.0 step by
    // 1/8. 1 + 1/16 is exactly halfway between 1.0 and 1.125; RNE picks
    // the even mantissa (1.0).
    EXPECT_EQ(quantizeSmallFloat(kFp8, 1.0625f), 1.0f);
    // 1 + 3/16 is halfway between 1.125 (odd) and 1.25 (even): RNE
    // rounds up to 1.25.
    EXPECT_EQ(quantizeSmallFloat(kFp8, 1.1875f), 1.25f);
    // Just above/below the tie go to the nearest value.
    EXPECT_EQ(quantizeSmallFloat(kFp8, 1.07f), 1.125f);
    EXPECT_EQ(quantizeSmallFloat(kFp8, 1.05f), 1.0f);
}

TEST(SmallFloat, MantissaCarryBumpsExponent)
{
    // FP8: 1.9375 is above the last 3-bit mantissa step below 2.0
    // (1.875) + half step (0.0625); RNE carries into the exponent.
    EXPECT_EQ(quantizeSmallFloat(kFp8, 1.9688f), 2.0f);
}

TEST(SmallFloat, NanEncodesAsZero)
{
    EXPECT_EQ(quantizeSmallFloat(
                  kFp16, std::numeric_limits<float>::quiet_NaN()),
              0.0f);
}

} // namespace
} // namespace gist
